// The bulk-synchronous machine simulator.
//
// Executes a SuperstepProgram on p logical processors against a pluggable
// CostModel (BSP(g), BSP(m), QSM(g), QSM(m), self-scheduling BSP(m)),
// charging each superstep exactly what the model's definition in Section 2
// of the paper prescribes.  Message routing and shared memory semantics are
// implemented here; the model only maps SuperstepStats to time.
//
// Each superstep runs in two phases: a parallel step phase (every processor
// mutates only its own buffers) and a parallel sharded merge phase —
// collect (per-source stats, slot occupancy via a difference array, and
// bucketing of messages/requests by consuming shard) then deliver (each
// shard drains exactly its own buckets into its destination queues and
// contention tallies), reduced in fixed shard order.  Results are
// bit-identical for every host thread count; see DESIGN.md ("Engine
// internals").  A replay::TapeRecorder captures the per-superstep
// SuperstepStats stream for trace-replay recosting (src/replay).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/cost.hpp"
#include "engine/proc_context.hpp"
#include "engine/program.hpp"
#include "engine/thread_pool.hpp"
#include "engine/types.hpp"
#include "util/rng.hpp"

namespace pbw::obs {
class TraceSink;
}

namespace pbw::replay {
class TapeRecorder;
struct StatsTape;
}  // namespace pbw::replay

namespace pbw::engine {

/// Process-wide default for MachineOptions::profile.  When on, every
/// Machine measures phase wall-clock (and emits engine.step/engine.merge
/// spans) even if its own options left profile false — how
/// `pbw-campaign --profile` reaches the Machines its scenarios construct
/// internally.  Cleared by default; model-time results are unaffected.
void set_profile_default(bool on) noexcept;
[[nodiscard]] bool profile_default() noexcept;

struct MachineOptions {
  std::uint64_t seed = 1;
  /// Host threads used to step processors; 0 = hardware concurrency.
  std::size_t threads = 1;
  /// Validate model contracts (slot collisions, QSM read/write races).
  bool validate = true;
  /// Record a per-superstep trace in the RunResult.
  bool trace = false;
  /// Measure wall-clock time of the step and merge phases (EngineCounters
  /// step_ns/merge_ns); off by default to keep tiny supersteps clock-free.
  bool profile = false;
  /// Cost-attribution sink for this machine.  nullptr falls back to
  /// obs::current_sink() (the thread-local ScopedSink, then the process
  /// sink the --trace flag installs); when that is also null, tracing
  /// costs one pointer check per superstep.
  obs::TraceSink* trace_sink = nullptr;
  /// Stats-tape capture for trace-replay recosting (src/replay).  nullptr
  /// falls back to replay::current_tape_recorder() (the thread-local
  /// ScopedTapeRecorder); when that is also null, capture costs one
  /// pointer check per superstep.  Each run() appends one StatsTape.
  replay::TapeRecorder* tape_recorder = nullptr;
  /// Abort (throw) if the program exceeds this many supersteps.
  std::uint64_t max_supersteps = 1u << 20;
};

/// One traced superstep: the gathered stats and the charge.
struct SuperstepRecord {
  SuperstepStats stats;
  SimTime cost = 0.0;
};

struct RunResult {
  SimTime total_time = 0.0;
  std::uint64_t supersteps = 0;
  std::uint64_t total_messages = 0;  ///< messages (not flits) delivered
  std::uint64_t total_flits = 0;
  std::uint64_t total_reads = 0;
  std::uint64_t total_writes = 0;
  std::vector<SuperstepRecord> trace;  ///< populated iff options.trace
};

/// Host-side engine observability, reset by each run().  The *_grows
/// counters expose the double-buffered delivery path: a steady-state
/// workload re-runs with zero grows because every per-processor queue is
/// reused at capacity (no per-superstep allocation or copying).
struct EngineCounters {
  std::uint64_t step_ns = 0;   ///< wall-clock in the step phase (profile only)
  std::uint64_t merge_ns = 0;  ///< wall-clock in the merge phase (profile only)
  std::uint64_t merge_flits = 0;     ///< flits routed by the merge phase
  std::uint64_t merge_requests = 0;  ///< shared-memory requests merged
  std::uint64_t inbox_grows = 0;       ///< inbox queues that had to reallocate
  std::uint64_t read_buffer_grows = 0; ///< read-result buffers that reallocated
};

class Machine {
 public:
  /// The model is borrowed and must outlive the machine.
  Machine(const CostModel& model, MachineOptions options = {});

  [[nodiscard]] std::uint32_t p() const noexcept { return p_; }
  [[nodiscard]] const CostModel& model() const noexcept { return model_; }
  [[nodiscard]] const MachineOptions& options() const noexcept { return options_; }

  /// QSM shared memory.  Programs size it in setup(); addresses must stay
  /// in range or the run throws.
  void resize_shared(std::size_t cells, Word init = 0);
  [[nodiscard]] std::size_t shared_size() const noexcept { return shared_.size(); }
  [[nodiscard]] Word shared_at(Addr addr) const { return shared_.at(addr); }
  void poke_shared(Addr addr, Word value) { shared_.at(addr) = value; }

  /// Runs the program to completion and returns the accumulated result.
  RunResult run(SuperstepProgram& program);

  /// Engine-host observability for the most recent (or in-progress) run.
  [[nodiscard]] const EngineCounters& counters() const noexcept { return counters_; }

 private:
  /// Per-shard merge accumulator.  Each shard owns a contiguous range of
  /// source processors, destination processors, and shared-memory
  /// addresses; shards never write the same cell, and the caller reduces
  /// them in ascending shard order after the barrier.  Every reduced
  /// quantity is an integer sum/max or a floating max, so the reduction is
  /// bit-identical regardless of the shard count.
  struct alignas(64) MergeShard {
    double max_work = 0.0;
    std::uint64_t max_sent = 0;
    std::uint64_t max_received = 0;
    std::uint64_t total_flits = 0;
    std::uint64_t max_reads = 0;
    std::uint64_t max_writes = 0;
    std::uint64_t total_requests = 0;
    std::uint64_t messages = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t kappa = 0;
    std::uint64_t inbox_grows = 0;
    std::uint64_t read_buffer_grows = 0;
    Slot max_slot_end = 0;  ///< exclusive, over this shard's sources
    bool has_race = false;  ///< read+write on one address (validate only)
    Addr race_addr = 0;
    std::vector<std::uint64_t> slot_counts;  ///< this shard's sources' m_t
    std::vector<Addr> touched;     ///< contention cells touched this superstep
    std::vector<std::size_t> caps; ///< scratch: inbox capacities before append
    /// One shared-memory request of this shard's sources, in issue order,
    /// bucketed by the address shard that will tally it.
    struct AddrRef {
      Addr addr;
      bool is_write;
    };
    // Outgoing work bucketed by receiving shard during the collect phase
    // (msg_buckets[d] = this shard's sources' messages whose destination
    // lies in shard d's processor range; addr_buckets[d] = their requests
    // whose address lies in shard d's address range).  The deliver phase
    // drains buckets addressed to it in ascending source-shard order, so
    // each consumer walks exactly its own messages/requests instead of
    // scanning every source context.  Capacity persists across supersteps.
    std::vector<std::vector<const Message*>> msg_buckets;
    std::vector<std::vector<AddrRef>> addr_buckets;
  };

  void execute_superstep(SuperstepProgram& program, RunResult& result);
  void merge_collect(std::size_t shard_index, std::size_t shard_count);
  void merge_deliver(std::size_t shard_index, std::size_t shard_count);
  void validate_slots(const ProcContext& ctx) const;
  /// Contiguous [begin, end) processor range owned by a shard.
  [[nodiscard]] std::pair<std::size_t, std::size_t> proc_range(
      std::size_t shard_index, std::size_t shard_count) const noexcept;
  [[nodiscard]] std::pair<Addr, Addr> addr_range(
      std::size_t shard_index, std::size_t shard_count) const noexcept;

  const CostModel& model_;
  MachineOptions options_;
  std::uint32_t p_;
  util::RngStreams streams_;
  ThreadPool pool_;
  std::uint64_t superstep_ = 0;
  obs::TraceSink* sink_ = nullptr;  ///< resolved per run()
  std::uint64_t sink_run_ = 0;      ///< the sink's id for the current run
  replay::StatsTape* tape_ = nullptr;  ///< capture target, resolved per run()
  std::vector<Word> shared_;
  std::vector<ProcContext> contexts_;
  // Persistent double-buffered per-processor delivery queues: contexts read
  // spans over inboxes_/read_results_ while the merge refills the next_*
  // buffers in place (capacity reused), then the pairs are swapped.
  std::vector<std::vector<Message>> inboxes_;
  std::vector<std::vector<Message>> next_inboxes_;
  std::vector<std::vector<Word>> read_results_;
  std::vector<std::vector<Word>> next_read_results_;
  std::vector<std::uint64_t> recv_flits_;
  std::vector<MergeShard> shards_;
  // Flat epoch-stamped contention tallies, one cell per shared-memory
  // address (replaces a per-superstep hash map).  A cell whose stamp is not
  // the current epoch counts as zero; touched cells are tracked per shard.
  std::vector<std::uint32_t> cont_reads_;
  std::vector<std::uint32_t> cont_writes_;
  std::vector<std::uint64_t> cont_stamp_;
  std::uint64_t cont_epoch_ = 0;
  SuperstepStats stats_;  ///< reused across supersteps (slot_counts capacity)
  EngineCounters counters_;
  // One byte per processor (not vector<bool>: the step phase writes these
  // concurrently, and bit-packing would race on the shared words).
  std::vector<unsigned char> active_;
};

}  // namespace pbw::engine
