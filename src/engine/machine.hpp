// The bulk-synchronous machine simulator.
//
// Executes a SuperstepProgram on p logical processors against a pluggable
// CostModel (BSP(g), BSP(m), QSM(g), QSM(m), self-scheduling BSP(m)),
// charging each superstep exactly what the model's definition in Section 2
// of the paper prescribes.  Message routing and shared memory semantics are
// implemented here; the model only maps SuperstepStats to time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/cost.hpp"
#include "engine/proc_context.hpp"
#include "engine/program.hpp"
#include "engine/thread_pool.hpp"
#include "engine/types.hpp"
#include "util/rng.hpp"

namespace pbw::engine {

struct MachineOptions {
  std::uint64_t seed = 1;
  /// Host threads used to step processors; 0 = hardware concurrency.
  std::size_t threads = 1;
  /// Validate model contracts (slot collisions, QSM read/write races).
  bool validate = true;
  /// Record a per-superstep trace in the RunResult.
  bool trace = false;
  /// Abort (throw) if the program exceeds this many supersteps.
  std::uint64_t max_supersteps = 1u << 20;
};

/// One traced superstep: the gathered stats and the charge.
struct SuperstepRecord {
  SuperstepStats stats;
  SimTime cost = 0.0;
};

struct RunResult {
  SimTime total_time = 0.0;
  std::uint64_t supersteps = 0;
  std::uint64_t total_messages = 0;  ///< messages (not flits) delivered
  std::uint64_t total_flits = 0;
  std::uint64_t total_reads = 0;
  std::uint64_t total_writes = 0;
  std::vector<SuperstepRecord> trace;  ///< populated iff options.trace
};

class Machine {
 public:
  /// The model is borrowed and must outlive the machine.
  Machine(const CostModel& model, MachineOptions options = {});

  [[nodiscard]] std::uint32_t p() const noexcept { return p_; }
  [[nodiscard]] const CostModel& model() const noexcept { return model_; }
  [[nodiscard]] const MachineOptions& options() const noexcept { return options_; }

  /// QSM shared memory.  Programs size it in setup(); addresses must stay
  /// in range or the run throws.
  void resize_shared(std::size_t cells, Word init = 0);
  [[nodiscard]] std::size_t shared_size() const noexcept { return shared_.size(); }
  [[nodiscard]] Word shared_at(Addr addr) const { return shared_.at(addr); }
  void poke_shared(Addr addr, Word value) { shared_.at(addr) = value; }

  /// Runs the program to completion and returns the accumulated result.
  RunResult run(SuperstepProgram& program);

 private:
  void execute_superstep(SuperstepProgram& program, RunResult& result);
  void validate_slots(const ProcContext& ctx) const;

  const CostModel& model_;
  MachineOptions options_;
  std::uint32_t p_;
  util::RngStreams streams_;
  ThreadPool pool_;
  std::uint64_t superstep_ = 0;
  std::vector<Word> shared_;
  std::vector<ProcContext> contexts_;
  // Double-buffered per-processor delivery state.
  std::vector<std::vector<Message>> inboxes_;
  std::vector<std::vector<Word>> read_results_;
  std::vector<bool> active_;
};

}  // namespace pbw::engine
