#include "engine/machine.hpp"

#include <algorithm>
#include <unordered_map>

#include "engine/error.hpp"

namespace pbw::engine {
namespace {

// A superstep occupying more slots than this is almost certainly a program
// bug (a wild explicit slot); the cap bounds slot_counts memory.
constexpr Slot kMaxSlot = 1u << 24;

}  // namespace

void ProcContext::send(ProcId dst, Word payload, Slot slot, std::uint32_t length,
                       std::uint64_t tag) {
  if (length == 0) throw SimulationError("send: zero-length message");
  if (dst >= p_) throw SimulationError("send: destination out of range");
  if (slot == 0) slot = next_auto_slot_;
  next_auto_slot_ = std::max(next_auto_slot_, slot + length);
  if (slot + length > kMaxSlot) throw SimulationError("send: slot out of bounds");
  outbox_.push_back(Message{id_, dst, payload, tag, length, slot});
}

void ProcContext::read(Addr addr, Slot slot) {
  if (slot == 0) slot = next_auto_slot_;
  next_auto_slot_ = std::max(next_auto_slot_, slot + 1);
  if (slot >= kMaxSlot) throw SimulationError("read: slot out of bounds");
  read_reqs_.push_back(ReadReq{addr, slot});
}

void ProcContext::write(Addr addr, Word value, Slot slot) {
  if (slot == 0) slot = next_auto_slot_;
  next_auto_slot_ = std::max(next_auto_slot_, slot + 1);
  if (slot >= kMaxSlot) throw SimulationError("write: slot out of bounds");
  write_reqs_.push_back(WriteReq{addr, value, slot});
}

Machine::Machine(const CostModel& model, MachineOptions options)
    : model_(model),
      options_(options),
      p_(model.processors()),
      streams_(options.seed),
      pool_(options.threads),
      contexts_(p_),
      inboxes_(p_),
      read_results_(p_),
      active_(p_, true) {
  if (p_ == 0) throw SimulationError("Machine: model has zero processors");
}

void Machine::resize_shared(std::size_t cells, Word init) {
  shared_.assign(cells, init);
}

RunResult Machine::run(SuperstepProgram& program) {
  RunResult result;
  superstep_ = 0;
  for (auto& inbox : inboxes_) inbox.clear();
  for (auto& reads : read_results_) reads.clear();
  program.setup(*this);
  bool any_active = true;
  while (any_active) {
    if (superstep_ >= options_.max_supersteps) {
      throw SimulationError("Machine: superstep limit exceeded");
    }
    execute_superstep(program, result);
    ++superstep_;
    ++result.supersteps;
    any_active = std::any_of(active_.begin(), active_.end(), [](bool a) { return a; });
  }
  return result;
}

void Machine::validate_slots(const ProcContext& ctx) const {
  // Each processor may inject at most one flit per slot (BSP(m)/QSM(m)
  // definition: "each processor may initiate at most one message send" per
  // step).  Collect the occupied slot intervals and check for overlap.
  std::vector<std::pair<Slot, Slot>> intervals;  // [begin, end)
  intervals.reserve(ctx.outbox_.size() + ctx.read_reqs_.size() +
                    ctx.write_reqs_.size());
  for (const auto& msg : ctx.outbox_) {
    intervals.emplace_back(msg.slot, msg.slot + msg.length);
  }
  for (const auto& req : ctx.read_reqs_) {
    intervals.emplace_back(req.slot, req.slot + 1);
  }
  for (const auto& req : ctx.write_reqs_) {
    intervals.emplace_back(req.slot, req.slot + 1);
  }
  std::sort(intervals.begin(), intervals.end());
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].first < intervals[i - 1].second) {
      throw SimulationError("processor " + std::to_string(ctx.id_) +
                            " injected two flits into slot " +
                            std::to_string(intervals[i].first));
    }
  }
}

void Machine::execute_superstep(SuperstepProgram& program, RunResult& result) {
  // Phase 1: step all processors into private buffers (parallel).
  pool_.parallel_for(p_, [&](std::size_t i) {
    ProcContext& ctx = contexts_[i];
    ctx.id_ = static_cast<ProcId>(i);
    ctx.p_ = p_;
    ctx.superstep_ = superstep_;
    ctx.work_ = 0.0;
    ctx.next_auto_slot_ = 1;
    ctx.rng_ = streams_.stream(0x70726F63ULL, i, superstep_);
    ctx.inbox_ = inboxes_[i];
    ctx.read_results_ = read_results_[i];
    ctx.outbox_.clear();
    ctx.read_reqs_.clear();
    ctx.write_reqs_.clear();
    active_[i] = program.step(ctx);
    if (options_.validate) validate_slots(ctx);
    // Deliver in slot order within a source so inbox order is
    // (source, slot, issue order).
    std::stable_sort(ctx.outbox_.begin(), ctx.outbox_.end(),
                     [](const Message& a, const Message& b) { return a.slot < b.slot; });
  });

  // Phase 2: merge (serial, deterministic by processor order).
  SuperstepStats stats;
  std::vector<std::vector<Message>> next_inboxes(p_);
  std::vector<std::vector<Word>> next_reads(p_);
  std::vector<std::uint64_t> recv_flits(p_, 0);
  std::unordered_map<Addr, std::pair<std::uint64_t, std::uint64_t>> contention;

  Slot max_slot_end = 0;  // exclusive
  for (const ProcContext& ctx : contexts_) {
    for (const auto& msg : ctx.outbox_) {
      max_slot_end = std::max(max_slot_end, msg.slot + msg.length);
    }
    for (const auto& req : ctx.read_reqs_) {
      max_slot_end = std::max(max_slot_end, req.slot + 1);
    }
    for (const auto& req : ctx.write_reqs_) {
      max_slot_end = std::max(max_slot_end, req.slot + 1);
    }
  }
  stats.slot_counts.assign(max_slot_end == 0 ? 0 : max_slot_end - 1, 0);

  for (ProcContext& ctx : contexts_) {
    stats.max_work = std::max(stats.max_work, ctx.work_);

    std::uint64_t sent = 0;
    for (const auto& msg : ctx.outbox_) {
      sent += msg.length;
      recv_flits[msg.dst] += msg.length;
      for (std::uint32_t k = 0; k < msg.length; ++k) {
        ++stats.slot_counts[msg.slot - 1 + k];
      }
      next_inboxes[msg.dst].push_back(msg);
      ++result.total_messages;
      result.total_flits += msg.length;
    }
    stats.max_sent = std::max(stats.max_sent, sent);
    stats.total_flits += sent;

    next_reads[ctx.id_].reserve(ctx.read_reqs_.size());
    for (const auto& req : ctx.read_reqs_) {
      if (req.addr >= shared_.size()) {
        throw SimulationError("read: address " + std::to_string(req.addr) +
                              " out of range");
      }
      next_reads[ctx.id_].push_back(shared_[req.addr]);
      ++contention[req.addr].first;
      ++stats.slot_counts[req.slot - 1];
      ++result.total_reads;
    }
    for (const auto& req : ctx.write_reqs_) {
      if (req.addr >= shared_.size()) {
        throw SimulationError("write: address " + std::to_string(req.addr) +
                              " out of range");
      }
      ++contention[req.addr].second;
      ++stats.slot_counts[req.slot - 1];
      ++result.total_writes;
    }
    stats.max_reads = std::max(stats.max_reads,
                               static_cast<std::uint64_t>(ctx.read_reqs_.size()));
    stats.max_writes = std::max(stats.max_writes,
                                static_cast<std::uint64_t>(ctx.write_reqs_.size()));
    stats.total_requests += ctx.read_reqs_.size() + ctx.write_reqs_.size();
  }

  for (const auto& [addr, counts] : contention) {
    if (options_.validate && counts.first > 0 && counts.second > 0) {
      throw SimulationError("QSM race: address " + std::to_string(addr) +
                            " both read and written in one superstep");
    }
    stats.kappa = std::max({stats.kappa, counts.first, counts.second});
  }

  // Apply writes after all reads observed the pre-superstep state.  The
  // Arbitrary concurrent-write rule is made deterministic: ascending
  // processor order means the highest-ranked writer wins.
  for (ProcContext& ctx : contexts_) {
    for (const auto& req : ctx.write_reqs_) shared_[req.addr] = req.value;
  }

  for (std::uint64_t flits : recv_flits) {
    stats.max_received = std::max(stats.max_received, flits);
  }

  const SimTime cost = model_.superstep_cost(stats);
  result.total_time += cost;
  if (options_.trace) result.trace.push_back(SuperstepRecord{stats, cost});

  inboxes_ = std::move(next_inboxes);
  read_results_ = std::move(next_reads);
}

}  // namespace pbw::engine
