#include "engine/machine.hpp"

#include <algorithm>
#include <chrono>

#include "engine/error.hpp"
#include "obs/trace.hpp"

namespace pbw::engine {
namespace {

// A superstep occupying more slots than this is almost certainly a program
// bug (a wild explicit slot); the cap bounds slot_counts memory.
constexpr Slot kMaxSlot = 1u << 24;

[[nodiscard]] std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point from,
                                       std::chrono::steady_clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

}  // namespace

void ProcContext::send(ProcId dst, Word payload, Slot slot, std::uint32_t length,
                       std::uint64_t tag) {
  if (length == 0) throw SimulationError("send: zero-length message");
  if (dst >= p_) throw SimulationError("send: destination out of range");
  if (slot == 0) slot = next_auto_slot_;
  next_auto_slot_ = std::max(next_auto_slot_, slot + length);
  if (slot + length > kMaxSlot) throw SimulationError("send: slot out of bounds");
  outbox_.push_back(Message{id_, dst, payload, tag, length, slot});
}

void ProcContext::read(Addr addr, Slot slot) {
  if (slot == 0) slot = next_auto_slot_;
  next_auto_slot_ = std::max(next_auto_slot_, slot + 1);
  if (slot >= kMaxSlot) throw SimulationError("read: slot out of bounds");
  read_reqs_.push_back(ReadReq{addr, slot});
}

void ProcContext::write(Addr addr, Word value, Slot slot) {
  if (slot == 0) slot = next_auto_slot_;
  next_auto_slot_ = std::max(next_auto_slot_, slot + 1);
  if (slot >= kMaxSlot) throw SimulationError("write: slot out of bounds");
  write_reqs_.push_back(WriteReq{addr, value, slot});
}

Machine::Machine(const CostModel& model, MachineOptions options)
    : model_(model),
      options_(options),
      p_(model.processors()),
      streams_(options.seed),
      pool_(options.threads),
      contexts_(p_),
      inboxes_(p_),
      next_inboxes_(p_),
      read_results_(p_),
      next_read_results_(p_),
      recv_flits_(p_, 0),
      active_(p_, 1) {
  if (p_ == 0) throw SimulationError("Machine: model has zero processors");
  shards_.resize(pool_.size());
}

void Machine::resize_shared(std::size_t cells, Word init) {
  shared_.assign(cells, init);
  cont_reads_.assign(cells, 0);
  cont_writes_.assign(cells, 0);
  cont_stamp_.assign(cells, 0);
  cont_epoch_ = 0;
}

RunResult Machine::run(SuperstepProgram& program) {
  RunResult result;
  superstep_ = 0;
  counters_ = EngineCounters{};
  // An explicit per-machine sink wins; otherwise the thread-local /
  // process-wide default (see obs/trace.hpp).  Resolved once per run so
  // the per-superstep cost of disabled tracing is one null check.
  sink_ = options_.trace_sink != nullptr ? options_.trace_sink
                                         : obs::current_sink();
  for (auto& inbox : inboxes_) inbox.clear();
  for (auto& inbox : next_inboxes_) inbox.clear();
  for (auto& reads : read_results_) reads.clear();
  for (auto& reads : next_read_results_) reads.clear();
  program.setup(*this);
  if (sink_ != nullptr) {
    obs::RunInfo info;
    info.model = model_.name();
    info.p = p_;
    info.seed = options_.seed;
    sink_run_ = sink_->begin_run(info);
  }
  bool any_active = true;
  try {
    while (any_active) {
      if (superstep_ >= options_.max_supersteps) {
        throw SimulationError("Machine: superstep limit exceeded");
      }
      execute_superstep(program, result);
      ++superstep_;
      ++result.supersteps;
      any_active = std::any_of(active_.begin(), active_.end(),
                               [](unsigned char a) { return a != 0; });
    }
  } catch (...) {
    // Close the trace run so exporters still group the partial records.
    if (sink_ != nullptr) {
      sink_->end_run(sink_run_,
                     obs::RunSummary{result.supersteps, result.total_time});
      sink_ = nullptr;
    }
    throw;
  }
  if (sink_ != nullptr) {
    sink_->end_run(sink_run_,
                   obs::RunSummary{result.supersteps, result.total_time});
    sink_ = nullptr;
  }
  return result;
}

void Machine::validate_slots(const ProcContext& ctx) const {
  // Each processor may inject at most one flit per slot (BSP(m)/QSM(m)
  // definition: "each processor may initiate at most one message send" per
  // step).  Collect the occupied slot intervals and check for overlap.
  std::vector<std::pair<Slot, Slot>> intervals;  // [begin, end)
  intervals.reserve(ctx.outbox_.size() + ctx.read_reqs_.size() +
                    ctx.write_reqs_.size());
  for (const auto& msg : ctx.outbox_) {
    intervals.emplace_back(msg.slot, msg.slot_end());
  }
  for (const auto& req : ctx.read_reqs_) {
    intervals.emplace_back(req.slot, req.slot + 1);
  }
  for (const auto& req : ctx.write_reqs_) {
    intervals.emplace_back(req.slot, req.slot + 1);
  }
  std::sort(intervals.begin(), intervals.end());
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].first < intervals[i - 1].second) {
      throw SimulationError("processor " + std::to_string(ctx.id_) +
                            " injected two flits into slot " +
                            std::to_string(intervals[i].first));
    }
  }
}

void Machine::merge_shard_work(std::size_t shard_index, std::size_t shard_count) {
  MergeShard& sh = shards_[shard_index];
  sh.max_work = 0.0;
  sh.max_sent = sh.max_received = sh.total_flits = 0;
  sh.max_reads = sh.max_writes = sh.total_requests = 0;
  sh.messages = sh.reads = sh.writes = 0;
  sh.kappa = 0;
  sh.inbox_grows = sh.read_buffer_grows = 0;
  sh.max_slot_end = 0;
  sh.has_race = false;
  sh.race_addr = 0;

  // Contiguous processor range owned by this shard, used both as the
  // source range (sweeps A/A2) and the destination range (sweep B).
  const std::size_t proc_chunk = (p_ + shard_count - 1) / shard_count;
  const std::size_t s0 = std::min(shard_index * proc_chunk,
                                  static_cast<std::size_t>(p_));
  const std::size_t s1 = std::min(s0 + proc_chunk, static_cast<std::size_t>(p_));

  // Sweep A: per-source statistics, address validation, and read-result
  // delivery into this shard's persistent buffers.
  for (std::size_t i = s0; i < s1; ++i) {
    ProcContext& ctx = contexts_[i];
    sh.max_work = std::max(sh.max_work, ctx.work_);

    std::uint64_t sent = 0;
    for (const auto& msg : ctx.outbox_) {
      sent += msg.length;
      sh.max_slot_end = std::max(sh.max_slot_end, msg.slot_end());
    }
    sh.messages += ctx.outbox_.size();
    sh.total_flits += sent;
    sh.max_sent = std::max(sh.max_sent, sent);

    auto& delivered = next_read_results_[i];
    const std::size_t cap = delivered.capacity();
    delivered.clear();
    delivered.reserve(ctx.read_reqs_.size());
    for (const auto& req : ctx.read_reqs_) {
      if (req.addr >= shared_.size()) {
        throw SimulationError("read: address " + std::to_string(req.addr) +
                              " out of range");
      }
      delivered.push_back(shared_[req.addr]);
      sh.max_slot_end = std::max(sh.max_slot_end, req.slot + 1);
    }
    if (delivered.capacity() != cap) ++sh.read_buffer_grows;
    for (const auto& req : ctx.write_reqs_) {
      if (req.addr >= shared_.size()) {
        throw SimulationError("write: address " + std::to_string(req.addr) +
                              " out of range");
      }
      sh.max_slot_end = std::max(sh.max_slot_end, req.slot + 1);
    }
    sh.max_reads = std::max(sh.max_reads,
                            static_cast<std::uint64_t>(ctx.read_reqs_.size()));
    sh.max_writes = std::max(sh.max_writes,
                             static_cast<std::uint64_t>(ctx.write_reqs_.size()));
    sh.reads += ctx.read_reqs_.size();
    sh.writes += ctx.write_reqs_.size();
    sh.total_requests += ctx.read_reqs_.size() + ctx.write_reqs_.size();
  }

  // Sweep A2: slot occupancy m_t contributed by this shard's sources.
  sh.slot_counts.assign(sh.max_slot_end == 0 ? 0 : sh.max_slot_end - 1, 0);
  for (std::size_t i = s0; i < s1; ++i) {
    const ProcContext& ctx = contexts_[i];
    for (const auto& msg : ctx.outbox_) {
      for (std::uint32_t k = 0; k < msg.length; ++k) {
        ++sh.slot_counts[msg.slot - 1 + k];
      }
    }
    for (const auto& req : ctx.read_reqs_) ++sh.slot_counts[req.slot - 1];
    for (const auto& req : ctx.write_reqs_) ++sh.slot_counts[req.slot - 1];
  }

  // Sweep B: route messages into this shard's destination queues, scanning
  // sources in ascending order so each inbox stays ordered by (source,
  // slot, issue order).  Queues keep their capacity across supersteps.
  if (s0 < s1) {
    sh.caps.resize(s1 - s0);
    for (std::size_t d = s0; d < s1; ++d) {
      sh.caps[d - s0] = next_inboxes_[d].capacity();
      next_inboxes_[d].clear();
      recv_flits_[d] = 0;
    }
    for (const ProcContext& src : contexts_) {
      for (const auto& msg : src.outbox_) {
        if (msg.dst >= s0 && msg.dst < s1) {
          next_inboxes_[msg.dst].push_back(msg);
          recv_flits_[msg.dst] += msg.length;
        }
      }
    }
    for (std::size_t d = s0; d < s1; ++d) {
      if (next_inboxes_[d].capacity() != sh.caps[d - s0]) ++sh.inbox_grows;
      sh.max_received = std::max(sh.max_received, recv_flits_[d]);
    }
  }

  // Sweep C: contention tally over this shard's address range via the flat
  // epoch-stamped counters (out-of-range addresses simply never match a
  // shard's range; sweep A raises the error).
  if (!shared_.empty()) {
    const std::size_t addr_chunk = (shared_.size() + shard_count - 1) / shard_count;
    const Addr a0 = std::min(shard_index * addr_chunk, shared_.size());
    const Addr a1 = std::min(a0 + addr_chunk, shared_.size());
    sh.touched.clear();
    if (a0 < a1) {
      for (const ProcContext& src : contexts_) {
        for (const auto& req : src.read_reqs_) {
          if (req.addr < a0 || req.addr >= a1) continue;
          if (cont_stamp_[req.addr] != cont_epoch_) {
            cont_stamp_[req.addr] = cont_epoch_;
            cont_reads_[req.addr] = 0;
            cont_writes_[req.addr] = 0;
            sh.touched.push_back(req.addr);
          }
          ++cont_reads_[req.addr];
        }
        for (const auto& req : src.write_reqs_) {
          if (req.addr < a0 || req.addr >= a1) continue;
          if (cont_stamp_[req.addr] != cont_epoch_) {
            cont_stamp_[req.addr] = cont_epoch_;
            cont_reads_[req.addr] = 0;
            cont_writes_[req.addr] = 0;
            sh.touched.push_back(req.addr);
          }
          ++cont_writes_[req.addr];
        }
      }
    }
    for (const Addr addr : sh.touched) {
      const std::uint64_t reads = cont_reads_[addr];
      const std::uint64_t writes = cont_writes_[addr];
      if (options_.validate && reads > 0 && writes > 0 && !sh.has_race) {
        sh.has_race = true;
        sh.race_addr = addr;
      }
      sh.kappa = std::max({sh.kappa, reads, writes});
    }
  }
}

void Machine::execute_superstep(SuperstepProgram& program, RunResult& result) {
  std::chrono::steady_clock::time_point step_start;
  if (options_.profile) step_start = std::chrono::steady_clock::now();

  // Phase 1: step all processors into private buffers (parallel).
  pool_.parallel_for(p_, [&](std::size_t i) {
    ProcContext& ctx = contexts_[i];
    ctx.id_ = static_cast<ProcId>(i);
    ctx.p_ = p_;
    ctx.superstep_ = superstep_;
    ctx.work_ = 0.0;
    ctx.next_auto_slot_ = 1;
    ctx.rng_ = streams_.stream(0x70726F63ULL, i, superstep_);
    ctx.inbox_ = std::span<const Message>(inboxes_[i]);
    ctx.read_results_ = std::span<const Word>(read_results_[i]);
    ctx.outbox_.clear();
    ctx.read_reqs_.clear();
    ctx.write_reqs_.clear();
    active_[i] = program.step(ctx) ? 1 : 0;
    if (options_.validate) validate_slots(ctx);
    // Deliver in slot order within a source so inbox order is
    // (source, slot, issue order).
    std::stable_sort(ctx.outbox_.begin(), ctx.outbox_.end(),
                     [](const Message& a, const Message& b) { return a.slot < b.slot; });
  });

  std::chrono::steady_clock::time_point merge_start;
  std::uint64_t step_ns = 0;
  if (options_.profile) {
    merge_start = std::chrono::steady_clock::now();
    step_ns = elapsed_ns(step_start, merge_start);
    counters_.step_ns += step_ns;
  }

  // Phase 2: sharded parallel merge.  Every shard owns disjoint slices of
  // the destination queues, the recv/read buffers, and the contention
  // table, so the phase is race-free; the caller reduces the per-shard
  // accumulators in ascending shard order below.
  ++cont_epoch_;
  const std::size_t shard_count = shards_.size();
  pool_.parallel_for(shard_count,
                     [&](std::size_t w) { merge_shard_work(w, shard_count); });

  SuperstepStats& stats = stats_;
  stats.max_work = 0.0;
  stats.max_sent = stats.max_received = stats.total_flits = 0;
  stats.max_reads = stats.max_writes = stats.kappa = stats.total_requests = 0;

  Slot max_slot_end = 0;  // exclusive
  for (const MergeShard& sh : shards_) {
    max_slot_end = std::max(max_slot_end, sh.max_slot_end);
  }
  stats.slot_counts.assign(max_slot_end == 0 ? 0 : max_slot_end - 1, 0);

  const MergeShard* race_shard = nullptr;
  for (const MergeShard& sh : shards_) {
    stats.max_work = std::max(stats.max_work, sh.max_work);
    stats.max_sent = std::max(stats.max_sent, sh.max_sent);
    stats.max_received = std::max(stats.max_received, sh.max_received);
    stats.total_flits += sh.total_flits;
    stats.max_reads = std::max(stats.max_reads, sh.max_reads);
    stats.max_writes = std::max(stats.max_writes, sh.max_writes);
    stats.total_requests += sh.total_requests;
    stats.kappa = std::max(stats.kappa, sh.kappa);
    for (std::size_t t = 0; t < sh.slot_counts.size(); ++t) {
      stats.slot_counts[t] += sh.slot_counts[t];
    }
    result.total_messages += sh.messages;
    result.total_flits += sh.total_flits;
    result.total_reads += sh.reads;
    result.total_writes += sh.writes;
    counters_.merge_flits += sh.total_flits;
    counters_.merge_requests += sh.total_requests;
    counters_.inbox_grows += sh.inbox_grows;
    counters_.read_buffer_grows += sh.read_buffer_grows;
    if (race_shard == nullptr && sh.has_race) race_shard = &sh;
  }
  if (race_shard != nullptr) {
    throw SimulationError("QSM race: address " +
                          std::to_string(race_shard->race_addr) +
                          " both read and written in one superstep");
  }

  // Apply writes after all reads observed the pre-superstep state.  The
  // Arbitrary concurrent-write rule is made deterministic: ascending
  // processor order means the highest-ranked writer wins.
  for (ProcContext& ctx : contexts_) {
    for (const auto& req : ctx.write_reqs_) shared_[req.addr] = req.value;
  }

  const SimTime cost = model_.superstep_cost(stats);
  result.total_time += cost;
  if (options_.trace) result.trace.push_back(SuperstepRecord{stats, cost});

  std::swap(inboxes_, next_inboxes_);
  std::swap(read_results_, next_read_results_);

  std::uint64_t merge_ns = 0;
  if (options_.profile) {
    merge_ns = elapsed_ns(merge_start, std::chrono::steady_clock::now());
    counters_.merge_ns += merge_ns;
  }

  if (sink_ != nullptr) {
    const CostComponents comps = model_.cost_components(stats);
    obs::SuperstepTraceRecord rec;
    rec.superstep = superstep_;
    rec.cost = cost;
    rec.w = comps.w;
    rec.gh = comps.gh;
    rec.h = comps.h;
    rec.cm = comps.cm;
    rec.kappa = comps.kappa;
    rec.L = comps.L;
    rec.dominant = comps.dominant();
    rec.step_ns = step_ns;
    rec.merge_ns = merge_ns;
    sink_->record(sink_run_, rec);
  }
}

}  // namespace pbw::engine
