#include "engine/machine.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstring>

#include "engine/error.hpp"
#include "obs/telemetry/span.hpp"
#include "obs/trace.hpp"
#include "replay/recorder.hpp"

namespace pbw::engine {
namespace {

// A superstep occupying more slots than this is almost certainly a program
// bug (a wild explicit slot); the cap bounds slot_counts memory.
constexpr Slot kMaxSlot = 1u << 24;

std::atomic<bool> g_profile_default{false};

}  // namespace

void set_profile_default(bool on) noexcept {
  g_profile_default.store(on, std::memory_order_relaxed);
}

bool profile_default() noexcept {
  return g_profile_default.load(std::memory_order_relaxed);
}

void ProcContext::send(ProcId dst, Word payload, Slot slot, std::uint32_t length,
                       std::uint64_t tag) {
  if (length == 0) throw SimulationError("send: zero-length message");
  if (dst >= p_) throw SimulationError("send: destination out of range");
  if (slot == 0) slot = next_auto_slot_;
  next_auto_slot_ = std::max(next_auto_slot_, slot + length);
  if (slot + length > kMaxSlot) throw SimulationError("send: slot out of bounds");
  outbox_.push_back(Message{id_, dst, payload, tag, length, slot});
}

void ProcContext::read(Addr addr, Slot slot) {
  if (slot == 0) slot = next_auto_slot_;
  next_auto_slot_ = std::max(next_auto_slot_, slot + 1);
  if (slot >= kMaxSlot) throw SimulationError("read: slot out of bounds");
  read_reqs_.push_back(ReadReq{addr, slot});
}

void ProcContext::write(Addr addr, Word value, Slot slot) {
  if (slot == 0) slot = next_auto_slot_;
  next_auto_slot_ = std::max(next_auto_slot_, slot + 1);
  if (slot >= kMaxSlot) throw SimulationError("write: slot out of bounds");
  write_reqs_.push_back(WriteReq{addr, value, slot});
}

Machine::Machine(const CostModel& model, MachineOptions options)
    : model_(model),
      options_(options),
      p_(model.processors()),
      streams_(options.seed),
      pool_(options.threads),
      contexts_(p_),
      inboxes_(p_),
      next_inboxes_(p_),
      read_results_(p_),
      next_read_results_(p_),
      recv_flits_(p_, 0),
      active_(p_, 1) {
  if (p_ == 0) throw SimulationError("Machine: model has zero processors");
  // The process-wide profile default reaches Machines constructed deep
  // inside scenarios (pbw-campaign --profile) without plumbing a flag
  // through every call site.
  options_.profile = options_.profile || profile_default();
  shards_.resize(pool_.size());
}

void Machine::resize_shared(std::size_t cells, Word init) {
  shared_.assign(cells, init);
  cont_reads_.assign(cells, 0);
  cont_writes_.assign(cells, 0);
  cont_stamp_.assign(cells, 0);
  cont_epoch_ = 0;
}

RunResult Machine::run(SuperstepProgram& program) {
  RunResult result;
  superstep_ = 0;
  counters_ = EngineCounters{};
  // An explicit per-machine sink wins; otherwise the thread-local /
  // process-wide default (see obs/trace.hpp).  Resolved once per run so
  // the per-superstep cost of disabled tracing is one null check.
  sink_ = options_.trace_sink != nullptr ? options_.trace_sink
                                         : obs::current_sink();
  // Same resolution chain for stats-tape capture: explicit option, then
  // thread-local recorder, else off.  One tape per run.
  replay::TapeRecorder* tape_recorder = options_.tape_recorder != nullptr
                                            ? options_.tape_recorder
                                            : replay::current_tape_recorder();
  tape_ = nullptr;
  if (tape_recorder != nullptr) {
    tape_ = &tape_recorder->begin_tape(p_, options_.seed);
    tape_->captured_model = model_.name();
  }
  for (auto& inbox : inboxes_) inbox.clear();
  for (auto& inbox : next_inboxes_) inbox.clear();
  for (auto& reads : read_results_) reads.clear();
  for (auto& reads : next_read_results_) reads.clear();
  program.setup(*this);
  if (sink_ != nullptr) {
    obs::RunInfo info;
    info.model = model_.name();
    info.p = p_;
    info.seed = options_.seed;
    sink_run_ = sink_->begin_run(info);
  }
  bool any_active = true;
  try {
    while (any_active) {
      if (superstep_ >= options_.max_supersteps) {
        throw SimulationError("Machine: superstep limit exceeded");
      }
      execute_superstep(program, result);
      ++superstep_;
      ++result.supersteps;
      any_active = std::any_of(active_.begin(), active_.end(),
                               [](unsigned char a) { return a != 0; });
    }
  } catch (...) {
    // Close the trace run so exporters still group the partial records.
    if (sink_ != nullptr) {
      sink_->end_run(sink_run_,
                     obs::RunSummary{result.supersteps, result.total_time});
      sink_ = nullptr;
    }
    throw;
  }
  if (sink_ != nullptr) {
    sink_->end_run(sink_run_,
                   obs::RunSummary{result.supersteps, result.total_time});
    sink_ = nullptr;
  }
  if (tape_ != nullptr) {
    tape_->total_messages = result.total_messages;
    tape_->total_flits = result.total_flits;
    tape_->total_reads = result.total_reads;
    tape_->total_writes = result.total_writes;
    tape_ = nullptr;
  }
  return result;
}

void Machine::validate_slots(const ProcContext& ctx) const {
  // Each processor may inject at most one flit per slot (BSP(m)/QSM(m)
  // definition: "each processor may initiate at most one message send" per
  // step).  Collect the occupied slot intervals and check for overlap.
  std::vector<std::pair<Slot, Slot>> intervals;  // [begin, end)
  intervals.reserve(ctx.outbox_.size() + ctx.read_reqs_.size() +
                    ctx.write_reqs_.size());
  for (const auto& msg : ctx.outbox_) {
    intervals.emplace_back(msg.slot, msg.slot_end());
  }
  for (const auto& req : ctx.read_reqs_) {
    intervals.emplace_back(req.slot, req.slot + 1);
  }
  for (const auto& req : ctx.write_reqs_) {
    intervals.emplace_back(req.slot, req.slot + 1);
  }
  std::sort(intervals.begin(), intervals.end());
  for (std::size_t i = 1; i < intervals.size(); ++i) {
    if (intervals[i].first < intervals[i - 1].second) {
      throw SimulationError("processor " + std::to_string(ctx.id_) +
                            " injected two flits into slot " +
                            std::to_string(intervals[i].first));
    }
  }
}

std::pair<std::size_t, std::size_t> Machine::proc_range(
    std::size_t shard_index, std::size_t shard_count) const noexcept {
  const std::size_t chunk = (p_ + shard_count - 1) / shard_count;
  const std::size_t begin =
      std::min(shard_index * chunk, static_cast<std::size_t>(p_));
  return {begin, std::min(begin + chunk, static_cast<std::size_t>(p_))};
}

std::pair<Addr, Addr> Machine::addr_range(std::size_t shard_index,
                                          std::size_t shard_count) const noexcept {
  const std::size_t chunk = (shared_.size() + shard_count - 1) / shard_count;
  const Addr begin = std::min(shard_index * chunk, shared_.size());
  return {begin, std::min(begin + chunk, shared_.size())};
}

void Machine::merge_collect(std::size_t shard_index, std::size_t shard_count) {
  MergeShard& sh = shards_[shard_index];
  sh.max_work = 0.0;
  sh.max_sent = sh.max_received = sh.total_flits = 0;
  sh.max_reads = sh.max_writes = sh.total_requests = 0;
  sh.messages = sh.reads = sh.writes = 0;
  sh.kappa = 0;
  sh.inbox_grows = sh.read_buffer_grows = 0;
  sh.max_slot_end = 0;
  sh.has_race = false;
  sh.race_addr = 0;
  sh.msg_buckets.resize(shard_count);
  for (auto& bucket : sh.msg_buckets) bucket.clear();
  sh.addr_buckets.resize(shard_count);
  for (auto& bucket : sh.addr_buckets) bucket.clear();

  // This shard's contiguous source range (sweeps A/A2 and bucketing).
  const auto [s0, s1] = proc_range(shard_index, shard_count);
  const std::size_t proc_chunk = (p_ + shard_count - 1) / shard_count;
  const std::size_t addr_chunk =
      shared_.empty() ? 1 : (shared_.size() + shard_count - 1) / shard_count;

  // Sweep A: per-source statistics, address validation, read-result
  // delivery into this shard's persistent buffers, and bucketing of each
  // message/request by the shard that will consume it in the deliver
  // phase.  Requests land in one tagged bucket in issue order (reads of a
  // source, then its writes) so the consumer's tally order matches a
  // single ascending scan over sources.
  for (std::size_t i = s0; i < s1; ++i) {
    ProcContext& ctx = contexts_[i];
    sh.max_work = std::max(sh.max_work, ctx.work_);

    std::uint64_t sent = 0;
    for (const auto& msg : ctx.outbox_) {
      sent += msg.length;
      sh.max_slot_end = std::max(sh.max_slot_end, msg.slot_end());
      sh.msg_buckets[msg.dst / proc_chunk].push_back(&msg);
    }
    sh.messages += ctx.outbox_.size();
    sh.total_flits += sent;
    sh.max_sent = std::max(sh.max_sent, sent);

    auto& delivered = next_read_results_[i];
    const std::size_t cap = delivered.capacity();
    delivered.clear();
    delivered.reserve(ctx.read_reqs_.size());
    for (const auto& req : ctx.read_reqs_) {
      if (req.addr >= shared_.size()) {
        throw SimulationError("read: address " + std::to_string(req.addr) +
                              " out of range");
      }
      delivered.push_back(shared_[req.addr]);
      sh.max_slot_end = std::max(sh.max_slot_end, req.slot + 1);
      sh.addr_buckets[req.addr / addr_chunk].push_back({req.addr, false});
    }
    if (delivered.capacity() != cap) ++sh.read_buffer_grows;
    for (const auto& req : ctx.write_reqs_) {
      if (req.addr >= shared_.size()) {
        throw SimulationError("write: address " + std::to_string(req.addr) +
                              " out of range");
      }
      sh.max_slot_end = std::max(sh.max_slot_end, req.slot + 1);
      sh.addr_buckets[req.addr / addr_chunk].push_back({req.addr, true});
    }
    sh.max_reads = std::max(sh.max_reads,
                            static_cast<std::uint64_t>(ctx.read_reqs_.size()));
    sh.max_writes = std::max(sh.max_writes,
                             static_cast<std::uint64_t>(ctx.write_reqs_.size()));
    sh.reads += ctx.read_reqs_.size();
    sh.writes += ctx.write_reqs_.size();
    sh.total_requests += ctx.read_reqs_.size() + ctx.write_reqs_.size();
  }

  // Sweep A2: slot occupancy m_t contributed by this shard's sources, as a
  // difference array — +1 where an injection interval starts, -1 one past
  // where it ends, then one prefix sum — O(messages + slots) instead of
  // O(flits).  Deltas live in slot_counts itself; the transient "-1"
  // entries rely on defined unsigned wraparound and every prefix sum is a
  // true (non-negative) occupancy count.
  const std::size_t slots = sh.max_slot_end == 0 ? 0 : sh.max_slot_end - 1;
  sh.slot_counts.assign(slots, 0);
  for (std::size_t i = s0; i < s1; ++i) {
    const ProcContext& ctx = contexts_[i];
    for (const auto& msg : ctx.outbox_) {
      ++sh.slot_counts[msg.slot - 1];
      const std::size_t end = msg.slot - 1 + msg.length;
      if (end < slots) --sh.slot_counts[end];
    }
    for (const auto& req : ctx.read_reqs_) {
      ++sh.slot_counts[req.slot - 1];
      if (req.slot < slots) --sh.slot_counts[req.slot];
    }
    for (const auto& req : ctx.write_reqs_) {
      ++sh.slot_counts[req.slot - 1];
      if (req.slot < slots) --sh.slot_counts[req.slot];
    }
  }
  for (std::size_t t = 1; t < slots; ++t) {
    sh.slot_counts[t] += sh.slot_counts[t - 1];
  }
}

void Machine::merge_deliver(std::size_t shard_index, std::size_t shard_count) {
  MergeShard& sh = shards_[shard_index];

  // Sweep B: drain the message buckets addressed to this shard's
  // destination range, in ascending source-shard order — sources ascend
  // within each bucket, so each inbox stays ordered by (source, slot,
  // issue order) exactly as a full ascending source scan would produce.
  // Queues keep their capacity across supersteps.
  const auto [s0, s1] = proc_range(shard_index, shard_count);
  if (s0 < s1) {
    sh.caps.resize(s1 - s0);
    for (std::size_t d = s0; d < s1; ++d) {
      sh.caps[d - s0] = next_inboxes_[d].capacity();
      next_inboxes_[d].clear();
      recv_flits_[d] = 0;
    }
    for (std::size_t src_shard = 0; src_shard < shard_count; ++src_shard) {
      for (const Message* msg : shards_[src_shard].msg_buckets[shard_index]) {
        next_inboxes_[msg->dst].push_back(*msg);
        recv_flits_[msg->dst] += msg->length;
      }
    }
    for (std::size_t d = s0; d < s1; ++d) {
      if (next_inboxes_[d].capacity() != sh.caps[d - s0]) ++sh.inbox_grows;
      sh.max_received = std::max(sh.max_received, recv_flits_[d]);
    }
  }

  // Sweep C: contention tally over this shard's address range via the flat
  // epoch-stamped counters, draining the request buckets addressed here in
  // ascending source-shard order (same relative order as the old full scan,
  // so the first-detected race address is unchanged).
  if (!shared_.empty()) {
    sh.touched.clear();
    for (std::size_t src_shard = 0; src_shard < shard_count; ++src_shard) {
      for (const auto [addr, is_write] :
           shards_[src_shard].addr_buckets[shard_index]) {
        if (cont_stamp_[addr] != cont_epoch_) {
          cont_stamp_[addr] = cont_epoch_;
          cont_reads_[addr] = 0;
          cont_writes_[addr] = 0;
          sh.touched.push_back(addr);
        }
        if (is_write) {
          ++cont_writes_[addr];
        } else {
          ++cont_reads_[addr];
        }
      }
    }
    for (const Addr addr : sh.touched) {
      const std::uint64_t reads = cont_reads_[addr];
      const std::uint64_t writes = cont_writes_[addr];
      if (options_.validate && reads > 0 && writes > 0 && !sh.has_race) {
        sh.has_race = true;
        sh.race_addr = addr;
      }
      sh.kappa = std::max({sh.kappa, reads, writes});
    }
  }
}

void Machine::execute_superstep(SuperstepProgram& program, RunResult& result) {
  // Phase wall-clock flows through the span profiler (obs/telemetry):
  // the same measurement feeds EngineCounters, the per-superstep trace
  // record, the metrics registry (span.engine.* series) and the Chrome
  // span flamegraph.  Gated on options_.profile so unprofiled supersteps
  // stay clock-free.
  obs::Span step_span("engine.step", options_.profile);

  // Phase 1: step all processors into private buffers (parallel).
  pool_.parallel_for(p_, [&](std::size_t i) {
    ProcContext& ctx = contexts_[i];
    ctx.id_ = static_cast<ProcId>(i);
    ctx.p_ = p_;
    ctx.superstep_ = superstep_;
    ctx.work_ = 0.0;
    ctx.next_auto_slot_ = 1;
    ctx.rng_ = streams_.stream(0x70726F63ULL, i, superstep_);
    ctx.inbox_ = std::span<const Message>(inboxes_[i]);
    ctx.read_results_ = std::span<const Word>(read_results_[i]);
    ctx.outbox_.clear();
    ctx.read_reqs_.clear();
    ctx.write_reqs_.clear();
    active_[i] = program.step(ctx) ? 1 : 0;
    if (options_.validate) validate_slots(ctx);
    // Deliver in slot order within a source so inbox order is
    // (source, slot, issue order).
    std::stable_sort(ctx.outbox_.begin(), ctx.outbox_.end(),
                     [](const Message& a, const Message& b) { return a.slot < b.slot; });
  });

  const std::uint64_t step_ns = step_span.stop();
  counters_.step_ns += step_ns;
  obs::Span merge_span("engine.merge", options_.profile);

  // Phase 2: sharded parallel merge in two sub-phases.  Collect: every
  // shard walks its own sources — stats, read delivery, slot occupancy —
  // and buckets each message/request by consuming shard.  Deliver (after
  // the barrier between the two parallel_for calls): every shard drains
  // exactly the buckets addressed to its destination/address range, so the
  // total routing work is O(messages + requests) instead of
  // O(shards x messages).  Shards own disjoint slices of the queues and
  // the contention table, so both sub-phases are race-free; the caller
  // reduces the per-shard accumulators in ascending shard order below.
  ++cont_epoch_;
  const std::size_t shard_count = shards_.size();
  pool_.parallel_for(shard_count,
                     [&](std::size_t w) { merge_collect(w, shard_count); });
  pool_.parallel_for(shard_count,
                     [&](std::size_t w) { merge_deliver(w, shard_count); });

  SuperstepStats& stats = stats_;
  stats.max_work = 0.0;
  stats.max_sent = stats.max_received = stats.total_flits = 0;
  stats.max_reads = stats.max_writes = stats.kappa = stats.total_requests = 0;

  Slot max_slot_end = 0;  // exclusive
  for (const MergeShard& sh : shards_) {
    max_slot_end = std::max(max_slot_end, sh.max_slot_end);
  }
  stats.slot_counts.assign(max_slot_end == 0 ? 0 : max_slot_end - 1, 0);

  const MergeShard* race_shard = nullptr;
  for (const MergeShard& sh : shards_) {
    stats.max_work = std::max(stats.max_work, sh.max_work);
    stats.max_sent = std::max(stats.max_sent, sh.max_sent);
    stats.max_received = std::max(stats.max_received, sh.max_received);
    stats.total_flits += sh.total_flits;
    stats.max_reads = std::max(stats.max_reads, sh.max_reads);
    stats.max_writes = std::max(stats.max_writes, sh.max_writes);
    stats.total_requests += sh.total_requests;
    stats.kappa = std::max(stats.kappa, sh.kappa);
    for (std::size_t t = 0; t < sh.slot_counts.size(); ++t) {
      stats.slot_counts[t] += sh.slot_counts[t];
    }
    result.total_messages += sh.messages;
    result.total_flits += sh.total_flits;
    result.total_reads += sh.reads;
    result.total_writes += sh.writes;
    counters_.merge_flits += sh.total_flits;
    counters_.merge_requests += sh.total_requests;
    counters_.inbox_grows += sh.inbox_grows;
    counters_.read_buffer_grows += sh.read_buffer_grows;
    if (race_shard == nullptr && sh.has_race) race_shard = &sh;
  }
  if (race_shard != nullptr) {
    throw SimulationError("QSM race: address " +
                          std::to_string(race_shard->race_addr) +
                          " both read and written in one superstep");
  }

  // Apply writes after all reads observed the pre-superstep state.  The
  // Arbitrary concurrent-write rule is made deterministic: ascending
  // processor order means the highest-ranked writer wins.  The shard
  // accumulators already counted the writes, so a write-free superstep
  // (the common case for message-passing programs) skips the serial scan
  // over all p contexts.
  std::uint64_t writes_issued = 0;
  for (const MergeShard& sh : shards_) writes_issued += sh.writes;
  if (writes_issued != 0) {
    for (ProcContext& ctx : contexts_) {
      for (const auto& req : ctx.write_reqs_) shared_[req.addr] = req.value;
    }
  }

  const SimTime cost = model_.superstep_cost(stats);
  result.total_time += cost;
  if (options_.trace) result.trace.push_back(SuperstepRecord{stats, cost});
  if (tape_ != nullptr) tape_->append(stats);

  std::swap(inboxes_, next_inboxes_);
  std::swap(read_results_, next_read_results_);

  const std::uint64_t merge_ns = merge_span.stop();
  counters_.merge_ns += merge_ns;

  if (sink_ != nullptr) {
    const CostComponents comps = model_.cost_components(stats);
    // Attribution invariant (CostModel contract): the max over the
    // components IS the charge, bit for bit.
    [[maybe_unused]] const SimTime attributed = comps.max_term();
    assert(std::memcmp(&attributed, &cost, sizeof cost) == 0);
    obs::SuperstepTraceRecord rec;
    rec.superstep = superstep_;
    rec.cost = cost;
    rec.w = comps.w;
    rec.gh = comps.gh;
    rec.h = comps.h;
    rec.cm = comps.cm;
    rec.kappa = comps.kappa;
    rec.L = comps.L;
    rec.dominant = comps.dominant();
    rec.step_ns = step_ns;
    rec.merge_ns = merge_ns;
    sink_->record(sink_run_, rec);
  }
}

}  // namespace pbw::engine
