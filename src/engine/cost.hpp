// The cost-model interface the engine charges supersteps through.
//
// The engine is model-agnostic: it executes a superstep, gathers the
// quantities every model in the paper is defined over (w, s_i, r_i, the
// per-slot injection counts m_t, the QSM contention kappa, ...) into a
// SuperstepStats, and asks a CostModel for the charge.  The four concrete
// models of the paper live in src/core/model.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/types.hpp"

namespace pbw::engine {

/// Everything a bulk-synchronous cost model may charge for in one
/// superstep.  Message quantities are counted in flits so that long
/// messages consume bandwidth proportional to their length (Section 2).
struct SuperstepStats {
  /// max_i w_i: maximum local work performed by any processor.
  double max_work = 0.0;

  // --- message passing (BSP-style programs) ---
  /// max_i s_i: maximum flits sent by any one processor.
  std::uint64_t max_sent = 0;
  /// max_i r_i: maximum flits received by any one processor.
  std::uint64_t max_received = 0;
  /// Total flits injected by all processors (the n of Section 6).
  std::uint64_t total_flits = 0;

  // --- shared memory (QSM-style programs) ---
  /// max_i r_i: maximum shared-memory reads issued by any one processor.
  std::uint64_t max_reads = 0;
  /// max_i w_i: maximum shared-memory writes issued by any one processor.
  std::uint64_t max_writes = 0;
  /// Maximum per-location contention (readers of a location, or writers of
  /// a location, whichever is larger over all locations).
  std::uint64_t kappa = 0;
  /// Total shared-memory requests (reads + writes).
  std::uint64_t total_requests = 0;

  /// m_t for t = 1..tau: number of injections (flits or memory requests)
  /// in each slot of the superstep.  slot_counts[t-1] is slot t.
  std::vector<std::uint64_t> slot_counts;

  /// Number of occupied communication slots == slot_counts.size().
  [[nodiscard]] std::uint64_t slots() const noexcept {
    return static_cast<std::uint64_t>(slot_counts.size());
  }
};

/// Abstract bulk-synchronous cost model.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Charge for one superstep with the given statistics.
  [[nodiscard]] virtual SimTime superstep_cost(const SuperstepStats& stats) const = 0;

  /// Human-readable name, e.g. "BSP(g=4,L=16)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of processors the model is parameterized for.
  [[nodiscard]] virtual std::uint32_t processors() const = 0;
};

}  // namespace pbw::engine
