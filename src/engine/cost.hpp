// The cost-model interface the engine charges supersteps through.
//
// The engine is model-agnostic: it executes a superstep, gathers the
// quantities every model in the paper is defined over (w, s_i, r_i, the
// per-slot injection counts m_t, the QSM contention kappa, ...) into a
// SuperstepStats, and asks a CostModel for the charge.  The four concrete
// models of the paper live in src/core/model.
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/types.hpp"

namespace pbw::engine {

/// Everything a bulk-synchronous cost model may charge for in one
/// superstep.  Message quantities are counted in flits so that long
/// messages consume bandwidth proportional to their length (Section 2).
struct SuperstepStats {
  /// max_i w_i: maximum local work performed by any processor.
  double max_work = 0.0;

  // --- message passing (BSP-style programs) ---
  /// max_i s_i: maximum flits sent by any one processor.
  std::uint64_t max_sent = 0;
  /// max_i r_i: maximum flits received by any one processor.
  std::uint64_t max_received = 0;
  /// Total flits injected by all processors (the n of Section 6).
  std::uint64_t total_flits = 0;

  // --- shared memory (QSM-style programs) ---
  /// max_i r_i: maximum shared-memory reads issued by any one processor.
  std::uint64_t max_reads = 0;
  /// max_i w_i: maximum shared-memory writes issued by any one processor.
  std::uint64_t max_writes = 0;
  /// Maximum per-location contention (readers of a location, or writers of
  /// a location, whichever is larger over all locations).
  std::uint64_t kappa = 0;
  /// Total shared-memory requests (reads + writes).
  std::uint64_t total_requests = 0;

  /// m_t for t = 1..tau: number of injections (flits or memory requests)
  /// in each slot of the superstep.  slot_counts[t-1] is slot t.
  std::vector<std::uint64_t> slot_counts;

  /// Number of occupied communication slots == slot_counts.size().
  [[nodiscard]] std::uint64_t slots() const noexcept {
    return static_cast<std::uint64_t>(slot_counts.size());
  }
};

/// The terms of a model's superstep max, individually.  Field names are
/// the normative cost-component taxonomy (docs/MODELS.md) and double as
/// the trace field names emitted by the observability layer; a component
/// the model does not charge stays 0.  For every model,
/// max over the fields == superstep_cost of the same stats.
struct CostComponents {
  double w = 0.0;      ///< max_i w_i, local work
  double gh = 0.0;     ///< g*h, locally-limited models
  double h = 0.0;      ///< plain h, globally-limited models
  double cm = 0.0;     ///< aggregate charge c_m (n/m for self-scheduling)
  double kappa = 0.0;  ///< per-location contention, QSM models
  double L = 0.0;      ///< latency / periodicity floor

  /// Max over the fields.  NaN-safe: a NaN term poisons the charge (the
  /// first NaN in field order is returned) instead of being silently
  /// dropped by the `>` comparisons.  For NaN-free components this is the
  /// plain running-max comparison chain, which the non-virtual charge
  /// functors (core/model/charge.hpp) replicate bit for bit.
  [[nodiscard]] double max_term() const noexcept {
    const double terms[6] = {w, gh, h, cm, kappa, L};
    double v = terms[0];
    if (std::isnan(v)) return v;
    for (int i = 1; i < 6; ++i) {
      if (std::isnan(terms[i])) return terms[i];
      if (terms[i] > v) v = terms[i];
    }
    return v;
  }

  /// Field name of the dominant (maximal) term.  Ties go to the earlier
  /// field in declaration order — w, gh, h, cm, kappa, L — matching the
  /// CostTerm order of core::analyze_trace.  A NaN field is dominant (it
  /// is what max_term() returns): without the explicit isnan scan every
  /// `>=` below would be false and the `w` fallthrough would lie.
  [[nodiscard]] const char* dominant() const noexcept {
    static constexpr const char* kNames[6] = {"w", "gh", "h",
                                              "cm", "kappa", "L"};
    const double terms[6] = {w, gh, h, cm, kappa, L};
    for (int i = 0; i < 6; ++i) {
      if (std::isnan(terms[i])) return kNames[i];
    }
    const double v = max_term();
    for (int i = 0; i < 6; ++i) {
      if (terms[i] >= v) return kNames[i];
    }
    return "L";  // unreachable: v is one of the terms
  }
};

/// Abstract bulk-synchronous cost model.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Charge for one superstep with the given statistics.
  [[nodiscard]] virtual SimTime superstep_cost(const SuperstepStats& stats) const = 0;

  /// The charge split into its max terms, for cost attribution.  The
  /// default places the whole charge in `w`; models with real structure
  /// override it and must keep max_term() == superstep_cost().
  [[nodiscard]] virtual CostComponents cost_components(
      const SuperstepStats& stats) const {
    CostComponents components;
    components.w = superstep_cost(stats);
    return components;
  }

  /// Human-readable name, e.g. "BSP(g=4,L=16)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of processors the model is parameterized for.
  [[nodiscard]] virtual std::uint32_t processors() const = 0;
};

}  // namespace pbw::engine
