// The SPMD program interface.
//
// A program is a superstep state machine: the machine calls step() once per
// logical processor per superstep, and runs supersteps until every
// processor returns false in the same superstep.  Per-processor state lives
// in vectors owned by the program, indexed by ctx.id() — this keeps p much
// larger than the host core count cheap (no stacks, no fibers).
#pragma once

#include "engine/proc_context.hpp"

namespace pbw::engine {

class Machine;

class SuperstepProgram {
 public:
  virtual ~SuperstepProgram() = default;

  /// Called once before the first superstep (e.g. to size shared memory).
  virtual void setup(Machine& /*machine*/) {}

  /// One processor's actions for the current superstep.  Return true to
  /// request another superstep; the run ends when all processors return
  /// false in the same superstep.
  virtual bool step(ProcContext& ctx) = 0;
};

}  // namespace pbw::engine
