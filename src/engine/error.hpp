// Simulator error type.  Model-contract violations (two injections by the
// same processor into one slot, read/write races on a QSM location, runaway
// programs) throw SimulationError so that algorithm bugs fail loudly in
// tests instead of silently producing wrong costs.
#pragma once

#include <stdexcept>
#include <string>

namespace pbw::engine {

class SimulationError : public std::runtime_error {
 public:
  explicit SimulationError(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace pbw::engine
