// Per-processor, per-superstep view of the machine.
//
// A SuperstepProgram's step() receives one ProcContext per logical
// processor.  All mutation goes into processor-private buffers, so steps
// are safe to execute concurrently; the Machine merges the buffers at the
// superstep barrier and computes the model charge.
//
// Delivery is zero-copy: inbox() and reads() are spans over the machine's
// persistent double-buffered per-processor queues, valid only for the
// duration of the current step() call (the merge refills the other buffer
// and the pair is swapped at the barrier — nothing is copied per
// superstep).  Programs that need the data later must copy it out.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "engine/types.hpp"
#include "util/rng.hpp"

namespace pbw::engine {

class Machine;

class ProcContext {
 public:
  /// This processor's id in [0, p).
  [[nodiscard]] ProcId id() const noexcept { return id_; }
  /// Number of processors.
  [[nodiscard]] std::uint32_t p() const noexcept { return p_; }
  /// Current superstep index, starting at 0.
  [[nodiscard]] std::uint64_t superstep() const noexcept { return superstep_; }

  /// Deterministic per-(seed, proc, superstep) random stream.
  [[nodiscard]] util::Xoshiro256& rng() noexcept { return rng_; }

  /// Adds `amount` units of local work to this processor's w_i.
  void charge(double amount) noexcept { work_ += amount; }

  // ---- message passing (BSP-style) -------------------------------------

  /// Sends `length` flits of payload to dst, starting at injection slot
  /// `slot` (1-based) and occupying `length` consecutive slots.  slot == 0
  /// lets the engine schedule the flits back-to-back after this
  /// processor's previously issued flits (unscheduled sending).
  void send(ProcId dst, Word payload, Slot slot = 0, std::uint32_t length = 1,
            std::uint64_t tag = 0);

  /// Messages delivered at the start of this superstep (sent during the
  /// previous superstep), ordered by (source, slot, issue order).
  [[nodiscard]] std::span<const Message> inbox() const noexcept { return inbox_; }

  // ---- shared memory (QSM-style) ----------------------------------------

  /// Issues a shared-memory read of address `addr` at slot `slot` (same
  /// slot semantics as send).  Its value — the cell content at the *start*
  /// of this superstep — appears in reads() during the next superstep, in
  /// issue order (QSM: values returned by reads are usable only in the
  /// subsequent phase).
  void read(Addr addr, Slot slot = 0);

  /// Issues a shared-memory write of `value` to `addr` at slot `slot`.
  /// Visible from the next superstep.  Concurrent writers to one address
  /// are resolved by the Arbitrary rule (the engine deterministically
  /// picks the highest-ranked writer).
  void write(Addr addr, Word value, Slot slot = 0);

  /// Results of the reads issued in the previous superstep, in issue order.
  [[nodiscard]] std::span<const Word> reads() const noexcept { return read_results_; }

 private:
  friend class Machine;

  struct ReadReq {
    Addr addr;
    Slot slot;
  };
  struct WriteReq {
    Addr addr;
    Word value;
    Slot slot;
  };

  ProcId id_ = 0;
  std::uint32_t p_ = 0;
  std::uint64_t superstep_ = 0;
  double work_ = 0.0;
  Slot next_auto_slot_ = 1;
  util::Xoshiro256 rng_{};
  std::span<const Message> inbox_;
  std::span<const Word> read_results_;
  std::vector<Message> outbox_;
  std::vector<ReadReq> read_reqs_;
  std::vector<WriteReq> write_reqs_;
};

}  // namespace pbw::engine
