// A small persistent thread pool with a blocking parallel_for.
//
// The machine steps its p logical processors with this pool; on a
// single-core host the pool degenerates to inline execution with no loss of
// determinism (processors never share mutable state during a step — all
// communication is mediated by per-processor buffers merged afterwards).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pbw::engine {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Runs fn(i) for i in [0, n), partitioned into contiguous chunks across
  /// the pool plus the calling thread.  Blocks until all iterations finish.
  /// fn must not recursively call parallel_for on the same pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::vector<Job> jobs_;
  std::size_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace pbw::engine
