// Compatibility alias: ThreadPool moved down to util/thread_pool.hpp so
// replay::recost_batch can tile charge blocks across a pool without a
// replay -> engine dependency cycle (pbw_engine links pbw_replay).  The
// engine and its callers keep spelling it engine::ThreadPool.
#pragma once

#include "util/thread_pool.hpp"

namespace pbw::engine {

using ThreadPool = util::ThreadPool;

}  // namespace pbw::engine
