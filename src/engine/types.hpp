// Fundamental simulator types shared by the engine and the cost models.
#pragma once

#include <cstdint>

namespace pbw::engine {

/// Logical processor index, 0-based.
using ProcId = std::uint32_t;

/// Injection slot within a superstep, 1-based.  Slot 0 means "unscheduled":
/// the engine assigns the processor's next free slot (back-to-back sending
/// starting at slot 1 — the behaviour of a program that does not stagger).
using Slot = std::uint32_t;

/// Machine word carried by messages and shared-memory cells.
using Word = std::int64_t;

/// Shared-memory address.
using Addr = std::uint64_t;

/// Model time.  Double because the exponential overload penalty
/// f_m(m_t) = e^{m_t/m - 1} produces fractional and potentially enormous
/// charges.
using SimTime = double;

/// A point-to-point message.  A message of `length` > 1 is a long message
/// whose flits occupy `length` consecutive slots starting at `slot`, each
/// flit consuming one unit of aggregate bandwidth (Section 2, variable
/// length messages; Section 6.1, long-message variant).
struct Message {
  ProcId src = 0;
  ProcId dst = 0;
  Word payload = 0;
  std::uint64_t tag = 0;
  std::uint32_t length = 1;
  Slot slot = 0;

  /// One past the last slot this message's flits occupy.
  [[nodiscard]] constexpr Slot slot_end() const noexcept { return slot + length; }
};

}  // namespace pbw::engine
