// Step-synchronous PRAM simulators: the CRCW PRAM of Section 4.1 and the
// PRAM(m) of Mansour-Nisan-Vishkin used throughout Section 5.
//
// The PRAM(m) has m read/write shared cells plus a concurrently-readable
// Read Only Memory holding the input ("distributing the entire input to
// the processors occurs without charge").  Access modes:
//   kCRCW — concurrent reads and writes allowed, cost 1 per step.
//   kEREW — concurrent access to a cell is a contract violation (throws).
//   kQRQW — concurrent access allowed; a step costs its max contention.
// Concurrent writes resolve by the Arbitrary rule, made deterministic as
// highest-processor-wins.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/error.hpp"
#include "engine/types.hpp"
#include "util/rng.hpp"

namespace pbw::pram {

enum class Mode { kCRCW, kEREW, kQRQW };

class PramMachine;

/// One processor's view of a PRAM step.  Reads return the cell value at
/// the start of the step; writes apply at the end of the step.
class PramContext {
 public:
  [[nodiscard]] engine::ProcId id() const noexcept { return id_; }
  [[nodiscard]] std::uint32_t p() const noexcept { return p_; }
  [[nodiscard]] std::uint64_t step() const noexcept { return step_; }
  [[nodiscard]] util::Xoshiro256& rng() noexcept { return rng_; }

  /// Shared-memory read (counted for contention).
  [[nodiscard]] engine::Word read(engine::Addr addr);
  /// Shared-memory write, applied at end of step (Arbitrary rule).
  void write(engine::Addr addr, engine::Word value);
  /// ROM read: free, concurrent, unbounded (the PRAM(m) input memory).
  [[nodiscard]] engine::Word rom(engine::Addr addr) const;
  [[nodiscard]] std::size_t rom_size() const noexcept;

 private:
  friend class PramMachine;
  PramMachine* machine_ = nullptr;
  engine::ProcId id_ = 0;
  std::uint32_t p_ = 0;
  std::uint64_t step_ = 0;
  util::Xoshiro256 rng_{};
  std::vector<std::pair<engine::Addr, engine::Word>> writes_;
};

class PramProgram {
 public:
  virtual ~PramProgram() = default;
  /// One PRAM step for one processor; return true to continue.
  virtual bool step(PramContext& ctx) = 0;
};

struct PramResult {
  std::uint64_t steps = 0;       ///< wall steps executed
  double time = 0.0;             ///< model time (== steps except QRQW)
  std::uint64_t max_contention = 0;
  std::uint64_t total_reads = 0;
  std::uint64_t total_writes = 0;
};

class PramMachine {
 public:
  PramMachine(std::uint32_t p, std::size_t cells, std::vector<engine::Word> rom,
              Mode mode, std::uint64_t seed = 1,
              std::uint64_t max_steps = 1u << 22);

  [[nodiscard]] std::uint32_t p() const noexcept { return p_; }
  [[nodiscard]] Mode mode() const noexcept { return mode_; }
  [[nodiscard]] engine::Word cell(engine::Addr addr) const { return cells_.at(addr); }
  void poke(engine::Addr addr, engine::Word value) { cells_.at(addr) = value; }

  PramResult run(PramProgram& program);

 private:
  friend class PramContext;
  std::uint32_t p_;
  Mode mode_;
  std::vector<engine::Word> cells_;
  std::vector<engine::Word> rom_;
  util::RngStreams streams_;
  std::uint64_t max_steps_;
  // per-step contention bookkeeping
  std::vector<std::uint32_t> read_count_;
  std::vector<std::uint32_t> write_count_;
  std::vector<engine::Addr> touched_;
  std::uint64_t step_reads_ = 0;
  std::uint64_t step_writes_ = 0;
};

}  // namespace pbw::pram
