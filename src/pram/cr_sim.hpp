// Theorem 5.1: one step of the CRCW PRAM(m) simulated on the QSM(m) in
// O(p/m), provided m = O(p^{1-eps}).
//
// The hard part is concurrent reads.  Following the paper: each processor
// i publishes the pair (addr_i, i) into an array A; A is sorted by address
// into B; m designated processors fetch the value of the address at the
// head of each stripe of B into an auxiliary array C; then p/m "central
// read steps" run — in step j, processor i with i = j (mod p/m) consults
// C[i m / p] and, only when its address differs from the stripe head's,
// reads the memory cell directly.  Because B is sorted, at most one
// processor touches any memory cell per central read step (contention 1).
//
// We realize the sort as a distributed counting sort over the m-cell
// address universe (the PRAM(m)'s shared memory has only m cells), which
// costs O(p/m + m) — the Theta(p/m) shape for m <= sqrt(p).  DESIGN.md
// records this substitution for the paper's comparison-sort subroutine.
#pragma once

#include <cstdint>
#include <vector>

#include "algos/common.hpp"
#include "engine/cost.hpp"

namespace pbw::pram {

struct CrSimResult {
  engine::SimTime time = 0.0;
  std::uint64_t supersteps = 0;
  bool correct = false;        ///< every processor received memory[addr_i]
  std::uint64_t direct_reads = 0;  ///< memory reads outside the C shortcut
};

/// How the values reach the (sorted) requesters after the sort.
enum class CrDistribution {
  /// The paper's method: p/m central read steps, O(p/m) total.
  kCentralReads,
  /// "The standard EREW PRAM simulation of a CRCW PRAM": segmented
  /// doubling within each same-address run of B — lg p rounds of p/m-cost
  /// staggered reads, O((p/m) lg p) total.  The proof of Theorem 5.1
  /// introduces the central-read method precisely because this one is not
  /// optimal; bench_concurrent_read quantifies the gap.
  kStandardDoubling,
};

/// Simulates one concurrent-read step: processor i wants memory[addr[i]],
/// where memory has m cells.  Runs on the given QSM-family model.
[[nodiscard]] CrSimResult simulate_cr_step(
    const engine::CostModel& model, const std::vector<engine::Word>& memory,
    const std::vector<std::uint32_t>& addr, std::uint32_t m,
    CrDistribution distribution = CrDistribution::kCentralReads,
    engine::MachineOptions options = {});

}  // namespace pbw::pram
