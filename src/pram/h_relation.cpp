#include "pram/h_relation.hpp"

#include <algorithm>
#include <map>
#include <vector>

namespace pbw::pram {
namespace {

/// Cells [0, p): claim[dst] = winner_id + round * p (freshness-stamped).
/// Cells [p, 2p): data[dst] = payload delivered this round.
///
/// Following Section 4.1, each processor is backed by a team of up to
/// xbar helpers, so it contends for every distinct pending destination in
/// the same round; a message destined for d waits at most y_d rounds, so
/// 3 * max(ybar, 1) steps suffice.  Team work is charged implicitly by the
/// write counts in PramResult.
class HRelationProgram final : public PramProgram {
 public:
  explicit HRelationProgram(const sched::Relation& rel)
      : p_(rel.p()), pending_(rel.p()), received_(rel.p()) {
    for (std::uint32_t src = 0; src < p_; ++src) {
      for (const auto& item : rel.items(src)) {
        ++pending_[src][item.dst];
      }
    }
  }

  bool step(PramContext& ctx) override {
    const auto id = ctx.id();
    const auto phase = ctx.step() % 3;
    const std::uint64_t round = ctx.step() / 3;
    auto& mine = pending_[id];
    const engine::Word stamp =
        static_cast<engine::Word>(id + round * static_cast<std::uint64_t>(p_));

    switch (phase) {
      case 0:  // claim every distinct pending destination
        for (const auto& [dst, count] : mine) ctx.write(dst, stamp);
        return true;
      case 1:  // deliver wherever we won
        for (auto it = mine.begin(); it != mine.end();) {
          if (ctx.read(it->first) == stamp) {
            ctx.write(static_cast<engine::Addr>(p_) + it->first,
                      static_cast<engine::Word>(id) * p_ + it->first);
            if (--it->second == 0) {
              it = mine.erase(it);
              continue;
            }
          }
          ++it;
        }
        return true;
      default: {  // destinations collect fresh deliveries
        const engine::Word claim = ctx.read(id);
        if (claim >= 0 && static_cast<std::uint64_t>(claim) / p_ == round) {
          received_[id].push_back(ctx.read(static_cast<engine::Addr>(p_) + id));
        }
        return !mine.empty();
      }
    }
  }

  [[nodiscard]] bool verify(const sched::Relation& rel) const {
    for (std::uint32_t dst = 0; dst < p_; ++dst) {
      std::vector<engine::Word> expected;
      for (std::uint32_t src = 0; src < p_; ++src) {
        for (const auto& item : rel.items(src)) {
          if (item.dst == dst) {
            expected.push_back(static_cast<engine::Word>(src) * p_ + dst);
          }
        }
      }
      auto got = received_[dst];
      std::sort(expected.begin(), expected.end());
      std::sort(got.begin(), got.end());
      if (got != expected) return false;
    }
    return true;
  }

 private:
  std::uint32_t p_;
  std::vector<std::map<engine::ProcId, std::uint32_t>> pending_;
  std::vector<std::vector<engine::Word>> received_;
};

/// Array-based deterministic realization (the paper's first algorithm).
/// Layout: cell 0..p-1 hold the x_i; cell p holds xbar; the array starts
/// at p + 1 with row i occupying [row_base(i), row_base(i) + p*xbar),
/// source j's block at offset j*xbar.
class ArrayHRelationProgram final : public PramProgram {
 public:
  explicit ArrayHRelationProgram(const sched::Relation& rel)
      : rel_(rel), p_(rel.p()), received_(rel.p()) {}

  bool step(PramContext& ctx) override {
    const auto id = ctx.id();
    switch (ctx.step()) {
      case 0:  // publish x_i
        ctx.write(id, static_cast<engine::Word>(rel_.items(id).size()));
        return true;
      case 1: {  // each processor scans all counts; the max owner claims
        engine::Word best = -1;
        engine::ProcId winner = 0;
        for (engine::ProcId j = 0; j < p_; ++j) {
          const engine::Word x = ctx.read(j);
          if (x > best) {
            best = x;
            winner = j;
          }
        }
        if (winner == id) ctx.write(p_, best);
        return true;
      }
      case 2:  // everyone learns xbar
        xbar_ = static_cast<std::uint64_t>(ctx.read(p_));
        return true;
      case 3: {  // write all messages into the array blocks
        const auto& items = rel_.items(id);
        std::vector<std::uint64_t> cursor(p_, 0);
        for (const auto& item : items) {
          const engine::Addr cell = row_base(item.dst) +
                                    static_cast<std::uint64_t>(id) * xbar_ +
                                    cursor[item.dst]++;
          // payload: src encoded + 1 so that 0 means "empty".
          ctx.write(cell, static_cast<engine::Word>(id) + 1);
        }
        return true;
      }
      default: {
        // Rounds: row owner extracts the leftmost nonzero entry.  The
        // paper does this in O(1) with polynomially many helpers; the
        // helpers' scan is folded into the row owner's step (work
        // charged), keeping the O(h) step count.
        if (xbar_ == 0) return false;
        bool found = false;
        for (std::uint64_t c = 0; c < static_cast<std::uint64_t>(p_) * xbar_; ++c) {
          const engine::Word v = ctx.read(row_base(id) + c);
          if (v != 0) {
            received_[id].push_back(v - 1);  // decoded source
            ctx.write(row_base(id) + c, 0);
            found = true;
            break;
          }
        }
        return found;
      }
    }
  }

  [[nodiscard]] bool verify(const sched::Relation& rel) const {
    for (std::uint32_t dst = 0; dst < p_; ++dst) {
      std::vector<engine::Word> expected;
      for (std::uint32_t src = 0; src < p_; ++src) {
        for (const auto& item : rel.items(src)) {
          if (item.dst == dst) expected.push_back(src);
        }
      }
      auto got = received_[dst];
      std::sort(expected.begin(), expected.end());
      std::sort(got.begin(), got.end());
      if (got != expected) return false;
    }
    return true;
  }

  [[nodiscard]] static std::size_t cells_needed(const sched::Relation& rel) {
    return rel.p() + 1 +
           static_cast<std::size_t>(rel.p()) * rel.p() * max_count(rel);
  }

 private:
  [[nodiscard]] engine::Addr row_base(engine::ProcId row) const {
    return p_ + 1 + static_cast<engine::Addr>(row) * p_ * xbar_;
  }
  [[nodiscard]] static std::uint64_t max_count(const sched::Relation& rel) {
    std::uint64_t best = 0;
    for (std::uint32_t i = 0; i < rel.p(); ++i) {
      best = std::max<std::uint64_t>(best, rel.items(i).size());
    }
    return best;
  }

  const sched::Relation& rel_;
  std::uint32_t p_;
  std::uint64_t xbar_ = 0;
  std::vector<std::vector<engine::Word>> received_;
};

}  // namespace

HRelationResult realize_h_relation_array(const sched::Relation& rel,
                                         std::uint64_t seed) {
  if (rel.max_length() > 1) {
    throw engine::SimulationError(
        "realize_h_relation_array: unit-length messages only");
  }
  ArrayHRelationProgram program(rel);
  PramMachine machine(rel.p(), ArrayHRelationProgram::cells_needed(rel),
                      /*rom=*/{}, Mode::kCRCW, seed);
  const PramResult run = machine.run(program);
  HRelationResult result;
  result.steps = run.steps;
  result.rounds = run.steps > 4 ? run.steps - 4 : 0;
  result.delivered = program.verify(rel);
  return result;
}

HRelationResult realize_h_relation_crcw(const sched::Relation& rel,
                                        std::uint64_t seed) {
  if (rel.max_length() > 1) {
    throw engine::SimulationError(
        "realize_h_relation_crcw: unit-length messages only");
  }
  HRelationProgram program(rel);
  PramMachine machine(rel.p(), 2ull * rel.p(), /*rom=*/{}, Mode::kCRCW, seed);
  // claim cells start at -1 so round-0 freshness checks cannot misfire.
  for (std::uint32_t i = 0; i < rel.p(); ++i) machine.poke(i, -1);
  const PramResult run = machine.run(program);
  HRelationResult result;
  result.steps = run.steps;
  result.rounds = (run.steps + 2) / 3;
  result.delivered = program.verify(rel);
  return result;
}

}  // namespace pbw::pram
