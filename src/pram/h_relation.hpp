// Realizing an h-relation on the Arbitrary CRCW PRAM in O(h) steps —
// the engine behind the lower-bound transfer of Section 4.1 ("any lower
// bound t(n) for the CRCW PRAM gives a lower bound g*t(n) for the
// BSP(g)", proved by simulating BSP communication on the PRAM).
//
// We implement the concurrent-write contention-resolution variant: every
// processor with pending messages claims its current destination's cell
// (Arbitrary write); the winner delivers its payload and retires it; every
// destination absorbs one message per 3-step round, so ybar <= h rounds
// suffice.
#pragma once

#include <cstdint>

#include "pram/pram.hpp"
#include "sched/relation.hpp"

namespace pbw::pram {

struct HRelationResult {
  std::uint64_t steps = 0;
  bool delivered = false;   ///< all messages arrived intact
  std::uint64_t rounds = 0; ///< 3-step rounds used (<= max(ybar,1) + 1)
};

/// Routes `rel` (unit-length messages) on an Arbitrary CRCW PRAM with p
/// processors and 2p shared cells.
[[nodiscard]] HRelationResult realize_h_relation_crcw(const sched::Relation& rel,
                                                      std::uint64_t seed = 1);

/// The paper's first (deterministic, array-based) realization: a p x xbar*p
/// array where "the jth processor writes the messages destined for the
/// ith processor in the jth block of row i", followed by repeated
/// leftmost-nonzero extraction, one message per row per round.
///
/// The paper extracts leftmost-nonzero in O(1) with a polynomial number
/// of processors; this simulation realizes that with one helper processor
/// per array cell (p^2 xbar helpers folded into the row owner's step, the
/// work charged via PramResult counts), keeping the O(h) step bound:
/// 3 steps per round, max(ybar, 1) + 1 rounds.
[[nodiscard]] HRelationResult realize_h_relation_array(const sched::Relation& rel,
                                                       std::uint64_t seed = 1);

}  // namespace pbw::pram
