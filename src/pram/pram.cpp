#include "pram/pram.hpp"

#include <algorithm>

namespace pbw::pram {

engine::Word PramContext::read(engine::Addr addr) {
  if (addr >= machine_->cells_.size()) {
    throw engine::SimulationError("PRAM read out of range");
  }
  if (machine_->read_count_[addr]++ == 0 && machine_->write_count_[addr] == 0) {
    machine_->touched_.push_back(addr);
  }
  ++machine_->step_reads_;
  return machine_->cells_[addr];
}

void PramContext::write(engine::Addr addr, engine::Word value) {
  if (addr >= machine_->cells_.size()) {
    throw engine::SimulationError("PRAM write out of range");
  }
  if (machine_->write_count_[addr]++ == 0 && machine_->read_count_[addr] == 0) {
    machine_->touched_.push_back(addr);
  }
  ++machine_->step_writes_;
  writes_.emplace_back(addr, value);
}

engine::Word PramContext::rom(engine::Addr addr) const {
  if (addr >= machine_->rom_.size()) {
    throw engine::SimulationError("PRAM ROM read out of range");
  }
  return machine_->rom_[addr];
}

std::size_t PramContext::rom_size() const noexcept { return machine_->rom_.size(); }

PramMachine::PramMachine(std::uint32_t p, std::size_t cells,
                         std::vector<engine::Word> rom, Mode mode,
                         std::uint64_t seed, std::uint64_t max_steps)
    : p_(p),
      mode_(mode),
      cells_(cells, 0),
      rom_(std::move(rom)),
      streams_(seed),
      max_steps_(max_steps),
      read_count_(cells, 0),
      write_count_(cells, 0) {
  if (p_ == 0) throw engine::SimulationError("PramMachine: p == 0");
}

PramResult PramMachine::run(PramProgram& program) {
  PramResult result;
  std::vector<PramContext> contexts(p_);
  bool any_active = true;
  std::uint64_t step = 0;
  while (any_active) {
    if (step >= max_steps_) {
      throw engine::SimulationError("PramMachine: step limit exceeded");
    }
    any_active = false;
    step_reads_ = step_writes_ = 0;
    for (std::uint32_t i = 0; i < p_; ++i) {
      PramContext& ctx = contexts[i];
      ctx.machine_ = this;
      ctx.id_ = i;
      ctx.p_ = p_;
      ctx.step_ = step;
      ctx.rng_ = streams_.stream(0x7072616DULL, i, step);
      ctx.writes_.clear();
      any_active |= program.step(ctx);
    }
    // Contention accounting + mode enforcement, then apply writes
    // (ascending processor order: highest-ranked Arbitrary winner).
    std::uint64_t kappa = 0;
    for (engine::Addr addr : touched_) {
      const std::uint64_t r = read_count_[addr];
      const std::uint64_t w = write_count_[addr];
      kappa = std::max({kappa, r, w});
      if (mode_ == Mode::kEREW && (r > 1 || w > 1)) {
        throw engine::SimulationError(
            "EREW violation at cell " + std::to_string(addr) + " (r=" +
            std::to_string(r) + ", w=" + std::to_string(w) + ")");
      }
      read_count_[addr] = 0;
      write_count_[addr] = 0;
    }
    touched_.clear();
    for (std::uint32_t i = 0; i < p_; ++i) {
      for (const auto& [addr, value] : contexts[i].writes_) {
        cells_[addr] = value;
      }
    }
    result.max_contention = std::max(result.max_contention, kappa);
    result.total_reads += step_reads_;
    result.total_writes += step_writes_;
    result.time += mode_ == Mode::kQRQW
                       ? static_cast<double>(std::max<std::uint64_t>(1, kappa))
                       : 1.0;
    ++result.steps;
    ++step;
  }
  return result;
}

}  // namespace pbw::pram
