#include "pram/cr_sim.hpp"

#include <algorithm>
#include <map>
#include <vector>

#include "engine/error.hpp"
#include "engine/machine.hpp"
#include "engine/program.hpp"

namespace pbw::pram {
namespace {

using algos::stagger_slot;

class CrStepProgram final : public engine::SuperstepProgram {
 public:
  CrStepProgram(std::vector<engine::Word> memory, std::vector<std::uint32_t> addr,
                std::uint32_t p, std::uint32_t m, CrDistribution dist)
      : memory_(std::move(memory)),
        addr_(std::move(addr)),
        p_(p),
        m_(m),
        dist_(dist),
        q_((p + m - 1) / m),
        result_(p, -1),
        pair_addr_(p, 0),
        pair_orig_(p, 0),
        pair_val_(p, 0),
        got_val_(p, 0),
        is_leader_(p, 0),
        bucket_lists_(m) {
    rounds_ = 0;
    while ((1u << rounds_) < p_) ++rounds_;
    // Shared layout offsets.
    off_mem_ = 0;
    off_a_ = off_mem_ + m_;
    off_cnt_ = off_a_ + p_;
    off_g_ = off_cnt_ + static_cast<std::uint64_t>(m_) * m_;
    off_b_ = off_g_ + m_;
    off_c_addr_ = off_b_ + p_;
    off_c_val_ = off_c_addr_ + m_;
    off_vaddr_ = off_c_val_ + m_;
    off_vval_ = off_vaddr_ + p_;
    off_ans_ = off_vval_ + p_;
    total_cells_ = off_ans_ + p_;
  }

  void setup(engine::Machine& machine) override {
    machine.resize_shared(total_cells_, -1);
    for (std::uint32_t a = 0; a < m_; ++a) {
      machine.poke_shared(off_mem_ + a, memory_[a]);
    }
  }

  bool step(engine::ProcContext& ctx) override;

  [[nodiscard]] bool verify() const {
    for (std::uint32_t i = 0; i < p_; ++i) {
      if (result_[i] != memory_[addr_[i]]) return false;
    }
    return true;
  }
  [[nodiscard]] std::uint64_t direct_reads() const { return direct_reads_; }

 private:
  bool sort_phase(engine::ProcContext& ctx, engine::ProcId id, std::uint64_t s);
  bool central_phase(engine::ProcContext& ctx, engine::ProcId id, std::uint64_t s);
  bool doubling_phase(engine::ProcContext& ctx, engine::ProcId id, std::uint64_t s);
  bool answer_phase(engine::ProcContext& ctx, engine::ProcId id, std::uint64_t s,
                    std::uint64_t base);

  std::vector<engine::Word> memory_;
  std::vector<std::uint32_t> addr_;
  std::uint32_t p_;
  std::uint32_t m_;
  CrDistribution dist_;
  std::uint32_t q_;        // stripe size p/m (ceil)
  std::uint32_t rounds_;   // ceil(lg p), doubling mode
  std::vector<engine::Word> result_;
  std::vector<std::uint32_t> pair_addr_;
  std::vector<std::uint32_t> pair_orig_;
  std::vector<engine::Word> pair_val_;
  std::vector<char> got_val_;
  std::vector<char> is_leader_;
  std::vector<std::map<std::uint32_t, std::vector<std::uint32_t>>> bucket_lists_;
  std::uint64_t direct_reads_ = 0;

  std::uint64_t off_mem_, off_a_, off_cnt_, off_g_, off_b_, off_c_addr_,
      off_c_val_, off_vaddr_, off_vval_, off_ans_, total_cells_;
};

bool CrStepProgram::sort_phase(engine::ProcContext& ctx, engine::ProcId id,
                               std::uint64_t s) {
  const bool sorter = id < m_;
  switch (s) {
    case 0:  // publish (addr, i) pairs into A
      ctx.write(off_a_ + id, static_cast<engine::Word>(addr_[id]) * p_ + id,
                stagger_slot(id, 0, p_, m_));
      return true;
    case 1:  // sorters read their A stripe
      if (sorter) {
        const std::uint64_t begin = static_cast<std::uint64_t>(id) * q_;
        const std::uint64_t end = std::min<std::uint64_t>(begin + q_, p_);
        for (std::uint64_t k = begin; k < end; ++k) {
          ctx.read(off_a_ + k, stagger_slot(id, k - begin, m_, m_));
        }
      }
      return true;
    case 2:  // bucket locally; publish per-address counts
      if (sorter) {
        for (const engine::Word enc : ctx.reads()) {
          bucket_lists_[id][static_cast<std::uint32_t>(enc / p_)].push_back(
              static_cast<std::uint32_t>(enc % p_));
          ctx.charge(1.0);
        }
        for (std::uint32_t a = 0; a < m_; ++a) {
          const auto it = bucket_lists_[id].find(a);
          const engine::Word cnt =
              it == bucket_lists_[id].end()
                  ? 0
                  : static_cast<engine::Word>(it->second.size());
          ctx.write(off_cnt_ + static_cast<std::uint64_t>(a) * m_ + id, cnt,
                    stagger_slot(id, a, m_, m_));
        }
      }
      return true;
    case 3:  // row processor a reads its count row
      if (sorter) {
        for (std::uint32_t j = 0; j < m_; ++j) {
          ctx.read(off_cnt_ + static_cast<std::uint64_t>(id) * m_ + j,
                   stagger_slot(id, j, m_, m_));
        }
      }
      return true;
    case 4:  // row prefixes overwrite the count row; row total into G
      if (sorter) {
        auto reads = ctx.reads();
        engine::Word running = 0;
        for (std::uint32_t j = 0; j < m_; ++j) {
          ctx.write(off_cnt_ + static_cast<std::uint64_t>(id) * m_ + j, running,
                    stagger_slot(id, j, m_, m_));
          running += reads[j];
        }
        ctx.write(off_g_ + id, running, stagger_slot(id, m_, m_, m_));
      }
      return true;
    case 5:  // processor 0 gathers the row totals
      if (id == 0) {
        for (std::uint32_t a = 0; a < m_; ++a) ctx.read(off_g_ + a, a + 1);
      }
      return true;
    case 6:  // processor 0 publishes the global prefix
      if (id == 0) {
        auto reads = ctx.reads();
        engine::Word running = 0;
        for (std::uint32_t a = 0; a < m_; ++a) {
          ctx.write(off_g_ + a, running, a + 1);
          running += reads[a];
        }
      }
      return true;
    case 7:  // sorters fetch prefix cells for their distinct addresses
      if (sorter) {
        std::uint64_t k = 0;
        for (const auto& [a, list] : bucket_lists_[id]) {
          ctx.read(off_cnt_ + static_cast<std::uint64_t>(a) * m_ + id,
                   stagger_slot(id, k++, m_, m_));
          ctx.read(off_g_ + a, stagger_slot(id, k++, m_, m_));
        }
      }
      return true;
    case 8:  // scatter pairs into sorted positions in B
      if (sorter) {
        auto reads = ctx.reads();
        std::uint64_t k = 0, w = 0;
        for (const auto& [a, list] : bucket_lists_[id]) {
          const engine::Word row_prefix = reads[k++];
          const engine::Word global = reads[k++];
          std::uint64_t pos = static_cast<std::uint64_t>(global) +
                              static_cast<std::uint64_t>(row_prefix);
          for (const std::uint32_t orig : list) {
            ctx.write(off_b_ + pos, static_cast<engine::Word>(a) * p_ + orig,
                      stagger_slot(id, w++, m_, m_));
            ++pos;
          }
        }
      }
      return true;
    case 9: {  // every processor adopts one B entry (+ predecessor for
               // leader detection in doubling mode)
      std::uint64_t k = 0;
      ctx.read(off_b_ + id, stagger_slot(id, k++, p_, m_));
      if (dist_ == CrDistribution::kStandardDoubling && id > 0) {
        ctx.read(off_b_ + id - 1, stagger_slot(id, k++, p_, m_));
      }
      return true;
    }
    default:
      return true;
  }
}

bool CrStepProgram::central_phase(engine::ProcContext& ctx, engine::ProcId id,
                                  std::uint64_t s) {
  const std::uint64_t central_base = 12;
  const std::uint64_t central_end = central_base + 2ull * q_ + 1;
  if (s == 10) {
    const engine::Word enc = ctx.reads()[0];
    pair_addr_[id] = static_cast<std::uint32_t>(enc / p_);
    pair_orig_[id] = static_cast<std::uint32_t>(enc % p_);
    if (id % q_ == 0) ctx.read(off_mem_ + pair_addr_[id], 1);
    return true;
  }
  if (s == 11) {
    if (id % q_ == 0) {
      pair_val_[id] = ctx.reads()[0];
      got_val_[id] = 1;
      ctx.write(off_c_addr_ + id / q_, pair_addr_[id], 1);
      ctx.write(off_c_val_ + id / q_, pair_val_[id], 2);
    }
    return true;
  }
  if (s >= central_base && s < central_end) {
    const std::uint64_t t = s - central_base;
    const std::uint64_t my_cohort = id % q_;
    if (t == 2 * my_cohort) {
      ctx.read(off_c_addr_ + id / q_, 1);
      ctx.read(off_c_val_ + id / q_, 2);
      return true;
    }
    if (t == 2 * my_cohort + 1) {
      auto reads = ctx.reads();
      if (!got_val_[id]) {
        if (reads[0] == static_cast<engine::Word>(pair_addr_[id])) {
          pair_val_[id] = reads[1];
          got_val_[id] = 1;
        } else {
          ctx.read(off_mem_ + pair_addr_[id], 1);
          direct_reads_ += 1;
        }
      }
      return true;
    }
    if (t == 2 * my_cohort + 2 && !got_val_[id]) {
      pair_val_[id] = ctx.reads()[0];
      got_val_[id] = 1;
    }
    return true;
  }
  return answer_phase(ctx, id, s, central_end);
}

bool CrStepProgram::doubling_phase(engine::ProcContext& ctx, engine::ProcId id,
                                   std::uint64_t s) {
  if (s == 10) {
    auto reads = ctx.reads();
    const engine::Word enc = reads[0];
    pair_addr_[id] = static_cast<std::uint32_t>(enc / p_);
    pair_orig_[id] = static_cast<std::uint32_t>(enc % p_);
    is_leader_[id] =
        id == 0 ||
        static_cast<std::uint32_t>(reads[1] / p_) != pair_addr_[id];
    // Run leaders read memory directly: distinct addresses, contention 1.
    if (is_leader_[id]) {
      ctx.read(off_mem_ + pair_addr_[id], stagger_slot(id, 0, p_, m_));
      direct_reads_ += 1;
    }
    return true;
  }
  if (s == 11) {
    if (is_leader_[id]) {
      pair_val_[id] = ctx.reads()[0];
      got_val_[id] = 1;
      ctx.write(off_vaddr_ + id, pair_addr_[id], stagger_slot(id, 0, p_, m_));
      ctx.write(off_vval_ + id, pair_val_[id], stagger_slot(id, 1, p_, m_));
    }
    return true;
  }
  const std::uint64_t base = 12;
  const std::uint64_t end = base + 2ull * rounds_;
  if (s >= base && s < end) {
    const auto r = static_cast<std::uint32_t>((s - base) / 2);
    const std::uint64_t reach = 1ull << r;
    if ((s - base) % 2 == 0) {
      if (!got_val_[id] && id >= reach) {
        ctx.read(off_vaddr_ + id - reach, stagger_slot(id, 0, p_, m_));
        ctx.read(off_vval_ + id - reach, stagger_slot(id, 1, p_, m_));
      }
      return true;
    }
    if (!got_val_[id] && id >= reach) {
      auto reads = ctx.reads();
      if (reads[0] == static_cast<engine::Word>(pair_addr_[id])) {
        pair_val_[id] = reads[1];
        got_val_[id] = 1;
        ctx.write(off_vaddr_ + id, pair_addr_[id], stagger_slot(id, 0, p_, m_));
        ctx.write(off_vval_ + id, pair_val_[id], stagger_slot(id, 1, p_, m_));
      }
    }
    return true;
  }
  return answer_phase(ctx, id, s, end);
}

bool CrStepProgram::answer_phase(engine::ProcContext& ctx, engine::ProcId id,
                                 std::uint64_t s, std::uint64_t base) {
  if (s == base) {  // route values back to the original requesters
    ctx.write(off_ans_ + pair_orig_[id], pair_val_[id],
              stagger_slot(id, 0, p_, m_));
    return true;
  }
  if (s == base + 1) {
    ctx.read(off_ans_ + id, stagger_slot(id, 0, p_, m_));
    return true;
  }
  result_[id] = ctx.reads()[0];
  return false;
}

bool CrStepProgram::step(engine::ProcContext& ctx) {
  const auto id = ctx.id();
  const auto s = ctx.superstep();
  if (s <= 9) return sort_phase(ctx, id, s);
  return dist_ == CrDistribution::kCentralReads ? central_phase(ctx, id, s)
                                                : doubling_phase(ctx, id, s);
}

}  // namespace

CrSimResult simulate_cr_step(const engine::CostModel& model,
                             const std::vector<engine::Word>& memory,
                             const std::vector<std::uint32_t>& addr,
                             std::uint32_t m, CrDistribution distribution,
                             engine::MachineOptions options) {
  const std::uint32_t p = model.processors();
  if (memory.size() != m || addr.size() != p) {
    throw engine::SimulationError("simulate_cr_step: size mismatch");
  }
  for (std::uint32_t a : addr) {
    if (a >= m) throw engine::SimulationError("simulate_cr_step: bad address");
  }
  CrStepProgram program(memory, addr, p, m, distribution);
  engine::Machine machine(model, options);
  const auto run = machine.run(program);
  return CrSimResult{run.total_time, run.supersteps, program.verify(),
                     program.direct_reads()};
}

}  // namespace pbw::pram
