// Leader Recognition on the PRAM(m) (Definition 5.1): the input ROM holds
// p cells, exactly one of which is 1; every processor must learn its
// address.
//
// With concurrent read the answer is broadcast through one shared cell in
// O(max(lg p / w, 1)) steps.  With exclusive read the answer must squeeze
// through the m cells one reader per cell per step, and discovery itself
// takes p/m ROM scans — Theta(p/m + lg m) steps, matching the
// Omega(p lg m / (m w)) lower bound of Lemma 5.3 up to the lg factors the
// paper tracks.  bench_leader prints the measured ER/CR gap next to the
// Theta(p lg m / (m lg p)) separation formula.
#pragma once

#include <cstdint>

#include "pram/pram.hpp"

namespace pbw::pram {

struct LeaderResult {
  double time = 0.0;
  std::uint64_t steps = 0;
  bool correct = false;  ///< every processor identified the leader
};

/// Concurrent-read algorithm on the CR PRAM(m): each processor probes one
/// ROM cell; the finder publishes through shared cell 0; everyone reads it
/// concurrently.
[[nodiscard]] LeaderResult leader_concurrent_read(std::uint32_t p, std::uint32_t m,
                                                  std::uint32_t leader,
                                                  std::uint64_t seed = 1);

/// Exclusive-read algorithm on the ER PRAM(m): m scanners sweep p/m ROM
/// cells each, the answer replicates across the m cells by exclusive
/// doubling, then the p processors drain it m readers per step.
[[nodiscard]] LeaderResult leader_exclusive_read(std::uint32_t p, std::uint32_t m,
                                                 std::uint32_t leader,
                                                 std::uint64_t seed = 1);

}  // namespace pbw::pram
