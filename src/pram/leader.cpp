#include "pram/leader.hpp"

#include <algorithm>
#include <vector>

namespace pbw::pram {
namespace {

std::vector<engine::Word> make_rom(std::uint32_t p, std::uint32_t leader) {
  std::vector<engine::Word> rom(p, 0);
  rom.at(leader) = 1;
  return rom;
}

std::uint32_t floor_pow2(std::uint32_t x) {
  std::uint32_t r = 1;
  while (2 * r <= x) r *= 2;
  return r;
}

class CrLeader final : public PramProgram {
 public:
  explicit CrLeader(std::uint32_t p) : answer_(p, -1) {}

  bool step(PramContext& ctx) override {
    const auto id = ctx.id();
    switch (ctx.step()) {
      case 0:  // probe one ROM cell each; the finder publishes (+1 so that
               // leader 0 is distinguishable from the empty cell)
        if (ctx.rom(id) == 1) ctx.write(0, static_cast<engine::Word>(id) + 1);
        return true;
      case 1:  // concurrent read of the announcement
        answer_[id] = ctx.read(0) - 1;
        return true;
      default:
        return false;
    }
  }

  [[nodiscard]] bool verify(std::uint32_t leader) const {
    return std::all_of(answer_.begin(), answer_.end(), [&](engine::Word a) {
      return a == static_cast<engine::Word>(leader);
    });
  }

 private:
  std::vector<engine::Word> answer_;
};

/// ER algorithm over mrep = 2^floor(lg m) cells (a power of two keeps the
/// doubling stage a clean hypercube; at most a factor-2 loss).
class ErLeader final : public PramProgram {
 public:
  ErLeader(std::uint32_t p, std::uint32_t m)
      : p_(p),
        m_(floor_pow2(std::max(1u, std::min(m, p)))),
        chunk_((p + m_ - 1) / m_),
        known_(p, 0),
        answer_(p, -1) {
    lg_m_ = 0;
    while ((1u << lg_m_) < m_) ++lg_m_;
  }

  bool step(PramContext& ctx) override {
    const auto id = ctx.id();
    const auto s = ctx.step();

    // Stage 1: m scanners sweep their ROM stripes, one probe per step;
    // a finder writes (leader+1) into its own cell on the last step.
    if (s < chunk_) {
      if (id < m_) {
        const std::uint64_t a = static_cast<std::uint64_t>(id) * chunk_ + s;
        if (a < p_ && ctx.rom(a) == 1) {
          known_[id] = static_cast<engine::Word>(a) + 1;
        }
        if (s + 1 == chunk_ && known_[id] > 0) ctx.write(id, known_[id]);
      }
      return true;
    }

    // Stage 2: hypercube doubling across the m cells.  Processor j reads
    // only its partner's cell (one reader per cell) and rewrites its own
    // cell (one writer per cell); it tracks its own cell's value locally.
    const std::uint64_t r = s - chunk_;
    if (r < lg_m_) {
      if (id < m_) {
        const auto partner = static_cast<engine::Addr>(id ^ (1u << r));
        const engine::Word v = ctx.read(partner);
        if (v > known_[id]) {
          known_[id] = v;
          ctx.write(id, known_[id]);
        }
      }
      return true;
    }

    // Stage 3: the p processors drain the answer, m readers per step.
    const std::uint64_t t = r - lg_m_;
    const std::uint64_t batches = (p_ + m_ - 1) / m_;
    if (t < batches) {
      if (id / m_ == t) answer_[id] = ctx.read(id % m_) - 1;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool verify(std::uint32_t leader) const {
    return std::all_of(answer_.begin(), answer_.end(), [&](engine::Word a) {
      return a == static_cast<engine::Word>(leader);
    });
  }

 private:
  std::uint32_t p_;
  std::uint32_t m_;
  std::uint32_t chunk_;
  std::uint32_t lg_m_ = 0;
  std::vector<engine::Word> known_;
  std::vector<engine::Word> answer_;
};

}  // namespace

LeaderResult leader_concurrent_read(std::uint32_t p, std::uint32_t m,
                                    std::uint32_t leader, std::uint64_t seed) {
  CrLeader program(p);
  PramMachine machine(p, std::max(1u, m), make_rom(p, leader), Mode::kCRCW, seed);
  const auto run = machine.run(program);
  return LeaderResult{run.time, run.steps, program.verify(leader)};
}

LeaderResult leader_exclusive_read(std::uint32_t p, std::uint32_t m,
                                   std::uint32_t leader, std::uint64_t seed) {
  ErLeader program(p, m);
  PramMachine machine(p, std::max(1u, m), make_rom(p, leader), Mode::kEREW, seed);
  const auto run = machine.run(program);
  return LeaderResult{run.time, run.steps, program.verify(leader)};
}

}  // namespace pbw::pram
