// Declarative sweep specs and their expansion into runnable jobs.
//
// A spec file is a sequence of sweep blocks.  Each block names a scenario
// and assigns each parameter a comma-separated value list; the block
// expands to the cartesian product of its axes, times the seed list.
//
//   # Table 1 broadcast row across machine sizes
//   [sweep]
//   scenario = table1.broadcast
//   trials   = 3
//   seeds    = 1, 2
//   p        = 256, 1024, 4096
//   g        = 8, 16
//
// `scenario`, `trials` and `seeds` are reserved keys; every other key must
// appear in the scenario's parameter schema (unset parameters take their
// schema defaults).  A leading `[sweep]` for the first block is optional.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/param_set.hpp"
#include "campaign/scenario.hpp"

namespace pbw::campaign {

struct SweepSpec {
  std::string scenario;
  int trials = 1;
  std::vector<std::uint64_t> seeds = {1};
  /// Axes in declaration order: (param name, value list).
  std::vector<std::pair<std::string, std::vector<std::string>>> axes;
};

/// One expanded grid point: a fully-populated ParamSet for one scenario
/// and one seed.  `trials` repetitions run inside the job.
struct Job {
  const Scenario* scenario = nullptr;
  ParamSet params;
  std::uint64_t seed = 1;
  int trials = 1;

  /// Manifest key sans git version: "scenario|params|seed=N".
  [[nodiscard]] std::string base_key() const;

  /// The value the per-trial RNG stream is keyed by: base_key() with the
  /// cost-only parameters dropped.  Jobs differing only in cost-only axes
  /// draw identical streams and hence execute identical supersteps, which
  /// is what makes a replayed point bit-equal to simulating it fresh.  For
  /// non-replayable scenarios no parameter is dropped, so this equals
  /// base_key() and streams match pre-replay campaigns exactly.
  [[nodiscard]] std::string rng_key() const;

  /// Grouping key for trace-replay: rng_key() plus the trial count — jobs
  /// sharing it execute the exact same set of trials, so one simulation's
  /// tapes serve the whole group.
  [[nodiscard]] std::string structural_key() const;
};

/// A concrete point's axes split into structural and cost-only names (in
/// schema order).  Exposed for tests and `pbw-campaign list --axes`.
struct AxisSplit {
  std::vector<std::string> structural;
  std::vector<std::string> cost_only;
};

[[nodiscard]] AxisSplit split_axes(const Scenario& scenario,
                                   const ParamSet& params);

/// Parses a spec file's text into sweep blocks.  Throws std::invalid_argument
/// with a line number on malformed input.
[[nodiscard]] std::vector<SweepSpec> parse_spec(const std::string& text);

/// Expands one sweep against the registry: validates the scenario name and
/// every axis against the schema, fills defaults, and emits the cartesian
/// grid times the seed list (axes vary in declaration order, last axis
/// fastest, then seeds).
[[nodiscard]] std::vector<Job> expand(const SweepSpec& spec,
                                      const Registry& registry);

/// expand() over every block of a spec file, concatenated.
[[nodiscard]] std::vector<Job> expand_all(const std::vector<SweepSpec>& specs,
                                          const Registry& registry);

}  // namespace pbw::campaign
