// Parallel campaign execution over the engine's host thread pool.
//
// Jobs are embarrassingly parallel — every scenario run constructs its own
// Machine (with a single host thread) — so the executor simply fans the
// job list out over engine::ThreadPool with a dynamic work queue (job
// durations vary by orders of magnitude across a grid, so static chunking
// would serialize on the largest point).  Results are deterministic and
// independent of thread count: trial t of a job draws from the stream
// (seed, hash(job key), t) regardless of which worker runs it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "campaign/recorder.hpp"
#include "campaign/sweep.hpp"

namespace pbw::campaign {

struct ExecutorOptions {
  /// Host threads; 0 selects hardware concurrency.
  std::size_t threads = 0;
  /// Re-run and re-record jobs already present in the manifest.
  bool force = false;
  /// When non-empty, every executed job writes its own cost-attribution
  /// stream to <trace_dir>/<sanitized base_key>.jsonl (created on demand).
  /// Implemented with a per-job obs::ScopedSink, so jobs sharing worker
  /// threads never interleave records.
  std::string trace_dir;
};

struct RunStats {
  std::size_t total = 0;     ///< jobs in the expanded sweep
  std::size_t executed = 0;  ///< jobs simulated this run
  std::size_t skipped = 0;   ///< jobs skipped via the resume manifest
};

/// Runs (or resume-skips) every job, recording each as it completes.
/// Throws the first job error after the pool drains.
RunStats run_campaign(const std::vector<Job>& jobs, Recorder& recorder,
                      const ExecutorOptions& options = {});

}  // namespace pbw::campaign
