// Parallel campaign execution over the engine's host thread pool.
//
// Jobs group by structural key (Job::structural_key): every job of a group
// executes the exact same supersteps, so the executor simulates one
// representative per group, captures its StatsTape stream, and recosts the
// remaining members under their own cost parameters (src/replay) — a dense
// cost-only sweep pays one simulation per structural point instead of one
// per grid point.  Groups are embarrassingly parallel — every simulation
// constructs its own Machine (with a single host thread) — so the executor
// fans the group list out over engine::ThreadPool with a dynamic work
// queue (group durations vary by orders of magnitude across a grid, so
// static chunking would serialize on the largest point).  Results are
// deterministic, independent of thread count, and bit-equal whether a
// point was simulated or recosted: trial t of a job draws from the stream
// (seed, hash(rng_key), t) regardless of which worker runs it, and the
// --replay-check gate re-simulates recosted points to enforce equality.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "campaign/recorder.hpp"
#include "campaign/sweep.hpp"

namespace pbw::campaign {

class CampaignStatus;

struct ExecutorOptions {
  /// Host threads; 0 selects hardware concurrency.
  std::size_t threads = 0;
  /// Re-run and re-record jobs already present in the manifest.
  bool force = false;
  /// When non-empty, every executed job writes its own cost-attribution
  /// stream to <trace_dir>/<sanitized base_key>.jsonl (created on demand).
  /// Implemented with a per-job obs::ScopedSink, so jobs sharing worker
  /// threads never interleave records; recosted jobs emit replayed records
  /// via replay::recost_to_sink inside the scenario's replay function.
  std::string trace_dir;
  /// Recost cost-only grid points from captured tapes instead of
  /// simulating each (--no-replay disables; non-replayable scenarios are
  /// unaffected either way).
  bool replay = true;
  /// Re-simulate every recosted job and require its metric rows to be
  /// bit-equal to the replayed ones (--replay-check).  The equivalence
  /// gate: a mismatch fails the campaign.
  bool replay_check = false;
  /// Byte cap for the in-memory LRU tape cache (0 disables caching; the
  /// live group is then held for its own duration only).
  std::size_t tape_cache_bytes = 256u << 20;
  /// Live progress board (campaign/status.hpp): job begin/done events,
  /// per-worker in-flight state, tape-cache totals.  Optional; the
  /// telemetry endpoint and the watchdog read from it.
  CampaignStatus* status = nullptr;
  /// Cooperative stop: workers drain no new jobs once this flips true
  /// (obs::shutdown_flag() wires SIGINT/SIGTERM here).  Already-recorded
  /// jobs stay in the manifest, so the interrupted campaign resumes.
  const std::atomic<bool>* stop = nullptr;
};

struct RunStats {
  std::size_t total = 0;      ///< jobs in the expanded sweep
  std::size_t executed = 0;   ///< jobs run this campaign (simulated + recosted)
  std::size_t skipped = 0;    ///< jobs skipped via the resume manifest
  std::size_t simulated = 0;  ///< engine simulations (group representatives,
                              ///< cache rebuilds, and replay checks)
  std::size_t recosted = 0;   ///< jobs recosted from a captured tape group
  std::size_t checked = 0;    ///< recosted jobs verified bit-equal
  /// The stop flag fired before every job ran; `executed` then counts
  /// only the jobs actually recorded, and the rest await a resume.
  bool interrupted = false;
};

/// Runs (or resume-skips) every job, recording each as it completes.
/// Throws the first job error after the pool drains.
RunStats run_campaign(const std::vector<Job>& jobs, Recorder& recorder,
                      const ExecutorOptions& options = {});

}  // namespace pbw::campaign
