// Parallel campaign execution over the engine's host thread pool.
//
// Jobs group by structural key (Job::structural_key): every job of a group
// executes the exact same supersteps, so the executor simulates one
// representative per group, captures its StatsTape stream, and recosts the
// remaining members under their own cost parameters (src/replay) — a dense
// cost-only sweep pays one simulation per structural point instead of one
// per grid point.  Groups are embarrassingly parallel — every simulation
// constructs its own Machine (with a single host thread) — so the executor
// fans the group list out over engine::ThreadPool with a dynamic work
// queue (group durations vary by orders of magnitude across a grid, so
// static chunking would serialize on the largest point).  Results are
// deterministic, independent of thread count, and bit-equal whether a
// point was simulated or recosted: trial t of a job draws from the stream
// (seed, hash(rng_key), t) regardless of which worker runs it, and the
// --replay-check gate re-simulates recosted points to enforce equality.
//
// The group is also the fleet's unit of work: group_jobs() is the shared
// sharding function and execute_shard() runs one group's jobs — the local
// thread-pool path and the distributed worker loop (src/fleet) both call
// it, which is what makes a fleet run bit-identical to a --threads run.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/recorder.hpp"
#include "campaign/sweep.hpp"

namespace pbw::util {
class ThreadPool;
}  // namespace pbw::util

namespace pbw::campaign {

class CampaignStatus;

struct ExecutorOptions {
  /// Host threads; 0 selects hardware concurrency.
  std::size_t threads = 0;
  /// Re-run and re-record jobs already present in the manifest.
  bool force = false;
  /// When non-empty, every executed job writes its own cost-attribution
  /// stream to <trace_dir>/<sanitized base_key>.jsonl (created on demand).
  /// Implemented with a per-job obs::ScopedSink, so jobs sharing worker
  /// threads never interleave records; recosted jobs emit replayed records
  /// via replay::recost_to_sink inside the scenario's replay function.
  std::string trace_dir;
  /// Recost cost-only grid points from captured tapes instead of
  /// simulating each (--no-replay disables; non-replayable scenarios are
  /// unaffected either way).
  bool replay = true;
  /// Re-simulate every recosted job and require its metric rows to be
  /// bit-equal to the replayed ones (--replay-check).  The equivalence
  /// gate: a mismatch fails the campaign.
  bool replay_check = false;
  /// Byte cap for the in-memory LRU tape cache (0 disables caching; the
  /// live group is then held for its own duration only).
  std::size_t tape_cache_bytes = 256u << 20;
  /// Live progress board (campaign/status.hpp): job begin/done events,
  /// per-worker in-flight state, tape-cache totals.  Optional; the
  /// telemetry endpoint and the watchdog read from it.
  CampaignStatus* status = nullptr;
  /// Cooperative stop: workers drain no new jobs once this flips true
  /// (obs::shutdown_flag() wires SIGINT/SIGTERM here).  Already-recorded
  /// jobs stay in the manifest, so the interrupted campaign resumes.
  const std::atomic<bool>* stop = nullptr;
};

struct RunStats {
  std::size_t total = 0;      ///< jobs in the expanded sweep
  std::size_t executed = 0;   ///< jobs run this campaign (simulated + recosted)
  std::size_t skipped = 0;    ///< jobs skipped via the resume manifest
  std::size_t simulated = 0;  ///< engine simulations (group representatives,
                              ///< cache rebuilds, and replay checks)
  std::size_t recosted = 0;   ///< jobs recosted from a captured tape group
  /// Of `recosted`, jobs charged through the scenario's replay_batch hook
  /// (one tape traversal for the whole group) rather than job by job.
  std::size_t batched = 0;
  std::size_t checked = 0;    ///< recosted jobs verified bit-equal
  /// The stop flag fired before every job ran; `executed` then counts
  /// only the jobs actually recorded, and the rest await a resume.
  bool interrupted = false;
  /// Batch-recost kernel attribution: the SIMD path recost_batch
  /// dispatches to in this process, and the thread count it could tile
  /// across (1 unless the run lent its pool to a lone batch group).
  std::string batch_simd = "scalar";
  std::size_t batch_threads = 1;
};

/// Runs (or resume-skips) every job, recording each as it completes.
/// Throws the first job error after the pool drains.
RunStats run_campaign(const std::vector<Job>& jobs, Recorder& recorder,
                      const ExecutorOptions& options = {});

// ---- shard execution (shared by the local pool and the fleet worker) -------

/// Groups jobs by structural key, first-appearance order.  Jobs of a
/// non-replayable scenario (or with `replay` off) form singleton groups.
/// Each group is one shard: the canonical work-lease unit.
[[nodiscard]] std::vector<std::vector<const Job*>> group_jobs(
    const std::vector<const Job*>& jobs, bool replay);

/// A job failure inside execute_shard, tagged with the failing job's key
/// so callers can attribute it without re-deriving which job was live.
class ShardError : public std::runtime_error {
 public:
  ShardError(std::string job_key, const std::string& what)
      : std::runtime_error(what), job_key_(std::move(job_key)) {}
  [[nodiscard]] const std::string& job_key() const noexcept { return job_key_; }

 private:
  std::string job_key_;
};

struct ShardOptions {
  bool replay = true;
  bool replay_check = false;
  /// Per-job cost-attribution streams, as ExecutorOptions::trace_dir.
  std::string trace_dir;
  /// Optional cross-shard tape cache; null still captures and reuses
  /// tapes within the shard, they just don't outlive the call.
  replay::TapeCache* cache = nullptr;
  /// Optional pool the scenario's replay_batch hook may tile its batch
  /// across.  Only lend one when the caller's own parallelism is idle
  /// (e.g. a single-group campaign, or a fleet worker leasing one shard
  /// at a time); the rows are bit-identical with or without it.
  util::ThreadPool* batch_pool = nullptr;
  /// Checked between jobs; a true load stops before the next job.
  const std::atomic<bool>* stop = nullptr;
};

struct ShardCallbacks {
  /// Invoked before each job starts (progress boards).
  std::function<void(const Job&)> begin;
  /// Invoked with each job's trial rows as it completes.  `recosted`
  /// distinguishes replayed jobs from simulations; `seconds` is the
  /// job's wall-clock.
  std::function<void(const Job&, const std::vector<MetricRow>& trials,
                     bool recosted, double seconds)>
      done;
};

struct ShardStats {
  std::size_t simulated = 0;
  std::size_t recosted = 0;
  std::size_t batched = 0;  ///< of recosted: charged via replay_batch
  std::size_t checked = 0;
  bool stopped = false;  ///< the stop flag cut the shard short
};

/// Executes one shard: simulates the group representative (unless the
/// cache already holds the group's tapes), recosts the remaining members,
/// and optionally re-simulates each recosted member as a bit-equality
/// check.  All jobs must share a structural key when replay grouping is
/// on.  Throws ShardError on the first failing job.
ShardStats execute_shard(const std::vector<const Job*>& jobs,
                         const ShardOptions& options,
                         const ShardCallbacks& callbacks);

}  // namespace pbw::campaign
