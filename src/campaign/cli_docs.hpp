// The pbw-campaign CLI's self-description: one CommandDoc per subcommand,
// listing exactly the flags that command's code path reads.
//
// This table is the single source of truth three consumers share:
// `pbw-campaign --help` / `pbw-campaign <cmd> --help` print it, main()
// rejects flags not in it (a typo like --trails=5 is an error, not a
// silently-ignored no-op), and tests/test_campaign.cpp cross-checks it so
// the help text, docs/CAMPAIGN.md, and the actual parser cannot drift
// apart again.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "util/cli.hpp"

namespace pbw::campaign {

struct CommandDoc {
  std::string name;     ///< subcommand, e.g. "run"
  std::string usage;    ///< one-line usage, positional args included
  std::string summary;  ///< one-line description
  std::vector<util::FlagDoc> flags;  ///< every flag the command reads
};

/// All subcommands, in help order.
[[nodiscard]] const std::vector<CommandDoc>& command_docs();

/// The doc for `name`, or nullptr.
[[nodiscard]] const CommandDoc* find_command_doc(const std::string& name);

/// The bare flag name of a FlagDoc spelling ("tape-cache-mb=N" ->
/// "tape-cache-mb", "trace[=<file>]" -> "trace").
[[nodiscard]] std::string flag_doc_name(const util::FlagDoc& doc);

/// Flags given on the command line that `doc` does not declare (--help is
/// always allowed).  Empty means the invocation is clean.
[[nodiscard]] std::vector<std::string> unknown_flags(const util::Cli& cli,
                                                     const CommandDoc& doc);

/// The global overview (every command + summary).
void print_overview(std::ostream& os);

/// One command's usage and aligned flag table.
void print_command_help(std::ostream& os, const CommandDoc& doc);

}  // namespace pbw::campaign
