// Typed-by-convention parameter bundles for campaign scenarios.
//
// Parameters travel as strings (they come from sweep spec files and go out
// as JSON), with typed getters at the point of use — the same convention as
// util::Cli.  The map is ordered so canonical_key() is stable, which is what
// the resume manifest hashes against.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/json.hpp"

namespace pbw::campaign {

class ParamSet {
 public:
  ParamSet() = default;

  void set(const std::string& key, std::string value) {
    values_[key] = std::move(value);
  }

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) != 0;
  }

  /// Getters throw std::out_of_range on a missing key: by the time a
  /// scenario runs, sweep expansion has filled every schema parameter.
  [[nodiscard]] const std::string& get(const std::string& key) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key) const;
  [[nodiscard]] double get_double(const std::string& key) const;
  [[nodiscard]] bool get_bool(const std::string& key) const;

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return values_;
  }

  /// "k=v,k=v" over the sorted keys — the params part of a manifest key.
  [[nodiscard]] std::string canonical() const;

  /// Params as a JSON object; numeric-looking values become JSON numbers.
  [[nodiscard]] util::Json to_json() const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace pbw::campaign
