#include "campaign/status.hpp"

#include "obs/telemetry/span.hpp"

namespace pbw::campaign {

CampaignStatus::CampaignStatus()
    : epoch_(std::chrono::steady_clock::now()) {}

double CampaignStatus::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void CampaignStatus::begin(std::size_t total, std::size_t skipped,
                           std::size_t workers) {
  std::lock_guard lock(mutex_);
  state_ = "running";
  total_ = total;
  skipped_ = skipped;
  done_ = simulated_ = recosted_ = failed_ = 0;
  cache_hits_ = cache_misses_ = cache_evictions_ = 0;
  cache_bytes_ = 0;
  workers_.assign(workers, WorkerSlot{});
  scenarios_.clear();
  stalled_.clear();
  rate_ = obs::RateEstimator();
  rate_.observe(now_seconds(), 0);
}

void CampaignStatus::finish(bool interrupted) {
  std::lock_guard lock(mutex_);
  state_ = interrupted ? "interrupted" : "done";
  for (auto& slot : workers_) slot = WorkerSlot{};
}

void CampaignStatus::worker_begin(std::size_t worker,
                                  const std::string& job_key) {
  std::lock_guard lock(mutex_);
  if (worker >= workers_.size()) workers_.resize(worker + 1);
  workers_[worker] = WorkerSlot{true, job_key, now_seconds()};
}

void CampaignStatus::worker_end(std::size_t worker) {
  std::lock_guard lock(mutex_);
  if (worker < workers_.size()) workers_[worker] = WorkerSlot{};
}

void CampaignStatus::job_done(const std::string& scenario, double seconds,
                              bool recosted) {
  std::lock_guard lock(mutex_);
  ++done_;
  (recosted ? recosted_ : simulated_) += 1;
  auto& s = scenarios_[scenario];
  ++s.done;
  s.seconds += seconds;
  rate_.observe(now_seconds(), done_);
}

void CampaignStatus::job_failed() {
  std::lock_guard lock(mutex_);
  ++failed_;
}

void CampaignStatus::set_tape_cache(std::uint64_t hits, std::uint64_t misses,
                                    std::uint64_t evictions,
                                    std::uint64_t rejected,
                                    std::size_t bytes) {
  std::lock_guard lock(mutex_);
  cache_hits_ = hits;
  cache_misses_ = misses;
  cache_evictions_ = evictions;
  cache_rejected_ = rejected;
  cache_bytes_ = bytes;
}

void CampaignStatus::set_batch_kernel(const std::string& simd,
                                      std::size_t threads) {
  std::lock_guard lock(mutex_);
  batch_simd_ = simd;
  batch_threads_ = threads;
}

std::vector<obs::WatchdogTask> CampaignStatus::in_flight() const {
  std::lock_guard lock(mutex_);
  const double now = now_seconds();
  std::vector<obs::WatchdogTask> tasks;
  for (const auto& slot : workers_) {
    if (!slot.active) continue;
    tasks.push_back(obs::WatchdogTask{slot.job, now - slot.start_seconds});
  }
  return tasks;
}

void CampaignStatus::mark_stalled(const std::string& job_key) {
  std::lock_guard lock(mutex_);
  stalled_.insert(job_key);
}

util::Json CampaignStatus::to_json() const {
  std::lock_guard lock(mutex_);
  const double now = now_seconds();

  util::Json j = util::Json::object();
  j["state"] = state_;
  j["elapsed_seconds"] = now;

  util::Json jobs = util::Json::object();
  jobs["total"] = total_;
  jobs["skipped"] = skipped_;
  jobs["done"] = done_;
  jobs["simulated"] = simulated_;
  jobs["recosted"] = recosted_;
  jobs["failed"] = failed_;
  const std::uint64_t finished = done_ + failed_;
  const std::uint64_t runnable =
      total_ > skipped_ ? static_cast<std::uint64_t>(total_ - skipped_) : 0;
  const std::uint64_t remaining = runnable > finished ? runnable - finished : 0;
  jobs["remaining"] = remaining;
  j["jobs"] = std::move(jobs);

  util::Json cache = util::Json::object();
  cache["hits"] = cache_hits_;
  cache["misses"] = cache_misses_;
  cache["evictions"] = cache_evictions_;
  cache["rejected"] = cache_rejected_;
  cache["bytes"] = cache_bytes_;
  const std::uint64_t lookups = cache_hits_ + cache_misses_;
  cache["hit_rate"] =
      lookups == 0 ? 0.0
                   : static_cast<double>(cache_hits_) /
                         static_cast<double>(lookups);
  j["tape_cache"] = std::move(cache);

  util::Json kernel = util::Json::object();
  kernel["simd"] = batch_simd_;
  kernel["threads"] = batch_threads_;
  j["batch_kernel"] = std::move(kernel);

  util::Json scenarios = util::Json::object();
  for (const auto& [name, s] : scenarios_) {
    util::Json entry = util::Json::object();
    entry["done"] = s.done;
    entry["seconds"] = s.seconds;
    entry["jobs_per_second"] =
        s.seconds > 0.0 ? static_cast<double>(s.done) / s.seconds : 0.0;
    scenarios[name] = std::move(entry);
  }
  j["scenarios"] = std::move(scenarios);

  j["rate_jobs_per_second"] = rate_.rate();
  j["eta_seconds"] = rate_.eta_seconds(remaining);

  util::Json workers = util::Json::array();
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    const WorkerSlot& slot = workers_[w];
    util::Json entry = util::Json::object();
    entry["worker"] = w;
    entry["job"] = slot.active ? slot.job : "";
    entry["seconds"] = slot.active ? now - slot.start_seconds : 0.0;
    entry["stalled"] = util::Json(slot.active && stalled_.count(slot.job) != 0);
    workers.push_back(std::move(entry));
  }
  j["workers"] = std::move(workers);

  util::Json stalled = util::Json::array();
  for (const auto& job : stalled_) stalled.push_back(util::Json(job));
  j["stalled"] = std::move(stalled);

  // The span profiler's loss ledger: non-zero means the event buffer
  // overflowed and any exported flamegraph is missing that many slices.
  j["span_events_dropped"] = obs::SpanRegistry::global().dropped();

  return j;
}

}  // namespace pbw::campaign
