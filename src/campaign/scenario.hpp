// Scenario registry: named, schema-checked experiment drivers.
//
// A Scenario wraps one of the repo's algorithm drivers behind a uniform
// interface: a parameter schema (names + defaults, so sweeps can be
// validated before any job runs) and a run function mapping a concrete
// ParamSet plus a per-trial RNG stream to a row of named metrics.  The
// registry is the campaign CLI's menu and the sweep expander's oracle.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "campaign/param_set.hpp"
#include "replay/cache.hpp"
#include "util/rng.hpp"

namespace pbw::util {
class ThreadPool;
}  // namespace pbw::util

namespace pbw::campaign {

/// One metric row: (name, value) pairs in emission order, one per trial.
using MetricRow = std::vector<std::pair<std::string, double>>;

struct ParamSpec {
  std::string name;
  std::string default_value;
  std::string doc;
  /// True when the parameter only changes how supersteps are *charged*,
  /// never which supersteps execute.  Grid points differing only in
  /// cost-only axes share one simulation: the executor records the
  /// representative's StatsTape stream and recosts it at every other
  /// point (src/replay).  Conservative default: structural, so a scenario
  /// that never opts in is never wrongly replayed.
  bool cost_only = false;
};

struct Scenario {
  std::string name;         ///< dotted, e.g. "table1.broadcast"
  std::string description;  ///< one line for `pbw-campaign list`
  std::vector<ParamSpec> params;
  /// Runs one trial.  `rng` is the deterministic per-(job, trial) stream;
  /// scenarios must draw all randomness from it.
  std::function<MetricRow(const ParamSet&, util::Xoshiro256&)> run;
  /// Recosts one captured trial at `params` — a grid point differing from
  /// the captured one only in cost-only axes.  Must reproduce run()'s row
  /// bit-for-bit (the --replay-check gate enforces it).  Null: the
  /// scenario never replays and every axis is treated as structural.
  std::function<MetricRow(const ParamSet&, const replay::CapturedTrial&)>
      replay;
  /// Optional mass-recost hook: recosts ONE captured trial at many grid
  /// points in a single tape traversal (replay::recost_batch), returning
  /// one row per point in input order.  Each row must be bit-identical to
  /// what replay() would return for the same point — the executor
  /// substitutes this for the per-point replay loop whenever a structural
  /// group has several cost-only members, and --replay-check still
  /// verifies rows against fresh simulations.  The ThreadPool (nullable)
  /// lets the hook tile its batch across idle host threads; using or
  /// ignoring it must not change a single bit of the rows.  Null hook:
  /// the executor recosts point by point through replay().
  std::function<std::vector<MetricRow>(const std::vector<const ParamSet*>&,
                                       const replay::CapturedTrial&,
                                       util::ThreadPool*)>
      replay_batch;
  /// Point-dependent refinement of ParamSpec::cost_only, consulted instead
  /// of the static flag when set.  Lets e.g. table1 mark `g` cost-only for
  /// the bsp family only (the qsm programs derive m = p/g from it, so
  /// there it changes the execution).
  std::function<bool(const ParamSet&, const std::string&)> cost_only_at;

  [[nodiscard]] const ParamSpec* find_param(const std::string& name) const;

  /// Is `param` a cost-only axis at this concrete grid point?
  [[nodiscard]] bool is_cost_only(const ParamSet& params,
                                  const std::string& param) const;

  /// Scenarios without a replay function never group or recost.
  [[nodiscard]] bool replayable() const { return replay != nullptr; }
};

class Registry {
 public:
  /// The process-wide registry, with all built-in scenarios registered.
  [[nodiscard]] static Registry& instance();

  void add(Scenario scenario);
  [[nodiscard]] const Scenario* find(const std::string& name) const;
  /// All scenarios sorted by name.
  [[nodiscard]] std::vector<const Scenario*> all() const;

 private:
  std::vector<Scenario> scenarios_;
};

// Built-in scenario packs; each scenarios_*.cpp defines one.  Called once
// by Registry::instance() — explicit calls instead of static-initializer
// tricks so a static-library link never drops a pack.
void register_table1_scenarios(Registry& registry);
void register_bench_scenarios(Registry& registry);
void register_grid_scenarios(Registry& registry);
void register_contour_scenarios(Registry& registry);

}  // namespace pbw::campaign
