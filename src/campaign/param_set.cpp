#include "campaign/param_set.hpp"

#include <charconv>
#include <stdexcept>

namespace pbw::campaign {

const std::string& ParamSet::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    throw std::out_of_range("ParamSet: missing parameter '" + key + "'");
  }
  return it->second;
}

std::int64_t ParamSet::get_int(const std::string& key) const {
  const std::string& v = get(key);
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    throw std::invalid_argument("ParamSet: parameter '" + key + "' = '" + v +
                                "' is not an integer");
  }
  return out;
}

double ParamSet::get_double(const std::string& key) const {
  const std::string& v = get(key);
  double out = 0.0;
  const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    throw std::invalid_argument("ParamSet: parameter '" + key + "' = '" + v +
                                "' is not a number");
  }
  return out;
}

bool ParamSet::get_bool(const std::string& key) const {
  const std::string& v = get(key);
  return v != "false" && v != "0" && v != "no" && !v.empty();
}

std::string ParamSet::canonical() const {
  std::string out;
  for (const auto& [k, v] : values_) {
    if (!out.empty()) out += ',';
    out += k;
    out += '=';
    out += v;
  }
  return out;
}

util::Json ParamSet::to_json() const {
  util::Json obj = util::Json::object();
  for (const auto& [k, v] : values_) {
    double num = 0.0;
    const auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), num);
    if (ec == std::errc{} && ptr == v.data() + v.size() && !v.empty()) {
      obj[k] = util::Json(num);
    } else {
      obj[k] = util::Json(v);
    }
  }
  return obj;
}

}  // namespace pbw::campaign
