// Umbrella header for the campaign subsystem: declarative parameter
// sweeps over registered scenarios, executed in parallel, recorded as
// JSON Lines with resume.  See docs/CAMPAIGN.md.
#pragma once

#include "campaign/executor.hpp"   // IWYU pragma: export
#include "campaign/param_set.hpp"  // IWYU pragma: export
#include "campaign/recorder.hpp"   // IWYU pragma: export
#include "campaign/scenario.hpp"   // IWYU pragma: export
#include "campaign/sweep.hpp"      // IWYU pragma: export
