#include "campaign/executor.hpp"

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>

#include "engine/thread_pool.hpp"
#include "util/rng.hpp"

namespace pbw::campaign {

namespace {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

RunStats run_campaign(const std::vector<Job>& jobs, Recorder& recorder,
                      const ExecutorOptions& options) {
  RunStats stats;
  stats.total = jobs.size();

  std::vector<const Job*> runnable;
  runnable.reserve(jobs.size());
  for (const auto& job : jobs) {
    if (!options.force && recorder.already_recorded(job)) {
      ++stats.skipped;
    } else {
      runnable.push_back(&job);
    }
  }
  stats.executed = runnable.size();
  if (runnable.empty()) return stats;

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::string first_error;

  auto worker = [&](std::size_t) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= runnable.size()) return;
      const Job& job = *runnable[i];
      try {
        const util::RngStreams streams(job.seed);
        const std::uint64_t key_hash = fnv1a64(job.base_key());
        std::vector<MetricRow> trials;
        trials.reserve(static_cast<std::size_t>(job.trials));
        for (int t = 0; t < job.trials; ++t) {
          auto rng = streams.stream(key_hash, static_cast<std::uint64_t>(t));
          trials.push_back(job.scenario->run(job.params, rng));
        }
        recorder.record(job, trials);
      } catch (const std::exception& e) {
        std::lock_guard lock(error_mutex);
        if (first_error.empty()) {
          first_error = job.base_key() + ": " + e.what();
        }
      }
    }
  };

  engine::ThreadPool pool(options.threads);
  // One persistent worker per pool thread popping from the shared queue;
  // parallel_for's static chunks would pin whole grid regions to one thread.
  pool.parallel_for(std::min(pool.size(), runnable.size()), worker);

  if (!first_error.empty()) {
    throw std::runtime_error("campaign job failed: " + first_error);
  }
  return stats;
}

}  // namespace pbw::campaign
