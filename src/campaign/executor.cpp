#include "campaign/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>

#include "campaign/status.hpp"
#include "engine/thread_pool.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/span.hpp"
#include "obs/trace.hpp"
#include "replay/batch.hpp"
#include "replay/cache.hpp"
#include "replay/recorder.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace pbw::campaign {

namespace {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// base_key() contains '/', '=', ';' — flatten to a portable filename.
std::string sanitize_filename(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (const char c : key) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-';
    out.push_back(keep ? c : '_');
  }
  return out;
}

/// Bit-level equality: the replay equivalence gate compares doubles as
/// their bit patterns (operator== would pass -0.0 vs 0.0 and fail NaNs).
bool bits_equal(double a, double b) noexcept {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

bool rows_equal(const std::vector<MetricRow>& a,
                const std::vector<MetricRow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (a[t].size() != b[t].size()) return false;
    for (std::size_t k = 0; k < a[t].size(); ++k) {
      if (a[t][k].first != b[t][k].first) return false;
      if (!bits_equal(a[t][k].second, b[t][k].second)) return false;
    }
  }
  return true;
}

/// The tape cache outlives one run_campaign call so repeated invocations
/// in a process (presets, tests, --force re-runs) recost instead of
/// re-simulating.  Recreated — dropping its contents — when the cap
/// changes between calls.
std::shared_ptr<replay::TapeCache> shared_tape_cache(std::size_t max_bytes) {
  static std::mutex mutex;
  static std::shared_ptr<replay::TapeCache> cache;
  static std::size_t cache_bytes = 0;
  std::lock_guard lock(mutex);
  if (!cache || cache_bytes != max_bytes) {
    cache = std::make_shared<replay::TapeCache>(max_bytes);
    cache_bytes = max_bytes;
  }
  return cache;
}

bool stop_requested(const std::atomic<bool>* stop) {
  return stop != nullptr && stop->load(std::memory_order_relaxed);
}

/// Runs one job's trials for real.  With `capture` set, each trial's
/// machine runs are recorded into a CapturedTrial alongside its row.
std::pair<std::vector<MetricRow>, std::shared_ptr<replay::TapeGroup>>
simulate_job(const Job& job, bool capture) {
  const util::RngStreams streams(job.seed);
  const std::uint64_t key_hash = fnv1a64(job.rng_key());
  std::vector<MetricRow> trials;
  trials.reserve(static_cast<std::size_t>(job.trials));
  auto group = capture ? std::make_shared<replay::TapeGroup>() : nullptr;
  for (int t = 0; t < job.trials; ++t) {
    auto rng = streams.stream(key_hash, static_cast<std::uint64_t>(t));
    if (capture) {
      replay::TapeRecorder tape_recorder;
      MetricRow row;
      {
        replay::ScopedTapeRecorder scope(&tape_recorder);
        row = job.scenario->run(job.params, rng);
      }
      replay::CapturedTrial trial;
      trial.tapes = tape_recorder.take();
      trial.metrics = row;
      group->trials.push_back(std::move(trial));
      trials.push_back(std::move(row));
    } else {
      trials.push_back(job.scenario->run(job.params, rng));
    }
  }
  return {std::move(trials), std::move(group)};
}

/// Wraps `body` in a per-job recording sink when trace_dir is set and
/// writes the stream afterwards; otherwise runs `body` bare.
template <typename Body>
void with_job_trace(const std::string& trace_dir, const Job& job, Body&& body) {
  if (trace_dir.empty()) {
    body();
    return;
  }
  obs::RecordingSink sink;
  {
    obs::ScopedSink scope(&sink);
    body();
  }
  const auto path = std::filesystem::path(trace_dir) /
                    (sanitize_filename(job.base_key()) + ".jsonl");
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write trace " + path.string());
  }
  obs::write_jsonl(sink.runs(), out);
}

}  // namespace

std::vector<std::vector<const Job*>> group_jobs(
    const std::vector<const Job*>& jobs, bool replay) {
  std::vector<std::vector<const Job*>> groups;
  std::unordered_map<std::string, std::size_t> index;
  for (const Job* job : jobs) {
    const bool groupable = replay && job->scenario->replayable();
    if (groupable) {
      const auto [it, inserted] =
          index.emplace(job->structural_key(), groups.size());
      if (!inserted) {
        groups[it->second].push_back(job);
        continue;
      }
    }
    groups.push_back({job});
  }
  return groups;
}

ShardStats execute_shard(const std::vector<const Job*>& jobs,
                         const ShardOptions& options,
                         const ShardCallbacks& callbacks) {
  ShardStats stats;
  if (jobs.empty()) return stats;
  if (!options.trace_dir.empty()) {
    std::filesystem::create_directories(options.trace_dir);
  }

  const Job* current = jobs.front();
  try {
    const bool replayable = options.replay && current->scenario->replayable();
    const std::string group_key = current->structural_key();
    std::shared_ptr<const replay::TapeGroup> tapes;
    std::size_t start = 0;

    if (replayable && options.cache != nullptr) {
      obs::Span cache_span("replay.tape_cache.get");
      tapes = options.cache->get(group_key);
    }
    if (!tapes) {
      // Simulate the representative; capture its tapes when anything
      // could recost them later.
      const Job& rep = *jobs.front();
      if (callbacks.begin) callbacks.begin(rep);
      const auto job_start = std::chrono::steady_clock::now();
      std::vector<MetricRow> trials;
      std::shared_ptr<replay::TapeGroup> captured;
      {
        PBW_SPAN("campaign.job.simulate");
        with_job_trace(options.trace_dir, rep, [&] {
          auto result = simulate_job(rep, replayable);
          trials = std::move(result.first);
          captured = std::move(result.second);
        });
      }
      ++stats.simulated;
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - job_start)
                              .count();
      if (callbacks.done) callbacks.done(rep, trials, false, secs);
      start = 1;
      if (captured) {
        tapes = std::move(captured);
        if (options.cache != nullptr) {
          obs::Span cache_span("replay.tape_cache.put");
          options.cache->put(group_key, tapes);
        }
      }
    }

    // Recost the remaining members (every member, when the whole group
    // came out of the cache).  A scenario with a replay_batch hook gets
    // its whole cost-only sub-grid charged in ONE tape traversal per
    // trial; tracing (a --trace-dir or an ambient sink) falls back to the
    // per-point path, which is what emits replayed trace records.
    const std::size_t remaining = jobs.size() - start;
    const bool batch = remaining >= 2 && tapes != nullptr &&
                       jobs.front()->scenario->replay_batch != nullptr &&
                       options.trace_dir.empty() &&
                       obs::current_sink() == nullptr &&
                       !stop_requested(options.stop);
    if (batch) {
      const auto batch_start = std::chrono::steady_clock::now();
      std::vector<const ParamSet*> points;
      points.reserve(remaining);
      for (std::size_t j = start; j < jobs.size(); ++j) {
        points.push_back(&jobs[j]->params);
      }
      // rows[t][k] is trial t's metric row for point k.
      std::vector<std::vector<MetricRow>> rows;
      rows.reserve(tapes->trials.size());
      {
        PBW_SPAN("campaign.job.recost_batch");
        for (const auto& trial : tapes->trials) {
          auto batch_rows = jobs.front()->scenario->replay_batch(
              points, trial, options.batch_pool);
          if (batch_rows.size() != points.size()) {
            throw std::runtime_error(
                "replay_batch returned " +
                std::to_string(batch_rows.size()) + " rows for " +
                std::to_string(points.size()) + " points");
          }
          rows.push_back(std::move(batch_rows));
        }
      }
      // The charging work was shared; attribute it evenly across the
      // members, then add each member's own bookkeeping/check time.
      const double shared_secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        batch_start)
              .count() /
          static_cast<double>(remaining);
      for (std::size_t j = start; j < jobs.size(); ++j) {
        if (stop_requested(options.stop)) {
          stats.stopped = true;
          break;
        }
        const Job& job = *jobs[j];
        current = &job;
        if (callbacks.begin) callbacks.begin(job);
        const auto job_start = std::chrono::steady_clock::now();
        std::vector<MetricRow> trials;
        trials.reserve(rows.size());
        for (auto& trial_rows : rows) {
          trials.push_back(std::move(trial_rows[j - start]));
        }
        ++stats.recosted;
        ++stats.batched;
        if (options.replay_check) {
          PBW_SPAN("campaign.job.replay_check");
          auto fresh = simulate_job(job, false).first;
          if (!rows_equal(trials, fresh)) {
            throw std::runtime_error(
                "replay check failed: batch-recosted metrics differ from "
                "fresh simulation");
          }
          ++stats.checked;
        }
        const double secs =
            shared_secs + std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - job_start)
                              .count();
        if (callbacks.done) callbacks.done(job, trials, true, secs);
      }
      return stats;
    }
    for (std::size_t j = start; j < jobs.size(); ++j) {
      if (stop_requested(options.stop)) {
        stats.stopped = true;
        break;
      }
      const Job& job = *jobs[j];
      current = &job;
      if (callbacks.begin) callbacks.begin(job);
      const auto job_start = std::chrono::steady_clock::now();
      std::vector<MetricRow> trials;
      trials.reserve(static_cast<std::size_t>(job.trials));
      {
        PBW_SPAN("campaign.job.recost");
        with_job_trace(options.trace_dir, job, [&] {
          for (const auto& trial : tapes->trials) {
            trials.push_back(job.scenario->replay(job.params, trial));
          }
        });
      }
      ++stats.recosted;
      if (options.replay_check) {
        // The check re-simulation is accounted by `checked`, not
        // `simulated` — the recorded row still came from replay.
        PBW_SPAN("campaign.job.replay_check");
        auto fresh = simulate_job(job, false).first;
        if (!rows_equal(trials, fresh)) {
          throw std::runtime_error(
              "replay check failed: recosted metrics differ from fresh "
              "simulation");
        }
        ++stats.checked;
      }
      const double secs = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - job_start)
                              .count();
      if (callbacks.done) callbacks.done(job, trials, true, secs);
    }
  } catch (const ShardError&) {
    throw;
  } catch (const std::exception& e) {
    throw ShardError(current->base_key(), e.what());
  }
  return stats;
}

RunStats run_campaign(const std::vector<Job>& jobs, Recorder& recorder,
                      const ExecutorOptions& options) {
  RunStats stats;
  stats.total = jobs.size();

  std::vector<const Job*> runnable;
  runnable.reserve(jobs.size());
  for (const auto& job : jobs) {
    if (!options.force && recorder.already_recorded(job)) {
      ++stats.skipped;
    } else {
      runnable.push_back(&job);
    }
  }
  stats.executed = runnable.size();
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter("campaign.jobs_skipped").add(stats.skipped);
  if (runnable.empty()) return stats;

  // Group runnable jobs by structural key (first-appearance order).  A
  // non-replayable scenario's structural key is its full base key, so its
  // jobs form singleton groups and take the plain simulation path.
  const auto groups = group_jobs(runnable, options.replay);

  auto& executed_counter = metrics.counter("campaign.jobs_executed");
  auto& failed_counter = metrics.counter("campaign.jobs_failed");
  auto& job_seconds =
      metrics.histogram("campaign.job_seconds", 1e-4, 100.0, 24);

  const auto cache = shared_tape_cache(options.tape_cache_bytes);

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> simulated{0};
  std::atomic<std::size_t> recosted{0};
  std::atomic<std::size_t> batched{0};
  std::atomic<std::size_t> checked{0};
  std::atomic<std::size_t> completed{0};
  std::mutex error_mutex;
  std::string first_error;

  ShardOptions shard_options;
  shard_options.replay = options.replay;
  shard_options.replay_check = options.replay_check;
  shard_options.trace_dir = options.trace_dir;
  shard_options.cache = cache.get();
  shard_options.stop = options.stop;

  // A lone group starves the group-level fan-out (one worker, the rest of
  // the pool idle), so lend the concurrency to the batch-recost kernel
  // instead.  A separate pool: the group worker runs inside the outer
  // pool's parallel_for, and nested dispatch on one pool is forbidden.
  // With several groups the cores are already busy and batches stay
  // inline — either way the rows are bit-identical.
  std::optional<util::ThreadPool> batch_pool;
  if (groups.size() == 1 && options.threads != 1) {
    batch_pool.emplace(options.threads);
    if (batch_pool->size() > 1) {
      shard_options.batch_pool = &*batch_pool;
    } else {
      batch_pool.reset();
    }
  }
  stats.batch_simd = simd::path_name(replay::batch_kernel_path());
  stats.batch_threads = batch_pool ? batch_pool->size() : 1;
  if (options.status != nullptr) {
    options.status->set_batch_kernel(stats.batch_simd, stats.batch_threads);
  }

  auto worker = [&](std::size_t worker_index) {
    for (;;) {
      if (stop_requested(options.stop)) return;
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= groups.size()) return;

      ShardCallbacks callbacks;
      callbacks.begin = [&](const Job& job) {
        if (options.status != nullptr) {
          options.status->worker_begin(worker_index, job.base_key());
        }
      };
      callbacks.done = [&](const Job& job, const std::vector<MetricRow>& trials,
                           bool was_recosted, double secs) {
        recorder.record(job, trials);
        executed_counter.add(1);
        completed.fetch_add(1, std::memory_order_relaxed);
        job_seconds.observe(secs);
        if (options.status != nullptr) {
          options.status->job_done(job.scenario->name, secs, was_recosted);
        }
      };

      try {
        const ShardStats shard = execute_shard(groups[i], shard_options, callbacks);
        simulated.fetch_add(shard.simulated, std::memory_order_relaxed);
        recosted.fetch_add(shard.recosted, std::memory_order_relaxed);
        batched.fetch_add(shard.batched, std::memory_order_relaxed);
        checked.fetch_add(shard.checked, std::memory_order_relaxed);
      } catch (const ShardError& e) {
        failed_counter.add(1);
        if (options.status != nullptr) options.status->job_failed();
        std::lock_guard lock(error_mutex);
        if (first_error.empty()) {
          first_error = e.job_key() + ": " + e.what();
        }
      }
      if (options.status != nullptr) options.status->worker_end(worker_index);
    }
  };

  engine::ThreadPool pool(options.threads);
  const std::size_t worker_count = std::min(pool.size(), groups.size());
  if (options.status != nullptr) {
    options.status->begin(stats.total, stats.skipped, worker_count);
  }
  // One persistent worker per pool thread popping from the shared queue;
  // parallel_for's static chunks would pin whole grid regions to one thread.
  pool.parallel_for(worker_count, worker);

  stats.simulated = simulated.load();
  stats.recosted = recosted.load();
  stats.batched = batched.load();
  stats.checked = checked.load();
  if (stop_requested(options.stop) && completed.load() < runnable.size()) {
    stats.interrupted = true;
    stats.executed = completed.load();
  }
  metrics.counter("campaign.jobs_simulated").add(stats.simulated);
  metrics.counter("campaign.jobs_recosted").add(stats.recosted);
  metrics.counter("campaign.jobs_batch_recosted").add(stats.batched);
  metrics.counter("campaign.replay_checked").add(stats.checked);
  metrics.gauge("campaign.tape_cache.hits").set(static_cast<double>(cache->hits()));
  metrics.gauge("campaign.tape_cache.misses")
      .set(static_cast<double>(cache->misses()));
  metrics.gauge("campaign.tape_cache.evictions")
      .set(static_cast<double>(cache->evictions()));
  metrics.gauge("campaign.tape_cache.rejected")
      .set(static_cast<double>(cache->rejected()));
  metrics.gauge("campaign.tape_cache.bytes")
      .set(static_cast<double>(cache->bytes()));
  if (options.status != nullptr) {
    options.status->set_tape_cache(cache->hits(), cache->misses(),
                                   cache->evictions(), cache->rejected(),
                                   cache->bytes());
    options.status->finish(stats.interrupted);
  }

  if (!first_error.empty()) {
    throw std::runtime_error("campaign job failed: " + first_error);
  }
  return stats;
}

}  // namespace pbw::campaign
