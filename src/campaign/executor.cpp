#include "campaign/executor.hpp"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <string>

#include "engine/thread_pool.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace pbw::campaign {

namespace {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// base_key() contains '/', '=', ';' — flatten to a portable filename.
std::string sanitize_filename(const std::string& key) {
  std::string out;
  out.reserve(key.size());
  for (const char c : key) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-';
    out.push_back(keep ? c : '_');
  }
  return out;
}

}  // namespace

RunStats run_campaign(const std::vector<Job>& jobs, Recorder& recorder,
                      const ExecutorOptions& options) {
  RunStats stats;
  stats.total = jobs.size();

  std::vector<const Job*> runnable;
  runnable.reserve(jobs.size());
  for (const auto& job : jobs) {
    if (!options.force && recorder.already_recorded(job)) {
      ++stats.skipped;
    } else {
      runnable.push_back(&job);
    }
  }
  stats.executed = runnable.size();
  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter("campaign.jobs_skipped").add(stats.skipped);
  if (runnable.empty()) return stats;

  if (!options.trace_dir.empty()) {
    std::filesystem::create_directories(options.trace_dir);
  }

  auto& executed_counter = metrics.counter("campaign.jobs_executed");
  auto& failed_counter = metrics.counter("campaign.jobs_failed");
  auto& job_seconds =
      metrics.histogram("campaign.job_seconds", 1e-4, 100.0, 24);

  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::string first_error;

  auto worker = [&](std::size_t) {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= runnable.size()) return;
      const Job& job = *runnable[i];
      const auto job_start = std::chrono::steady_clock::now();
      try {
        const util::RngStreams streams(job.seed);
        const std::uint64_t key_hash = fnv1a64(job.base_key());
        std::vector<MetricRow> trials;
        trials.reserve(static_cast<std::size_t>(job.trials));
        auto run_trials = [&] {
          for (int t = 0; t < job.trials; ++t) {
            auto rng = streams.stream(key_hash, static_cast<std::uint64_t>(t));
            trials.push_back(job.scenario->run(job.params, rng));
          }
        };
        if (options.trace_dir.empty()) {
          run_trials();
        } else {
          // Per-job sink: jobs share worker threads, but the thread-local
          // scope keeps each job's records in its own stream.
          obs::RecordingSink sink;
          {
            obs::ScopedSink scope(&sink);
            run_trials();
          }
          const auto path = std::filesystem::path(options.trace_dir) /
                            (sanitize_filename(job.base_key()) + ".jsonl");
          std::ofstream out(path);
          if (!out) {
            throw std::runtime_error("cannot write trace " + path.string());
          }
          obs::write_jsonl(sink.runs(), out);
        }
        recorder.record(job, trials);
        executed_counter.add(1);
        job_seconds.observe(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - job_start)
                                .count());
      } catch (const std::exception& e) {
        failed_counter.add(1);
        std::lock_guard lock(error_mutex);
        if (first_error.empty()) {
          first_error = job.base_key() + ": " + e.what();
        }
      }
    }
  };

  engine::ThreadPool pool(options.threads);
  // One persistent worker per pool thread popping from the shared queue;
  // parallel_for's static chunks would pin whole grid regions to one thread.
  pool.parallel_for(std::min(pool.size(), runnable.size()), worker);

  if (!first_error.empty()) {
    throw std::runtime_error("campaign job failed: " + first_error);
  }
  return stats;
}

}  // namespace pbw::campaign
