#include "campaign/sweep.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace pbw::campaign {

namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream stream(s);
  while (std::getline(stream, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("spec line " + std::to_string(line_no) + ": " +
                              what);
}

}  // namespace

std::string Job::base_key() const {
  return scenario->name + "|" + params.canonical() + "|seed=" +
         std::to_string(seed);
}

std::string Job::rng_key() const {
  std::string key = scenario->name + "|";
  bool first = true;
  for (const auto& [name, value] : params.entries()) {
    if (scenario->is_cost_only(params, name)) continue;
    if (!first) key += ",";
    key += name + "=" + value;
    first = false;
  }
  key += "|seed=" + std::to_string(seed);
  return key;
}

std::string Job::structural_key() const {
  return rng_key() + "|trials=" + std::to_string(trials);
}

AxisSplit split_axes(const Scenario& scenario, const ParamSet& params) {
  AxisSplit split;
  for (const auto& spec : scenario.params) {
    if (scenario.is_cost_only(params, spec.name)) {
      split.cost_only.push_back(spec.name);
    } else {
      split.structural.push_back(spec.name);
    }
  }
  return split;
}

std::vector<SweepSpec> parse_spec(const std::string& text) {
  std::vector<SweepSpec> specs;
  SweepSpec current;
  bool block_open = false;

  auto flush = [&](std::size_t line_no) {
    if (!block_open) return;
    if (current.scenario.empty()) fail(line_no, "sweep block has no scenario");
    specs.push_back(std::move(current));
    current = SweepSpec{};
    block_open = false;
  };

  std::istringstream stream(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    const auto hash = raw.find('#');
    const std::string line = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;
    if (line == "[sweep]") {
      flush(line_no);
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected 'key = value'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) fail(line_no, "empty key");
    if (value.empty()) fail(line_no, "empty value for '" + key + "'");
    block_open = true;

    if (key == "scenario") {
      if (!current.scenario.empty()) fail(line_no, "duplicate scenario key");
      current.scenario = value;
    } else if (key == "trials") {
      int trials = 0;
      const auto [p, ec] = std::from_chars(value.data(), value.data() + value.size(), trials);
      if (ec != std::errc{} || p != value.data() + value.size() || trials < 1) {
        fail(line_no, "trials must be a positive integer");
      }
      current.trials = trials;
    } else if (key == "seeds") {
      current.seeds.clear();
      for (const auto& item : split_list(value)) {
        std::uint64_t seed = 0;
        const auto [p, ec] = std::from_chars(item.data(), item.data() + item.size(), seed);
        if (ec != std::errc{} || p != item.data() + item.size()) {
          fail(line_no, "bad seed '" + item + "'");
        }
        current.seeds.push_back(seed);
      }
      if (current.seeds.empty()) fail(line_no, "empty seed list");
    } else {
      for (const auto& [name, values] : current.axes) {
        if (name == key) fail(line_no, "duplicate axis '" + key + "'");
      }
      auto values = split_list(value);
      if (values.empty()) fail(line_no, "empty value list for '" + key + "'");
      current.axes.emplace_back(key, std::move(values));
    }
  }
  flush(line_no + 1);
  if (specs.empty()) throw std::invalid_argument("spec contains no sweep block");
  return specs;
}

std::vector<Job> expand(const SweepSpec& spec, const Registry& registry) {
  const Scenario* scenario = registry.find(spec.scenario);
  if (scenario == nullptr) {
    throw std::invalid_argument("unknown scenario '" + spec.scenario + "'");
  }
  for (const auto& [name, values] : spec.axes) {
    if (scenario->find_param(name) == nullptr) {
      throw std::invalid_argument("scenario '" + spec.scenario +
                                  "' has no parameter '" + name + "'");
    }
  }

  std::size_t points = 1;
  for (const auto& [name, values] : spec.axes) points *= values.size();

  std::vector<Job> jobs;
  jobs.reserve(points * spec.seeds.size());
  for (std::size_t index = 0; index < points; ++index) {
    ParamSet params;
    // Defaults first, then the grid point overrides (last axis fastest).
    for (const auto& p : scenario->params) params.set(p.name, p.default_value);
    std::size_t rem = index;
    for (auto it = spec.axes.rbegin(); it != spec.axes.rend(); ++it) {
      const auto& [name, values] = *it;
      params.set(name, values[rem % values.size()]);
      rem /= values.size();
    }
    for (const std::uint64_t seed : spec.seeds) {
      Job job;
      job.scenario = scenario;
      job.params = params;
      job.seed = seed;
      job.trials = spec.trials;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

std::vector<Job> expand_all(const std::vector<SweepSpec>& specs,
                            const Registry& registry) {
  std::vector<Job> jobs;
  for (const auto& spec : specs) {
    auto block = expand(spec, registry);
    jobs.insert(jobs.end(), std::make_move_iterator(block.begin()),
                std::make_move_iterator(block.end()));
  }
  return jobs;
}

}  // namespace pbw::campaign
