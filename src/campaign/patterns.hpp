// Fixed communication patterns shared by the cost-grid scenarios.
//
// A pattern's execution depends only on (pattern, p, h, rounds, seed) —
// every model parameter is a pure charging knob — which is what lets
// grid.pattern and contour.map collapse a dense cost grid to one
// simulation per structural point and recost the rest from its tape.
#pragma once

#include <cstdint>
#include <string>

#include "engine/machine.hpp"
#include "engine/program.hpp"

namespace pbw::campaign {

enum class Pattern { kOneToAll, kRing, kRandom, kRandomMem };

/// Parses a pattern parameter value ("one_to_all" | "ring" | "random" |
/// "random_mem"); `context` prefixes the error message with the failing
/// scenario/parameter.
[[nodiscard]] Pattern parse_pattern(const std::string& name,
                                    const std::string& context);

/// Shared-memory cells the random_mem pattern reads from.  Disjoint from
/// the per-processor cells it writes, so validation never sees a
/// same-superstep read/write race; 256 cells keep read contention (kappa)
/// non-trivial at every p.
inline constexpr std::uint64_t kReadCells = 256;

/// The fixed pattern as a superstep program: `rounds` communication
/// supersteps, one unit of local work per processor per round.  All
/// randomness comes from ctx.rng() — seeded by MachineOptions::seed, which
/// the scenario draws from the trial stream — so the execution is
/// identical at every point of a cost-only grid.
class PatternProgram final : public engine::SuperstepProgram {
 public:
  PatternProgram(Pattern pattern, std::uint32_t h, std::uint64_t rounds)
      : pattern_(pattern), h_(h), rounds_(rounds) {}

  void setup(engine::Machine& machine) override;
  bool step(engine::ProcContext& ctx) override;

 private:
  Pattern pattern_;
  std::uint32_t h_;
  std::uint64_t rounds_;
};

}  // namespace pbw::campaign
