// Table 1 as registered scenarios (port of bench_table1).
//
// One scenario per Table 1 row.  Each runs the locally-limited and the
// matched globally-limited algorithm at n = p, m = p/g and emits both
// measured times, the paper's bound formulas, and the separation —
// measured local/global ratio next to the predicted Theta.  `sep_ratio`
// (measured / predicted) is the number regression dashboards watch: Table 1
// asserts it stays within a constant.
#include <algorithm>
#include <cstdint>
#include <vector>

#include "algos/broadcast.hpp"
#include "algos/list_ranking.hpp"
#include "algos/one_to_all.hpp"
#include "algos/reduce.hpp"
#include "algos/sorting.hpp"
#include "campaign/scenario.hpp"
#include "core/bounds.hpp"
#include "core/model/models.hpp"

namespace pbw::campaign {

namespace {

namespace bounds = core::bounds;

struct Table1Point {
  core::ModelParams prm;
  std::uint32_t n = 0;
  bool qsm = false;
};

Table1Point point(const ParamSet& params) {
  Table1Point pt;
  pt.prm.p = static_cast<std::uint32_t>(params.get_int("p"));
  pt.prm.g = params.get_double("g");
  pt.prm.L = params.get_double("L");
  pt.prm.m = std::max(1u, static_cast<std::uint32_t>(
                              static_cast<double>(pt.prm.p) / pt.prm.g));
  pt.n = pt.prm.p;  // Table 1 is stated for n = p
  if (params.has("family")) pt.qsm = params.get("family") == "qsm";
  return pt;
}

std::vector<engine::Word> random_words(std::uint32_t n, util::Xoshiro256& rng,
                                       std::uint64_t bound) {
  std::vector<engine::Word> v(n);
  for (auto& x : v) x = static_cast<engine::Word>(rng.below(bound));
  return v;
}

/// Shared emission: the uniform metric row every Table 1 scenario records.
MetricRow emit(double time_local, double time_global, double bound_local,
               double bound_global, double sep_pred, bool correct) {
  const double sep_meas = time_global > 0 ? time_local / time_global : 0.0;
  const double sep_ratio = sep_pred > 0 ? sep_meas / sep_pred : 0.0;
  // Table 1's claim is Theta(): measured/predicted separation within a
  // constant.  [1/16, 16] comfortably covers the hidden constants at n = p
  // (observed range ~[0.95, 7.3]; the largest is list ranking's
  // contraction rounds).
  const bool within = sep_ratio >= 1.0 / 16 && sep_ratio <= 16.0;
  return {
      {"time_local", time_local},     {"time_global", time_global},
      {"bound_local", bound_local},   {"bound_global", bound_global},
      {"sep_meas", sep_meas},         {"sep_pred", sep_pred},
      {"sep_ratio", sep_ratio},       {"within_theta", within ? 1.0 : 0.0},
      {"correct", correct ? 1.0 : 0.0},
  };
}

const std::vector<ParamSpec> kFamilyParams = {
    {"p", "1024", "processors (n = p)"},
    {"g", "16", "per-processor gap; m = p/g"},
    {"L", "16", "BSP latency/periodicity"},
    {"family", "bsp", "model family: bsp or qsm"},
};

const std::vector<ParamSpec> kPlainParams = {
    {"p", "1024", "processors (n = p)"},
    {"g", "16", "per-processor gap; m = p/g"},
    {"L", "16", "BSP latency/periodicity"},
};

MetricRow run_one_to_all(const ParamSet& params, util::Xoshiro256&) {
  const auto pt = point(params);
  if (pt.qsm) {
    const core::QsmG local(pt.prm);
    const core::QsmM global(pt.prm);
    const auto rg = algos::one_to_all_qsm(local, pt.prm.m);
    const auto rm = algos::one_to_all_qsm(global, pt.prm.m);
    return emit(rg.time, rm.time,
                bounds::one_to_all_local(pt.prm.p, pt.prm.g, pt.prm.L, false),
                bounds::one_to_all_global(pt.prm.p, pt.prm.L, false), pt.prm.g,
                rg.correct && rm.correct);
  }
  const core::BspG local(pt.prm);
  const core::BspM global(pt.prm);
  const auto rg = algos::one_to_all_bsp(local);
  const auto rm = algos::one_to_all_bsp(global);
  return emit(rg.time, rm.time,
              bounds::one_to_all_local(pt.prm.p, pt.prm.g, pt.prm.L, true),
              bounds::one_to_all_global(pt.prm.p, pt.prm.L, true), pt.prm.g,
              rg.correct && rm.correct);
}

MetricRow run_broadcast(const ParamSet& params, util::Xoshiro256&) {
  const auto pt = point(params);
  if (pt.qsm) {
    const core::QsmG local(pt.prm);
    const core::QsmM global(pt.prm);
    const auto rg = algos::broadcast_qsm_g(
        local, std::max(2u, static_cast<std::uint32_t>(pt.prm.g)), 7);
    const auto rm = algos::broadcast_qsm_m(global, pt.prm.m, 7);
    return emit(rg.time, rm.time, bounds::broadcast_qsm_g(pt.prm.p, pt.prm.g),
                bounds::broadcast_qsm_m(pt.prm.p, pt.prm.m),
                bounds::lg(pt.prm.p) / bounds::lg(pt.prm.g),
                rg.correct && rm.correct);
  }
  const core::BspG local(pt.prm);
  const core::BspM global(pt.prm);
  const auto arity =
      std::max(1u, static_cast<std::uint32_t>(pt.prm.L / pt.prm.g));
  const auto rg = algos::broadcast_bsp_tree(local, arity, 7);
  const auto rm = algos::broadcast_bsp_m(
      global, pt.prm.m, static_cast<std::uint32_t>(pt.prm.L), 7);
  const double bg = bounds::broadcast_bsp_g(pt.prm.p, pt.prm.g, pt.prm.L);
  const double bm = bounds::broadcast_bsp_m(pt.prm.p, pt.prm.m, pt.prm.L);
  return emit(rg.time, rm.time, bg, bm, bg / bm, rg.correct && rm.correct);
}

MetricRow run_summation(const ParamSet& params, util::Xoshiro256& rng) {
  const auto pt = point(params);
  const auto inputs = random_words(pt.n, rng, 1 << 20);
  if (pt.qsm) {  // parity row
    const core::QsmG local(pt.prm);
    const core::QsmM global(pt.prm);
    const auto rg = algos::reduce_qsm(local, inputs, pt.prm.p, 2, pt.prm.m,
                                      algos::ReduceOp::kXor);
    const auto rm = algos::reduce_qsm(global, inputs, pt.prm.m, 2, pt.prm.m,
                                      algos::ReduceOp::kXor);
    const double bg = bounds::reduce_qsm_g_lower(pt.n, pt.prm.g);
    const double bm = bounds::reduce_qsm_m(pt.n, pt.prm.m);
    return emit(rg.time, rm.time, bg, bm, bg / bm, rg.correct && rm.correct);
  }
  const core::BspG local(pt.prm);
  const core::BspM global(pt.prm);
  const auto arity_g =
      std::max(2u, static_cast<std::uint32_t>(pt.prm.L / pt.prm.g));
  const auto rg =
      algos::reduce_bsp(local, inputs, pt.prm.p, arity_g, algos::ReduceOp::kSum);
  const auto rm = algos::reduce_bsp(global, inputs, pt.prm.m,
                                    static_cast<std::uint32_t>(pt.prm.L),
                                    algos::ReduceOp::kSum);
  const double bg = bounds::reduce_bsp_g(pt.n, pt.prm.g, pt.prm.L);
  const double bm = bounds::reduce_bsp_m(pt.n, pt.prm.m, pt.prm.L);
  return emit(rg.time, rm.time, bg, bm, bg / bm, rg.correct && rm.correct);
}

MetricRow run_list_ranking(const ParamSet& params, util::Xoshiro256& rng) {
  const auto pt = point(params);
  const auto succ = algos::random_list(pt.n, rng());
  const core::QsmG local(pt.prm);
  const core::QsmM global(pt.prm);
  const auto rg = algos::list_rank_qsm(local, succ, pt.prm.m, pt.prm.m);
  const auto rm = algos::list_rank_qsm(global, succ, pt.prm.m, pt.prm.m);
  const double bg = bounds::list_rank_local_lower(pt.n, pt.prm.g, pt.prm.L, false);
  const double bm = bounds::list_rank_qsm_m(pt.n, pt.prm.m);
  return emit(rg.time, rm.time, bg, bm, bg / bm, rg.correct && rm.correct);
}

MetricRow run_sorting(const ParamSet& params, util::Xoshiro256& rng) {
  const auto pt = point(params);
  const auto keys = random_words(pt.n, rng, 1 << 30);
  const core::BspG local(pt.prm);
  const core::BspM global(pt.prm);
  const auto rg = algos::sample_sort_bsp(local, keys, pt.prm.m);
  const auto rm = algos::sample_sort_bsp(global, keys, pt.prm.m);
  const double bg = bounds::sort_local_lower(pt.n, pt.prm.g, pt.prm.L, true);
  const double bm = bounds::sort_bsp_m(pt.n, pt.prm.m, pt.prm.L);
  return emit(rg.time, rm.time, bg, bm, bg / bm, rg.correct && rm.correct);
}

}  // namespace

void register_table1_scenarios(Registry& registry) {
  registry.add({"table1.one_to_all",
                "one-to-all personalized communication, local vs global",
                kFamilyParams, run_one_to_all});
  registry.add({"table1.broadcast", "broadcasting one value to p processors",
                kFamilyParams, run_broadcast});
  registry.add({"table1.summation",
                "summation (bsp) / parity (qsm) of n = p inputs",
                kFamilyParams, run_summation});
  registry.add({"table1.list_ranking",
                "list ranking via randomized splice contraction (qsm pair)",
                kPlainParams, run_list_ranking});
  registry.add({"table1.sorting", "sample sort of n = p keys (bsp pair)",
                kPlainParams, run_sorting});
}

}  // namespace pbw::campaign
