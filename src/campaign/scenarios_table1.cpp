// Table 1 as registered scenarios (port of bench_table1).
//
// One scenario per Table 1 row.  Each runs the locally-limited and the
// matched globally-limited algorithm at n = p, m = p/g and emits both
// measured times, the paper's bound formulas, and the separation —
// measured local/global ratio next to the predicted Theta.  `sep_ratio`
// (measured / predicted) is the number regression dashboards watch: Table 1
// asserts it stays within a constant.
#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "algos/broadcast.hpp"
#include "algos/list_ranking.hpp"
#include "algos/one_to_all.hpp"
#include "algos/reduce.hpp"
#include "algos/sorting.hpp"
#include "campaign/scenario.hpp"
#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "obs/trace.hpp"
#include "replay/tape.hpp"

namespace pbw::campaign {

namespace {

namespace bounds = core::bounds;

struct Table1Point {
  core::ModelParams prm;
  std::uint32_t n = 0;
  bool qsm = false;
};

Table1Point point(const ParamSet& params) {
  Table1Point pt;
  pt.prm.p = static_cast<std::uint32_t>(params.get_int("p"));
  pt.prm.g = params.get_double("g");
  pt.prm.L = params.get_double("L");
  pt.prm.m = std::max(1u, static_cast<std::uint32_t>(
                              static_cast<double>(pt.prm.p) / pt.prm.g));
  pt.n = pt.prm.p;  // Table 1 is stated for n = p
  if (params.has("family")) pt.qsm = params.get("family") == "qsm";
  return pt;
}

std::vector<engine::Word> random_words(std::uint32_t n, util::Xoshiro256& rng,
                                       std::uint64_t bound) {
  std::vector<engine::Word> v(n);
  for (auto& x : v) x = static_cast<engine::Word>(rng.below(bound));
  return v;
}

/// Shared emission: the uniform metric row every Table 1 scenario records.
MetricRow emit(double time_local, double time_global, double bound_local,
               double bound_global, double sep_pred, bool correct) {
  const double sep_meas = time_global > 0 ? time_local / time_global : 0.0;
  const double sep_ratio = sep_pred > 0 ? sep_meas / sep_pred : 0.0;
  // Table 1's claim is Theta(): measured/predicted separation within a
  // constant.  [1/16, 16] comfortably covers the hidden constants at n = p
  // (observed range ~[0.95, 7.3]; the largest is list ranking's
  // contraction rounds).
  const bool within = sep_ratio >= 1.0 / 16 && sep_ratio <= 16.0;
  return {
      {"time_local", time_local},     {"time_global", time_global},
      {"bound_local", bound_local},   {"bound_global", bound_global},
      {"sep_meas", sep_meas},         {"sep_pred", sep_pred},
      {"sep_ratio", sep_ratio},       {"within_theta", within ? 1.0 : 0.0},
      {"correct", correct ? 1.0 : 0.0},
  };
}

const std::vector<ParamSpec> kFamilyParams = {
    {"p", "1024", "processors (n = p)"},
    {"g", "16", "per-processor gap; m = p/g"},
    {"L", "16", "BSP latency/periodicity"},
    {"family", "bsp", "model family: bsp or qsm"},
};

// List ranking and sorting never feed L into program construction (their
// staggering derives from m = p/g alone), so L is a pure charging knob.
const std::vector<ParamSpec> kPlainParams = {
    {"p", "1024", "processors (n = p)"},
    {"g", "16", "per-processor gap; m = p/g"},
    {"L", "16", "BSP latency/periodicity", /*cost_only=*/true},
};

bool family_is_qsm(const ParamSet& params) {
  return params.has("family") && params.get("family") == "qsm";
}

/// Recosts one captured run under `model`, mirroring a traced fresh run
/// when a trace sink is live on this thread (--trace-dir campaigns).
double recost_time(const replay::StatsTape& tape,
                   const engine::CostModel& model) {
  if (auto* sink = obs::current_sink()) {
    replay::recost_to_sink(tape, model, *sink);
  }
  return replay::recost(tape, model).total_time;
}

/// The captured row's value for `name` — the channel for metrics that are
/// execution facts rather than cost derivations (the correctness flag).
double captured_metric(const replay::CapturedTrial& trial, const char* name) {
  for (const auto& [key, value] : trial.metrics) {
    if (key == name) return value;
  }
  throw std::runtime_error(std::string("captured trial has no metric '") +
                           name + "'");
}

/// Table 1 trials run exactly two machines: local model first, global
/// second — so a captured trial is exactly two tapes.
std::pair<const replay::StatsTape*, const replay::StatsTape*> table1_tapes(
    const replay::CapturedTrial& trial) {
  if (trial.tapes.size() != 2) {
    throw std::runtime_error("table1 replay expects 2 tapes, got " +
                             std::to_string(trial.tapes.size()));
  }
  return {&trial.tapes[0], &trial.tapes[1]};
}

MetricRow run_one_to_all(const ParamSet& params, util::Xoshiro256&) {
  const auto pt = point(params);
  if (pt.qsm) {
    const core::QsmG local(pt.prm);
    const core::QsmM global(pt.prm);
    const auto rg = algos::one_to_all_qsm(local, pt.prm.m);
    const auto rm = algos::one_to_all_qsm(global, pt.prm.m);
    return emit(rg.time, rm.time,
                bounds::one_to_all_local(pt.prm.p, pt.prm.g, pt.prm.L, false),
                bounds::one_to_all_global(pt.prm.p, pt.prm.L, false), pt.prm.g,
                rg.correct && rm.correct);
  }
  const core::BspG local(pt.prm);
  const core::BspM global(pt.prm);
  const auto rg = algos::one_to_all_bsp(local);
  const auto rm = algos::one_to_all_bsp(global);
  return emit(rg.time, rm.time,
              bounds::one_to_all_local(pt.prm.p, pt.prm.g, pt.prm.L, true),
              bounds::one_to_all_global(pt.prm.p, pt.prm.L, true), pt.prm.g,
              rg.correct && rm.correct);
}

MetricRow run_broadcast(const ParamSet& params, util::Xoshiro256&) {
  const auto pt = point(params);
  if (pt.qsm) {
    const core::QsmG local(pt.prm);
    const core::QsmM global(pt.prm);
    const auto rg = algos::broadcast_qsm_g(
        local, std::max(2u, static_cast<std::uint32_t>(pt.prm.g)), 7);
    const auto rm = algos::broadcast_qsm_m(global, pt.prm.m, 7);
    return emit(rg.time, rm.time, bounds::broadcast_qsm_g(pt.prm.p, pt.prm.g),
                bounds::broadcast_qsm_m(pt.prm.p, pt.prm.m),
                bounds::lg(pt.prm.p) / bounds::lg(pt.prm.g),
                rg.correct && rm.correct);
  }
  const core::BspG local(pt.prm);
  const core::BspM global(pt.prm);
  const auto arity =
      std::max(1u, static_cast<std::uint32_t>(pt.prm.L / pt.prm.g));
  const auto rg = algos::broadcast_bsp_tree(local, arity, 7);
  const auto rm = algos::broadcast_bsp_m(
      global, pt.prm.m, static_cast<std::uint32_t>(pt.prm.L), 7);
  const double bg = bounds::broadcast_bsp_g(pt.prm.p, pt.prm.g, pt.prm.L);
  const double bm = bounds::broadcast_bsp_m(pt.prm.p, pt.prm.m, pt.prm.L);
  return emit(rg.time, rm.time, bg, bm, bg / bm, rg.correct && rm.correct);
}

MetricRow run_summation(const ParamSet& params, util::Xoshiro256& rng) {
  const auto pt = point(params);
  const auto inputs = random_words(pt.n, rng, 1 << 20);
  if (pt.qsm) {  // parity row
    const core::QsmG local(pt.prm);
    const core::QsmM global(pt.prm);
    const auto rg = algos::reduce_qsm(local, inputs, pt.prm.p, 2, pt.prm.m,
                                      algos::ReduceOp::kXor);
    const auto rm = algos::reduce_qsm(global, inputs, pt.prm.m, 2, pt.prm.m,
                                      algos::ReduceOp::kXor);
    const double bg = bounds::reduce_qsm_g_lower(pt.n, pt.prm.g);
    const double bm = bounds::reduce_qsm_m(pt.n, pt.prm.m);
    return emit(rg.time, rm.time, bg, bm, bg / bm, rg.correct && rm.correct);
  }
  const core::BspG local(pt.prm);
  const core::BspM global(pt.prm);
  const auto arity_g =
      std::max(2u, static_cast<std::uint32_t>(pt.prm.L / pt.prm.g));
  const auto rg =
      algos::reduce_bsp(local, inputs, pt.prm.p, arity_g, algos::ReduceOp::kSum);
  const auto rm = algos::reduce_bsp(global, inputs, pt.prm.m,
                                    static_cast<std::uint32_t>(pt.prm.L),
                                    algos::ReduceOp::kSum);
  const double bg = bounds::reduce_bsp_g(pt.n, pt.prm.g, pt.prm.L);
  const double bm = bounds::reduce_bsp_m(pt.n, pt.prm.m, pt.prm.L);
  return emit(rg.time, rm.time, bg, bm, bg / bm, rg.correct && rm.correct);
}

MetricRow run_list_ranking(const ParamSet& params, util::Xoshiro256& rng) {
  const auto pt = point(params);
  const auto succ = algos::random_list(pt.n, rng());
  const core::QsmG local(pt.prm);
  const core::QsmM global(pt.prm);
  const auto rg = algos::list_rank_qsm(local, succ, pt.prm.m, pt.prm.m);
  const auto rm = algos::list_rank_qsm(global, succ, pt.prm.m, pt.prm.m);
  const double bg = bounds::list_rank_local_lower(pt.n, pt.prm.g, pt.prm.L, false);
  const double bm = bounds::list_rank_qsm_m(pt.n, pt.prm.m);
  return emit(rg.time, rm.time, bg, bm, bg / bm, rg.correct && rm.correct);
}

MetricRow run_sorting(const ParamSet& params, util::Xoshiro256& rng) {
  const auto pt = point(params);
  const auto keys = random_words(pt.n, rng, 1 << 30);
  const core::BspG local(pt.prm);
  const core::BspM global(pt.prm);
  const auto rg = algos::sample_sort_bsp(local, keys, pt.prm.m);
  const auto rm = algos::sample_sort_bsp(global, keys, pt.prm.m);
  const double bg = bounds::sort_local_lower(pt.n, pt.prm.g, pt.prm.L, true);
  const double bm = bounds::sort_bsp_m(pt.n, pt.prm.m, pt.prm.L);
  return emit(rg.time, rm.time, bg, bm, bg / bm, rg.correct && rm.correct);
}

// ---- replay: recost the captured (local, global) tapes at new params ------
//
// Each replay function repeats its run_ counterpart's arithmetic with the
// machine runs swapped for recost_time(), so the emitted row is bit-equal
// to simulating the point fresh (enforced by --replay-check and
// test_replay).  Correctness flags are execution facts, copied from the
// captured row.

MetricRow replay_one_to_all(const ParamSet& params,
                            const replay::CapturedTrial& trial) {
  const auto pt = point(params);
  const auto [local_tape, global_tape] = table1_tapes(trial);
  const bool correct = captured_metric(trial, "correct") != 0.0;
  if (pt.qsm) {
    const core::QsmG local(pt.prm);
    const core::QsmM global(pt.prm);
    return emit(recost_time(*local_tape, local),
                recost_time(*global_tape, global),
                bounds::one_to_all_local(pt.prm.p, pt.prm.g, pt.prm.L, false),
                bounds::one_to_all_global(pt.prm.p, pt.prm.L, false), pt.prm.g,
                correct);
  }
  const core::BspG local(pt.prm);
  const core::BspM global(pt.prm);
  return emit(recost_time(*local_tape, local),
              recost_time(*global_tape, global),
              bounds::one_to_all_local(pt.prm.p, pt.prm.g, pt.prm.L, true),
              bounds::one_to_all_global(pt.prm.p, pt.prm.L, true), pt.prm.g,
              correct);
}

MetricRow replay_broadcast(const ParamSet& params,
                           const replay::CapturedTrial& trial) {
  const auto pt = point(params);
  const auto [local_tape, global_tape] = table1_tapes(trial);
  const bool correct = captured_metric(trial, "correct") != 0.0;
  if (pt.qsm) {
    const core::QsmG local(pt.prm);
    const core::QsmM global(pt.prm);
    return emit(recost_time(*local_tape, local),
                recost_time(*global_tape, global),
                bounds::broadcast_qsm_g(pt.prm.p, pt.prm.g),
                bounds::broadcast_qsm_m(pt.prm.p, pt.prm.m),
                bounds::lg(pt.prm.p) / bounds::lg(pt.prm.g), correct);
  }
  const core::BspG local(pt.prm);
  const core::BspM global(pt.prm);
  const double bg = bounds::broadcast_bsp_g(pt.prm.p, pt.prm.g, pt.prm.L);
  const double bm = bounds::broadcast_bsp_m(pt.prm.p, pt.prm.m, pt.prm.L);
  return emit(recost_time(*local_tape, local),
              recost_time(*global_tape, global), bg, bm, bg / bm, correct);
}

MetricRow replay_summation(const ParamSet& params,
                           const replay::CapturedTrial& trial) {
  const auto pt = point(params);
  const auto [local_tape, global_tape] = table1_tapes(trial);
  const bool correct = captured_metric(trial, "correct") != 0.0;
  if (pt.qsm) {
    const core::QsmG local(pt.prm);
    const core::QsmM global(pt.prm);
    const double bg = bounds::reduce_qsm_g_lower(pt.n, pt.prm.g);
    const double bm = bounds::reduce_qsm_m(pt.n, pt.prm.m);
    return emit(recost_time(*local_tape, local),
                recost_time(*global_tape, global), bg, bm, bg / bm, correct);
  }
  const core::BspG local(pt.prm);
  const core::BspM global(pt.prm);
  const double bg = bounds::reduce_bsp_g(pt.n, pt.prm.g, pt.prm.L);
  const double bm = bounds::reduce_bsp_m(pt.n, pt.prm.m, pt.prm.L);
  return emit(recost_time(*local_tape, local),
              recost_time(*global_tape, global), bg, bm, bg / bm, correct);
}

MetricRow replay_list_ranking(const ParamSet& params,
                              const replay::CapturedTrial& trial) {
  const auto pt = point(params);
  const auto [local_tape, global_tape] = table1_tapes(trial);
  const bool correct = captured_metric(trial, "correct") != 0.0;
  const core::QsmG local(pt.prm);
  const core::QsmM global(pt.prm);
  const double bg =
      bounds::list_rank_local_lower(pt.n, pt.prm.g, pt.prm.L, false);
  const double bm = bounds::list_rank_qsm_m(pt.n, pt.prm.m);
  return emit(recost_time(*local_tape, local),
              recost_time(*global_tape, global), bg, bm, bg / bm, correct);
}

MetricRow replay_sorting(const ParamSet& params,
                         const replay::CapturedTrial& trial) {
  const auto pt = point(params);
  const auto [local_tape, global_tape] = table1_tapes(trial);
  const bool correct = captured_metric(trial, "correct") != 0.0;
  const core::BspG local(pt.prm);
  const core::BspM global(pt.prm);
  const double bg = bounds::sort_local_lower(pt.n, pt.prm.g, pt.prm.L, true);
  const double bm = bounds::sort_bsp_m(pt.n, pt.prm.m, pt.prm.L);
  return emit(recost_time(*local_tape, local),
              recost_time(*global_tape, global), bg, bm, bg / bm, correct);
}

// ---- axis partitions ------------------------------------------------------
//
// m = p/g feeds program construction wherever an algorithm staggers by the
// aggregate limit, which makes g structural there; L is structural exactly
// where it sets a tree arity.  Derived per scenario:
//
//   one_to_all:  bsp uses neither g nor L structurally; qsm staggers by m.
//   broadcast:   bsp arity = L/g (both structural); qsm fan-outs use g and
//                m = p/g, L unused.
//   summation:   bsp arity = max(2, L/g) and the global run's arity is L;
//                qsm arities are 2 and m = p/g, L unused.

bool one_to_all_cost_only(const ParamSet& params, const std::string& name) {
  if (name == "L") return true;
  if (name == "g") return !family_is_qsm(params);
  return false;
}

bool qsm_l_cost_only(const ParamSet& params, const std::string& name) {
  return name == "L" && family_is_qsm(params);
}

Scenario table1_scenario(
    const char* name, const char* description, std::vector<ParamSpec> params,
    MetricRow (*run)(const ParamSet&, util::Xoshiro256&),
    MetricRow (*replay)(const ParamSet&, const replay::CapturedTrial&),
    bool (*cost_only_at)(const ParamSet&, const std::string&) = nullptr) {
  Scenario s;
  s.name = name;
  s.description = description;
  s.params = std::move(params);
  s.run = run;
  s.replay = replay;
  if (cost_only_at != nullptr) s.cost_only_at = cost_only_at;
  return s;
}

}  // namespace

void register_table1_scenarios(Registry& registry) {
  registry.add(table1_scenario(
      "table1.one_to_all",
      "one-to-all personalized communication, local vs global", kFamilyParams,
      run_one_to_all, replay_one_to_all, one_to_all_cost_only));
  registry.add(table1_scenario(
      "table1.broadcast", "broadcasting one value to p processors",
      kFamilyParams, run_broadcast, replay_broadcast, qsm_l_cost_only));
  registry.add(table1_scenario(
      "table1.summation", "summation (bsp) / parity (qsm) of n = p inputs",
      kFamilyParams, run_summation, replay_summation, qsm_l_cost_only));
  registry.add(table1_scenario(
      "table1.list_ranking",
      "list ranking via randomized splice contraction (qsm pair)",
      kPlainParams, run_list_ranking, replay_list_ranking));
  registry.add(table1_scenario("table1.sorting",
                               "sample sort of n = p keys (bsp pair)",
                               kPlainParams, run_sorting, replay_sorting));
}

}  // namespace pbw::campaign
