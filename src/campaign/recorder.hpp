// Result recording: per-job aggregation, JSON Lines output, resume manifest.
//
// Each completed job becomes one JSON object on one line of the output
// file, and its manifest key — scenario | canonical params | seed | git
// version — is appended to `<out>.manifest`.  A later run with the same
// spec skips every job whose key is already in the manifest, so growing a
// sweep re-simulates only the new grid points, and results are never
// silently mixed across code versions (the git-describe component changes
// whenever the binary does).
#pragma once

#include <cstddef>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "campaign/sweep.hpp"
#include "util/json.hpp"

namespace pbw::campaign {

/// `git describe --always --dirty` at configure time ("unknown" outside a
/// git checkout).
[[nodiscard]] const char* git_version();

class Recorder {
 public:
  /// Opens `path` for appending and loads the resume manifest from
  /// `path + ".manifest"` if present.  `version` is the code-version
  /// component of every key (defaults to git_version()).
  explicit Recorder(std::string path, std::string version = git_version());

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::string& version() const noexcept { return version_; }

  [[nodiscard]] std::string key_for(const Job& job) const {
    return job.base_key() + "|git=" + version_;
  }

  [[nodiscard]] bool already_recorded(const Job& job) const;

  /// Number of keys in the manifest (previously + newly recorded).
  [[nodiscard]] std::size_t recorded_count() const;

  /// Aggregates the trial rows and writes the record + manifest entry.
  /// Thread-safe; returns the emitted record.
  util::Json record(const Job& job, const std::vector<MetricRow>& trials);

  /// Per-metric summary over trials: n/mean/stddev/min/max/p50/p95.
  /// Exposed for tests and for presets that format results themselves.
  [[nodiscard]] static util::Json aggregate(const std::vector<MetricRow>& trials);

 private:
  std::string path_;
  std::string version_;
  mutable std::mutex mutex_;
  std::set<std::string> keys_;
  std::ofstream out_;
  std::ofstream manifest_;
};

}  // namespace pbw::campaign
