// Result recording: per-job aggregation, JSON Lines output, resume manifest.
//
// Each completed job becomes one JSON object on one line of the output
// file, and its manifest key — scenario | canonical params | seed | git
// version — is appended to `<out>.manifest`.  A later run with the same
// spec skips every job whose key is already in the manifest, so growing a
// sweep re-simulates only the new grid points, and results are never
// silently mixed across code versions (the git-describe component changes
// whenever the binary does).
//
// Durability: every manifest append is flushed *and* fsync'd before the
// key counts as recorded, and loading tolerates a truncated final line
// (no trailing newline ⇒ the append died mid-write and the line is
// dropped), so a crash — power loss, SIGKILL, a fleet worker dying — can
// cost at most the in-flight job, never the manifest.
#pragma once

#include <cstddef>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "campaign/sweep.hpp"
#include "util/json.hpp"

namespace pbw::campaign {

/// `git describe --always --dirty` at configure time ("unknown" outside a
/// git checkout).
[[nodiscard]] const char* git_version();

class Recorder {
 public:
  /// Opens `path` for appending and loads the resume manifest from
  /// `path + ".manifest"` if present.  `version` is the code-version
  /// component of every key (defaults to git_version()).
  explicit Recorder(std::string path, std::string version = git_version());
  ~Recorder();
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::string& version() const noexcept { return version_; }

  [[nodiscard]] std::string key_for(const Job& job) const {
    return job.base_key() + "|git=" + version_;
  }

  [[nodiscard]] bool already_recorded(const Job& job) const;

  /// Number of keys in the manifest (previously + newly recorded).
  [[nodiscard]] std::size_t recorded_count() const;

  /// Aggregates the trial rows and writes the record + manifest entry.
  /// Thread-safe; returns the emitted record.
  util::Json record(const Job& job, const std::vector<MetricRow>& trials);

  /// Idempotent record: atomically checks the manifest and records only
  /// when the key is absent — the fleet coordinator's merge-from-stream
  /// primitive (a crashed-and-reassigned lease may deliver the same job
  /// from two workers; the second copy is dropped here).  Returns true
  /// when the job was recorded by this call.
  bool merge(const Job& job, const std::vector<MetricRow>& trials);

  /// Per-metric summary over trials: n/mean/stddev/min/max/p50/p95.
  /// Exposed for tests and for presets that format results themselves.
  [[nodiscard]] static util::Json aggregate(const std::vector<MetricRow>& trials);

 private:
  util::Json record_locked(const Job& job, const std::vector<MetricRow>& trials);

  std::string path_;
  std::string version_;
  mutable std::mutex mutex_;
  std::set<std::string> keys_;
  std::ofstream out_;
  /// POSIX fd (O_APPEND) instead of an ofstream: each key is written with
  /// one write(2) and fsync'd so a recorded job survives a crash.
  int manifest_fd_ = -1;
};

}  // namespace pbw::campaign
