#include "campaign/scenario.hpp"

#include <algorithm>
#include <stdexcept>

namespace pbw::campaign {

const ParamSpec* Scenario::find_param(const std::string& param_name) const {
  for (const auto& spec : params) {
    if (spec.name == param_name) return &spec;
  }
  return nullptr;
}

bool Scenario::is_cost_only(const ParamSet& point,
                            const std::string& param) const {
  if (!replayable()) return false;
  if (cost_only_at) return cost_only_at(point, param);
  const ParamSpec* spec = find_param(param);
  return spec != nullptr && spec->cost_only;
}

Registry& Registry::instance() {
  static Registry* registry = [] {
    auto* r = new Registry();
    register_table1_scenarios(*r);
    register_bench_scenarios(*r);
    register_grid_scenarios(*r);
    register_contour_scenarios(*r);
    return r;
  }();
  return *registry;
}

void Registry::add(Scenario scenario) {
  if (scenario.name.empty() || !scenario.run) {
    throw std::invalid_argument("Registry: scenario needs a name and a run fn");
  }
  if (find(scenario.name) != nullptr) {
    throw std::invalid_argument("Registry: duplicate scenario '" +
                                scenario.name + "'");
  }
  scenarios_.push_back(std::move(scenario));
}

const Scenario* Registry::find(const std::string& name) const {
  for (const auto& s : scenarios_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

std::vector<const Scenario*> Registry::all() const {
  std::vector<const Scenario*> out;
  out.reserve(scenarios_.size());
  for (const auto& s : scenarios_) out.push_back(&s);
  std::sort(out.begin(), out.end(), [](const Scenario* a, const Scenario* b) {
    return a->name < b->name;
  });
  return out;
}

}  // namespace pbw::campaign
