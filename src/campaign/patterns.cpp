#include "campaign/patterns.hpp"

#include <stdexcept>

namespace pbw::campaign {

Pattern parse_pattern(const std::string& name, const std::string& context) {
  if (name == "one_to_all") return Pattern::kOneToAll;
  if (name == "ring") return Pattern::kRing;
  if (name == "random") return Pattern::kRandom;
  if (name == "random_mem") return Pattern::kRandomMem;
  throw std::invalid_argument(context + ": unknown pattern '" + name + "'");
}

void PatternProgram::setup(engine::Machine& machine) {
  if (pattern_ == Pattern::kRandomMem) {
    machine.resize_shared(machine.p() + kReadCells);
  }
}

bool PatternProgram::step(engine::ProcContext& ctx) {
  if (ctx.superstep() >= rounds_) return false;
  ctx.charge(1.0);
  switch (pattern_) {
    case Pattern::kOneToAll:
      // Processor 0 sends h flits to everyone else.
      if (ctx.id() == 0) {
        for (engine::ProcId dst = 1; dst < ctx.p(); ++dst) {
          ctx.send(dst, dst, 0, h_);
        }
      }
      break;
    case Pattern::kRing:
      // Everyone sends one h-flit message to its right neighbour.
      ctx.send((ctx.id() + 1) % ctx.p(), ctx.id(), 0, h_);
      break;
    case Pattern::kRandom:
      // An h-relation in expectation: h single-flit messages each.
      for (std::uint32_t k = 0; k < h_; ++k) {
        ctx.send(static_cast<engine::ProcId>(ctx.rng().below(ctx.p())),
                 ctx.id(), 0, 1);
      }
      break;
    case Pattern::kRandomMem:
      // h contended reads plus one write to this processor's own cell.
      for (std::uint32_t k = 0; k < h_; ++k) {
        ctx.read(ctx.p() + ctx.rng().below(kReadCells));
      }
      ctx.write(ctx.id(), ctx.superstep());
      break;
  }
  return true;
}

}  // namespace pbw::campaign
