// Scenario ports of the standalone bench binaries that sweep parameters:
// the overload-penalty study (bench_penalty), the Theorem 4.1 broadcast
// bounds (bench_broadcast) and the two sorting engines (bench_sorting).
// The binaries remain for eyeball runs; campaigns are how the numbers get
// recorded.
#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "algos/broadcast.hpp"
#include "algos/columnsort.hpp"
#include "algos/sorting.hpp"
#include "campaign/scenario.hpp"
#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "replay/recorder.hpp"
#include "sched/schedule.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"

namespace pbw::campaign {

namespace {

namespace bounds = core::bounds;

// ---- sched.penalty (E12) --------------------------------------------------

core::Penalty parse_penalty(const ParamSet& params) {
  return params.get("penalty") == "linear" ? core::Penalty::kLinear
                                           : core::Penalty::kExponential;
}

MetricRow penalty_row(const sched::ScheduleCost& cost,
                      std::uint64_t total_flits) {
  return {
      {"cost", cost.total},
      {"c_m", cost.c_m},
      {"max_mt", static_cast<double>(cost.max_mt)},
      {"slots_used", static_cast<double>(cost.slots_used)},
      {"within_limit", cost.within_limit ? 1.0 : 0.0},
      {"per_flit", cost.total / static_cast<double>(total_flits)},
  };
}

MetricRow run_penalty(const ParamSet& params, util::Xoshiro256& rng) {
  const auto p = static_cast<std::uint32_t>(params.get_int("p"));
  const auto n = static_cast<std::uint64_t>(params.get_int("n"));
  const auto m = static_cast<std::uint32_t>(params.get_int("m"));
  const double eps = params.get_double("eps");
  const std::string& which = params.get("schedule");
  const core::Penalty penalty = parse_penalty(params);

  const auto rel =
      sched::balanced_relation(p, static_cast<std::uint32_t>(n / p), rng);
  sched::SlotSchedule schedule(p);
  if (which == "naive") {
    schedule = sched::naive_schedule(rel);
  } else if (which == "unbalanced-send") {
    schedule =
        sched::unbalanced_send_schedule(rel, m, eps, rel.total_flits(), rng);
  } else if (which == "offline") {
    schedule = sched::offline_optimal_schedule(rel, m);
  } else {
    throw std::invalid_argument("sched.penalty: unknown schedule '" + which +
                                "'");
  }
  auto counts = sched::slot_occupancy(rel, schedule);
  const auto h =
      static_cast<double>(std::max(rel.max_sent(), rel.max_received()));
  const auto cost = sched::evaluate_occupancy(counts, h, m, penalty, 1);
  // No Machine runs here, so capture is a synthetic one-step tape holding
  // the occupancy vector — everything evaluate_occupancy needs to recharge
  // this schedule under another (m, penalty).
  if (auto* recorder = replay::current_tape_recorder()) {
    auto& tape = recorder->begin_tape(p, 0);
    tape.captured_model = "sched.schedule";
    engine::SuperstepStats stats;
    stats.max_sent = rel.max_sent();
    stats.max_received = rel.max_received();
    stats.total_flits = rel.total_flits();
    stats.slot_counts = std::move(counts);
    tape.append(stats);
    tape.total_flits = rel.total_flits();
  }
  return penalty_row(cost, rel.total_flits());
}

MetricRow replay_penalty(const ParamSet& params,
                         const replay::CapturedTrial& trial) {
  const auto m = static_cast<std::uint32_t>(params.get_int("m"));
  const core::Penalty penalty = parse_penalty(params);
  const auto stats = trial.tapes.at(0).step(0);
  const auto h =
      static_cast<double>(std::max(stats.max_sent, stats.max_received));
  const auto cost =
      sched::evaluate_occupancy(stats.slot_counts, h, m, penalty, 1);
  return penalty_row(cost, stats.total_flits);
}

/// The penalty shape only ever changes charging; m shapes the schedule for
/// the scheduled senders but is ignored by the naive one.
bool penalty_cost_only(const ParamSet& params, const std::string& name) {
  if (name == "penalty") return true;
  if (name == "m") return params.get("schedule") == "naive";
  return false;
}

// ---- broadcast.bounds (E2, Theorem 4.1) -----------------------------------

MetricRow run_broadcast_bounds(const ParamSet& params, util::Xoshiro256& rng) {
  core::ModelParams prm;
  prm.p = static_cast<std::uint32_t>(params.get_int("p"));
  prm.g = params.get_double("g");
  prm.L = params.get_double("L");
  prm.m = std::max(1u, static_cast<std::uint32_t>(
                           static_cast<double>(prm.p) / prm.g));
  const core::BspG model(prm);

  const auto arity = std::max(1u, static_cast<std::uint32_t>(prm.L / prm.g));
  const auto tree = algos::broadcast_bsp_tree(model, arity, 3);
  const auto ternary = algos::broadcast_ternary_bsp(model, rng.bernoulli(0.5));
  const double lb = bounds::broadcast_bsp_g_lower(prm.p, prm.g, prm.L);
  const double best = std::min(tree.time, ternary.time);
  return {
      {"lb", lb},
      {"tree_time", tree.time},
      {"ternary_time", ternary.time},
      {"ub_formula", bounds::broadcast_bsp_g(prm.p, prm.g, prm.L)},
      {"ternary_formula", bounds::broadcast_ternary(prm.p, prm.g)},
      {"lb_ok", lb <= best + 1e-9 ? 1.0 : 0.0},
      {"correct", tree.correct && ternary.correct ? 1.0 : 0.0},
  };
}

// ---- sorting.engines (Table 1 sorting ablation) ---------------------------

std::uint32_t pow2_columns(std::uint64_t n, std::uint32_t p) {
  std::uint32_t s = 2;
  while (2 * s <= algos::columnsort_max_columns(n, p)) s *= 2;
  return s;
}

MetricRow run_sorting_engines(const ParamSet& params, util::Xoshiro256& rng) {
  core::ModelParams prm;
  prm.p = static_cast<std::uint32_t>(params.get_int("p"));
  prm.m = static_cast<std::uint32_t>(params.get_int("m"));
  prm.g = static_cast<double>(prm.p) / prm.m;
  prm.L = params.get_double("L");
  const auto n = static_cast<std::uint32_t>(params.get_int("n"));
  const core::BspM model(prm);

  std::vector<engine::Word> keys(n);
  for (auto& x : keys) x = static_cast<engine::Word>(rng.below(1 << 30));
  const double bound = bounds::sort_bsp_m(n, prm.m, prm.L);

  const auto s = pow2_columns(n, prm.p);
  const auto col = algos::columnsort_bsp(model, keys, s, prm.m);
  const auto smp = algos::sample_sort_bsp(model, keys, prm.m);
  return {
      {"bound", bound},
      {"columnsort_time", col.time},
      {"samplesort_time", smp.time},
      {"columnsort_ratio", col.time / bound},
      {"samplesort_ratio", smp.time / bound},
      {"correct", col.correct && smp.correct ? 1.0 : 0.0},
  };
}

}  // namespace

void register_bench_scenarios(Registry& registry) {
  Scenario penalty;
  penalty.name = "sched.penalty";
  penalty.description = "overload penalty f_m: naive vs scheduled sends (E12)";
  penalty.params = {{"p", "128", "processors"},
                    {"n", "4096", "total flits"},
                    {"m", "16", "aggregate bandwidth limit"},
                    {"eps", "0.25", "Unbalanced-Send slack"},
                    {"schedule", "naive", "naive | unbalanced-send | offline"},
                    {"penalty", "exp", "linear | exp overload charge"}};
  penalty.run = run_penalty;
  penalty.replay = replay_penalty;
  penalty.cost_only_at = penalty_cost_only;
  registry.add(std::move(penalty));
  registry.add({"broadcast.bounds",
                "Theorem 4.1 BSP(g) broadcast LB vs tree/ternary UBs (E2)",
                {{"p", "1024", "processors"},
                 {"g", "8", "per-processor gap"},
                 {"L", "4", "BSP latency/periodicity"}},
                run_broadcast_bounds});
  registry.add({"sorting.engines",
                "columnsort vs sample sort against Theta(n/m + L)",
                {{"p", "256", "processors"},
                 {"n", "16384", "keys (power of two)"},
                 {"m", "16", "aggregate bandwidth limit"},
                 {"L", "4", "BSP latency/periodicity"}},
                run_sorting_engines});
}

}  // namespace pbw::campaign
