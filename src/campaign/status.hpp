// Live campaign progress: the shared state behind /status and the watchdog.
//
// The executor publishes cheap events — job started on worker w, job
// finished, tape-cache totals — and this class turns them into the
// /status document: done/total split into simulated vs recosted, cache
// hit rate, per-scenario throughput, a sliding-window ETA, and the
// per-worker in-flight board the stall watchdog polls.  Everything is
// guarded by one mutex; updates are per job (never per superstep), so
// contention is negligible next to simulation work.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "obs/telemetry/rate.hpp"
#include "obs/telemetry/watchdog.hpp"
#include "util/json.hpp"

namespace pbw::campaign {

class CampaignStatus {
 public:
  CampaignStatus();

  /// Starts a run: the expanded job count, the resume-skipped count, and
  /// the worker slot count.  Resets progress, keeps nothing stale.
  void begin(std::size_t total, std::size_t skipped, std::size_t workers);

  /// Marks the run finished ("done") or cut short ("interrupted").
  void finish(bool interrupted);

  void worker_begin(std::size_t worker, const std::string& job_key);
  void worker_end(std::size_t worker);

  /// One job completed (recorded); `recosted` distinguishes replayed
  /// jobs from engine simulations, `seconds` is its wall-clock.
  void job_done(const std::string& scenario, double seconds, bool recosted);
  void job_failed();

  void set_tape_cache(std::uint64_t hits, std::uint64_t misses,
                      std::uint64_t evictions, std::uint64_t rejected,
                      std::size_t bytes);

  /// The batch-recost kernel this run dispatches to: the SIMD path name
  /// ("scalar" | "sse2" | "avx2" | "avx512" | "neon") and the thread
  /// count recost_batch may tile across (1 = inline).  Surfaced under
  /// "batch_kernel" in /status so perf numbers are attributable.
  void set_batch_kernel(const std::string& simd, std::size_t threads);

  /// In-flight jobs with their current run times — the watchdog's poll.
  [[nodiscard]] std::vector<obs::WatchdogTask> in_flight() const;

  /// Remembers a watchdog verdict so /status can surface it.
  void mark_stalled(const std::string& job_key);

  /// Monotone seconds since construction (the estimator's clock; public
  /// so the CLI reports elapsed time from the same origin).
  [[nodiscard]] double now_seconds() const;

  /// The /status document (schema: docs/OBSERVABILITY.md).
  [[nodiscard]] util::Json to_json() const;

 private:
  struct WorkerSlot {
    bool active = false;
    std::string job;
    double start_seconds = 0.0;
  };
  struct ScenarioStats {
    std::uint64_t done = 0;
    double seconds = 0.0;
  };

  mutable std::mutex mutex_;
  std::string state_ = "idle";
  std::size_t total_ = 0;
  std::size_t skipped_ = 0;
  std::uint64_t done_ = 0;
  std::uint64_t simulated_ = 0;
  std::uint64_t recosted_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  std::uint64_t cache_evictions_ = 0;
  std::uint64_t cache_rejected_ = 0;
  std::size_t cache_bytes_ = 0;
  std::string batch_simd_ = "scalar";
  std::size_t batch_threads_ = 1;
  std::vector<WorkerSlot> workers_;
  std::map<std::string, ScenarioStats> scenarios_;
  std::set<std::string> stalled_;
  obs::RateEstimator rate_;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace pbw::campaign
