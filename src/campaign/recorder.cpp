#include "campaign/recorder.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <map>
#include <stdexcept>

#include "util/stats.hpp"

#ifndef PBW_GIT_DESCRIBE
#define PBW_GIT_DESCRIBE "unknown"
#endif

namespace pbw::campaign {

const char* git_version() { return PBW_GIT_DESCRIBE; }

Recorder::Recorder(std::string path, std::string version)
    : path_(std::move(path)), version_(std::move(version)) {
  const std::string manifest_path = path_ + ".manifest";
  {
    // A line is only trusted when its newline made it to disk: a crash
    // mid-append leaves a final line without '\n', which must not poison
    // the manifest — the torn key is dropped and its job simply re-runs.
    std::ifstream in(manifest_path, std::ios::binary);
    std::string line;
    while (std::getline(in, line)) {
      if (in.eof() && !line.empty()) break;  // truncated final line
      if (!line.empty()) keys_.insert(line);
    }
  }
  out_.open(path_, std::ios::app);
  if (!out_) throw std::runtime_error("Recorder: cannot open " + path_);
  manifest_fd_ = ::open(manifest_path.c_str(), O_WRONLY | O_APPEND | O_CREAT,
                        0644);
  if (manifest_fd_ < 0) {
    throw std::runtime_error("Recorder: cannot open " + manifest_path + ": " +
                             std::strerror(errno));
  }
}

Recorder::~Recorder() {
  if (manifest_fd_ >= 0) ::close(manifest_fd_);
}

bool Recorder::already_recorded(const Job& job) const {
  const std::string key = key_for(job);
  std::lock_guard lock(mutex_);
  return keys_.count(key) != 0;
}

std::size_t Recorder::recorded_count() const {
  std::lock_guard lock(mutex_);
  return keys_.size();
}

util::Json Recorder::aggregate(const std::vector<MetricRow>& trials) {
  // Collect values per metric name, keeping first-trial emission order.
  std::vector<std::string> order;
  std::map<std::string, std::vector<double>> values;
  for (const auto& row : trials) {
    for (const auto& [name, value] : row) {
      auto [it, inserted] = values.try_emplace(name);
      if (inserted) order.push_back(name);
      it->second.push_back(value);
    }
  }
  util::Json metrics = util::Json::object();
  for (const auto& name : order) {
    const auto& v = values[name];
    const util::Summary s = util::summarize(v);
    util::Json entry = util::Json::object();
    entry["n"] = util::Json(s.count);
    entry["mean"] = util::Json(s.mean);
    entry["stddev"] = util::Json(s.stddev);
    entry["min"] = util::Json(s.min);
    entry["max"] = util::Json(s.max);
    entry["p50"] = util::Json(util::quantile(v, 0.5));
    entry["p95"] = util::Json(util::quantile(v, 0.95));
    metrics[name] = std::move(entry);
  }
  return metrics;
}

util::Json Recorder::record_locked(const Job& job,
                                   const std::vector<MetricRow>& trials) {
  util::Json rec = util::Json::object();
  const std::string key = key_for(job);
  rec["key"] = util::Json(key);
  rec["scenario"] = util::Json(job.scenario->name);
  rec["git"] = util::Json(version_);
  rec["seed"] = util::Json(job.seed);
  rec["trials"] = util::Json(trials.size());
  rec["params"] = job.params.to_json();
  rec["metrics"] = aggregate(trials);

  // Each row and manifest line is built as one string and written with a
  // single unformatted write + flush: a SIGINT that fires between jobs can
  // never leave a torn partial line behind, so an interrupted campaign's
  // results file stays parseable and its manifest stays resumable.  The
  // manifest additionally gets an fsync per key: the key is the durable
  // promise that the row exists, so it must not outrun the page cache.
  const std::string row = rec.dump() + '\n';
  const std::string manifest_line = key + '\n';
  out_.write(row.data(), static_cast<std::streamsize>(row.size()));
  out_.flush();
  std::size_t written = 0;
  while (written < manifest_line.size()) {
    const ssize_t n = ::write(manifest_fd_, manifest_line.data() + written,
                              manifest_line.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("Recorder: manifest write: ") +
                               std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  ::fsync(manifest_fd_);
  keys_.insert(key);
  return rec;
}

util::Json Recorder::record(const Job& job, const std::vector<MetricRow>& trials) {
  if (trials.empty()) {
    throw std::invalid_argument("Recorder::record: no trial rows");
  }
  std::lock_guard lock(mutex_);
  return record_locked(job, trials);
}

bool Recorder::merge(const Job& job, const std::vector<MetricRow>& trials) {
  if (trials.empty()) {
    throw std::invalid_argument("Recorder::merge: no trial rows");
  }
  const std::string key = key_for(job);
  std::lock_guard lock(mutex_);
  if (keys_.count(key) != 0) return false;
  record_locked(job, trials);
  return true;
}

}  // namespace pbw::campaign
