#include "campaign/cli_docs.hpp"

#include <algorithm>
#include <ostream>

namespace pbw::campaign {

namespace {

// Flag docs shared by several commands, spelled once so help stays
// consistent.  Every entry must match what the command's code path
// actually reads (tests/test_campaign.cpp walks the table).

util::FlagDoc out_flag(const char* fallback) {
  return {"out=<file>", std::string("output JSONL path (default ") + fallback +
                            ")"};
}

std::vector<util::FlagDoc> executor_flags() {
  return {
      {"threads=<n>", "executor threads; 0 = hardware concurrency"},
      {"force", "rerun jobs already in the resume manifest"},
      {"no-replay", "simulate every grid point (disable trace replay)"},
      {"replay-check", "re-simulate recosted points; fail unless bit-equal"},
      {"tape-cache-mb=<n>", "tape cache cap in MiB (default 256; 0 disables)"},
      {"trace-dir=<dir>", "per-job cost-attribution JSONL streams"},
  };
}

std::vector<util::FlagDoc> telemetry_flags() {
  return {
      {"serve-port=<n>", "serve /metrics + /status on this port (0 = any)"},
      {"serve-bind=<addr>", "bind address for --serve-port (default "
                            "127.0.0.1)"},
      {"stall-seconds=<sec>", "watchdog threshold for in-flight jobs "
                              "(default 30; 0 disables)"},
      {"metrics=<file>|-", "dump the metrics registry as JSON after the run"},
      {"metrics-interval=<sec>", "rewrite --metrics periodically (needs "
                                 "--metrics=<file>)"},
      {"access-log=<file>", "JSONL access log for the --serve-port endpoint "
                            "(one row per request)"},
      {"profile", "record host-time spans for engine/executor phases"},
      {"trace[=<file>]", "tee every Machine run's cost attribution to a "
                         "file (default trace.jsonl)"},
      {"trace-format=<f>", "trace file format: jsonl | chrome | both"},
      {"quiet", "suppress the run summary line"},
  };
}

std::vector<util::FlagDoc> concat(
    std::initializer_list<std::vector<util::FlagDoc>> groups) {
  std::vector<util::FlagDoc> flags;
  for (const auto& group : groups) {
    flags.insert(flags.end(), group.begin(), group.end());
  }
  return flags;
}

std::vector<CommandDoc> build_docs() {
  std::vector<CommandDoc> docs;

  docs.push_back({"list",
                  "pbw-campaign list",
                  "show every registered scenario with its parameter schema",
                  {}});

  docs.push_back(
      {"run",
       "pbw-campaign run <spec-file> [flags]",
       "expand a sweep spec and run every job not in the resume manifest",
       concat({{out_flag("campaign.jsonl"),
                {"dry-run", "print the expanded job keys and exit"}},
               executor_flags(),
               telemetry_flags()})});

  docs.push_back(
      {"table1",
       "pbw-campaign table1 [flags]",
       "preset sweeping all five Table 1 scenarios, then printing the "
       "separation table",
       concat({{{"p=<n>", "processors (default 1024)"},
                {"g=<x>", "per-processor gap g (default 16)"},
                {"m=<n>", "aggregate bandwidth m; 0 derives m = max(1, p/g)"},
                {"L=<x>", "latency / periodicity L (default 16)"},
                {"seed=<n>", "RNG seed (default 1)"},
                {"trials=<n>", "repetitions per configuration (default 1)"},
                out_flag("table1.jsonl")},
               executor_flags(),
               telemetry_flags()})});

  docs.push_back(
      {"serve",
       "pbw-campaign serve [flags]",
       "run the fleet coordinator (POST /submit, /lease, /results, /plan)",
       {{"serve-port=<n>", "coordinator port (default 0 = any free port)"},
        {"serve-bind=<addr>", "bind address (default 127.0.0.1; 0.0.0.0 for "
                              "a real fleet)"},
        {"out-dir=<dir>", "campaign artifacts directory (default .)"},
        {"lease-seconds=<sec>", "unrenewed shard leases are reassigned "
                                "(default 30)"},
        {"max-attempts=<n>", "shard errors before terminal failure "
                             "(default 3)"},
        {"no-replay", "workers simulate every grid point"},
        {"replay-check", "workers verify recosts bit-equal"},
        {"access-log=<file>", "JSONL access log (one row per request)"}}});

  docs.push_back(
      {"worker",
       "pbw-campaign worker --coordinator=HOST:PORT [flags]",
       "run one fleet worker: lease shards, execute, stream rows back",
       {{"coordinator=<host:port>", "coordinator endpoint (required)"},
        {"worker-id=<name>", "stable worker name (default: host.pid)"},
        {"poll-seconds=<sec>", "idle poll interval (default 0.5)"},
        {"max-idle-seconds=<sec>", "exit after this long without work "
                                   "(default 0 = never)"},
        {"tape-cache-mb=<n>", "tape cache cap in MiB (default 256)"},
        {"worker", "command-flag alias: `pbw-campaign --worker "
                   "--coordinator=...`"}}});

  docs.push_back(
      {"submit",
       "pbw-campaign submit <spec-file> --coordinator=HOST:PORT [flags]",
       "submit a sweep spec to a running coordinator",
       {{"coordinator=<host:port>", "coordinator endpoint (required)"},
        {"wait", "poll until the campaign finishes"},
        {"out=<file>", "with --wait: download the merged JSONL here"},
        {"poll-seconds=<sec>", "--wait poll interval (default 0.5)"}}});

  docs.push_back(
      {"plan",
       "pbw-campaign plan <request.json> [flags]",
       "answer a bandwidth-planner request (docs/PLANNER.md); alias of "
       "`pbw-plan solve`",
       {{"out=<file>|-", "response destination (default - = stdout)"}}});

  return docs;
}

}  // namespace

const std::vector<CommandDoc>& command_docs() {
  static const std::vector<CommandDoc> docs = build_docs();
  return docs;
}

const CommandDoc* find_command_doc(const std::string& name) {
  for (const CommandDoc& doc : command_docs()) {
    if (doc.name == name) return &doc;
  }
  return nullptr;
}

std::string flag_doc_name(const util::FlagDoc& doc) {
  const std::size_t cut = doc.flag.find_first_of("=[");
  return cut == std::string::npos ? doc.flag : doc.flag.substr(0, cut);
}

std::vector<std::string> unknown_flags(const util::Cli& cli,
                                       const CommandDoc& doc) {
  std::vector<std::string> unknown;
  for (const std::string& name : cli.flag_names()) {
    if (name == "help") continue;
    const bool known =
        std::any_of(doc.flags.begin(), doc.flags.end(),
                    [&](const util::FlagDoc& f) {
                      return flag_doc_name(f) == name;
                    });
    if (!known) unknown.push_back(name);
  }
  return unknown;
}

void print_overview(std::ostream& os) {
  os << "pbw-campaign — declarative experiment campaigns "
        "(docs/CAMPAIGN.md, docs/FLEET.md)\n\ncommands:\n";
  std::size_t width = 0;
  for (const CommandDoc& doc : command_docs()) {
    width = std::max(width, doc.name.size());
  }
  for (const CommandDoc& doc : command_docs()) {
    os << "  " << doc.name << std::string(width - doc.name.size() + 2, ' ')
       << doc.summary << "\n";
  }
  os << "\n`pbw-campaign <command> --help` lists that command's flags.\n";
}

void print_command_help(std::ostream& os, const CommandDoc& doc) {
  os << doc.summary << "\n\nusage: " << doc.usage << "\n";
  if (doc.flags.empty()) return;
  os << "\nflags:\n";
  std::size_t width = 0;
  for (const util::FlagDoc& flag : doc.flags) {
    width = std::max(width, flag.flag.size());
  }
  for (const util::FlagDoc& flag : doc.flags) {
    os << "  --" << flag.flag << std::string(width - flag.flag.size() + 2, ' ')
       << flag.help << "\n";
  }
}

}  // namespace pbw::campaign
