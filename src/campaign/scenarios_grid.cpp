// Fixed-pattern cost grids: the trace-replay workhorse.
//
// Each scenario runs a communication pattern whose execution depends only
// on (pattern, p, h, rounds, seed) — every model parameter is a pure
// charging knob.  A dense model/g/L/m/penalty grid over a fixed pattern
// therefore collapses to ONE simulation per (structural point, seed), with
// every other grid point recosted from the captured StatsTape; this is the
// shape of campaign the replay subsystem exists for (docs/CAMPAIGN.md).
#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "campaign/patterns.hpp"
#include "campaign/scenario.hpp"
#include "core/model/models.hpp"
#include "engine/machine.hpp"
#include "obs/trace.hpp"
#include "replay/batch.hpp"
#include "replay/tape.hpp"
#include "util/thread_pool.hpp"

namespace pbw::campaign {

namespace {

/// All five models by name; every parameter, the model choice included,
/// only changes charging.
std::unique_ptr<core::ModelBase> grid_model(const ParamSet& params) {
  core::ModelParams prm;
  prm.p = static_cast<std::uint32_t>(params.get_int("p"));
  prm.g = params.get_double("g");
  prm.L = params.get_double("L");
  prm.m = static_cast<std::uint32_t>(params.get_int("m"));
  const core::Penalty penalty = params.get("penalty") == "linear"
                                    ? core::Penalty::kLinear
                                    : core::Penalty::kExponential;
  const std::string& name = params.get("model");
  if (name == "bsp-g") return std::make_unique<core::BspG>(prm);
  if (name == "bsp-m") return std::make_unique<core::BspM>(prm, penalty);
  if (name == "qsm-g") return std::make_unique<core::QsmG>(prm);
  if (name == "qsm-m") return std::make_unique<core::QsmM>(prm, penalty);
  if (name == "ss-bsp-m") return std::make_unique<core::SelfSchedulingBspM>(prm);
  throw std::invalid_argument("grid.pattern: unknown model '" + name + "'");
}

MetricRow grid_row(const engine::RunResult& run) {
  return {
      {"time", run.total_time},
      {"supersteps", static_cast<double>(run.supersteps)},
      {"total_messages", static_cast<double>(run.total_messages)},
      {"total_flits", static_cast<double>(run.total_flits)},
      {"total_reads", static_cast<double>(run.total_reads)},
      {"total_writes", static_cast<double>(run.total_writes)},
  };
}

MetricRow run_grid(const ParamSet& params, util::Xoshiro256& rng) {
  const auto model = grid_model(params);
  PatternProgram program(parse_pattern(params.get("pattern"), "grid.pattern"),
                         static_cast<std::uint32_t>(params.get_int("h")),
                         static_cast<std::uint64_t>(params.get_int("rounds")));
  engine::MachineOptions options;
  options.seed = rng();
  engine::Machine machine(*model, options);
  return grid_row(machine.run(program));
}

MetricRow replay_grid(const ParamSet& params,
                      const replay::CapturedTrial& trial) {
  const auto model = grid_model(params);
  const auto& tape = trial.tapes.at(0);
  if (auto* sink = obs::current_sink()) {
    replay::recost_to_sink(tape, *model, *sink);
  }
  return grid_row(replay::recost_run(tape, *model));
}

/// The same (model, g, L, m, penalty) mapping as grid_model, as a batch
/// cost point.
replay::CostPointSpec grid_cost_point(const ParamSet& params) {
  replay::CostPointSpec spec;
  spec.g = params.get_double("g");
  spec.L = params.get_double("L");
  spec.m = static_cast<std::uint32_t>(params.get_int("m"));
  spec.penalty = params.get("penalty") == "linear"
                     ? core::Penalty::kLinear
                     : core::Penalty::kExponential;
  const std::string& name = params.get("model");
  if (name == "bsp-g") {
    spec.family = replay::ModelFamily::kBspG;
  } else if (name == "bsp-m") {
    spec.family = replay::ModelFamily::kBspM;
  } else if (name == "qsm-g") {
    spec.family = replay::ModelFamily::kQsmG;
  } else if (name == "qsm-m") {
    spec.family = replay::ModelFamily::kQsmM;
  } else if (name == "ss-bsp-m") {
    spec.family = replay::ModelFamily::kSelfSchedulingBspM;
  } else {
    throw std::invalid_argument("grid.pattern: unknown model '" + name + "'");
  }
  return spec;
}

std::vector<MetricRow> replay_grid_batch(
    const std::vector<const ParamSet*>& points,
    const replay::CapturedTrial& trial, util::ThreadPool* pool) {
  const auto& tape = trial.tapes.at(0);
  std::vector<replay::CostPointSpec> specs;
  specs.reserve(points.size());
  for (const ParamSet* point : points) specs.push_back(grid_cost_point(*point));
  const std::vector<engine::SimTime> totals =
      replay::recost_batch(tape, specs, pool);
  // Every non-time column is model-independent (it comes off the tape), so
  // the rows differ only in the batched charge — exactly what replay_grid's
  // grid_row(recost_run(...)) reports.
  std::vector<MetricRow> rows;
  rows.reserve(totals.size());
  for (const engine::SimTime total : totals) {
    rows.push_back({
        {"time", total},
        {"supersteps", static_cast<double>(tape.size())},
        {"total_messages", static_cast<double>(tape.total_messages)},
        {"total_flits", static_cast<double>(tape.total_flits)},
        {"total_reads", static_cast<double>(tape.total_reads)},
        {"total_writes", static_cast<double>(tape.total_writes)},
    });
  }
  return rows;
}

}  // namespace

void register_grid_scenarios(Registry& registry) {
  Scenario grid;
  grid.name = "grid.pattern";
  grid.description =
      "fixed communication pattern under a dense cost-parameter grid";
  grid.params = {
      {"pattern", "random", "one_to_all | ring | random | random_mem"},
      {"p", "256", "processors"},
      {"h", "8", "degree / message length (flits)"},
      {"rounds", "4", "communication supersteps"},
      {"model", "bsp-m", "bsp-g | bsp-m | qsm-g | qsm-m | ss-bsp-m",
       /*cost_only=*/true},
      {"g", "8", "per-processor gap", /*cost_only=*/true},
      {"L", "16", "BSP latency/periodicity", /*cost_only=*/true},
      {"m", "32", "aggregate bandwidth limit", /*cost_only=*/true},
      {"penalty", "exp", "linear | exp overload charge", /*cost_only=*/true},
  };
  grid.run = run_grid;
  grid.replay = replay_grid;
  grid.replay_batch = replay_grid_batch;
  registry.add(std::move(grid));
}

}  // namespace pbw::campaign
