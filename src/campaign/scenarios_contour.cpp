// contour.map: the paper's local-vs-global dichotomy as a phase diagram.
//
// One fixed communication pattern, one tape — swept over a log-spaced
// (g, m) hardware grid.  Cell (g_i, m_j) asks: on a machine with
// per-processor gap g_i OR aggregate bandwidth limit m_j, which
// restriction prices this pattern cheaper?  The cell's time is
// min(T_BSP(g_i), T_BSP(m_j)) and its winner is the cheaper family, so
// the map's ridge line is the crossover frontier between the locally- and
// globally-limited regimes (Sections 3-5 of the paper give the
// separations this frontier visualizes).
//
// Every cell is charged through replay::recost_batch — two cost points
// per cell, the full cross product in one batch — which is exactly the
// million-point shape bench_contour (E22) measures.  The scenario's
// metrics summarize the map (winner counts, time extrema, frontier mass)
// rather than emit a row per cell; pbw-campaign sweeps stay row-per-job.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/patterns.hpp"
#include "campaign/scenario.hpp"
#include "core/model/models.hpp"
#include "engine/machine.hpp"
#include "replay/batch.hpp"
#include "replay/recorder.hpp"
#include "replay/tape.hpp"
#include "util/thread_pool.hpp"

namespace pbw::campaign {

namespace {

/// The (g, m) grid a parameter point describes.  Axes are log-spaced from
/// 1 to *_max inclusive; m values round to the nearest integer >= 1 (the
/// aggregate limit is integral).
struct ContourGrid {
  std::vector<double> gs;
  std::vector<std::uint32_t> ms;
  double L = 1.0;
  core::Penalty penalty = core::Penalty::kLinear;
};

std::vector<double> log_axis(std::size_t cells, double max_value) {
  if (cells == 0 || max_value < 1.0) {
    throw std::invalid_argument("contour.map: axis needs cells >= 1, max >= 1");
  }
  std::vector<double> axis(cells);
  const double log_max = std::log(max_value);
  for (std::size_t i = 0; i < cells; ++i) {
    const double t = cells == 1 ? 1.0
                                : static_cast<double>(i) /
                                      static_cast<double>(cells - 1);
    axis[i] = std::exp(log_max * t);
  }
  return axis;
}

ContourGrid contour_grid(const ParamSet& params) {
  ContourGrid grid;
  grid.gs = log_axis(static_cast<std::size_t>(params.get_int("g_cells")),
                     params.get_double("g_max"));
  const auto m_axis =
      log_axis(static_cast<std::size_t>(params.get_int("m_cells")),
               params.get_double("m_max"));
  grid.ms.reserve(m_axis.size());
  for (const double m : m_axis) {
    grid.ms.push_back(
        static_cast<std::uint32_t>(std::max(1.0, std::round(m))));
  }
  grid.L = params.get_double("L");
  grid.penalty = params.get("penalty") == "linear"
                     ? core::Penalty::kLinear
                     : core::Penalty::kExponential;
  return grid;
}

/// The batch the grid charges: all bsp-g columns, then all bsp-m rows,
/// then the full cross product cell by cell (row-major).  The marginals
/// alone would determine every cell, but the cross product is the point:
/// contour.map is the campaign face of the million-point batch that
/// bench_contour measures, and its cells all go through recost_batch.
std::vector<replay::CostPointSpec> contour_points(const ContourGrid& grid) {
  std::vector<replay::CostPointSpec> specs;
  specs.reserve(grid.gs.size() * grid.ms.size() * 2);
  for (const std::uint32_t m : grid.ms) {
    for (const double g : grid.gs) {
      replay::CostPointSpec local;
      local.family = replay::ModelFamily::kBspG;
      local.g = g;
      local.L = grid.L;
      specs.push_back(local);
      replay::CostPointSpec global;
      global.family = replay::ModelFamily::kBspM;
      global.m = m;
      global.penalty = grid.penalty;
      global.L = grid.L;
      specs.push_back(global);
    }
  }
  return specs;
}

/// Folds the charged cross product into the scenario's metric row.
/// Accumulation runs in cell order (m-major, matching contour_points), so
/// the row is a deterministic function of the tape — run, replay, and
/// batch paths all produce it bit-identically.
MetricRow contour_row(const ContourGrid& grid, const replay::StatsTape& tape,
                      util::ThreadPool* pool) {
  const auto specs = contour_points(grid);
  const std::vector<engine::SimTime> times =
      replay::recost_batch(tape, specs, pool);
  const std::size_t cells = grid.gs.size() * grid.ms.size();
  double local_wins = 0.0, global_wins = 0.0, frontier = 0.0;
  double time_min = 0.0, time_max = 0.0, time_sum = 0.0;
  std::optional<bool> previous_local;
  for (std::size_t c = 0; c < cells; ++c) {
    const double t_local = times[2 * c];
    const double t_global = times[2 * c + 1];
    const bool local = t_local < t_global;
    const double best = local ? t_local : t_global;
    (local ? local_wins : global_wins) += 1.0;
    // Winner flips along a row of the map = one crossing of the
    // local/global frontier.  Row starts don't count (c % gs == 0 resets).
    if (c % grid.gs.size() != 0 && previous_local && local != *previous_local) {
      frontier += 1.0;
    }
    previous_local = local;
    if (c == 0 || best < time_min) time_min = best;
    if (c == 0 || best > time_max) time_max = best;
    time_sum += best;
  }
  return {
      {"cells", static_cast<double>(cells)},
      {"local_wins", local_wins},
      {"global_wins", global_wins},
      {"frontier_crossings", frontier},
      {"time_min", time_min},
      {"time_max", time_max},
      {"time_sum", time_sum},
      {"supersteps", static_cast<double>(tape.size())},
  };
}

MetricRow run_contour(const ParamSet& params, util::Xoshiro256& rng) {
  const ContourGrid grid = contour_grid(params);
  PatternProgram program(
      parse_pattern(params.get("pattern"), "contour.map"),
      static_cast<std::uint32_t>(params.get_int("h")),
      static_cast<std::uint64_t>(params.get_int("rounds")));
  // The cost model is irrelevant to the execution (the pattern is fixed);
  // a unit BSP(g) machine drives the run, and the contour is charged off
  // the captured tape.  Record into the ambient recorder when the
  // executor installed one (so replay sees the same tape), else into a
  // local scope.
  core::ModelParams prm;
  prm.p = static_cast<std::uint32_t>(params.get_int("p"));
  prm.g = 1.0;
  prm.L = 1.0;
  const core::BspG model(prm);
  engine::MachineOptions options;
  options.seed = rng();
  replay::TapeRecorder local;
  std::optional<replay::ScopedTapeRecorder> scope;
  if (replay::current_tape_recorder() == nullptr) scope.emplace(&local);
  engine::Machine machine(model, options);
  machine.run(program);
  const replay::TapeRecorder* recorder = replay::current_tape_recorder();
  return contour_row(grid, recorder->tapes().back(), nullptr);
}

MetricRow replay_contour(const ParamSet& params,
                         const replay::CapturedTrial& trial) {
  return contour_row(contour_grid(params), trial.tapes.at(0), nullptr);
}

std::vector<MetricRow> replay_contour_batch(
    const std::vector<const ParamSet*>& points,
    const replay::CapturedTrial& trial, util::ThreadPool* pool) {
  std::vector<MetricRow> rows;
  rows.reserve(points.size());
  for (const ParamSet* point : points) {
    rows.push_back(contour_row(contour_grid(*point), trial.tapes.at(0), pool));
  }
  return rows;
}

}  // namespace

void register_contour_scenarios(Registry& registry) {
  Scenario contour;
  contour.name = "contour.map";
  contour.description =
      "local-vs-global phase map: min(BSP(g_i), BSP(m_j)) over a (g x m) grid";
  contour.params = {
      {"pattern", "random", "one_to_all | ring | random | random_mem"},
      {"p", "256", "processors"},
      {"h", "8", "degree / message length (flits)"},
      {"rounds", "4", "communication supersteps"},
      {"g_cells", "64", "grid columns (gap axis)", /*cost_only=*/true},
      {"m_cells", "64", "grid rows (bandwidth axis)", /*cost_only=*/true},
      {"g_max", "1024", "gap axis upper bound (log-spaced from 1)",
       /*cost_only=*/true},
      {"m_max", "4096", "bandwidth axis upper bound (log-spaced from 1)",
       /*cost_only=*/true},
      {"L", "16", "latency floor shared by both families", /*cost_only=*/true},
      {"penalty", "exp", "linear | exp overload charge", /*cost_only=*/true},
  };
  contour.run = run_contour;
  contour.replay = replay_contour;
  contour.replay_batch = replay_contour_batch;
  registry.add(std::move(contour));
}

}  // namespace pbw::campaign
