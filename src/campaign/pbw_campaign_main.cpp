// pbw-campaign — run declarative experiment campaigns.
//
//   pbw-campaign list
//       Show every registered scenario with its parameter schema.
//
//   pbw-campaign run <spec-file> [--out=campaign.jsonl] [--threads=N]
//                    [--force] [--dry-run] [--trace-dir=<dir>]
//                    [--metrics=<file>|-] [--metrics-interval=SEC]
//                    [--no-replay] [--replay-check] [--tape-cache-mb=N]
//                    [--serve-port=N] [--stall-seconds=SEC] [--profile]
//                    [--trace=FILE] [--trace-format=jsonl|chrome|both]
//       Expand the sweep blocks of the spec file and run every job not
//       already in the resume manifest; results append to the JSONL file.
//       --trace-dir writes each job's per-superstep cost attribution to
//       its own JSONL stream; --metrics dumps the executor's metrics
//       registry as JSON after the run (docs/OBSERVABILITY.md).  Grid
//       points differing only in cost-only axes are recosted from one
//       captured simulation (docs/CAMPAIGN.md, "Trace replay");
//       --no-replay simulates every point, --replay-check re-simulates
//       every recosted point and fails unless the rows are bit-equal, and
//       --tape-cache-mb bounds the in-memory tape cache.
//
//       Live telemetry (docs/OBSERVABILITY.md, "Live telemetry"):
//       --serve-port=N serves Prometheus text at /metrics and campaign
//       progress JSON (done/total, cache hit rate, ETA) at /status on
//       127.0.0.1:N (0 picks a free port); --stall-seconds sets the
//       watchdog threshold for in-flight jobs (default 30, 0 disables);
//       --metrics-interval=SEC rewrites the --metrics file periodically;
//       --profile turns on engine phase spans inside every scenario;
//       --trace/--trace-format tee every Machine run to a file (span
//       flamegraph included in the chrome format).  SIGINT/SIGTERM stop
//       the campaign cooperatively: in-flight jobs finish, the metrics
//       snapshot and trace flush, and the run exits 128+sig with the
//       manifest resumable by rerunning the same command.
//
//   pbw-campaign table1 [--p=1024] [--g=16] [--L=16] [--seed=1]
//                       [--trials=1] [--out=table1.jsonl] [--threads=N]
//                       [--force]
//       Preset reproducing all five Table 1 rows end-to-end, then printing
//       the separations from the recorded JSONL.
//
//   pbw-campaign serve [--serve-port=N] [--serve-bind=ADDR] [--out-dir=DIR]
//                      [--lease-seconds=SEC] [--no-replay] [--replay-check]
//       Run the fleet coordinator (docs/FLEET.md): accept sweep specs over
//       HTTP (POST /submit), shard them into structural groups, and lease
//       shards to workers.  /status reports fleet-wide progress, /metrics
//       exports Prometheus text.  Binds 127.0.0.1 unless --serve-bind says
//       otherwise.
//
//   pbw-campaign worker --coordinator=HOST:PORT [--worker-id=NAME]
//                       [--poll-seconds=SEC] [--max-idle-seconds=SEC]
//                       [--tape-cache-mb=N]
//       Run one fleet worker: lease shards from the coordinator, execute
//       them, stream trial rows back.  Exits when the fleet drains (or on
//       SIGINT/SIGTERM).  `--worker --coordinator=...` works too.
//
//   pbw-campaign submit <spec-file> --coordinator=HOST:PORT [--wait]
//                       [--out=<file>] [--poll-seconds=SEC]
//       Submit a sweep spec to a running coordinator; prints the job id.
//       --wait polls until the job finishes and, with --out, downloads the
//       merged JSONL.
//
// Spec format and JSON schema: docs/CAMPAIGN.md.  Fleet protocol:
// docs/FLEET.md.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#include "campaign/campaign.hpp"
#include "campaign/cli_docs.hpp"
#include "campaign/status.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/http_client.hpp"
#include "fleet/worker.hpp"
#include "planner/plan_cli.hpp"
#include "planner/service.hpp"
#include "engine/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/http_server.hpp"
#include "obs/telemetry/prometheus.hpp"
#include "obs/telemetry/signals.hpp"
#include "obs/telemetry/watchdog.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace pbw;

int cmd_list() {
  util::Table table({"scenario", "description", "parameters"});
  for (const auto* s : campaign::Registry::instance().all()) {
    std::string params;
    for (const auto& p : s->params) {
      if (!params.empty()) params += " ";
      params += p.name + "=" + p.default_value;
    }
    table.add_row({s->name, s->description, params});
  }
  table.print(std::cout);
  return 0;
}

campaign::ExecutorOptions executor_options(const util::Cli& cli) {
  campaign::ExecutorOptions options;
  options.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  options.force = cli.get_bool("force");
  options.trace_dir = cli.get("trace-dir");
  options.replay = !cli.get_bool("no-replay");
  options.replay_check = cli.get_bool("replay-check");
  options.tape_cache_bytes = static_cast<std::size_t>(cli.get_int(
                                 "tape-cache-mb",
                                 static_cast<std::int64_t>(256)))
                             << 20;
  return options;
}

/// Dumps the process metrics registry as JSON to `path` ("-" for stdout).
void dump_metrics_to(const std::string& path) {
  const util::Json json = obs::MetricsRegistry::global().to_json();
  if (path == "-") {
    std::cout << json.dump() << "\n";
    return;
  }
  std::ofstream out(path);
  out << json.dump() << "\n";
  if (!out) std::cerr << "pbw-campaign: cannot write " << path << "\n";
}

/// --metrics=<file>: dump the metrics registry as JSON after the run.
void maybe_dump_metrics(const util::Cli& cli) {
  const std::string path = cli.get("metrics");
  if (!path.empty()) dump_metrics_to(path);
}

/// Telemetry flags shared by `run` and `table1`.
struct TelemetryFlags {
  bool serve = false;             ///< --serve-port given
  std::uint16_t serve_port = 0;   ///< 0 picks an ephemeral port
  std::string serve_bind = "127.0.0.1";  ///< --serve-bind
  double stall_seconds = 30.0;    ///< watchdog threshold; 0 disables
  double metrics_interval = 0.0;  ///< periodic --metrics rewrite; 0 off
  std::string metrics_path;
  std::string access_log;         ///< --access-log=FILE (JSONL); "" off
  bool profile = false;           ///< engine phase spans in every scenario
};

TelemetryFlags telemetry_flags(const util::Cli& cli) {
  TelemetryFlags flags;
  flags.serve = cli.has("serve-port");
  flags.serve_port = static_cast<std::uint16_t>(cli.get_int("serve-port", 0));
  flags.serve_bind = cli.get("serve-bind", "127.0.0.1");
  flags.stall_seconds = cli.get_double("stall-seconds", 30.0);
  flags.metrics_interval = cli.get_double("metrics-interval", 0.0);
  flags.metrics_path = cli.get("metrics");
  flags.access_log = cli.get("access-log");
  flags.profile = cli.get_bool("profile");
  return flags;
}

/// The campaign's live telemetry service: the /metrics + /status HTTP
/// endpoint, the stall watchdog, periodic metrics flushes, and the
/// SIGINT/SIGTERM supervisor that flushes the evidence snapshot the
/// moment a shutdown is requested (a second signal hard-exits, so that
/// flush is what survives a wedged job).
class Telemetry {
 public:
  Telemetry(campaign::CampaignStatus& status, TelemetryFlags flags)
      : status_(status), flags_(std::move(flags)) {}

  ~Telemetry() { stop(); }

  void start() {
    obs::install_shutdown_signals();
    if (flags_.profile) engine::set_profile_default(true);
    if (flags_.metrics_interval > 0.0 &&
        (flags_.metrics_path.empty() || flags_.metrics_path == "-")) {
      std::cerr << "pbw-campaign: --metrics-interval requires "
                   "--metrics=<file>; ignoring\n";
      flags_.metrics_interval = 0.0;
    }
    if (flags_.serve) {
      server_.handle("/metrics", [] {
        obs::HttpResponse r;
        r.content_type = "text/plain; version=0.0.4; charset=utf-8";
        r.body =
            obs::render_prometheus(obs::MetricsRegistry::global().to_json());
        return r;
      });
      server_.handle("/status", [this] {
        obs::HttpResponse r;
        r.content_type = "application/json";
        r.body = status_.to_json().dump() + "\n";
        return r;
      });
      server_.handle("/healthz", [] {
        obs::HttpResponse r;
        r.body = "ok\n";
        return r;
      });
      planner_.mount(server_);  // POST /plan — what-ifs during a run
      if (!flags_.access_log.empty()) server_.set_access_log(flags_.access_log);
      server_.start(flags_.serve_port, flags_.serve_bind);
      std::cerr << "pbw-campaign: telemetry on http://" << flags_.serve_bind
                << ":" << server_.port() << " (/metrics, /status, /plan)\n";
    }
    if (flags_.stall_seconds > 0.0) {
      watchdog_ = std::make_unique<obs::Watchdog>(
          flags_.stall_seconds, [this] { return status_.in_flight(); },
          [this](const obs::WatchdogTask& task) {
            status_.mark_stalled(task.name);
            std::cerr << "pbw-campaign: watchdog: job '" << task.name
                      << "' in flight for " << task.seconds
                      << "s (threshold " << flags_.stall_seconds << "s)\n";
          });
      watchdog_->start(std::min(1.0, flags_.stall_seconds / 2.0));
    }
    supervisor_ = std::thread([this] { supervise(); });
  }

  /// Joins the supervisor, stops the watchdog and the endpoint.  Safe to
  /// call twice (the destructor calls it during exception unwinding).
  void stop() {
    stop_.store(true, std::memory_order_release);
    if (supervisor_.joinable()) supervisor_.join();
    if (watchdog_) watchdog_->stop();
    server_.stop();
  }

 private:
  void supervise() {
    double last_flush = status_.now_seconds();
    bool announced = false;
    while (!stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      const double now = status_.now_seconds();
      if (flags_.metrics_interval > 0.0 &&
          now - last_flush >= flags_.metrics_interval) {
        dump_metrics_to(flags_.metrics_path);
        last_flush = now;
      }
      if (obs::shutdown_requested() && !announced) {
        announced = true;
        // Flush the evidence snapshot now, before in-flight jobs drain:
        // a second signal hard-exits, and this is what survives it.
        if (!flags_.metrics_path.empty() && flags_.metrics_path != "-") {
          dump_metrics_to(flags_.metrics_path);
        }
        obs::flush_file_trace();
        std::cerr << "pbw-campaign: interrupt — finishing in-flight jobs; "
                     "recorded results are resumable (signal again to "
                     "abort)\n";
      }
    }
  }

  campaign::CampaignStatus& status_;
  TelemetryFlags flags_;
  obs::HttpServer server_;
  planner::PlanService planner_;
  std::unique_ptr<obs::Watchdog> watchdog_;
  std::thread supervisor_;
  std::atomic<bool> stop_{false};
};

/// Interrupted runs exit 128+sig after pointing at the resume path.
int finalize_interrupt(const campaign::RunStats& stats) {
  if (!stats.interrupted) return 0;
  const std::size_t runnable = stats.total - stats.skipped;
  std::cerr << "pbw-campaign: interrupted after " << stats.executed << " of "
            << runnable
            << " runnable jobs; rerun the same command to resume.\n";
  const int sig = obs::shutdown_signal();
  return 128 + (sig == 0 ? 2 : sig);
}

/// Runs the jobs and prints the run summary; returns the wall-clock seconds.
campaign::RunStats run_and_report(const std::vector<campaign::Job>& jobs,
                                  campaign::Recorder& recorder,
                                  const campaign::ExecutorOptions& options,
                                  bool quiet) {
  const auto start = std::chrono::steady_clock::now();
  const auto stats = campaign::run_campaign(jobs, recorder, options);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!quiet) {
    std::cout << stats.total << " jobs: " << stats.executed << " executed ("
              << stats.simulated << " simulated, " << stats.recosted
              << " replay-recosted";
    if (stats.batched > 0) std::cout << ", " << stats.batched << " batched";
    if (stats.checked > 0) std::cout << ", " << stats.checked << " checked";
    std::cout << "), " << stats.skipped << " resume-skipped in " << secs
              << "s (batch kernel " << stats.batch_simd << " x"
              << stats.batch_threads << "; " << recorder.path() << ", git "
              << recorder.version() << ")\n";
  }
  return stats;
}

int cmd_run(const util::Cli& cli) {
  if (cli.positional().size() < 2) {
    std::cerr << "usage: pbw-campaign run <spec-file> [--out=...] "
                 "[--threads=N] [--force] [--dry-run] [--trace-dir=<dir>] "
                 "[--metrics=<file>|-] [--metrics-interval=SEC] "
                 "[--no-replay] [--replay-check] [--tape-cache-mb=N] "
                 "[--serve-port=N] [--stall-seconds=SEC] [--profile] "
                 "[--trace=FILE] [--trace-format=FMT]\n";
    return 2;
  }
  const std::string& spec_path = cli.positional()[1];
  std::ifstream in(spec_path);
  if (!in) {
    std::cerr << "pbw-campaign: cannot read " << spec_path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  const auto specs = campaign::parse_spec(buffer.str());
  const auto jobs =
      campaign::expand_all(specs, campaign::Registry::instance());

  if (cli.get_bool("dry-run")) {
    for (const auto& job : jobs) {
      std::cout << job.base_key() << " trials=" << job.trials << "\n";
    }
    std::cout << jobs.size() << " jobs\n";
    return 0;
  }

  if (cli.has("trace")) {
    obs::install_file_trace(cli.get("trace"),
                            cli.get("trace-format", "jsonl"));
  }

  campaign::Recorder recorder(cli.get("out", "campaign.jsonl"));
  campaign::CampaignStatus status;
  Telemetry telemetry(status, telemetry_flags(cli));
  telemetry.start();

  auto options = executor_options(cli);
  options.status = &status;
  options.stop = obs::shutdown_flag();
  const auto stats =
      run_and_report(jobs, recorder, options, cli.get_bool("quiet"));
  telemetry.stop();
  maybe_dump_metrics(cli);
  obs::flush_file_trace();
  return finalize_interrupt(stats);
}

int cmd_table1(const util::Cli& cli) {
  const auto flags = util::parse_model_flags(cli);

  // The preset is itself a spec — the same path a user would script.
  std::ostringstream spec;
  for (const char* scenario : {"table1.one_to_all", "table1.broadcast",
                               "table1.summation"}) {
    spec << "[sweep]\nscenario = " << scenario << "\nfamily = bsp, qsm\n"
         << "p = " << flags.p << "\ng = " << flags.g << "\nL = " << flags.L
         << "\nseeds = " << flags.seed << "\ntrials = " << flags.trials
         << "\n";
  }
  for (const char* scenario : {"table1.list_ranking", "table1.sorting"}) {
    spec << "[sweep]\nscenario = " << scenario << "\np = " << flags.p
         << "\ng = " << flags.g << "\nL = " << flags.L
         << "\nseeds = " << flags.seed << "\ntrials = " << flags.trials
         << "\n";
  }

  const auto specs = campaign::parse_spec(spec.str());
  const auto jobs =
      campaign::expand_all(specs, campaign::Registry::instance());

  campaign::Recorder recorder(cli.get("out", "table1.jsonl"));
  campaign::CampaignStatus status;
  Telemetry telemetry(status, telemetry_flags(cli));
  telemetry.start();

  auto options = executor_options(cli);
  options.status = &status;
  options.stop = obs::shutdown_flag();
  const auto stats =
      run_and_report(jobs, recorder, options, cli.get_bool("quiet"));
  telemetry.stop();
  maybe_dump_metrics(cli);
  obs::flush_file_trace();
  if (stats.interrupted) return finalize_interrupt(stats);

  // Print the Table 1 view from the recorded artifact (covers both fresh
  // and resume-skipped jobs — and exercises the JSONL round-trip).
  std::set<std::string> wanted;
  for (const auto& job : jobs) wanted.insert(recorder.key_for(job));

  std::ifstream results(recorder.path());
  std::string line;
  util::Table table({"problem", "family", "local", "global", "sep (meas)",
                     "sep (paper)", "ratio", "correct"});
  bool all_correct = true;
  std::size_t shown = 0;
  while (std::getline(results, line)) {
    if (line.empty()) continue;
    const util::Json rec = util::Json::parse(line);
    const util::Json* key = rec.get("key");
    if (key == nullptr || wanted.count(key->as_string()) == 0) continue;
    wanted.erase(key->as_string());
    const util::Json& metrics = *rec.get("metrics");
    const auto mean = [&](const char* name) {
      return metrics.get(name)->get("mean")->as_double();
    };
    const util::Json* family = rec.get("params")->get("family");
    const util::Json* within = metrics.get("within_theta");
    const bool correct = mean("correct") >= 1.0 &&
                         (within == nullptr || within->get("mean")->as_double() >= 1.0);
    all_correct &= correct;
    table.add_row({rec.get("scenario")->as_string(),
                   family != nullptr ? family->as_string() : "-",
                   util::Table::num(mean("time_local")),
                   util::Table::num(mean("time_global")),
                   util::Table::num(mean("sep_meas")),
                   util::Table::num(mean("sep_pred")),
                   util::Table::num(mean("sep_ratio")),
                   correct ? "yes" : "NO"});
    ++shown;
  }
  table.print(std::cout);
  if (!wanted.empty()) {
    std::cerr << "pbw-campaign: " << wanted.size()
              << " expected records missing from " << recorder.path() << "\n";
    return 1;
  }
  std::cout << "\n" << shown << " rows; 'ratio' = measured separation /"
            << " predicted Theta — Table 1 asserts it stays within a"
            << " constant.\n";
  return all_correct ? 0 : 1;
}

// ---- fleet verbs (docs/FLEET.md) -------------------------------------------

int cmd_serve(const util::Cli& cli) {
  fleet::Coordinator::Options options;
  options.port = static_cast<std::uint16_t>(cli.get_int("serve-port", 0));
  options.bind = cli.get("serve-bind", "127.0.0.1");
  options.out_dir = cli.get("out-dir", ".");
  options.lease_seconds = cli.get_double("lease-seconds", 30.0);
  options.max_attempts =
      static_cast<std::size_t>(cli.get_int("max-attempts", 3));
  options.replay = !cli.get_bool("no-replay");
  options.replay_check = cli.get_bool("replay-check");
  options.access_log = cli.get("access-log");

  obs::install_shutdown_signals();
  fleet::Coordinator coordinator(std::move(options));
  coordinator.start();
  std::cerr << "pbw-campaign: coordinator on http://"
            << cli.get("serve-bind", "127.0.0.1") << ":" << coordinator.port()
            << " (POST /submit, /status, /metrics)\n";
  while (!obs::shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  coordinator.stop();
  std::cerr << "pbw-campaign: coordinator stopped\n";
  return 0;
}

int cmd_worker(const util::Cli& cli) {
  const std::string endpoint_spec = cli.get("coordinator");
  if (endpoint_spec.empty()) {
    std::cerr << "usage: pbw-campaign worker --coordinator=HOST:PORT "
                 "[--worker-id=NAME] [--poll-seconds=SEC] "
                 "[--max-idle-seconds=SEC] [--tape-cache-mb=N]\n";
    return 2;
  }
  const fleet::Endpoint endpoint = fleet::parse_endpoint(endpoint_spec);

  fleet::Worker::Options options;
  options.host = endpoint.host;
  options.port = endpoint.port;
  options.id = cli.get("worker-id");
  options.poll_seconds = cli.get_double("poll-seconds", 0.5);
  options.max_idle_seconds = cli.get_double("max-idle-seconds", 0.0);
  options.tape_cache_bytes = static_cast<std::size_t>(cli.get_int(
                                 "tape-cache-mb",
                                 static_cast<std::int64_t>(256)))
                             << 20;
  obs::install_shutdown_signals();
  options.stop = obs::shutdown_flag();

  fleet::Worker worker(std::move(options));
  std::cerr << "pbw-campaign: worker " << worker.id() << " -> "
            << endpoint.host << ":" << endpoint.port << "\n";
  const fleet::Worker::Stats stats = worker.run();
  std::cout << "worker " << worker.id() << ": " << stats.shards
            << " shards, " << stats.rows << " rows";
  if (stats.errors > 0) std::cout << ", " << stats.errors << " errors";
  if (stats.stale > 0) std::cout << ", " << stats.stale << " stale leases";
  std::cout << "\n";
  return 0;
}

int cmd_submit(const util::Cli& cli) {
  const std::string endpoint_spec = cli.get("coordinator");
  if (cli.positional().size() < 2 || endpoint_spec.empty()) {
    std::cerr << "usage: pbw-campaign submit <spec-file> "
                 "--coordinator=HOST:PORT [--wait] [--out=<file>]\n";
    return 2;
  }
  const fleet::Endpoint endpoint = fleet::parse_endpoint(endpoint_spec);
  const std::string& spec_path = cli.positional()[1];
  std::ifstream in(spec_path);
  if (!in) {
    std::cerr << "pbw-campaign: cannot read " << spec_path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  const fleet::HttpResult res =
      fleet::http_post(endpoint.host, endpoint.port, "/submit", buffer.str());
  if (!res.ok) {
    std::cerr << "pbw-campaign: submit failed: " << res.error << "\n";
    return 1;
  }
  if (res.status != 200) {
    std::cerr << "pbw-campaign: submit rejected (" << res.status
              << "): " << res.body;
    return 1;
  }
  const util::Json reply = util::Json::parse(res.body);
  const std::string job = reply.get("job")->as_string();
  std::cout << "job " << job << ": " << reply.get("jobs")->as_int()
            << " grid points in " << reply.get("shards")->as_int()
            << " shards (" << reply.get("resumed")->as_int()
            << " resumed)\n";
  if (!cli.get_bool("wait")) return 0;

  const double poll = cli.get_double("poll-seconds", 0.5);
  obs::install_shutdown_signals();
  std::string state = "running";
  while (!obs::shutdown_requested()) {
    const fleet::HttpResult poll_res =
        fleet::http_get(endpoint.host, endpoint.port, "/jobs/" + job);
    if (poll_res.ok && poll_res.status == 200) {
      const util::Json doc = util::Json::parse(poll_res.body);
      state = doc.get("state")->as_string();
      if (state != "running") {
        std::cout << "job " << job << ": " << state << ", "
                  << doc.get("recorded")->as_int() << "/"
                  << doc.get("jobs")->as_int() << " rows recorded\n";
        break;
      }
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(poll));
  }
  if (state == "running") return 130;  // interrupted while waiting

  const std::string out = cli.get("out");
  if (!out.empty()) {
    const fleet::HttpResult body =
        fleet::http_get(endpoint.host, endpoint.port, "/results/" + job);
    if (!body.ok || body.status != 200) {
      std::cerr << "pbw-campaign: cannot fetch results for " << job << "\n";
      return 1;
    }
    std::ofstream sink(out);
    sink << body.body;
    if (!sink) {
      std::cerr << "pbw-campaign: cannot write " << out << "\n";
      return 1;
    }
    std::cout << "results -> " << out << "\n";
  }
  return state == "done" ? 0 : 1;
}

int cmd_plan(const util::Cli& cli) {
  if (cli.positional().size() < 2) {
    std::cerr << "usage: pbw-campaign plan <request.json> [--out=<file>|-]\n"
                 "       (request schema: docs/PLANNER.md)\n";
    return 2;
  }
  return planner::cli_solve(cli.positional()[1], cli);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  std::string command = cli.positional().empty() ? "" : cli.positional()[0];
  if (command.empty() && cli.get_bool("worker")) command = "worker";

  // --help: the overview, or one command's flag table (campaign/cli_docs).
  const campaign::CommandDoc* doc = campaign::find_command_doc(command);
  if (cli.has("help")) {
    if (doc != nullptr) {
      campaign::print_command_help(std::cout, *doc);
    } else {
      campaign::print_overview(std::cout);
    }
    return 0;
  }
  // Reject flags the command does not read: a typo like --trails=5 must
  // not silently run a different experiment than the user asked for.
  if (doc != nullptr) {
    const std::vector<std::string> unknown = campaign::unknown_flags(cli, *doc);
    if (!unknown.empty()) {
      std::cerr << "pbw-campaign " << command << ": unknown flag";
      if (unknown.size() > 1) std::cerr << "s";
      std::cerr << ":";
      for (const std::string& flag : unknown) std::cerr << " --" << flag;
      std::cerr << "\n(`pbw-campaign " << command
                << " --help` lists the flags it reads)\n";
      return 2;
    }
  }

  try {
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(cli);
    if (command == "table1") return cmd_table1(cli);
    if (command == "serve") return cmd_serve(cli);
    if (command == "submit") return cmd_submit(cli);
    if (command == "worker") return cmd_worker(cli);
    if (command == "plan") return cmd_plan(cli);
  } catch (const std::exception& e) {
    std::cerr << "pbw-campaign: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "usage: pbw-campaign <list | run <spec-file> | table1 | serve "
               "| worker | submit <spec-file> | plan <request.json>> [flags]\n"
               "       (see docs/CAMPAIGN.md, docs/FLEET.md, "
               "docs/PLANNER.md; --help lists commands)\n";
  return 2;
}
