// pbw-campaign — run declarative experiment campaigns.
//
//   pbw-campaign list
//       Show every registered scenario with its parameter schema.
//
//   pbw-campaign run <spec-file> [--out=campaign.jsonl] [--threads=N]
//                    [--force] [--dry-run] [--trace-dir=<dir>]
//                    [--metrics=<file>|-] [--no-replay] [--replay-check]
//                    [--tape-cache-mb=N]
//       Expand the sweep blocks of the spec file and run every job not
//       already in the resume manifest; results append to the JSONL file.
//       --trace-dir writes each job's per-superstep cost attribution to
//       its own JSONL stream; --metrics dumps the executor's metrics
//       registry as JSON after the run (docs/OBSERVABILITY.md).  Grid
//       points differing only in cost-only axes are recosted from one
//       captured simulation (docs/CAMPAIGN.md, "Trace replay");
//       --no-replay simulates every point, --replay-check re-simulates
//       every recosted point and fails unless the rows are bit-equal, and
//       --tape-cache-mb bounds the in-memory tape cache.
//
//   pbw-campaign table1 [--p=1024] [--g=16] [--L=16] [--seed=1]
//                       [--trials=1] [--out=table1.jsonl] [--threads=N]
//                       [--force]
//       Preset reproducing all five Table 1 rows end-to-end, then printing
//       the separations from the recorded JSONL.
//
// Spec format and JSON schema: docs/CAMPAIGN.md.
#include <chrono>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>

#include "campaign/campaign.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

using namespace pbw;

int cmd_list() {
  util::Table table({"scenario", "description", "parameters"});
  for (const auto* s : campaign::Registry::instance().all()) {
    std::string params;
    for (const auto& p : s->params) {
      if (!params.empty()) params += " ";
      params += p.name + "=" + p.default_value;
    }
    table.add_row({s->name, s->description, params});
  }
  table.print(std::cout);
  return 0;
}

campaign::ExecutorOptions executor_options(const util::Cli& cli) {
  campaign::ExecutorOptions options;
  options.threads = static_cast<std::size_t>(cli.get_int("threads", 0));
  options.force = cli.get_bool("force");
  options.trace_dir = cli.get("trace-dir");
  options.replay = !cli.get_bool("no-replay");
  options.replay_check = cli.get_bool("replay-check");
  options.tape_cache_bytes = static_cast<std::size_t>(cli.get_int(
                                 "tape-cache-mb",
                                 static_cast<std::int64_t>(256)))
                             << 20;
  return options;
}

/// --metrics=<file>: dump the process metrics registry as JSON after the
/// run ("-" for stdout).
void maybe_dump_metrics(const util::Cli& cli) {
  const std::string path = cli.get("metrics");
  if (path.empty()) return;
  const util::Json json = obs::MetricsRegistry::global().to_json();
  if (path == "-") {
    std::cout << json.dump() << "\n";
    return;
  }
  std::ofstream out(path);
  out << json.dump() << "\n";
  if (!out) std::cerr << "pbw-campaign: cannot write " << path << "\n";
}

/// Runs the jobs and prints the run summary; returns the wall-clock seconds.
campaign::RunStats run_and_report(const std::vector<campaign::Job>& jobs,
                                  campaign::Recorder& recorder,
                                  const campaign::ExecutorOptions& options,
                                  bool quiet) {
  const auto start = std::chrono::steady_clock::now();
  const auto stats = campaign::run_campaign(jobs, recorder, options);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!quiet) {
    std::cout << stats.total << " jobs: " << stats.executed << " executed ("
              << stats.simulated << " simulated, " << stats.recosted
              << " replay-recosted";
    if (stats.checked > 0) std::cout << ", " << stats.checked << " checked";
    std::cout << "), " << stats.skipped << " resume-skipped in " << secs
              << "s (" << recorder.path() << ", git " << recorder.version()
              << ")\n";
  }
  return stats;
}

int cmd_run(const util::Cli& cli) {
  if (cli.positional().size() < 2) {
    std::cerr << "usage: pbw-campaign run <spec-file> [--out=...] "
                 "[--threads=N] [--force] [--dry-run] [--trace-dir=<dir>] "
                 "[--metrics=<file>|-] [--no-replay] [--replay-check] "
                 "[--tape-cache-mb=N]\n";
    return 2;
  }
  const std::string& spec_path = cli.positional()[1];
  std::ifstream in(spec_path);
  if (!in) {
    std::cerr << "pbw-campaign: cannot read " << spec_path << "\n";
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  const auto specs = campaign::parse_spec(buffer.str());
  const auto jobs =
      campaign::expand_all(specs, campaign::Registry::instance());

  if (cli.get_bool("dry-run")) {
    for (const auto& job : jobs) {
      std::cout << job.base_key() << " trials=" << job.trials << "\n";
    }
    std::cout << jobs.size() << " jobs\n";
    return 0;
  }

  campaign::Recorder recorder(cli.get("out", "campaign.jsonl"));
  run_and_report(jobs, recorder, executor_options(cli), cli.get_bool("quiet"));
  maybe_dump_metrics(cli);
  return 0;
}

int cmd_table1(const util::Cli& cli) {
  const auto flags = util::parse_model_flags(cli);

  // The preset is itself a spec — the same path a user would script.
  std::ostringstream spec;
  for (const char* scenario : {"table1.one_to_all", "table1.broadcast",
                               "table1.summation"}) {
    spec << "[sweep]\nscenario = " << scenario << "\nfamily = bsp, qsm\n"
         << "p = " << flags.p << "\ng = " << flags.g << "\nL = " << flags.L
         << "\nseeds = " << flags.seed << "\ntrials = " << flags.trials
         << "\n";
  }
  for (const char* scenario : {"table1.list_ranking", "table1.sorting"}) {
    spec << "[sweep]\nscenario = " << scenario << "\np = " << flags.p
         << "\ng = " << flags.g << "\nL = " << flags.L
         << "\nseeds = " << flags.seed << "\ntrials = " << flags.trials
         << "\n";
  }

  const auto specs = campaign::parse_spec(spec.str());
  const auto jobs =
      campaign::expand_all(specs, campaign::Registry::instance());

  campaign::Recorder recorder(cli.get("out", "table1.jsonl"));
  run_and_report(jobs, recorder, executor_options(cli), cli.get_bool("quiet"));
  maybe_dump_metrics(cli);

  // Print the Table 1 view from the recorded artifact (covers both fresh
  // and resume-skipped jobs — and exercises the JSONL round-trip).
  std::set<std::string> wanted;
  for (const auto& job : jobs) wanted.insert(recorder.key_for(job));

  std::ifstream results(recorder.path());
  std::string line;
  util::Table table({"problem", "family", "local", "global", "sep (meas)",
                     "sep (paper)", "ratio", "correct"});
  bool all_correct = true;
  std::size_t shown = 0;
  while (std::getline(results, line)) {
    if (line.empty()) continue;
    const util::Json rec = util::Json::parse(line);
    const util::Json* key = rec.get("key");
    if (key == nullptr || wanted.count(key->as_string()) == 0) continue;
    wanted.erase(key->as_string());
    const util::Json& metrics = *rec.get("metrics");
    const auto mean = [&](const char* name) {
      return metrics.get(name)->get("mean")->as_double();
    };
    const util::Json* family = rec.get("params")->get("family");
    const util::Json* within = metrics.get("within_theta");
    const bool correct = mean("correct") >= 1.0 &&
                         (within == nullptr || within->get("mean")->as_double() >= 1.0);
    all_correct &= correct;
    table.add_row({rec.get("scenario")->as_string(),
                   family != nullptr ? family->as_string() : "-",
                   util::Table::num(mean("time_local")),
                   util::Table::num(mean("time_global")),
                   util::Table::num(mean("sep_meas")),
                   util::Table::num(mean("sep_pred")),
                   util::Table::num(mean("sep_ratio")),
                   correct ? "yes" : "NO"});
    ++shown;
  }
  table.print(std::cout);
  if (!wanted.empty()) {
    std::cerr << "pbw-campaign: " << wanted.size()
              << " expected records missing from " << recorder.path() << "\n";
    return 1;
  }
  std::cout << "\n" << shown << " rows; 'ratio' = measured separation /"
            << " predicted Theta — Table 1 asserts it stays within a"
            << " constant.\n";
  return all_correct ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string command =
      cli.positional().empty() ? "" : cli.positional()[0];
  try {
    if (command == "list") return cmd_list();
    if (command == "run") return cmd_run(cli);
    if (command == "table1") return cmd_table1(cli);
  } catch (const std::exception& e) {
    std::cerr << "pbw-campaign: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "usage: pbw-campaign <list | run <spec-file> | table1> "
               "[flags]\n       (see docs/CAMPAIGN.md)\n";
  return command.empty() ? 2 : 2;
}
