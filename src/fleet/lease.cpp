#include "fleet/lease.hpp"

namespace pbw::fleet {

LeaseTable::LeaseTable(std::size_t shards, double lease_seconds)
    : lease_seconds_(lease_seconds), shards_(shards), pending_(shards) {}

LeaseTable::Grant LeaseTable::grant(const std::string& worker, double now) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = shards_[i];
    if (s.state != State::kPending) continue;
    s.state = State::kLeased;
    s.token = next_token_++;
    s.worker = worker;
    s.granted_at = now;
    s.deadline = now + lease_seconds_;
    --pending_;
    ++leased_;
    return Grant{true, i, s.token};
  }
  return Grant{};
}

LeaseTable::Ack LeaseTable::complete(std::size_t shard, std::uint64_t token) {
  if (shard >= shards_.size()) return Ack::kStale;
  Shard& s = shards_[shard];
  if (s.state == State::kDone) return Ack::kDone;
  if (s.state == State::kLeased && s.token == token) {
    s.state = State::kDone;
    --leased_;
    ++done_;
    return Ack::kOk;
  }
  // Expired-and-still-pending with a matching token: the worker finished
  // after losing the lease but before anyone re-leased it.  Accept — the
  // work is done and nobody else holds it.
  if (s.state == State::kPending && s.token == token) {
    s.state = State::kDone;
    --pending_;
    ++done_;
    return Ack::kOk;
  }
  return Ack::kStale;
}

bool LeaseTable::renew(std::size_t shard, std::uint64_t token, double now) {
  if (shard >= shards_.size()) return false;
  Shard& s = shards_[shard];
  if (s.state != State::kLeased || s.token != token) return false;
  s.deadline = now + lease_seconds_;
  return true;
}

std::size_t LeaseTable::expire(double now) {
  std::size_t reclaimed = 0;
  for (Shard& s : shards_) {
    if (s.state != State::kLeased || s.deadline > now) continue;
    s.state = State::kPending;
    s.worker.clear();
    --leased_;
    ++pending_;
    ++reclaimed;
    ++expired_total_;
  }
  return reclaimed;
}

void LeaseTable::mark_done(std::size_t shard) {
  if (shard >= shards_.size()) return;
  Shard& s = shards_[shard];
  switch (s.state) {
    case State::kPending: --pending_; break;
    case State::kLeased: --leased_; break;
    case State::kDone: return;
    case State::kFailed: --failed_; break;
  }
  s.state = State::kDone;
  ++done_;
}

bool LeaseTable::fail(std::size_t shard, std::uint64_t token,
                      std::size_t max_attempts) {
  if (shard >= shards_.size()) return false;
  Shard& s = shards_[shard];
  if (s.state != State::kLeased || s.token != token) return false;
  ++s.errors;
  --leased_;
  if (s.errors >= max_attempts) {
    s.state = State::kFailed;
    ++failed_;
    return false;
  }
  s.state = State::kPending;
  s.worker.clear();
  ++pending_;
  return true;
}

std::vector<LeaseTable::InFlight> LeaseTable::in_flight(double now) const {
  std::vector<InFlight> out;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const Shard& s = shards_[i];
    if (s.state != State::kLeased) continue;
    out.push_back(InFlight{i, s.worker, now - s.granted_at});
  }
  return out;
}

}  // namespace pbw::fleet
