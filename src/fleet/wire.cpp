#include "fleet/wire.hpp"

#include <charconv>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace pbw::fleet {

std::string double_to_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof v);
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

double double_from_bits(const std::string& hex) {
  if (hex.size() != 18 || hex[0] != '0' || hex[1] != 'x') {
    throw std::invalid_argument("fleet: bad double bits '" + hex + "'");
  }
  std::uint64_t bits = 0;
  const auto [p, ec] =
      std::from_chars(hex.data() + 2, hex.data() + hex.size(), bits, 16);
  if (ec != std::errc{} || p != hex.data() + hex.size()) {
    throw std::invalid_argument("fleet: bad double bits '" + hex + "'");
  }
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

util::Json job_to_json(const campaign::Job& job) {
  util::Json j = util::Json::object();
  j["scenario"] = util::Json(job.scenario->name);
  util::Json params = util::Json::object();
  for (const auto& [name, value] : job.params.entries()) {
    params[name] = util::Json(value);
  }
  j["params"] = std::move(params);
  j["seed"] = util::Json(std::to_string(job.seed));
  j["trials"] = util::Json(job.trials);
  return j;
}

namespace {

const util::Json& require(const util::Json& json, const char* key) {
  const util::Json* v = json.get(key);
  if (v == nullptr) {
    throw std::invalid_argument(std::string("fleet: job missing '") + key +
                                "'");
  }
  return *v;
}

std::uint64_t u64_from_string(const std::string& s, const char* what) {
  std::uint64_t v = 0;
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc{} || p != s.data() + s.size()) {
    throw std::invalid_argument(std::string("fleet: bad ") + what + " '" + s +
                                "'");
  }
  return v;
}

std::uint64_t hex64_from_string(const std::string& s, const char* what) {
  std::uint64_t v = 0;
  const auto [p, ec] =
      std::from_chars(s.data(), s.data() + s.size(), v, 16);
  if (ec != std::errc{} || p != s.data() + s.size()) {
    throw std::invalid_argument(std::string("fleet: bad ") + what + " '" + s +
                                "'");
  }
  return v;
}

}  // namespace

campaign::Job job_from_json(const util::Json& json,
                            const campaign::Registry& registry) {
  campaign::Job job;
  const std::string& name = require(json, "scenario").as_string();
  job.scenario = registry.find(name);
  if (job.scenario == nullptr) {
    throw std::invalid_argument("fleet: unknown scenario '" + name +
                                "' (version skew between coordinator and "
                                "worker?)");
  }
  for (const auto& [key, value] : require(json, "params").members()) {
    job.params.set(key, value.as_string());
  }
  const std::string& seed = require(json, "seed").as_string();
  const auto [p, ec] =
      std::from_chars(seed.data(), seed.data() + seed.size(), job.seed);
  if (ec != std::errc{} || p != seed.data() + seed.size()) {
    throw std::invalid_argument("fleet: bad seed '" + seed + "'");
  }
  job.trials = static_cast<int>(require(json, "trials").as_int());
  if (job.trials < 1) {
    throw std::invalid_argument("fleet: trials must be positive");
  }
  return job;
}

util::Json rows_to_json(const std::vector<campaign::MetricRow>& trials) {
  util::Json out = util::Json::array();
  for (const auto& row : trials) {
    util::Json trial = util::Json::array();
    for (const auto& [name, value] : row) {
      util::Json pair = util::Json::array();
      pair.push_back(util::Json(name));
      pair.push_back(util::Json(double_to_bits(value)));
      trial.push_back(std::move(pair));
    }
    out.push_back(std::move(trial));
  }
  return out;
}

std::vector<campaign::MetricRow> rows_from_json(const util::Json& json) {
  std::vector<campaign::MetricRow> trials;
  trials.reserve(json.size());
  for (std::size_t t = 0; t < json.size(); ++t) {
    const util::Json& trial = json.at(t);
    campaign::MetricRow row;
    row.reserve(trial.size());
    for (std::size_t k = 0; k < trial.size(); ++k) {
      const util::Json& pair = trial.at(k);
      if (pair.size() != 2) {
        throw std::invalid_argument("fleet: metric pair must be [name, bits]");
      }
      row.emplace_back(pair.at(0).as_string(),
                       double_from_bits(pair.at(1).as_string()));
    }
    trials.push_back(std::move(row));
  }
  return trials;
}

util::Json span_events_to_json(const std::vector<obs::SpanEvent>& events) {
  util::Json out = util::Json::array();
  for (const obs::SpanEvent& event : events) {
    char parent[17];
    std::snprintf(parent, sizeof parent, "%016llx",
                  static_cast<unsigned long long>(event.parent_span));
    util::Json entry = util::Json::array();
    entry.push_back(util::Json(event.name));
    entry.push_back(util::Json(std::to_string(event.start_ns)));
    entry.push_back(util::Json(std::to_string(event.dur_ns)));
    entry.push_back(util::Json(event.tid));
    entry.push_back(util::Json(event.depth));
    entry.push_back(util::Json(std::string(parent)));
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<obs::SpanEvent> span_events_from_json(const util::Json& json) {
  std::vector<obs::SpanEvent> events;
  events.reserve(json.size());
  for (std::size_t i = 0; i < json.size(); ++i) {
    const util::Json& entry = json.at(i);
    if (entry.size() != 6) {
      throw std::invalid_argument(
          "fleet: span entry must be [name, start, dur, tid, depth, parent]");
    }
    obs::SpanEvent event;
    event.name = entry.at(0).as_string();
    event.start_ns = u64_from_string(entry.at(1).as_string(), "span start");
    event.dur_ns = u64_from_string(entry.at(2).as_string(), "span dur");
    event.tid = static_cast<std::uint32_t>(entry.at(3).as_int());
    event.depth = static_cast<std::uint32_t>(entry.at(4).as_int());
    event.parent_span =
        hex64_from_string(entry.at(5).as_string(), "span parent");
    events.push_back(std::move(event));
  }
  return events;
}

}  // namespace pbw::fleet
