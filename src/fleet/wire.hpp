// Fleet wire protocol: JSON encodings shared by coordinator and workers.
//
// Everything the fleet moves over HTTP is plain JSON (docs/FLEET.md), but
// two encodings are load-bearing:
//
//  * Jobs travel with their parameters as *strings* — the exact text the
//    sweep expander produced — never as JSON numbers.  A number round
//    trip could rewrite "4.0" as "4", silently changing the canonical
//    manifest key and breaking resume/dedup.
//  * Metric values travel as hex-encoded IEEE-754 bit patterns
//    ("0x3fe0000000000000"), not decimal floats.  The acceptance bar for
//    a fleet run is bit-identical JSONL versus a local --threads run, and
//    the executor's replay gate compares doubles by bits (-0.0 != 0.0),
//    so the wire must not round anything — including non-finite values,
//    which JSON numbers cannot carry at all.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/scenario.hpp"
#include "campaign/sweep.hpp"
#include "obs/telemetry/span.hpp"
#include "util/json.hpp"

namespace pbw::fleet {

/// "0x" + 16 lowercase hex digits of the double's bit pattern.
[[nodiscard]] std::string double_to_bits(double v);

/// Inverse of double_to_bits.  Throws std::invalid_argument on bad input.
[[nodiscard]] double double_from_bits(const std::string& hex);

/// {"scenario": "...", "params": {"p": "64", ...}, "seed": "1", "trials": 2}
/// Seed is a string: uint64 does not fit a JSON double above 2^53.
[[nodiscard]] util::Json job_to_json(const campaign::Job& job);

/// Rebuilds a Job against `registry`.  Throws std::invalid_argument on an
/// unknown scenario or malformed fields — a version-skewed worker must
/// fail loudly, not run the wrong grid point.
[[nodiscard]] campaign::Job job_from_json(const util::Json& json,
                                          const campaign::Registry& registry);

/// [[["metric","0x..."], ...], ...] — one inner array per trial.
[[nodiscard]] util::Json rows_to_json(
    const std::vector<campaign::MetricRow>& trials);

[[nodiscard]] std::vector<campaign::MetricRow> rows_from_json(
    const util::Json& json);

/// Span events as compact arrays:
/// [["name","<start_ns>","<dur_ns>",tid,depth,"<parent hex16>"], ...].
/// start/dur travel as decimal strings (u64 exceeds a JSON double's 2^53
/// integer range once a process has been up long enough; flamegraph
/// timestamps must not round).  Trace ids are implied by the enclosing
/// report — every shipped span belongs to the grant's trace.
[[nodiscard]] util::Json span_events_to_json(
    const std::vector<obs::SpanEvent>& events);

/// Inverse; throws std::invalid_argument on malformed entries.
[[nodiscard]] std::vector<obs::SpanEvent> span_events_from_json(
    const util::Json& json);

}  // namespace pbw::fleet
