#include "fleet/coordinator.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "fleet/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/prometheus.hpp"

namespace pbw::fleet {

namespace {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

obs::HttpResponse json_response(const util::Json& body, int status = 200) {
  obs::HttpResponse r;
  r.status = status;
  r.content_type = "application/json";
  r.body = body.dump() + "\n";
  return r;
}

obs::HttpResponse error_response(int status, const std::string& message) {
  util::Json doc = util::Json::object();
  doc["error"] = message;
  return json_response(doc, status);
}

/// "/results/<id>" -> "<id>" ("" when nothing follows the prefix).
std::string path_suffix(const std::string& path, const std::string& prefix) {
  if (path.size() <= prefix.size()) return "";
  return path.substr(prefix.size());
}

const std::string* get_string(const util::Json& doc, const char* key) {
  const util::Json* v = doc.get(key);
  if (v == nullptr || !v->is_string()) return nullptr;
  return &v->as_string();
}

bool get_index(const util::Json& doc, const char* key, std::size_t& out) {
  const util::Json* v = doc.get(key);
  if (v == nullptr || !v->is_number() || v->as_double() < 0) return false;
  out = static_cast<std::size_t>(v->as_int());
  return true;
}

}  // namespace

Coordinator::Coordinator(Options options)
    : options_(std::move(options)), epoch_(std::chrono::steady_clock::now()) {
  server_.route("POST", "/submit",
                [this](const obs::HttpRequest& r) { return handle_submit(r); });
  server_.route("POST", "/lease",
                [this](const obs::HttpRequest& r) { return handle_lease(r); });
  server_.route("POST", "/renew",
                [this](const obs::HttpRequest& r) { return handle_renew(r); });
  server_.route("POST", "/results/*",
                [this](const obs::HttpRequest& r) { return handle_results(r); });
  server_.route("GET", "/results/*", [this](const obs::HttpRequest& r) {
    return handle_results_get(r);
  });
  server_.route("GET", "/jobs/*",
                [this](const obs::HttpRequest& r) { return handle_job_get(r); });
  server_.route("GET", "/trace/*", [this](const obs::HttpRequest& r) {
    return handle_trace_get(r);
  });
  server_.route("GET", "/status",
                [this](const obs::HttpRequest&) { return handle_status(); });
  server_.route("GET", "/metrics",
                [this](const obs::HttpRequest&) { return handle_metrics(); });
  server_.route("GET", "/healthz", [](const obs::HttpRequest&) {
    obs::HttpResponse r;
    r.body = "ok\n";
    return r;
  });
  // The coordinator doubles as the planning endpoint (docs/PLANNER.md):
  // a what-if query is a recost, not a campaign, so it answers inline.
  planner_.mount(server_);
}

Coordinator::~Coordinator() { stop(); }

void Coordinator::start() {
  if (!options_.access_log.empty()) server_.set_access_log(options_.access_log);
  server_.start(options_.port, options_.bind);
}

void Coordinator::stop() { server_.stop(); }

double Coordinator::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::string Coordinator::submit(const std::string& spec_text) {
  // The id hashes the spec text *and* the code version: a resubmitted spec
  // joins its existing campaign, while a new binary gets a fresh one (its
  // manifest keys would not collide anyway — git= differs).
  char buf[32];
  std::snprintf(buf, sizeof buf, "j%016llx",
                static_cast<unsigned long long>(fnv1a64(
                    spec_text + "|git=" + campaign::git_version())));
  const std::string id(buf);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (by_id_.count(id) != 0) return id;
  }

  // Expand outside the lock: parse errors throw std::invalid_argument and
  // grids can be large.
  auto state = std::make_unique<CampaignState>();
  state->id = id;
  // The campaign's root trace is minted here: the submit work below, every
  // lease/merge on this campaign, and every worker's shipped shard spans
  // all join it, so GET /trace/<id> can reassemble one flamegraph.
  state->trace = obs::TraceContext::make_root();
  obs::ScopedContext trace_scope(state->trace);
  PBW_SPAN("fleet.submit");
  state->jobs =
      campaign::expand_all(campaign::parse_spec(spec_text),
                           campaign::Registry::instance());
  if (state->jobs.empty()) {
    throw std::invalid_argument("fleet: spec expands to zero jobs");
  }

  std::vector<const campaign::Job*> ptrs;
  ptrs.reserve(state->jobs.size());
  for (const campaign::Job& job : state->jobs) ptrs.push_back(&job);
  const auto groups = campaign::group_jobs(ptrs, options_.replay);
  state->shards.reserve(groups.size());
  const campaign::Job* base = state->jobs.data();
  for (const auto& group : groups) {
    std::vector<std::size_t> shard;
    shard.reserve(group.size());
    for (const campaign::Job* job : group) {
      shard.push_back(static_cast<std::size_t>(job - base));
    }
    state->shards.push_back(std::move(shard));
  }

  state->recorder = std::make_unique<campaign::Recorder>(options_.out_dir +
                                                         "/" + id + ".jsonl");
  state->leases =
      std::make_unique<LeaseTable>(state->shards.size(), options_.lease_seconds);

  // Resume: shards whose every job is already in the manifest never go out.
  for (std::size_t i = 0; i < state->shards.size(); ++i) {
    bool all_recorded = true;
    for (const std::size_t j : state->shards[i]) {
      if (!state->recorder->already_recorded(state->jobs[j])) {
        all_recorded = false;
      } else {
        ++state->resumed;
      }
    }
    if (all_recorded) state->leases->mark_done(i);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (by_id_.count(id) != 0) return id;  // lost a submit race; same spec
  by_id_[id] = state.get();
  campaigns_.push_back(std::move(state));
  obs::MetricsRegistry::global().counter("fleet.jobs_submitted").add();
  return id;
}

util::Json Coordinator::job_status(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return util::Json();
  return campaign_json_locked(*it->second);
}

bool Coordinator::finished(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_id_.find(id);
  return it != by_id_.end() && it->second->leases->all_done();
}

std::string Coordinator::results_path(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? "" : it->second->recorder->path();
}

void Coordinator::expire_leases_locked(double now) {
  std::size_t reclaimed = 0;
  for (const auto& c : campaigns_) reclaimed += c->leases->expire(now);
  if (reclaimed > 0) {
    obs::MetricsRegistry::global().counter("fleet.leases_expired").add(
        reclaimed);
  }
}

Coordinator::WorkerInfo& Coordinator::touch_worker_locked(const std::string& id,
                                                          double now) {
  WorkerInfo& info = workers_[id];
  info.last_seen = now;
  return info;
}

// ---- HTTP handlers ---------------------------------------------------------

obs::HttpResponse Coordinator::handle_submit(const obs::HttpRequest& request) {
  // Accept a raw spec file body, or {"spec": "..."} for clients that want
  // a JSON envelope.
  std::string spec = request.body;
  const std::size_t first = spec.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && spec[first] == '{') {
    try {
      const util::Json doc = util::Json::parse(spec);
      const std::string* inner = get_string(doc, "spec");
      if (inner == nullptr) {
        return error_response(400, "JSON submit body needs a \"spec\" string");
      }
      spec = *inner;
    } catch (const util::JsonError& e) {
      return error_response(400, std::string("bad JSON body: ") + e.what());
    }
  }
  if (spec.empty()) return error_response(400, "empty sweep spec");

  std::string id;
  try {
    id = submit(spec);
  } catch (const std::invalid_argument& e) {
    return error_response(400, e.what());
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const CampaignState& c = *by_id_.at(id);
  util::Json doc = util::Json::object();
  doc["job"] = id;
  doc["jobs"] = c.jobs.size();
  doc["shards"] = c.shards.size();
  doc["resumed"] = c.resumed;
  doc["results"] = c.recorder->path();
  return json_response(doc);
}

obs::HttpResponse Coordinator::handle_lease(const obs::HttpRequest& request) {
  std::string worker = "anonymous";
  if (!request.body.empty()) {
    try {
      const util::Json doc = util::Json::parse(request.body);
      if (const std::string* w = get_string(doc, "worker")) worker = *w;
    } catch (const util::JsonError& e) {
      return error_response(400, std::string("bad JSON body: ") + e.what());
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const double now = now_seconds();
  expire_leases_locked(now);
  touch_worker_locked(worker, now);

  for (const auto& c : campaigns_) {
    const LeaseTable::Grant grant = c->leases->grant(worker, now);
    if (!grant.granted) continue;
    // The grant span joins the campaign trace (not the lease request's
    // own), so /trace/<id> shows dispatch next to the worker's shard.
    obs::ScopedContext trace_scope(c->trace);
    PBW_SPAN("fleet.lease");
    touch_worker_locked(worker, now).last_renew = now;
    obs::MetricsRegistry::global().counter("fleet.leases_granted").add();
    util::Json doc = util::Json::object();
    doc["job"] = c->id;
    doc["shard"] = grant.shard;
    doc["lease"] = grant.token;
    doc["lease_seconds"] = options_.lease_seconds;
    doc["replay"] = options_.replay;
    doc["replay_check"] = options_.replay_check;
    // Trace propagation: the worker runs its shard under a child of the
    // campaign trace, and aligns its span clock against coord_ns (our
    // span epoch "now", sampled inside the lease round-trip).
    doc["trace"] = c->trace.child().format();
    doc["coord_ns"] = std::to_string(obs::SpanRegistry::now_ns());
    util::Json jobs = util::Json::array();
    for (const std::size_t j : c->shards[grant.shard]) {
      jobs.push_back(job_to_json(c->jobs[j]));
    }
    doc["jobs"] = std::move(jobs);
    return json_response(doc);
  }

  util::Json doc = util::Json::object();
  doc["idle"] = true;
  // Workers started before any submit should keep polling; workers on a
  // drained fleet may exit.  "drain" distinguishes the two.
  bool all_done = !campaigns_.empty();
  for (const auto& c : campaigns_) all_done = all_done && c->leases->all_done();
  doc["drain"] = all_done;
  return json_response(doc);
}

obs::HttpResponse Coordinator::handle_renew(const obs::HttpRequest& request) {
  std::string job;
  std::string worker = "anonymous";
  std::size_t shard = 0;
  std::size_t token = 0;
  try {
    const util::Json doc = util::Json::parse(request.body);
    const std::string* j = get_string(doc, "job");
    if (j == nullptr || !get_index(doc, "shard", shard) ||
        !get_index(doc, "lease", token)) {
      return error_response(400, "renew needs job, shard, lease");
    }
    job = *j;
    if (const std::string* w = get_string(doc, "worker")) worker = *w;
  } catch (const util::JsonError& e) {
    return error_response(400, std::string("bad JSON body: ") + e.what());
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const double now = now_seconds();
  expire_leases_locked(now);
  touch_worker_locked(worker, now).last_renew = now;
  const auto it = by_id_.find(job);
  if (it == by_id_.end()) return error_response(404, "unknown job " + job);
  util::Json doc = util::Json::object();
  doc["ok"] = it->second->leases->renew(shard, token, now);
  return json_response(doc);
}

obs::HttpResponse Coordinator::handle_results(const obs::HttpRequest& request) {
  const std::string id = path_suffix(request.path, "/results/");
  if (id.empty()) return error_response(404, "missing job id");

  std::string worker = "anonymous";
  std::size_t shard = 0;
  std::size_t token = 0;
  std::string error;
  // (job, trial rows) pairs, decoded before taking the lock: registry
  // lookups and hex decoding are pure, and a malformed payload must not
  // leave half a shard merged.
  std::vector<std::pair<campaign::Job, std::vector<campaign::MetricRow>>>
      decoded;
  // The worker's shipped shard spans (may be empty), and the clock offset
  // it measured over the lease round-trip.  Span decode failures are
  // deliberately non-fatal: a result batch must never be rejected over
  // its telemetry sidecar.
  std::vector<obs::SpanEvent> shipped_spans;
  std::int64_t clock_offset_ns = 0;
  try {
    const util::Json doc = util::Json::parse(request.body);
    if (const std::string* w = get_string(doc, "worker")) worker = *w;
    if (!get_index(doc, "shard", shard) || !get_index(doc, "lease", token)) {
      return error_response(400, "results need shard and lease");
    }
    if (const util::Json* spans = doc.get("spans");
        spans != nullptr && spans->is_array()) {
      try {
        shipped_spans = span_events_from_json(*spans);
        if (const std::string* off = get_string(doc, "clock_offset_ns")) {
          clock_offset_ns = static_cast<std::int64_t>(
              std::strtoll(off->c_str(), nullptr, 10));
        }
      } catch (const std::exception&) {
        shipped_spans.clear();
      }
    }
    if (const std::string* e = get_string(doc, "error")) {
      error = e->empty() ? "unspecified worker error" : *e;
    } else {
      const util::Json* rows = doc.get("rows");
      if (rows == nullptr || !rows->is_array()) {
        return error_response(400, "results need rows or error");
      }
      for (std::size_t i = 0; i < rows->size(); ++i) {
        const util::Json& entry = rows->at(i);
        const util::Json* job_json = entry.get("job");
        const util::Json* trials = entry.get("trials");
        if (job_json == nullptr || trials == nullptr) {
          return error_response(400, "row entry needs job and trials");
        }
        decoded.emplace_back(
            job_from_json(*job_json, campaign::Registry::instance()),
            rows_from_json(*trials));
      }
    }
  } catch (const util::JsonError& e) {
    return error_response(400, std::string("bad JSON body: ") + e.what());
  } catch (const std::invalid_argument& e) {
    return error_response(400, e.what());
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const double now = now_seconds();
  expire_leases_locked(now);
  WorkerInfo& info = touch_worker_locked(worker, now);
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return error_response(404, "unknown job " + id);
  CampaignState& c = *it->second;
  auto& metrics = obs::MetricsRegistry::global();

  if (!error.empty()) {
    obs::MetricsRegistry::global().counter("fleet.shard_errors").add();
    if (c.errors.size() < 32) {
      c.errors.push_back("shard " + std::to_string(shard) + " (" + worker +
                         "): " + error);
    }
    const bool retrying =
        c.leases->fail(shard, token, options_.max_attempts);
    util::Json doc = util::Json::object();
    doc["ok"] = true;
    doc["retry"] = retrying;
    return json_response(doc);
  }

  // Store the worker's spans under the campaign trace, clock-shifted at
  // export time.  Bounded like the registry's own buffer: a runaway
  // worker cannot grow coordinator memory without limit, and what is cut
  // shows up in the dropped tally instead of silently vanishing.
  if (!shipped_spans.empty()) {
    const std::size_t room =
        c.worker_span_events < obs::SpanRegistry::kMaxEvents
            ? obs::SpanRegistry::kMaxEvents - c.worker_span_events
            : 0;
    if (shipped_spans.size() > room) {
      obs::SpanRegistry::global().note_dropped(shipped_spans.size() - room);
      shipped_spans.resize(room);
    }
    if (!shipped_spans.empty()) {
      // Shipped events carry no trace ids on the wire (the grant's trace
      // is implied); stamp the campaign trace on ingest.
      for (obs::SpanEvent& event : shipped_spans) {
        event.trace_hi = c.trace.trace_hi;
        event.trace_lo = c.trace.trace_lo;
      }
      c.worker_span_events += shipped_spans.size();
      WorkerSpanBatch batch;
      batch.worker = worker;
      batch.clock_offset_ns = clock_offset_ns;
      batch.events = std::move(shipped_spans);
      c.worker_spans.push_back(std::move(batch));
    }
  }

  // Merge before acking, and merge even when the lease turns out to be
  // stale: the rows are real results, and the manifest drops duplicates.
  obs::ScopedContext trace_scope(c.trace);
  PBW_SPAN("fleet.merge");
  std::uint64_t merged = 0;
  std::uint64_t duplicates = 0;
  for (const auto& [job, trials] : decoded) {
    if (c.recorder->merge(job, trials)) {
      ++merged;
    } else {
      ++duplicates;
    }
  }
  c.merged_rows += merged;
  c.duplicate_rows += duplicates;
  total_merged_ += merged;
  info.rows += merged;
  row_rate_.observe(now, total_merged_);
  info.rate.observe(now, info.rows);
  metrics.counter("fleet.rows_merged").add(merged);
  metrics.counter("fleet.rows_duplicate").add(duplicates);

  const LeaseTable::Ack ack = c.leases->complete(shard, token);
  if (ack == LeaseTable::Ack::kOk) ++info.shards_done;
  if (ack == LeaseTable::Ack::kStale) {
    metrics.counter("fleet.acks_stale").add();
  }

  util::Json doc = util::Json::object();
  doc["ok"] = true;
  doc["ack"] = ack == LeaseTable::Ack::kOk     ? "ok"
               : ack == LeaseTable::Ack::kDone ? "done"
                                               : "stale";
  doc["merged"] = merged;
  doc["duplicates"] = duplicates;
  return json_response(doc);
}

obs::HttpResponse Coordinator::handle_job_get(const obs::HttpRequest& request) {
  const std::string id = path_suffix(request.path, "/jobs/");
  const util::Json doc = job_status(id);
  if (doc.is_null()) return error_response(404, "unknown job " + id);
  return json_response(doc);
}

obs::HttpResponse Coordinator::handle_results_get(
    const obs::HttpRequest& request) {
  const std::string id = path_suffix(request.path, "/results/");
  const std::string path = results_path(id);
  if (path.empty()) return error_response(404, "unknown job " + id);
  std::ifstream in(path);
  if (!in) return error_response(404, "no results yet for " + id);
  std::ostringstream body;
  body << in.rdbuf();
  obs::HttpResponse r;
  r.content_type = "application/x-ndjson";
  r.body = body.str();
  return r;
}

obs::HttpResponse Coordinator::handle_trace_get(
    const obs::HttpRequest& request) {
  const std::string id = path_suffix(request.path, "/trace/");
  if (id.empty()) return error_response(404, "missing job id");

  // One merged Chrome trace: coordinator spans (filtered from the local
  // registry by the campaign's trace id) plus every worker's shipped
  // shard spans, each worker on its own synthetic tid block and shifted
  // onto the coordinator clock by its lease-round-trip offset.
  util::Json events = util::Json::array();
  const auto push_meta = [&events](const char* name, std::uint64_t tid,
                                   const std::string& value) {
    util::Json meta = util::Json::object();
    meta["name"] = name;
    meta["ph"] = "M";
    meta["pid"] = 0;
    meta["tid"] = tid;
    util::Json args = util::Json::object();
    args["name"] = value;
    meta["args"] = std::move(args);
    events.push_back(std::move(meta));
  };
  const auto push_slice = [&events](const obs::SpanEvent& event,
                                    std::uint64_t tid,
                                    std::int64_t offset_ns) {
    util::Json slice = util::Json::object();
    slice["name"] = event.name;
    slice["ph"] = "X";
    slice["pid"] = 0;
    slice["tid"] = tid;
    const double start_ns =
        static_cast<double>(event.start_ns) + static_cast<double>(offset_ns);
    slice["ts"] = start_ns / 1000.0;                          // µs
    slice["dur"] = static_cast<double>(event.dur_ns) / 1000.0;
    util::Json args = util::Json::object();
    args["depth"] = event.depth;
    char parent[17];
    std::snprintf(parent, sizeof parent, "%016llx",
                  static_cast<unsigned long long>(event.parent_span));
    args["parent_span"] = std::string(parent);
    slice["args"] = std::move(args);
    events.push_back(std::move(slice));
  };

  std::string trace_id;
  std::size_t worker_batches = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) return error_response(404, "unknown job " + id);
    const CampaignState& c = *it->second;
    trace_id = c.trace.trace_id_hex();

    push_meta("process_name", 0, "pbw-fleet " + c.id);

    // Coordinator spans keep their real tids (dense, small).  Workers get
    // one tid lane per worker id starting at 1000 — far above any real
    // coordinator tid — so lanes never collide and Perfetto shows each
    // worker as its own named row.
    std::vector<bool> coord_tids;
    for (const obs::SpanEvent& event : obs::SpanRegistry::global().events()) {
      if (event.trace_hi != c.trace.trace_hi ||
          event.trace_lo != c.trace.trace_lo) {
        continue;
      }
      if (event.tid >= coord_tids.size()) coord_tids.resize(event.tid + 1);
      coord_tids[event.tid] = true;
      push_slice(event, event.tid, 0);
    }
    for (std::size_t tid = 0; tid < coord_tids.size(); ++tid) {
      if (coord_tids[tid]) {
        push_meta("thread_name", tid,
                  "coordinator/" + std::to_string(tid));
      }
    }

    std::map<std::string, std::uint64_t> worker_lane;
    worker_batches = c.worker_spans.size();
    for (const WorkerSpanBatch& batch : c.worker_spans) {
      const auto [lane_it, inserted] = worker_lane.try_emplace(
          batch.worker, 1000 * (worker_lane.size() + 1));
      const std::uint64_t lane = lane_it->second;
      if (inserted) push_meta("thread_name", lane, "worker " + batch.worker);
      for (const obs::SpanEvent& event : batch.events) {
        // Distinct worker threads stay distinct inside the lane block.
        push_slice(event, lane + event.tid, batch.clock_offset_ns);
      }
    }
  }

  util::Json doc = util::Json::object();
  doc["traceEvents"] = std::move(events);
  doc["trace_id"] = trace_id;
  doc["worker_batches"] = worker_batches;
  obs::HttpResponse r;
  r.content_type = "application/json";
  r.body = doc.dump() + "\n";
  return r;
}

util::Json Coordinator::campaign_json_locked(const CampaignState& c) const {
  const LeaseTable& leases = *c.leases;
  util::Json doc = util::Json::object();
  doc["id"] = c.id;
  doc["state"] = !leases.all_done() ? "running"
                 : leases.failed() == 0 ? "done"
                                        : "failed";
  doc["jobs"] = c.jobs.size();
  doc["recorded"] = c.recorder->recorded_count();
  doc["resumed"] = c.resumed;
  doc["merged"] = c.merged_rows;
  doc["duplicates"] = c.duplicate_rows;
  util::Json shards = util::Json::object();
  shards["total"] = leases.size();
  shards["pending"] = leases.pending();
  shards["leased"] = leases.leased();
  shards["done"] = leases.done();
  shards["failed"] = leases.failed();
  shards["expired_total"] = leases.expired_total();
  doc["shards"] = std::move(shards);
  if (!c.errors.empty()) {
    util::Json errors = util::Json::array();
    for (const std::string& e : c.errors) errors.push_back(e);
    doc["errors"] = std::move(errors);
  }
  doc["results"] = c.recorder->path();
  doc["trace"] = c.trace.trace_id_hex();
  return doc;
}

util::Json Coordinator::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const double now = now_seconds();

  util::Json doc = util::Json::object();
  doc["service"] = "fleet-coordinator";
  doc["state"] = campaigns_.empty() ? "idle" : "serving";
  doc["uptime_seconds"] = now;
  doc["bind"] = server_.bind_address();
  doc["port"] = server_.port();

  std::uint64_t rows_total = 0;
  std::uint64_t rows_recorded = 0;
  std::size_t in_flight_total = 0;
  util::Json jobs = util::Json::array();
  // Leases grouped per worker for the /status board.
  std::map<std::string, util::Json> worker_leases;
  for (const auto& c : campaigns_) {
    rows_total += c->jobs.size();
    rows_recorded += c->recorder->recorded_count();
    jobs.push_back(campaign_json_locked(*c));
    for (const LeaseTable::InFlight& lease : c->leases->in_flight(now)) {
      ++in_flight_total;
      util::Json entry = util::Json::object();
      entry["job"] = c->id;
      entry["shard"] = lease.shard;
      entry["age_seconds"] = lease.age_seconds;
      auto [it, inserted] =
          worker_leases.try_emplace(lease.worker, util::Json::array());
      it->second.push_back(std::move(entry));
    }
  }
  doc["jobs"] = std::move(jobs);

  util::Json workers = util::Json::array();
  for (const auto& [id, info] : workers_) {
    util::Json w = util::Json::object();
    w["id"] = id;
    w["last_seen_seconds"] = now - info.last_seen;
    // Heartbeat age: seconds since the last /renew (or grant).  A worker
    // holding a lease whose heartbeat age approaches lease_seconds is
    // stalled or dead; one that merely hasn't polled is just idle.  Null
    // until the worker's first grant.
    w["heartbeat_age_seconds"] =
        info.last_renew >= 0.0 ? util::Json(now - info.last_renew)
                               : util::Json();
    w["rows_merged"] = info.rows;
    w["shards_done"] = info.shards_done;
    w["rows_per_second"] = info.rate.rate();
    const auto it = worker_leases.find(id);
    w["leases"] = it != worker_leases.end() ? std::move(it->second)
                                            : util::Json::array();
    workers.push_back(std::move(w));
  }
  doc["workers"] = std::move(workers);
  doc["leases_in_flight"] = in_flight_total;
  // Surfaced here (and as the span.events_dropped counter in /metrics) so
  // a truncated /trace flamegraph is visibly truncated.
  doc["span_events_dropped"] = obs::SpanRegistry::global().dropped();

  doc["rows_total"] = rows_total;
  doc["rows_recorded"] = rows_recorded;
  doc["rows_per_second"] = row_rate_.rate();
  const std::uint64_t remaining =
      rows_total > rows_recorded ? rows_total - rows_recorded : 0;
  doc["eta_seconds"] = row_rate_.eta_seconds(remaining);
  return doc;
}

obs::HttpResponse Coordinator::handle_status() const {
  return json_response(status());
}

obs::HttpResponse Coordinator::handle_metrics() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const double now = now_seconds();
    std::size_t pending = 0;
    std::size_t leased = 0;
    std::size_t done = 0;
    std::size_t failed = 0;
    std::uint64_t rows_total = 0;
    std::uint64_t rows_recorded = 0;
    for (const auto& c : campaigns_) {
      pending += c->leases->pending();
      leased += c->leases->leased();
      done += c->leases->done();
      failed += c->leases->failed();
      rows_total += c->jobs.size();
      rows_recorded += c->recorder->recorded_count();
    }
    std::size_t live_workers = 0;
    // A worker silent for three lease windows has almost certainly died.
    for (const auto& [id, info] : workers_) {
      if (now - info.last_seen <= 3 * options_.lease_seconds) ++live_workers;
    }
    auto& metrics = obs::MetricsRegistry::global();
    metrics.gauge("fleet.jobs").set(static_cast<double>(campaigns_.size()));
    metrics.gauge("fleet.workers").set(static_cast<double>(live_workers));
    metrics.gauge("fleet.shards_pending").set(static_cast<double>(pending));
    metrics.gauge("fleet.shards_leased").set(static_cast<double>(leased));
    metrics.gauge("fleet.shards_done").set(static_cast<double>(done));
    metrics.gauge("fleet.shards_failed").set(static_cast<double>(failed));
    metrics.gauge("fleet.rows_total").set(static_cast<double>(rows_total));
    metrics.gauge("fleet.rows_recorded")
        .set(static_cast<double>(rows_recorded));
    metrics.gauge("fleet.rows_per_second").set(row_rate_.rate());
    // Find-or-create so the series renders at 0 instead of appearing only
    // after the first drop (dashboards can alert on it from the start).
    (void)metrics.counter("span.events_dropped");
  }
  obs::HttpResponse r;
  r.content_type = "text/plain; version=0.0.4";
  r.body = obs::render_prometheus(obs::MetricsRegistry::global().to_json());
  return r;
}

}  // namespace pbw::fleet
