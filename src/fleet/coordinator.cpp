#include "fleet/coordinator.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "fleet/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/prometheus.hpp"

namespace pbw::fleet {

namespace {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

obs::HttpResponse json_response(const util::Json& body, int status = 200) {
  obs::HttpResponse r;
  r.status = status;
  r.content_type = "application/json";
  r.body = body.dump() + "\n";
  return r;
}

obs::HttpResponse error_response(int status, const std::string& message) {
  util::Json doc = util::Json::object();
  doc["error"] = message;
  return json_response(doc, status);
}

/// "/results/<id>" -> "<id>" ("" when nothing follows the prefix).
std::string path_suffix(const std::string& path, const std::string& prefix) {
  if (path.size() <= prefix.size()) return "";
  return path.substr(prefix.size());
}

const std::string* get_string(const util::Json& doc, const char* key) {
  const util::Json* v = doc.get(key);
  if (v == nullptr || !v->is_string()) return nullptr;
  return &v->as_string();
}

bool get_index(const util::Json& doc, const char* key, std::size_t& out) {
  const util::Json* v = doc.get(key);
  if (v == nullptr || !v->is_number() || v->as_double() < 0) return false;
  out = static_cast<std::size_t>(v->as_int());
  return true;
}

}  // namespace

Coordinator::Coordinator(Options options)
    : options_(std::move(options)), epoch_(std::chrono::steady_clock::now()) {
  server_.route("POST", "/submit",
                [this](const obs::HttpRequest& r) { return handle_submit(r); });
  server_.route("POST", "/lease",
                [this](const obs::HttpRequest& r) { return handle_lease(r); });
  server_.route("POST", "/renew",
                [this](const obs::HttpRequest& r) { return handle_renew(r); });
  server_.route("POST", "/results/*",
                [this](const obs::HttpRequest& r) { return handle_results(r); });
  server_.route("GET", "/results/*", [this](const obs::HttpRequest& r) {
    return handle_results_get(r);
  });
  server_.route("GET", "/jobs/*",
                [this](const obs::HttpRequest& r) { return handle_job_get(r); });
  server_.route("GET", "/status",
                [this](const obs::HttpRequest&) { return handle_status(); });
  server_.route("GET", "/metrics",
                [this](const obs::HttpRequest&) { return handle_metrics(); });
  server_.route("GET", "/healthz", [](const obs::HttpRequest&) {
    obs::HttpResponse r;
    r.body = "ok\n";
    return r;
  });
  // The coordinator doubles as the planning endpoint (docs/PLANNER.md):
  // a what-if query is a recost, not a campaign, so it answers inline.
  planner_.mount(server_);
}

Coordinator::~Coordinator() { stop(); }

void Coordinator::start() { server_.start(options_.port, options_.bind); }

void Coordinator::stop() { server_.stop(); }

double Coordinator::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

std::string Coordinator::submit(const std::string& spec_text) {
  // The id hashes the spec text *and* the code version: a resubmitted spec
  // joins its existing campaign, while a new binary gets a fresh one (its
  // manifest keys would not collide anyway — git= differs).
  char buf[32];
  std::snprintf(buf, sizeof buf, "j%016llx",
                static_cast<unsigned long long>(fnv1a64(
                    spec_text + "|git=" + campaign::git_version())));
  const std::string id(buf);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (by_id_.count(id) != 0) return id;
  }

  // Expand outside the lock: parse errors throw std::invalid_argument and
  // grids can be large.
  auto state = std::make_unique<CampaignState>();
  state->id = id;
  state->jobs =
      campaign::expand_all(campaign::parse_spec(spec_text),
                           campaign::Registry::instance());
  if (state->jobs.empty()) {
    throw std::invalid_argument("fleet: spec expands to zero jobs");
  }

  std::vector<const campaign::Job*> ptrs;
  ptrs.reserve(state->jobs.size());
  for (const campaign::Job& job : state->jobs) ptrs.push_back(&job);
  const auto groups = campaign::group_jobs(ptrs, options_.replay);
  state->shards.reserve(groups.size());
  const campaign::Job* base = state->jobs.data();
  for (const auto& group : groups) {
    std::vector<std::size_t> shard;
    shard.reserve(group.size());
    for (const campaign::Job* job : group) {
      shard.push_back(static_cast<std::size_t>(job - base));
    }
    state->shards.push_back(std::move(shard));
  }

  state->recorder = std::make_unique<campaign::Recorder>(options_.out_dir +
                                                         "/" + id + ".jsonl");
  state->leases =
      std::make_unique<LeaseTable>(state->shards.size(), options_.lease_seconds);

  // Resume: shards whose every job is already in the manifest never go out.
  for (std::size_t i = 0; i < state->shards.size(); ++i) {
    bool all_recorded = true;
    for (const std::size_t j : state->shards[i]) {
      if (!state->recorder->already_recorded(state->jobs[j])) {
        all_recorded = false;
      } else {
        ++state->resumed;
      }
    }
    if (all_recorded) state->leases->mark_done(i);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  if (by_id_.count(id) != 0) return id;  // lost a submit race; same spec
  by_id_[id] = state.get();
  campaigns_.push_back(std::move(state));
  obs::MetricsRegistry::global().counter("fleet.jobs_submitted").add();
  return id;
}

util::Json Coordinator::job_status(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return util::Json();
  return campaign_json_locked(*it->second);
}

bool Coordinator::finished(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_id_.find(id);
  return it != by_id_.end() && it->second->leases->all_done();
}

std::string Coordinator::results_path(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? "" : it->second->recorder->path();
}

void Coordinator::expire_leases_locked(double now) {
  std::size_t reclaimed = 0;
  for (const auto& c : campaigns_) reclaimed += c->leases->expire(now);
  if (reclaimed > 0) {
    obs::MetricsRegistry::global().counter("fleet.leases_expired").add(
        reclaimed);
  }
}

Coordinator::WorkerInfo& Coordinator::touch_worker_locked(const std::string& id,
                                                          double now) {
  WorkerInfo& info = workers_[id];
  info.last_seen = now;
  return info;
}

// ---- HTTP handlers ---------------------------------------------------------

obs::HttpResponse Coordinator::handle_submit(const obs::HttpRequest& request) {
  // Accept a raw spec file body, or {"spec": "..."} for clients that want
  // a JSON envelope.
  std::string spec = request.body;
  const std::size_t first = spec.find_first_not_of(" \t\r\n");
  if (first != std::string::npos && spec[first] == '{') {
    try {
      const util::Json doc = util::Json::parse(spec);
      const std::string* inner = get_string(doc, "spec");
      if (inner == nullptr) {
        return error_response(400, "JSON submit body needs a \"spec\" string");
      }
      spec = *inner;
    } catch (const util::JsonError& e) {
      return error_response(400, std::string("bad JSON body: ") + e.what());
    }
  }
  if (spec.empty()) return error_response(400, "empty sweep spec");

  std::string id;
  try {
    id = submit(spec);
  } catch (const std::invalid_argument& e) {
    return error_response(400, e.what());
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const CampaignState& c = *by_id_.at(id);
  util::Json doc = util::Json::object();
  doc["job"] = id;
  doc["jobs"] = c.jobs.size();
  doc["shards"] = c.shards.size();
  doc["resumed"] = c.resumed;
  doc["results"] = c.recorder->path();
  return json_response(doc);
}

obs::HttpResponse Coordinator::handle_lease(const obs::HttpRequest& request) {
  std::string worker = "anonymous";
  if (!request.body.empty()) {
    try {
      const util::Json doc = util::Json::parse(request.body);
      if (const std::string* w = get_string(doc, "worker")) worker = *w;
    } catch (const util::JsonError& e) {
      return error_response(400, std::string("bad JSON body: ") + e.what());
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const double now = now_seconds();
  expire_leases_locked(now);
  touch_worker_locked(worker, now);

  for (const auto& c : campaigns_) {
    const LeaseTable::Grant grant = c->leases->grant(worker, now);
    if (!grant.granted) continue;
    obs::MetricsRegistry::global().counter("fleet.leases_granted").add();
    util::Json doc = util::Json::object();
    doc["job"] = c->id;
    doc["shard"] = grant.shard;
    doc["lease"] = grant.token;
    doc["lease_seconds"] = options_.lease_seconds;
    doc["replay"] = options_.replay;
    doc["replay_check"] = options_.replay_check;
    util::Json jobs = util::Json::array();
    for (const std::size_t j : c->shards[grant.shard]) {
      jobs.push_back(job_to_json(c->jobs[j]));
    }
    doc["jobs"] = std::move(jobs);
    return json_response(doc);
  }

  util::Json doc = util::Json::object();
  doc["idle"] = true;
  // Workers started before any submit should keep polling; workers on a
  // drained fleet may exit.  "drain" distinguishes the two.
  bool all_done = !campaigns_.empty();
  for (const auto& c : campaigns_) all_done = all_done && c->leases->all_done();
  doc["drain"] = all_done;
  return json_response(doc);
}

obs::HttpResponse Coordinator::handle_renew(const obs::HttpRequest& request) {
  std::string job;
  std::string worker = "anonymous";
  std::size_t shard = 0;
  std::size_t token = 0;
  try {
    const util::Json doc = util::Json::parse(request.body);
    const std::string* j = get_string(doc, "job");
    if (j == nullptr || !get_index(doc, "shard", shard) ||
        !get_index(doc, "lease", token)) {
      return error_response(400, "renew needs job, shard, lease");
    }
    job = *j;
    if (const std::string* w = get_string(doc, "worker")) worker = *w;
  } catch (const util::JsonError& e) {
    return error_response(400, std::string("bad JSON body: ") + e.what());
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const double now = now_seconds();
  expire_leases_locked(now);
  touch_worker_locked(worker, now);
  const auto it = by_id_.find(job);
  if (it == by_id_.end()) return error_response(404, "unknown job " + job);
  util::Json doc = util::Json::object();
  doc["ok"] = it->second->leases->renew(shard, token, now);
  return json_response(doc);
}

obs::HttpResponse Coordinator::handle_results(const obs::HttpRequest& request) {
  const std::string id = path_suffix(request.path, "/results/");
  if (id.empty()) return error_response(404, "missing job id");

  std::string worker = "anonymous";
  std::size_t shard = 0;
  std::size_t token = 0;
  std::string error;
  // (job, trial rows) pairs, decoded before taking the lock: registry
  // lookups and hex decoding are pure, and a malformed payload must not
  // leave half a shard merged.
  std::vector<std::pair<campaign::Job, std::vector<campaign::MetricRow>>>
      decoded;
  try {
    const util::Json doc = util::Json::parse(request.body);
    if (const std::string* w = get_string(doc, "worker")) worker = *w;
    if (!get_index(doc, "shard", shard) || !get_index(doc, "lease", token)) {
      return error_response(400, "results need shard and lease");
    }
    if (const std::string* e = get_string(doc, "error")) {
      error = e->empty() ? "unspecified worker error" : *e;
    } else {
      const util::Json* rows = doc.get("rows");
      if (rows == nullptr || !rows->is_array()) {
        return error_response(400, "results need rows or error");
      }
      for (std::size_t i = 0; i < rows->size(); ++i) {
        const util::Json& entry = rows->at(i);
        const util::Json* job_json = entry.get("job");
        const util::Json* trials = entry.get("trials");
        if (job_json == nullptr || trials == nullptr) {
          return error_response(400, "row entry needs job and trials");
        }
        decoded.emplace_back(
            job_from_json(*job_json, campaign::Registry::instance()),
            rows_from_json(*trials));
      }
    }
  } catch (const util::JsonError& e) {
    return error_response(400, std::string("bad JSON body: ") + e.what());
  } catch (const std::invalid_argument& e) {
    return error_response(400, e.what());
  }

  std::lock_guard<std::mutex> lock(mutex_);
  const double now = now_seconds();
  expire_leases_locked(now);
  WorkerInfo& info = touch_worker_locked(worker, now);
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return error_response(404, "unknown job " + id);
  CampaignState& c = *it->second;
  auto& metrics = obs::MetricsRegistry::global();

  if (!error.empty()) {
    obs::MetricsRegistry::global().counter("fleet.shard_errors").add();
    if (c.errors.size() < 32) {
      c.errors.push_back("shard " + std::to_string(shard) + " (" + worker +
                         "): " + error);
    }
    const bool retrying =
        c.leases->fail(shard, token, options_.max_attempts);
    util::Json doc = util::Json::object();
    doc["ok"] = true;
    doc["retry"] = retrying;
    return json_response(doc);
  }

  // Merge before acking, and merge even when the lease turns out to be
  // stale: the rows are real results, and the manifest drops duplicates.
  std::uint64_t merged = 0;
  std::uint64_t duplicates = 0;
  for (const auto& [job, trials] : decoded) {
    if (c.recorder->merge(job, trials)) {
      ++merged;
    } else {
      ++duplicates;
    }
  }
  c.merged_rows += merged;
  c.duplicate_rows += duplicates;
  total_merged_ += merged;
  info.rows += merged;
  row_rate_.observe(now, total_merged_);
  info.rate.observe(now, info.rows);
  metrics.counter("fleet.rows_merged").add(merged);
  metrics.counter("fleet.rows_duplicate").add(duplicates);

  const LeaseTable::Ack ack = c.leases->complete(shard, token);
  if (ack == LeaseTable::Ack::kOk) ++info.shards_done;
  if (ack == LeaseTable::Ack::kStale) {
    metrics.counter("fleet.acks_stale").add();
  }

  util::Json doc = util::Json::object();
  doc["ok"] = true;
  doc["ack"] = ack == LeaseTable::Ack::kOk     ? "ok"
               : ack == LeaseTable::Ack::kDone ? "done"
                                               : "stale";
  doc["merged"] = merged;
  doc["duplicates"] = duplicates;
  return json_response(doc);
}

obs::HttpResponse Coordinator::handle_job_get(const obs::HttpRequest& request) {
  const std::string id = path_suffix(request.path, "/jobs/");
  const util::Json doc = job_status(id);
  if (doc.is_null()) return error_response(404, "unknown job " + id);
  return json_response(doc);
}

obs::HttpResponse Coordinator::handle_results_get(
    const obs::HttpRequest& request) {
  const std::string id = path_suffix(request.path, "/results/");
  const std::string path = results_path(id);
  if (path.empty()) return error_response(404, "unknown job " + id);
  std::ifstream in(path);
  if (!in) return error_response(404, "no results yet for " + id);
  std::ostringstream body;
  body << in.rdbuf();
  obs::HttpResponse r;
  r.content_type = "application/x-ndjson";
  r.body = body.str();
  return r;
}

util::Json Coordinator::campaign_json_locked(const CampaignState& c) const {
  const LeaseTable& leases = *c.leases;
  util::Json doc = util::Json::object();
  doc["id"] = c.id;
  doc["state"] = !leases.all_done() ? "running"
                 : leases.failed() == 0 ? "done"
                                        : "failed";
  doc["jobs"] = c.jobs.size();
  doc["recorded"] = c.recorder->recorded_count();
  doc["resumed"] = c.resumed;
  doc["merged"] = c.merged_rows;
  doc["duplicates"] = c.duplicate_rows;
  util::Json shards = util::Json::object();
  shards["total"] = leases.size();
  shards["pending"] = leases.pending();
  shards["leased"] = leases.leased();
  shards["done"] = leases.done();
  shards["failed"] = leases.failed();
  shards["expired_total"] = leases.expired_total();
  doc["shards"] = std::move(shards);
  if (!c.errors.empty()) {
    util::Json errors = util::Json::array();
    for (const std::string& e : c.errors) errors.push_back(e);
    doc["errors"] = std::move(errors);
  }
  doc["results"] = c.recorder->path();
  return doc;
}

util::Json Coordinator::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  const double now = now_seconds();

  util::Json doc = util::Json::object();
  doc["service"] = "fleet-coordinator";
  doc["state"] = campaigns_.empty() ? "idle" : "serving";
  doc["uptime_seconds"] = now;
  doc["bind"] = server_.bind_address();
  doc["port"] = server_.port();

  std::uint64_t rows_total = 0;
  std::uint64_t rows_recorded = 0;
  std::size_t in_flight_total = 0;
  util::Json jobs = util::Json::array();
  // Leases grouped per worker for the /status board.
  std::map<std::string, util::Json> worker_leases;
  for (const auto& c : campaigns_) {
    rows_total += c->jobs.size();
    rows_recorded += c->recorder->recorded_count();
    jobs.push_back(campaign_json_locked(*c));
    for (const LeaseTable::InFlight& lease : c->leases->in_flight(now)) {
      ++in_flight_total;
      util::Json entry = util::Json::object();
      entry["job"] = c->id;
      entry["shard"] = lease.shard;
      entry["age_seconds"] = lease.age_seconds;
      auto [it, inserted] =
          worker_leases.try_emplace(lease.worker, util::Json::array());
      it->second.push_back(std::move(entry));
    }
  }
  doc["jobs"] = std::move(jobs);

  util::Json workers = util::Json::array();
  for (const auto& [id, info] : workers_) {
    util::Json w = util::Json::object();
    w["id"] = id;
    w["last_seen_seconds"] = now - info.last_seen;
    w["rows_merged"] = info.rows;
    w["shards_done"] = info.shards_done;
    w["rows_per_second"] = info.rate.rate();
    const auto it = worker_leases.find(id);
    w["leases"] = it != worker_leases.end() ? std::move(it->second)
                                            : util::Json::array();
    workers.push_back(std::move(w));
  }
  doc["workers"] = std::move(workers);
  doc["leases_in_flight"] = in_flight_total;

  doc["rows_total"] = rows_total;
  doc["rows_recorded"] = rows_recorded;
  doc["rows_per_second"] = row_rate_.rate();
  const std::uint64_t remaining =
      rows_total > rows_recorded ? rows_total - rows_recorded : 0;
  doc["eta_seconds"] = row_rate_.eta_seconds(remaining);
  return doc;
}

obs::HttpResponse Coordinator::handle_status() const {
  return json_response(status());
}

obs::HttpResponse Coordinator::handle_metrics() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const double now = now_seconds();
    std::size_t pending = 0;
    std::size_t leased = 0;
    std::size_t done = 0;
    std::size_t failed = 0;
    std::uint64_t rows_total = 0;
    std::uint64_t rows_recorded = 0;
    for (const auto& c : campaigns_) {
      pending += c->leases->pending();
      leased += c->leases->leased();
      done += c->leases->done();
      failed += c->leases->failed();
      rows_total += c->jobs.size();
      rows_recorded += c->recorder->recorded_count();
    }
    std::size_t live_workers = 0;
    // A worker silent for three lease windows has almost certainly died.
    for (const auto& [id, info] : workers_) {
      if (now - info.last_seen <= 3 * options_.lease_seconds) ++live_workers;
    }
    auto& metrics = obs::MetricsRegistry::global();
    metrics.gauge("fleet.jobs").set(static_cast<double>(campaigns_.size()));
    metrics.gauge("fleet.workers").set(static_cast<double>(live_workers));
    metrics.gauge("fleet.shards_pending").set(static_cast<double>(pending));
    metrics.gauge("fleet.shards_leased").set(static_cast<double>(leased));
    metrics.gauge("fleet.shards_done").set(static_cast<double>(done));
    metrics.gauge("fleet.shards_failed").set(static_cast<double>(failed));
    metrics.gauge("fleet.rows_total").set(static_cast<double>(rows_total));
    metrics.gauge("fleet.rows_recorded")
        .set(static_cast<double>(rows_recorded));
    metrics.gauge("fleet.rows_per_second").set(row_rate_.rate());
  }
  obs::HttpResponse r;
  r.content_type = "text/plain; version=0.0.4";
  r.body = obs::render_prometheus(obs::MetricsRegistry::global().to_json());
  return r;
}

}  // namespace pbw::fleet
