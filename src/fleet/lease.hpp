// Work-lease table: at-least-once shard dispatch with crash recovery.
//
// Each submitted campaign is sharded into structural groups
// (campaign::group_jobs); this table tracks every shard through
// pending → leased → done.  A lease carries a monotonically increasing
// token and an expiry deadline; a worker that stops renewing (crashed,
// SIGKILLed, partitioned) loses the shard back to pending on the next
// expire() sweep and another worker picks it up.  Completion is acked
// against the token, so a zombie worker reporting a shard it lost is
// detected (kStale) — its rows are still merged upstream, where the
// manifest-keyed recorder dedups them, making delivery effectively
// exactly-once even though dispatch is at-least-once.
//
// Time is caller-supplied seconds from any monotone origin — the
// coordinator passes its status clock, tests pass literals — so expiry
// logic is deterministic and directly testable.  Not internally locked;
// the coordinator serializes access under its own mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pbw::fleet {

class LeaseTable {
 public:
  /// `shards` work units, each re-leasable until completed; a lease not
  /// renewed within `lease_seconds` is reclaimed by expire().
  LeaseTable(std::size_t shards, double lease_seconds);

  struct Grant {
    bool granted = false;
    std::size_t shard = 0;
    std::uint64_t token = 0;
  };

  /// Leases the lowest pending shard to `worker`, or granted=false when
  /// nothing is pending (everything leased or done).
  Grant grant(const std::string& worker, double now);

  enum class Ack {
    kOk,     ///< token was current; shard is now done
    kStale,  ///< lease was lost (expired + reassigned) or token unknown
    kDone,   ///< shard already completed (duplicate delivery)
  };

  /// Marks the shard done if `token` is its current lease.  A stale token
  /// does NOT complete the shard: the current leaseholder still owns it.
  Ack complete(std::size_t shard, std::uint64_t token);

  /// Extends the lease deadline; false when the token is no longer
  /// current (the worker should abandon the shard — a replacement owns it).
  bool renew(std::size_t shard, std::uint64_t token, double now);

  /// Reclaims expired leases back to pending; returns how many.
  std::size_t expire(double now);

  /// Marks a shard done outside the lease flow (resume: its jobs were
  /// already in the manifest when the campaign was submitted).
  void mark_done(std::size_t shard);

  /// Failed-attempt bookkeeping: a worker reported an execution error.
  /// The shard returns to pending until `max_attempts` errors accumulate,
  /// then it is marked failed (terminal).  Returns true when retried.
  bool fail(std::size_t shard, std::uint64_t token, std::size_t max_attempts);

  [[nodiscard]] std::size_t size() const noexcept { return shards_.size(); }
  [[nodiscard]] std::size_t pending() const noexcept { return pending_; }
  [[nodiscard]] std::size_t leased() const noexcept { return leased_; }
  [[nodiscard]] std::size_t done() const noexcept { return done_; }
  [[nodiscard]] std::size_t failed() const noexcept { return failed_; }
  [[nodiscard]] bool all_done() const noexcept {
    return done_ + failed_ == shards_.size();
  }
  [[nodiscard]] std::uint64_t expired_total() const noexcept {
    return expired_total_;
  }

  struct InFlight {
    std::size_t shard = 0;
    std::string worker;
    double age_seconds = 0.0;
  };
  /// Currently leased shards with their holder and lease age.
  [[nodiscard]] std::vector<InFlight> in_flight(double now) const;

 private:
  enum class State { kPending, kLeased, kDone, kFailed };
  struct Shard {
    State state = State::kPending;
    std::uint64_t token = 0;       ///< current lease token (when leased)
    std::string worker;            ///< current leaseholder
    double granted_at = 0.0;
    double deadline = 0.0;
    std::size_t errors = 0;
  };

  double lease_seconds_;
  std::vector<Shard> shards_;
  std::uint64_t next_token_ = 1;
  std::size_t pending_ = 0;
  std::size_t leased_ = 0;
  std::size_t done_ = 0;
  std::size_t failed_ = 0;
  std::uint64_t expired_total_ = 0;
};

}  // namespace pbw::fleet
