// Fleet worker: lease → execute → stream results, forever.
//
// A worker is a loop around the same shard executor the local thread pool
// uses (campaign::execute_shard): poll the coordinator for a lease,
// rebuild the shard's jobs from the wire, run them (one simulation per
// structural group + recosts), and POST the trial rows back.  A
// heartbeat thread renews the lease while the shard runs; if a renewal
// comes back rejected the lease was lost (the worker stalled past the
// deadline and the shard was reassigned), so the worker cancels the
// shard and reports its partial rows under a dead token — the
// coordinator merges them (manifest dedup makes that safe) without
// completing the shard for the new owner.
//
// Workers hold no durable state: SIGKILL at any instant loses at most
// the in-flight shard, which the coordinator re-leases after expiry.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace pbw::fleet {

class Worker {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Worker identity shown on the coordinator's /status board.
    /// Empty selects "w-<pid>".
    std::string id;
    /// Idle poll interval.
    double poll_seconds = 0.5;
    /// Exit after this long with nothing to lease (0 = poll forever,
    /// trusting `exit_on_drain` / the stop flag to end the loop).
    double max_idle_seconds = 0.0;
    /// Exit when the coordinator reports every submitted campaign done.
    bool exit_on_drain = true;
    /// Consecutive transport failures before concluding the coordinator
    /// is gone and exiting.
    std::size_t max_transport_failures = 30;
    /// Byte cap for this worker's cross-shard tape cache (0 disables).
    std::size_t tape_cache_bytes = 256u << 20;
    /// Cooperative stop (obs::shutdown_flag() for the CLI).
    const std::atomic<bool>* stop = nullptr;
  };

  struct Stats {
    std::size_t shards = 0;  ///< shards completed and acked
    std::size_t rows = 0;    ///< job rows reported (including duplicates)
    std::size_t errors = 0;  ///< shards that failed in execution
    std::size_t stale = 0;   ///< shards lost to lease expiry mid-run
  };

  explicit Worker(Options options);

  /// Runs the lease loop until drain, idle timeout, stop, or coordinator
  /// loss.  Blocking; run it on a thread for in-process fleets.
  Stats run();

  [[nodiscard]] const std::string& id() const noexcept { return id_; }

 private:
  Options options_;
  std::string id_;
};

}  // namespace pbw::fleet
