#include "fleet/worker.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/scenario.hpp"
#include "campaign/sweep.hpp"
#include "fleet/http_client.hpp"
#include "fleet/wire.hpp"
#include "obs/telemetry/context.hpp"
#include "obs/telemetry/span.hpp"
#include "replay/cache.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace pbw::fleet {

namespace {

void sleep_seconds(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

/// POST with a few retries: a lost result batch costs a whole lease
/// timeout (the shard must expire and re-run), so transient transport
/// blips are worth absorbing here.
HttpResult post_with_retries(const Worker::Options& options,
                             const std::string& path, const std::string& body) {
  HttpResult res;
  for (int attempt = 0; attempt < 3; ++attempt) {
    res = http_post(options.host, options.port, path, body);
    if (res.ok) return res;
    sleep_seconds(0.2 * (attempt + 1));
  }
  return res;
}

}  // namespace

Worker::Worker(Options options) : options_(std::move(options)) {
  id_ = options_.id.empty() ? "w-" + std::to_string(::getpid()) : options_.id;
}

Worker::Stats Worker::run() {
  Stats stats;
  replay::TapeCache cache(options_.tape_cache_bytes);
  replay::TapeCache* cache_ptr =
      options_.tape_cache_bytes > 0 ? &cache : nullptr;
  // A worker executes its shard's jobs serially, so its host cores are
  // idle during a replay batch — lend them to recost_batch.  Rows stay
  // bit-identical at any thread count, and a single-core host just skips
  // the lend (the pool would be inline anyway).
  util::ThreadPool batch_pool;
  util::ThreadPool* batch_pool_ptr = batch_pool.size() > 1 ? &batch_pool : nullptr;

  util::Json lease_request = util::Json::object();
  lease_request["worker"] = id_;
  const std::string lease_body = lease_request.dump();

  double idle_seconds = 0.0;
  std::size_t transport_failures = 0;

  while (options_.stop == nullptr || !options_.stop->load()) {
    // Bracket the lease round-trip on our span clock: the grant carries
    // the coordinator's clock (coord_ns) sampled somewhere inside this
    // window, so its offset from the window's midpoint aligns our span
    // timestamps onto the coordinator's axis to within half an RTT.
    const std::uint64_t lease_t0 = obs::SpanRegistry::now_ns();
    const HttpResult res =
        http_post(options_.host, options_.port, "/lease", lease_body);
    const std::uint64_t lease_t1 = obs::SpanRegistry::now_ns();
    if (!res.ok || res.status != 200) {
      if (++transport_failures >= options_.max_transport_failures) break;
      sleep_seconds(options_.poll_seconds);
      continue;
    }
    transport_failures = 0;

    util::Json grant;
    try {
      grant = util::Json::parse(res.body);
    } catch (const util::JsonError&) {
      sleep_seconds(options_.poll_seconds);
      continue;
    }

    if (grant.get("idle") != nullptr) {
      const util::Json* drain = grant.get("drain");
      if (options_.exit_on_drain && drain != nullptr && drain->as_bool()) {
        break;
      }
      idle_seconds += options_.poll_seconds;
      if (options_.max_idle_seconds > 0 &&
          idle_seconds >= options_.max_idle_seconds) {
        break;
      }
      sleep_seconds(options_.poll_seconds);
      continue;
    }
    idle_seconds = 0.0;

    // ---- decode the grant -------------------------------------------------
    const util::Json* job_id_json = grant.get("job");
    const util::Json* shard_json = grant.get("shard");
    const util::Json* token_json = grant.get("lease");
    const util::Json* jobs_json = grant.get("jobs");
    if (job_id_json == nullptr || shard_json == nullptr ||
        token_json == nullptr || jobs_json == nullptr) {
      sleep_seconds(options_.poll_seconds);
      continue;
    }
    const std::string job_id = job_id_json->as_string();
    const std::uint64_t shard =
        static_cast<std::uint64_t>(shard_json->as_int());
    const std::uint64_t token =
        static_cast<std::uint64_t>(token_json->as_int());
    const double lease_seconds =
        grant.get("lease_seconds") != nullptr
            ? grant.get("lease_seconds")->as_double()
            : 30.0;

    campaign::ShardOptions shard_options;
    shard_options.cache = cache_ptr;
    shard_options.batch_pool = batch_pool_ptr;
    if (const util::Json* v = grant.get("replay")) {
      shard_options.replay = v->as_bool();
    }
    if (const util::Json* v = grant.get("replay_check")) {
      shard_options.replay_check = v->as_bool();
    }

    // Trace context + clock alignment from the grant (absent on an old
    // coordinator: the shard still runs, just untraced).
    obs::TraceContext shard_trace;
    if (const util::Json* t = grant.get("trace");
        t != nullptr && t->is_string()) {
      shard_trace = obs::TraceContext::parse(t->as_string());
    }
    std::int64_t clock_offset_ns = 0;
    if (const util::Json* v = grant.get("coord_ns");
        v != nullptr && v->is_string()) {
      const std::uint64_t coord_ns = std::strtoull(
          v->as_string().c_str(), nullptr, 10);
      const std::uint64_t midpoint = lease_t0 + (lease_t1 - lease_t0) / 2;
      clock_offset_ns = static_cast<std::int64_t>(coord_ns) -
                        static_cast<std::int64_t>(midpoint);
    }

    util::Json report = util::Json::object();
    report["worker"] = id_;
    report["shard"] = shard;

    std::vector<campaign::Job> jobs;
    try {
      jobs.reserve(jobs_json->size());
      for (std::size_t i = 0; i < jobs_json->size(); ++i) {
        jobs.push_back(
            job_from_json(jobs_json->at(i), campaign::Registry::instance()));
      }
    } catch (const std::exception& e) {
      // Version skew (unknown scenario / malformed job): fail the shard
      // loudly so the coordinator counts the attempt instead of the shard
      // bouncing between silent workers forever.
      report["lease"] = token;
      report["error"] = std::string("wire decode: ") + e.what();
      post_with_retries(options_, "/results/" + job_id, report.dump());
      ++stats.errors;
      continue;
    }

    // ---- execute under a heartbeat ----------------------------------------
    std::atomic<bool> cancel{false};
    std::atomic<bool> shard_finished{false};
    std::atomic<bool> lease_lost{false};
    std::thread heartbeat([&] {
      util::Json renew = util::Json::object();
      renew["worker"] = id_;
      renew["job"] = job_id;
      renew["shard"] = shard;
      renew["lease"] = token;
      const std::string renew_body = renew.dump();
      const double interval = std::max(0.2, lease_seconds / 3.0);
      double since = 0.0;
      while (!shard_finished.load(std::memory_order_acquire)) {
        sleep_seconds(0.05);
        since += 0.05;
        if (options_.stop != nullptr && options_.stop->load()) {
          cancel.store(true, std::memory_order_release);
        }
        if (since < interval) continue;
        since = 0.0;
        const HttpResult r = http_post(options_.host, options_.port, "/renew",
                                       renew_body, 5.0);
        if (!r.ok || r.status != 200) continue;  // expiry handles real loss
        try {
          const util::Json doc = util::Json::parse(r.body);
          const util::Json* ok = doc.get("ok");
          if (ok != nullptr && !ok->as_bool()) {
            // The shard has a new owner; stop burning cycles on it.
            lease_lost.store(true, std::memory_order_release);
            cancel.store(true, std::memory_order_release);
          }
        } catch (const util::JsonError&) {
        }
      }
    });

    util::Json rows = util::Json::array();
    campaign::ShardCallbacks callbacks;
    callbacks.done = [&](const campaign::Job& job,
                         const std::vector<campaign::MetricRow>& trials,
                         bool recosted, double) {
      util::Json entry = util::Json::object();
      entry["job"] = job_to_json(job);
      entry["recosted"] = recosted;
      entry["trials"] = rows_to_json(trials);
      rows.push_back(std::move(entry));
    };
    shard_options.stop = &cancel;

    std::vector<const campaign::Job*> ptrs;
    ptrs.reserve(jobs.size());
    for (const campaign::Job& job : jobs) ptrs.push_back(&job);

    bool failed = false;
    bool completed = false;
    // The collector diverts this thread's span events from the process
    // buffer into a private batch we ship with the results — crucially NOT
    // a tee, so an in-process worker (tests) can't double-count its spans
    // in the coordinator's merged trace.  The shard runs under the
    // grant's context: every span is stamped with the campaign trace.
    obs::ScopedSpanCollector collector;
    try {
      obs::ScopedContext trace_scope(shard_trace);
      PBW_SPAN("fleet.shard");
      const campaign::ShardStats shard_stats =
          campaign::execute_shard(ptrs, shard_options, callbacks);
      completed = !shard_stats.stopped;
    } catch (const campaign::ShardError& e) {
      failed = true;
      report["error"] = e.job_key() + ": " + e.what();
    } catch (const std::exception& e) {
      failed = true;
      report["error"] = e.what();
    }
    std::vector<obs::SpanEvent> shard_spans = collector.take();
    shard_finished.store(true, std::memory_order_release);
    heartbeat.join();

    if (failed) {
      report["lease"] = token;
      post_with_retries(options_, "/results/" + job_id, report.dump());
      ++stats.errors;
      continue;
    }

    // A completed shard acks with its token; a cancelled one reports its
    // partial rows under token 0 (never granted, so never acked) — the
    // coordinator merges what finished without marking the shard done.
    report["lease"] = completed ? token : std::uint64_t{0};
    report["rows"] = std::move(rows);
    // Telemetry sidecar: only when the grant carried a trace (the spans
    // are meaningless to a coordinator that never minted one).  Results
    // stay bit-identical either way — spans never touch the rows.
    if (shard_trace.valid() && !shard_spans.empty()) {
      report["spans"] = span_events_to_json(shard_spans);
      report["clock_offset_ns"] = std::to_string(clock_offset_ns);
    }
    stats.rows += report.get("rows")->size();
    post_with_retries(options_, "/results/" + job_id, report.dump());
    if (completed) {
      ++stats.shards;
    } else if (lease_lost.load()) {
      ++stats.stale;
    }
    if (!completed && !lease_lost.load()) break;  // stop flag fired
  }
  return stats;
}

}  // namespace pbw::fleet
