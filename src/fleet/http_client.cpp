#include "fleet/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "obs/telemetry/context.hpp"

namespace pbw::fleet {

namespace {

HttpResult transport_error(std::string what) {
  HttpResult r;
  r.error = std::move(what);
  return r;
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

HttpResult http_request(const std::string& host, std::uint16_t port,
                        const std::string& method, const std::string& path,
                        const std::string& body, double timeout_seconds) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return transport_error("bad host '" + host + "' (IPv4 dotted-quad only)");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return transport_error(std::string("socket: ") + std::strerror(errno));
  }
  timeval timeout{};
  timeout.tv_sec = static_cast<time_t>(timeout_seconds);
  timeout.tv_usec = static_cast<suseconds_t>(
      (timeout_seconds - std::floor(timeout_seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof timeout);

  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return transport_error("connect " + host + ":" + std::to_string(port) +
                           ": " + err);
  }

  std::string request = method + " " + path + " HTTP/1.1\r\n";
  request += "Host: " + host + "\r\n";
  request += "Content-Type: application/json\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  // Propagate the caller's trace context (obs/telemetry/context.hpp) as a
  // fresh child span: the server's spans parent onto this hop, not onto
  // whatever span our thread happened to be inside.
  if (const obs::TraceContext context = obs::current_context();
      context.valid()) {
    request += std::string(obs::kTraceHeader) + ": " +
               context.child().format() + "\r\n";
  }
  request += "Connection: close\r\n\r\n";
  request += body;
  if (!send_all(fd, request)) {
    ::close(fd);
    return transport_error("send failed");
  }

  std::string response;
  char buf[8192];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n < 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return transport_error("recv: " + err);
    }
    if (n == 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);

  // "HTTP/1.1 200 OK\r\n...headers...\r\n\r\nbody"
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return transport_error("malformed response (no header terminator)");
  }
  const std::size_t sp = response.find(' ');
  if (sp == std::string::npos || sp + 4 > response.size()) {
    return transport_error("malformed status line");
  }
  HttpResult result;
  result.ok = true;
  result.status = std::atoi(response.c_str() + sp + 1);
  result.body = response.substr(header_end + 4);
  return result;
}

HttpResult http_get(const std::string& host, std::uint16_t port,
                    const std::string& path, double timeout_seconds) {
  return http_request(host, port, "GET", path, "", timeout_seconds);
}

HttpResult http_post(const std::string& host, std::uint16_t port,
                     const std::string& path, const std::string& body,
                     double timeout_seconds) {
  return http_request(host, port, "POST", path, body, timeout_seconds);
}

Endpoint parse_endpoint(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 >= spec.size()) {
    throw std::invalid_argument("fleet: endpoint must be host:port, got '" +
                                spec + "'");
  }
  Endpoint ep;
  ep.host = colon == 0 ? "127.0.0.1" : spec.substr(0, colon);
  const char* begin = spec.data() + colon + 1;
  const char* end = spec.data() + spec.size();
  unsigned port = 0;
  const auto [p, ec] = std::from_chars(begin, end, port);
  if (ec != std::errc{} || p != end || port == 0 || port > 65535) {
    throw std::invalid_argument("fleet: bad port in '" + spec + "'");
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

}  // namespace pbw::fleet
