// Fleet coordinator: campaign-as-a-service over the embedded HTTP server.
//
// Clients POST sweep specs to /submit; the coordinator expands them with
// the same parser/expander the local CLI uses, shards the grid into
// structural groups (campaign::group_jobs — the unit one simulation can
// serve), and hands shards to workers through a lease table
// (fleet/lease.hpp).  Workers stream trial rows back to /results/<id>;
// rows merge through the campaign's git-keyed resume manifest
// (Recorder::merge), so a crashed-and-reassigned lease delivering twice
// records once, and a coordinator restarted over the same out directory
// resumes instead of recomputing.  Submitting a spec is idempotent: the
// job id is a hash of the spec text and the code version, so a client
// retrying a submit joins the existing campaign.
//
// Protocol (docs/FLEET.md):
//   POST /submit        spec text (or {"spec": "..."})  -> {"job": id, ...}
//   POST /lease         {"worker": id}                  -> shard or idle
//   POST /renew         {"worker","job","shard","lease"} -> {"ok": bool}
//   POST /results/<id>  {"worker","shard","lease","rows":[...]}
//   GET  /jobs/<id>     one campaign's progress document
//   GET  /results/<id>  the merged JSON Lines artifact
//   GET  /status        fleet-wide progress (workers, leases, rows/s, ETA)
//   GET  /metrics       Prometheus text (fleet gauges + process counters)
//   GET  /healthz       "ok"
//   POST /plan          bandwidth-planner query (planner/service.hpp,
//                       docs/PLANNER.md) — answered inline, not sharded

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "campaign/executor.hpp"
#include "campaign/recorder.hpp"
#include "campaign/sweep.hpp"
#include "fleet/lease.hpp"
#include "obs/telemetry/context.hpp"
#include "obs/telemetry/http_server.hpp"
#include "obs/telemetry/rate.hpp"
#include "obs/telemetry/span.hpp"
#include "planner/service.hpp"
#include "util/json.hpp"

namespace pbw::fleet {

class Coordinator {
 public:
  struct Options {
    std::uint16_t port = 0;          ///< 0 picks an ephemeral port
    std::string bind = "127.0.0.1";  ///< pass 0.0.0.0 for a real fleet
    std::string out_dir = ".";       ///< <out_dir>/<job_id>.jsonl + .manifest
    double lease_seconds = 30.0;     ///< unrenewed leases are reassigned
    std::size_t max_attempts = 3;    ///< shard errors before terminal failure
    bool replay = true;              ///< workers recost cost-only points
    bool replay_check = false;       ///< workers verify recosts bit-equal
    std::string access_log;          ///< JSONL access log path ("" = off)
  };

  explicit Coordinator(Options options);
  ~Coordinator();
  Coordinator(const Coordinator&) = delete;
  Coordinator& operator=(const Coordinator&) = delete;

  /// Binds and starts serving.  Throws std::runtime_error on bind failure.
  void start();
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return server_.port(); }

  // ---- in-process API (the HTTP handlers call these too) -------------------

  /// Expands and registers a sweep; returns the job id.  Idempotent for
  /// identical spec text.  Throws std::invalid_argument on a bad spec.
  std::string submit(const std::string& spec_text);

  /// One campaign's progress document, or JSON null for an unknown id.
  [[nodiscard]] util::Json job_status(const std::string& id) const;

  /// True once every shard of `id` is done or terminally failed.
  [[nodiscard]] bool finished(const std::string& id) const;

  /// The campaign's JSONL artifact path ("" for an unknown id).
  [[nodiscard]] std::string results_path(const std::string& id) const;

  /// The fleet-wide /status document.
  [[nodiscard]] util::Json status() const;

  /// Monotone seconds since construction (lease clock origin).
  [[nodiscard]] double now_seconds() const;

 private:
  /// One worker's shipped span events for this campaign, clock-aligned by
  /// the offset it measured over its lease round-trip.
  struct WorkerSpanBatch {
    std::string worker;
    std::int64_t clock_offset_ns = 0;
    std::vector<obs::SpanEvent> events;
  };

  struct CampaignState {
    std::string id;
    std::vector<campaign::Job> jobs;
    /// Shards as index lists into `jobs` (stable storage).
    std::vector<std::vector<std::size_t>> shards;
    std::unique_ptr<LeaseTable> leases;
    std::unique_ptr<campaign::Recorder> recorder;
    std::size_t resumed = 0;  ///< jobs already in the manifest at submit
    std::uint64_t merged_rows = 0;
    std::uint64_t duplicate_rows = 0;
    std::vector<std::string> errors;
    /// Campaign root trace: every grant hands out a child, every shipped
    /// span and coordinator-side span joins it, GET /trace/<id> merges it.
    obs::TraceContext trace;
    std::vector<WorkerSpanBatch> worker_spans;
    std::size_t worker_span_events = 0;  ///< total stored, for the cap
  };

  struct WorkerInfo {
    double last_seen = 0.0;
    /// Last heartbeat (/renew or a fresh grant), -1 before any: /status
    /// separates a stalled-but-leased worker from an active one.
    double last_renew = -1.0;
    std::uint64_t rows = 0;
    std::uint64_t shards_done = 0;
    obs::RateEstimator rate{30.0};
  };

  // HTTP handlers.
  obs::HttpResponse handle_submit(const obs::HttpRequest& request);
  obs::HttpResponse handle_lease(const obs::HttpRequest& request);
  obs::HttpResponse handle_renew(const obs::HttpRequest& request);
  obs::HttpResponse handle_results(const obs::HttpRequest& request);
  obs::HttpResponse handle_job_get(const obs::HttpRequest& request);
  obs::HttpResponse handle_results_get(const obs::HttpRequest& request);
  obs::HttpResponse handle_trace_get(const obs::HttpRequest& request);
  obs::HttpResponse handle_status() const;
  obs::HttpResponse handle_metrics();

  /// Reclaims expired leases across all campaigns.  Caller holds mutex_.
  void expire_leases_locked(double now);
  util::Json campaign_json_locked(const CampaignState& c) const;
  WorkerInfo& touch_worker_locked(const std::string& id, double now);

  Options options_;
  obs::HttpServer server_;
  /// POST /plan — the bandwidth planner served off the same control plane.
  planner::PlanService planner_;
  mutable std::mutex mutex_;
  /// Submission order preserved: leases hand out older campaigns first.
  std::vector<std::unique_ptr<CampaignState>> campaigns_;
  std::map<std::string, CampaignState*> by_id_;
  std::map<std::string, WorkerInfo> workers_;
  obs::RateEstimator row_rate_{30.0};
  std::uint64_t total_merged_ = 0;
  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace pbw::fleet
