// Minimal blocking HTTP/1.1 client for the fleet wire protocol.
//
// One request per connection (Connection: close), matching the server in
// obs/telemetry/http_server — no keep-alive, no TLS, no chunked encoding.
// Workers poll the coordinator a few times per second at most, so
// connection setup cost is irrelevant next to shard execution, and the
// one-shot shape keeps both ends trivially robust to a peer dying
// mid-exchange.
#pragma once

#include <cstdint>
#include <string>

namespace pbw::fleet {

struct HttpResult {
  bool ok = false;      ///< transport succeeded and a status line parsed
  int status = 0;       ///< HTTP status code (0 when !ok)
  std::string body;
  std::string error;    ///< transport error description when !ok
};

/// Sends one request and reads the whole response.  Never throws; check
/// `ok` (transport) and `status` (protocol) on the result.
[[nodiscard]] HttpResult http_request(const std::string& host,
                                      std::uint16_t port,
                                      const std::string& method,
                                      const std::string& path,
                                      const std::string& body = "",
                                      double timeout_seconds = 30.0);

[[nodiscard]] HttpResult http_get(const std::string& host, std::uint16_t port,
                                  const std::string& path,
                                  double timeout_seconds = 30.0);

[[nodiscard]] HttpResult http_post(const std::string& host, std::uint16_t port,
                                   const std::string& path,
                                   const std::string& body,
                                   double timeout_seconds = 30.0);

/// Splits "host:port" (host defaults to 127.0.0.1 when the colon leads).
/// Throws std::invalid_argument on a malformed or missing port.
struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};
[[nodiscard]] Endpoint parse_endpoint(const std::string& spec);

}  // namespace pbw::fleet
