#include "util/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace pbw::util {

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(std::max<std::size_t>(buckets, 1), 0.0) {}

void Histogram::add(double value, double weight) {
  const double span = hi_ - lo_;
  std::size_t idx = 0;
  if (span > 0.0) {
    const double rel = (value - lo_) / span * static_cast<double>(counts_.size());
    const auto raw = static_cast<long long>(std::floor(rel));
    idx = static_cast<std::size_t>(
        std::clamp<long long>(raw, 0, static_cast<long long>(counts_.size()) - 1));
  }
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  return bucket_lo(i + 1);
}

std::string Histogram::render(std::size_t width) const {
  const double peak = counts_.empty()
                          ? 0.0
                          : *std::max_element(counts_.begin(), counts_.end());
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        peak > 0.0 ? static_cast<std::size_t>(std::llround(
                         counts_[i] / peak * static_cast<double>(width)))
                   : 0;
    char line[96];
    std::snprintf(line, sizeof line, "[%10.3g, %10.3g) %10.6g |", bucket_lo(i),
                  bucket_hi(i), counts_[i]);
    out << line << std::string(bar, '#') << '\n';
  }
  return out.str();
}

}  // namespace pbw::util
