// Aligned ASCII table printer.
//
// Every bench binary regenerates a paper table/series as an aligned text
// table; this keeps the output format identical across experiments so
// EXPERIMENTS.md can quote bench output verbatim.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace pbw::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are an error.
  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats numeric cells with %g-style formatting.
  static std::string num(double v, int precision = 5);
  static std::string integer(long long v);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& row(std::size_t i) const {
    return rows_[i];
  }

  /// Renders with a header rule, columns padded to content width.
  [[nodiscard]] std::string render() const;
  void print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner used between sweeps inside one bench binary.
void print_banner(std::ostream& out, const std::string& title);

}  // namespace pbw::util
