#include "util/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace pbw::util {

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      flags_.emplace(std::string(arg), argv[++i]);
    } else {
      flags_.emplace(std::string(arg), "true");
    }
  }
}

bool Cli::has(const std::string& key) const { return flags_.count(key) != 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

}  // namespace pbw::util
