#include "util/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace pbw::util {

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      flags_.emplace(std::string(arg), argv[++i]);
    } else {
      flags_.emplace(std::string(arg), "true");
    }
  }
}

bool Cli::has(const std::string& key) const { return flags_.count(key) != 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

namespace {
// strtoll yields 0 on garbage, which downstream code divides by; fail loudly
// instead of SIGFPE-ing three stack frames later.
void require_positive(const Cli& cli, const char* flag, double value) {
  if (value > 0) return;
  std::fprintf(stderr, "%s: --%s=%s must be a positive number\n",
               cli.program().c_str(), flag, cli.get(flag, "?").c_str());
  std::exit(2);
}
}  // namespace

ModelFlags parse_model_flags(const Cli& cli, const ModelFlagDefaults& defaults) {
  ModelFlags f;
  f.p = static_cast<std::uint32_t>(cli.get_int("p", defaults.p));
  f.g = cli.get_double("g", defaults.g);
  f.L = cli.get_double("L", defaults.L);
  f.seed = static_cast<std::uint64_t>(cli.get_int("seed", defaults.seed));
  f.trials = static_cast<int>(cli.get_int("trials", defaults.trials));
  require_positive(cli, "p", static_cast<double>(f.p));
  require_positive(cli, "g", f.g);
  require_positive(cli, "trials", static_cast<double>(f.trials));
  std::int64_t m = cli.get_int("m", defaults.m);
  if (m <= 0) {
    m = f.g >= 1.0 ? static_cast<std::int64_t>(static_cast<double>(f.p) / f.g) : f.p;
  }
  f.m = static_cast<std::uint32_t>(m > 0 ? m : 1);
  return f;
}

}  // namespace pbw::util
