#include "util/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace pbw::util {

Cli::Cli(int argc, char** argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    const auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags_.emplace(std::string(arg.substr(0, eq)), std::string(arg.substr(eq + 1)));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      flags_.emplace(std::string(arg), argv[++i]);
    } else {
      flags_.emplace(std::string(arg), "true");
    }
  }
}

bool Cli::has(const std::string& key) const { return flags_.count(key) != 0; }

std::vector<std::string> Cli::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [key, value] : flags_) names.push_back(key);
  return names;
}

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = flags_.find(key);
  return it == flags_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const auto it = flags_.find(key);
  if (it == flags_.end()) return fallback;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

namespace {
// strtoll yields 0 on garbage, which downstream code divides by; fail loudly
// instead of SIGFPE-ing three stack frames later.
void require_positive(const Cli& cli, const char* flag, double value) {
  if (value > 0) return;
  std::fprintf(stderr, "%s: --%s=%s must be a positive number\n",
               cli.program().c_str(), flag, cli.get(flag, "?").c_str());
  std::exit(2);
}

TraceFlagHandler g_trace_handler = nullptr;

std::vector<FlagDoc> shared_flag_docs(const ModelFlagDefaults& d) {
  auto num = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%g", v);
    return std::string(buf);
  };
  return {
      {"p=<n>", "processors (default " + num(static_cast<double>(d.p)) + ")"},
      {"g=<x>", "per-processor gap g (default " + num(d.g) + ")"},
      {"m=<n>", "aggregate bandwidth m; 0 derives m = max(1, p/g) "
                "(default " + num(static_cast<double>(d.m)) + ")"},
      {"L=<x>", "latency / periodicity L (default " + num(d.L) + ")"},
      {"seed=<n>", "RNG seed (default " + num(static_cast<double>(d.seed)) + ")"},
      {"trials=<n>", "repetitions per configuration (default " +
                     num(static_cast<double>(d.trials)) + ")"},
      {"threads=<n>", "engine host threads; 0 = hardware concurrency "
                      "(default " + num(static_cast<double>(d.threads)) + ")"},
      {"trace[=<file>]", "write per-superstep cost-attribution records "
                         "(default file trace.jsonl)"},
      {"trace-format=<f>", "trace file format: jsonl | chrome | both "
                           "(default jsonl)"},
      {"help", "show this help and exit"},
  };
}
}  // namespace

void handle_help_flag(const Cli& cli, const std::string& summary,
                      const std::vector<FlagDoc>& docs) {
  if (!cli.has("help")) return;
  std::printf("%s\n\nusage: %s [--flag=value ...]\n\n", summary.c_str(),
              cli.program().c_str());
  std::size_t width = 0;
  for (const FlagDoc& doc : docs) width = std::max(width, doc.flag.size());
  for (const FlagDoc& doc : docs) {
    std::printf("  --%-*s  %s\n", static_cast<int>(width), doc.flag.c_str(),
                doc.help.c_str());
  }
  std::exit(0);
}

ModelFlags parse_model_flags(const Cli& cli, const ModelFlagDefaults& defaults,
                             const std::vector<FlagDoc>& extra_docs) {
  std::vector<FlagDoc> docs = shared_flag_docs(defaults);
  docs.insert(docs.end() - 1, extra_docs.begin(), extra_docs.end());
  handle_help_flag(cli, "Bulk-synchronous cost-model benchmark", docs);

  ModelFlags f;
  f.p = static_cast<std::uint32_t>(cli.get_int("p", defaults.p));
  f.g = cli.get_double("g", defaults.g);
  f.L = cli.get_double("L", defaults.L);
  f.seed = static_cast<std::uint64_t>(cli.get_int("seed", defaults.seed));
  f.trials = static_cast<int>(cli.get_int("trials", defaults.trials));
  require_positive(cli, "p", static_cast<double>(f.p));
  require_positive(cli, "g", f.g);
  require_positive(cli, "trials", static_cast<double>(f.trials));
  std::int64_t m = cli.get_int("m", defaults.m);
  if (m <= 0) {
    m = f.g >= 1.0 ? static_cast<std::int64_t>(static_cast<double>(f.p) / f.g) : f.p;
  }
  f.m = static_cast<std::uint32_t>(m > 0 ? m : 1);
  const std::int64_t threads = cli.get_int("threads", defaults.threads);
  if (threads < 0) require_positive(cli, "threads", -1.0);
  f.threads = static_cast<std::size_t>(threads);

  if (cli.has("trace")) {
    std::string file = cli.get("trace");
    if (file.empty() || file == "true") file = "trace.jsonl";
    const std::string format = cli.get("trace-format", "jsonl");
    if (g_trace_handler != nullptr) {
      g_trace_handler(file, format);
    } else {
      std::fprintf(stderr,
                   "%s: --trace ignored (observability layer not linked)\n",
                   cli.program().c_str());
    }
  }
  return f;
}

void set_trace_flag_handler(TraceFlagHandler handler) {
  g_trace_handler = handler;
}

}  // namespace pbw::util
