// Fixed-width histogram with ASCII rendering.
//
// Used by the AQT stability benches to show queue-length distributions and
// by the scheduling benches to show per-slot injection counts m_t against
// the aggregate limit m.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pbw::util {

class Histogram {
 public:
  /// Buckets [lo, hi) split into `buckets` equal bins; values outside the
  /// range are clamped into the first/last bin so nothing is dropped.
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double value, double weight = 1.0);

  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bucket_hi(std::size_t i) const noexcept;
  [[nodiscard]] double count(std::size_t i) const noexcept { return counts_[i]; }
  [[nodiscard]] double total() const noexcept { return total_; }

  /// Renders a compact bar chart, one line per bucket, bars scaled so that
  /// the fullest bucket is `width` characters wide.
  [[nodiscard]] std::string render(std::size_t width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace pbw::util
