#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace pbw::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("Table::add_row: more cells than headers");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      out << (c == 0 ? "| " : " ") << cell
          << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print(std::ostream& out) const { out << render(); }

void print_banner(std::ostream& out, const std::string& title) {
  out << '\n' << std::string(title.size() + 8, '=') << '\n'
      << "==  " << title << "  ==\n"
      << std::string(title.size() + 8, '=') << '\n';
}

}  // namespace pbw::util
