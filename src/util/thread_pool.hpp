// A small persistent thread pool with a blocking parallel_for.
//
// Lives in util (the base layer) so both the engine — which steps its p
// logical processors with a pool — and replay::recost_batch — which tiles
// charge blocks across one — can share the implementation without a
// dependency cycle.  engine/thread_pool.hpp aliases this class into
// pbw::engine for its historical users.
//
// On a single-core host the pool degenerates to inline execution with no
// loss of determinism (parallel phases never share mutable state — all
// communication is mediated by per-task buffers merged afterwards).
//
// Exception contract: the first exception thrown by any worker (or by the
// calling thread's own chunk) is captured and rethrown on the calling
// thread after every worker has reached the barrier.  Remaining iterations
// are abandoned on a best-effort basis once an exception is pending, so a
// SimulationError raised inside a parallel phase aborts the dispatch
// quickly instead of calling std::terminate.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pbw::util {

class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size() + 1; }

  /// Runs fn(i) for i in [0, n), partitioned into contiguous chunks across
  /// the pool plus the calling thread.  Blocks until all iterations finish.
  /// If any iteration throws, the first captured exception is rethrown here
  /// (after the barrier) and the remaining iterations may be skipped.
  /// fn must not recursively call parallel_for on the same pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  struct Job {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  void worker_loop(std::size_t worker_index);
  /// Runs fn over [job.begin, job.end), capturing the first exception.
  void run_job(const Job& job, const std::function<void(std::size_t)>& fn);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::vector<Job> jobs_;
  std::size_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
  /// First exception thrown by any chunk of the current dispatch (guarded
  /// by mutex_); error_pending_ lets other chunks bail out early.
  std::exception_ptr first_error_;
  std::atomic<bool> error_pending_{false};
};

}  // namespace pbw::util
