#include "util/rng.hpp"

namespace pbw::util {

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  // Lemire 2019: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace pbw::util
