#include "util/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

namespace pbw::simd {

namespace {

/// CPUID probing is not free; the answer cannot change mid-process.
bool probe_cpu(Path path) noexcept {
  switch (path) {
    case Path::kScalar:
      return true;
    case Path::kSse2:
#if defined(__x86_64__) || defined(_M_X64)
      return true;  // architectural baseline for x86-64
#else
      return false;
#endif
    case Path::kAvx2:
#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Path::kAvx512:
#if (defined(__x86_64__) || defined(_M_X64)) && defined(__GNUC__)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
    case Path::kNeon:
#if defined(__aarch64__)
      return true;  // AdvSIMD is architectural on aarch64
#else
      return false;
#endif
  }
  return false;
}

bool cached_cpu_supports(Path path) noexcept {
  // Index by enum value; probe lazily, remember forever.
  static std::atomic<int> cache[5] = {};  // 0 unknown, 1 yes, -1 no
  auto& slot = cache[static_cast<std::uint8_t>(path)];
  int v = slot.load(std::memory_order_relaxed);
  if (v == 0) {
    v = probe_cpu(path) ? 1 : -1;
    slot.store(v, std::memory_order_relaxed);
  }
  return v > 0;
}

/// The force_path() pin: enum value + 1, 0 for "no pin".
std::atomic<int> g_forced{0};

/// Env-derived request, nullopt for "auto"/unset/unknown.
std::optional<Path> env_request() noexcept {
  if (const char* simd = std::getenv("PBW_SIMD");
      simd != nullptr && *simd != '\0') {
    std::string lowered(simd);
    for (char& c : lowered) {
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    }
    if (lowered == "auto") return std::nullopt;
    if (const auto path = path_from_name(lowered)) return path;
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      std::fprintf(stderr,
                   "pbw: ignoring unknown PBW_SIMD value '%s' "
                   "(expected scalar|sse2|avx2|avx512|neon|auto)\n",
                   simd);
    }
    return std::nullopt;
  }
  if (const char* force = std::getenv("PBW_FORCE_SCALAR");
      force != nullptr && *force != '\0' && std::strcmp(force, "0") != 0) {
    return Path::kScalar;
  }
  return std::nullopt;
}

}  // namespace

const char* path_name(Path path) noexcept {
  switch (path) {
    case Path::kScalar: return "scalar";
    case Path::kSse2: return "sse2";
    case Path::kAvx2: return "avx2";
    case Path::kAvx512: return "avx512";
    case Path::kNeon: return "neon";
  }
  return "?";
}

std::optional<Path> path_from_name(std::string_view name) noexcept {
  if (name == "scalar") return Path::kScalar;
  if (name == "sse2") return Path::kSse2;
  if (name == "avx2") return Path::kAvx2;
  if (name == "avx512") return Path::kAvx512;
  if (name == "neon") return Path::kNeon;
  return std::nullopt;
}

bool cpu_supports(Path path) noexcept { return cached_cpu_supports(path); }

Path best_supported() noexcept {
  for (const Path path :
       {Path::kAvx512, Path::kAvx2, Path::kSse2, Path::kNeon}) {
    if (cpu_supports(path)) return path;
  }
  return Path::kScalar;
}

std::vector<Path> supported_paths() {
  std::vector<Path> paths = {Path::kScalar};
  for (const Path path :
       {Path::kSse2, Path::kAvx2, Path::kAvx512, Path::kNeon}) {
    if (cpu_supports(path)) paths.push_back(path);
  }
  return paths;
}

Path step_down(Path path) noexcept {
  switch (path) {
    case Path::kAvx512: return Path::kAvx2;
    case Path::kAvx2: return Path::kSse2;
    case Path::kSse2: return Path::kScalar;
    case Path::kNeon: return Path::kScalar;
    case Path::kScalar: return Path::kScalar;
  }
  return Path::kScalar;
}

Path clamp_to_cpu(Path path) noexcept {
  while (path != Path::kScalar && !cpu_supports(path)) {
    path = step_down(path);
  }
  return path;
}

Path active_path() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced != 0) return static_cast<Path>(forced - 1);
  if (const auto requested = env_request()) return clamp_to_cpu(*requested);
  return best_supported();
}

void force_path(std::optional<Path> path) {
  if (!path) {
    g_forced.store(0, std::memory_order_relaxed);
    return;
  }
  if (!cpu_supports(*path)) {
    throw std::invalid_argument(std::string("simd::force_path: this CPU "
                                            "cannot run ") +
                                path_name(*path));
  }
  g_forced.store(static_cast<int>(static_cast<std::uint8_t>(*path)) + 1,
                 std::memory_order_relaxed);
}

std::optional<Path> forced_path() noexcept {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced == 0) return std::nullopt;
  return static_cast<Path>(forced - 1);
}

}  // namespace pbw::simd
