// Descriptive statistics and concentration-bound helpers.
//
// The Section-6 theorems are "with high probability" statements backed by
// Chernoff bounds; the test suite and benches use these helpers both to
// summarize repeated trials and to check that observed tail frequencies are
// consistent with the bounds used in the proofs.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pbw::util {

/// Summary statistics over a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
};

/// Computes Summary over the values. Empty input yields a zero Summary.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Returns the q-quantile (0 <= q <= 1) by linear interpolation between
/// order statistics. Copies and sorts internally; empty input returns 0.
[[nodiscard]] double quantile(std::span<const double> values, double q);

/// Welford online accumulator, for cases where storing all samples is
/// undesirable (e.g. million-step AQT stability runs).
class Accumulator {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  ///< sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Multiplicative Chernoff upper-tail bound used in Theorem 6.2's analysis:
/// for a sum of independent 0/1 variables with mean mu,
///   Pr[X >= (1+delta) mu] <= exp(-delta^2 mu / 3)   for 0 < delta <= 1.
[[nodiscard]] double chernoff_upper_tail(double mu, double delta);

/// The "large deviation" form used for the k-sigma statement in Thm 6.2:
///   Pr[X >= (1+delta) mu] <= (e / (1+delta))^{(1+delta) mu}, delta >= e.
[[nodiscard]] double chernoff_large_dev(double mu, double delta);

/// Fraction of trials in `values` strictly exceeding `threshold`.
[[nodiscard]] double exceed_fraction(std::span<const double> values, double threshold);

/// Least-squares slope of y against x (simple linear regression).
/// Used by the stability benches to detect queue growth (slope > 0 ==>
/// unstable). Returns 0 for fewer than two points.
[[nodiscard]] double regression_slope(std::span<const double> x,
                                      std::span<const double> y);

}  // namespace pbw::util
