// Deterministic random number generation for the simulator.
//
// Every randomized algorithm in the paper (the Unbalanced-Send family,
// randomized broadcast, sample sort, ...) draws from an explicit stream so
// that a whole experiment is reproducible from a single 64-bit seed.  The
// streams are derived with SplitMix64, which is the recommended seeding
// procedure for xoshiro-family generators and gives independent streams for
// (seed, processor, superstep) tuples.
#pragma once

#include <cstdint>
#include <limits>

namespace pbw::util {

/// SplitMix64 step: advances `state` and returns the next output.
/// Used both as a standalone mixer and to seed Xoshiro256**.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Mixes several values into one well-distributed 64-bit value.
/// Used to derive per-(seed, proc, superstep) stream seeds.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b = 0,
                                            std::uint64_t c = 0) noexcept {
  std::uint64_t s = a;
  std::uint64_t out = splitmix64(s);
  s ^= b + 0x9E3779B97F4A7C15ULL;
  out ^= splitmix64(s);
  s ^= c + 0xC2B2AE3D27D4EB4FULL;
  out ^= splitmix64(s);
  return out;
}

/// Xoshiro256** 1.0 — fast, high-quality, 256-bit state.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all four state words via SplitMix64, as recommended by the
  /// xoshiro authors; guarantees a nonzero state for any seed.
  explicit constexpr Xoshiro256(std::uint64_t seed = 0xDEADBEEFCAFEF00DULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Lemire's nearly-divisionless method (unbiased via rejection).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability prob (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double prob) noexcept { return uniform() < prob; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// A stream factory: hands out independent generators for logical entities.
/// The simulator gives each (processor, superstep) its own stream so that
/// the execution order of processors cannot perturb random choices.
class RngStreams {
 public:
  explicit RngStreams(std::uint64_t root_seed) noexcept : root_(root_seed) {}

  [[nodiscard]] Xoshiro256 stream(std::uint64_t a, std::uint64_t b = 0,
                                  std::uint64_t c = 0) const noexcept {
    return Xoshiro256{mix64(root_ ^ a, b, c)};
  }

  [[nodiscard]] std::uint64_t root() const noexcept { return root_; }

 private:
  std::uint64_t root_;
};

}  // namespace pbw::util
