// CPU SIMD capability shim: which vector paths this host can run, and
// which one the process should use.
//
// The batch-recost kernel (replay/batch.hpp) compiles one charge-loop
// translation unit per instruction set (scalar always; SSE2/AVX2/AVX-512
// on x86-64; NEON on aarch64) and dispatches at runtime.  This shim owns
// the policy half of that dispatch:
//
//   * best_supported() — the widest path the *CPU* can execute, probed
//     once (CPUID via __builtin_cpu_supports on x86-64, architectural on
//     aarch64, scalar elsewhere);
//   * active_path()    — best_supported() clamped by the user: a
//     programmatic force_path() override (tests pin each path in turn),
//     else the PBW_SIMD environment variable ("scalar" | "sse2" | "avx2"
//     | "avx512" | "neon" | "auto"), else PBW_FORCE_SCALAR=1 as a blunt
//     kill switch.  A requested path the CPU cannot run degrades down the
//     ladder (avx512 -> avx2 -> sse2 -> scalar; neon -> scalar) instead
//     of crashing on an illegal instruction.
//
// Callers that also need the path to be *compiled in* (a -mno-avx2 build
// ships no AVX2 kernel even on an AVX2 CPU) intersect active_path() with
// their own build flags — see replay::batch_kernel_path().
//
// Every path computes bit-identical results by contract (the kernels use
// only IEEE-exact lane ops), so the choice here is pure throughput; it is
// still reported on /status, in plan responses, and in the campaign
// summary so a perf number can always be attributed to its kernel.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace pbw::simd {

/// Dispatchable instruction-set paths, narrowest first.  The ordering is
/// meaningful: degrading a path means stepping toward kScalar.
enum class Path : std::uint8_t {
  kScalar = 0,  ///< portable doubles, one lane (always available)
  kSse2 = 1,    ///< 2 x double (x86-64 baseline)
  kAvx2 = 2,    ///< 4 x double
  kAvx512 = 3,  ///< 8 x double (AVX-512F)
  kNeon = 4,    ///< 2 x double (aarch64 baseline)
};

/// Stable lower-case name ("scalar", "sse2", "avx2", "avx512", "neon").
[[nodiscard]] const char* path_name(Path path) noexcept;

/// Inverse of path_name, also accepting "auto" as nullopt-with-success
/// via parse_request below; unknown names return nullopt.
[[nodiscard]] std::optional<Path> path_from_name(std::string_view name) noexcept;

/// Can this host's CPU execute `path`?  kScalar is always true.
[[nodiscard]] bool cpu_supports(Path path) noexcept;

/// The widest CPU-supported path (the default choice).
[[nodiscard]] Path best_supported() noexcept;

/// Every CPU-supported path, narrowest first (kScalar always included).
[[nodiscard]] std::vector<Path> supported_paths();

/// One step down the degradation ladder (kAvx512 -> kAvx2 -> kSse2 ->
/// kScalar, kNeon -> kScalar).  kScalar maps to itself.
[[nodiscard]] Path step_down(Path path) noexcept;

/// `path` degraded until cpu_supports() holds (identity when it already
/// does; terminates at kScalar).
[[nodiscard]] Path clamp_to_cpu(Path path) noexcept;

/// The path the process should use right now:
///   1. the force_path() override, if set;
///   2. else PBW_SIMD, when set and not "auto" (unknown values warn once
///      on stderr and fall back to the automatic choice);
///   3. else scalar when PBW_FORCE_SCALAR is set to anything but "" / "0";
///   4. else best_supported().
/// The result is always CPU-supported (requests degrade via clamp_to_cpu).
/// The environment is re-read on every call, so tests may setenv/unsetenv
/// around it.
[[nodiscard]] Path active_path() noexcept;

/// Pins active_path() to a CPU-supported path (std::invalid_argument if
/// the CPU cannot run it); nullopt clears the pin.  Takes precedence over
/// the environment.  Intended for tests and benches that must measure a
/// specific kernel; prefer ScopedPath for automatic restore.
void force_path(std::optional<Path> path);

/// The current force_path() pin, if any.
[[nodiscard]] std::optional<Path> forced_path() noexcept;

/// RAII pin: forces `path` for the scope, restores the previous pin on
/// exit.  Not thread-safe against concurrent ScopedPath scopes (the pin
/// is process-global); tests use it from one thread.
class ScopedPath {
 public:
  explicit ScopedPath(Path path) : previous_(forced_path()) {
    force_path(path);
  }
  ~ScopedPath() { force_path(previous_); }
  ScopedPath(const ScopedPath&) = delete;
  ScopedPath& operator=(const ScopedPath&) = delete;

 private:
  std::optional<Path> previous_;
};

}  // namespace pbw::simd
