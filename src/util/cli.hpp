// Minimal command-line flag parser for bench and example binaries.
//
// Supports --key=value and --key value forms plus boolean switches; every
// bench exposes --seed, --trials, and sweep-range overrides through this.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pbw::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback = false) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace pbw::util
