// Minimal command-line flag parser for bench and example binaries.
//
// Supports --key=value and --key value forms plus boolean switches; every
// bench exposes --seed, --trials, and sweep-range overrides through this.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pbw::util {

class Cli {
 public:
  Cli(int argc, char** argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = "") const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback = false) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Every --flag given on the command line (sorted; values dropped).
  /// Lets a CLI reject flags its command does not read instead of
  /// silently ignoring a typo like --trails=5.
  [[nodiscard]] std::vector<std::string> flag_names() const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// One --flag and its one-line description, for --help output.
struct FlagDoc {
  std::string flag;  ///< e.g. "p=<n>"
  std::string help;  ///< one-line description
};

/// If --help was given, prints `summary`, then one aligned line per FlagDoc,
/// and exits 0.  Benches with bespoke flags call this directly; benches on
/// parse_model_flags get it (plus the shared flag docs) for free.
void handle_help_flag(const Cli& cli, const std::string& summary,
                      const std::vector<FlagDoc>& docs);

/// The model-parameter flags shared by every bench and the campaign CLI:
/// --p, --g, --m, --L, --seed, --trials, --threads.  Parsed once here so
/// the binaries agree on names, defaults and the m = p/g matched-bandwidth
/// derivation.
struct ModelFlags {
  std::uint32_t p = 1;
  double g = 1.0;
  std::uint32_t m = 1;
  double L = 1.0;
  std::uint64_t seed = 1;
  int trials = 1;
  /// Host threads for the engine; 0 = hardware concurrency.
  std::size_t threads = 1;
};

/// Defaults for parse_model_flags.  Leave m at 0 to derive the matched
/// aggregate bandwidth m = max(1, p/g) unless --m is given explicitly.
struct ModelFlagDefaults {
  std::int64_t p = 1024;
  double g = 16.0;
  std::int64_t m = 0;
  double L = 16.0;
  std::int64_t seed = 1;
  std::int64_t trials = 1;
  std::int64_t threads = 1;
};

/// Parses the shared flags; handles --help (listing the shared flags plus
/// `extra_docs`, then exiting 0) and --trace / --trace-format (forwarded to
/// the handler installed by set_trace_flag_handler — linking pbw_obs
/// installs one that tees every Machine run to the named file).
[[nodiscard]] ModelFlags parse_model_flags(
    const Cli& cli, const ModelFlagDefaults& defaults = {},
    const std::vector<FlagDoc>& extra_docs = {});

/// Hook invoked when parse_model_flags sees --trace.  Lives here as a bare
/// function pointer so util does not depend on the obs layer; obs/trace.cpp
/// registers the real handler from a static initializer.
using TraceFlagHandler = void (*)(const std::string& file,
                                  const std::string& format);
void set_trace_flag_handler(TraceFlagHandler handler);

}  // namespace pbw::util
