#include "util/zipf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pbw::util {

ZipfSampler::ZipfSampler(std::uint64_t n, double theta) : n_(n), theta_(theta) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: empty universe");
  cdf_.resize(n);
  double total = 0.0;
  for (std::uint64_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = total;
  }
  for (auto& v : cdf_) v /= total;
}

std::uint64_t ZipfSampler::sample(Xoshiro256& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(std::distance(cdf_.begin(), it));
}

}  // namespace pbw::util
