#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pbw::util {

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  Accumulator acc;
  for (double v : values) acc.add(v);
  s.count = acc.count();
  s.min = acc.min();
  s.max = acc.max();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  return s;
}

double quantile(std::span<const double> values, double q) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double chernoff_upper_tail(double mu, double delta) {
  if (mu <= 0.0 || delta <= 0.0) return 1.0;
  return std::exp(-delta * delta * mu / 3.0);
}

double chernoff_large_dev(double mu, double delta) {
  if (mu <= 0.0 || delta <= 0.0) return 1.0;
  const double one_plus = 1.0 + delta;
  return std::pow(std::exp(1.0) / one_plus, one_plus * mu);
}

double exceed_fraction(std::span<const double> values, double threshold) {
  if (values.empty()) return 0.0;
  std::size_t n = 0;
  for (double v : values) {
    if (v > threshold) ++n;
  }
  return static_cast<double>(n) / static_cast<double>(values.size());
}

double regression_slope(std::span<const double> x, std::span<const double> y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0.0;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double num = 0, den = 0;
  for (std::size_t i = 0; i < n; ++i) {
    num += (x[i] - mx) * (y[i] - my);
    den += (x[i] - mx) * (x[i] - mx);
  }
  return den == 0.0 ? 0.0 : num / den;
}

}  // namespace pbw::util
