#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace pbw::util {

namespace {

void type_error(const char* want) {
  throw JsonError(std::string("Json: value is not a ") + want);
}

}  // namespace

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool");
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) type_error("number");
  return num_;
}

std::int64_t Json::as_int() const {
  if (type_ != Type::kNumber) type_error("number");
  return static_cast<std::int64_t>(num_);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string");
  return str_;
}

Json& Json::push_back(Json v) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) type_error("array");
  arr_.push_back(std::move(v));
  return arr_.back();
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::kArray:
      return arr_.size();
    case Type::kObject:
      return obj_.size();
    default:
      type_error("container");
  }
  return 0;
}

const Json& Json::at(std::size_t i) const {
  if (type_ != Type::kArray) type_error("array");
  if (i >= arr_.size()) throw JsonError("Json: array index out of range");
  return arr_[i];
}

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) type_error("object");
  for (auto& [k, v] : obj_) {
    if (k == key) return v;
  }
  obj_.emplace_back(key, Json());
  return obj_.back().second;
}

const Json* Json::get(std::string_view key) const {
  if (type_ != Type::kObject) type_error("object");
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) type_error("object");
  return obj_;
}

// ---- writer ---------------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double v, std::string& out) {
  if (!std::isfinite(v)) {
    // JSON has no Infinity/NaN; null is the conventional substitute.
    out += "null";
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    out += std::to_string(static_cast<long long>(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  switch (type_) {
    case Type::kNull:
      out = "null";
      break;
    case Type::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      dump_number(num_, out);
      break;
    case Type::kString:
      dump_string(str_, out);
      break;
    case Type::kArray: {
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        out += arr_[i].dump();
      }
      out += ']';
      break;
    }
    case Type::kObject: {
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        dump_string(obj_[i].first, out);
        out += ':';
        out += obj_[i].second.dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

// ---- parser ---------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("Json::parse at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json();
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 't':
          out += '\t';
          break;
        case 'r':
          out += '\r';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported;
          // campaign records only ever escape control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  Json parse_number() {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == begin) fail("expected a value");
    double value = 0.0;
    const auto* first = text_.data() + begin;
    const auto* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) fail("malformed number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace pbw::util
