#include "util/thread_pool.hpp"

#include <algorithm>

namespace pbw::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  }
  // The calling thread participates, so spawn threads-1 workers.
  const std::size_t workers = threads - 1;
  jobs_.resize(workers);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::run_job(const Job& job,
                         const std::function<void(std::size_t)>& fn) {
  try {
    for (std::size_t i = job.begin; i < job.end; ++i) {
      if (error_pending_.load(std::memory_order_relaxed)) return;
      fn(i);
    }
  } catch (...) {
    std::lock_guard lock(mutex_);
    if (!first_error_) first_error_ = std::current_exception();
    error_pending_.store(true, std::memory_order_relaxed);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t parts = size();
  if (parts == 1 || n == 1) {
    // Inline execution: exceptions propagate naturally.
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunk = (n + parts - 1) / parts;
  Job own{0, std::min(chunk, n)};
  {
    std::lock_guard lock(mutex_);
    fn_ = &fn;
    pending_ = 0;
    first_error_ = nullptr;
    error_pending_.store(false, std::memory_order_relaxed);
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      const std::size_t begin = std::min((w + 1) * chunk, n);
      const std::size_t end = std::min((w + 2) * chunk, n);
      jobs_[w] = Job{begin, end};
      if (begin < end) ++pending_;
    }
    ++generation_;
  }
  start_cv_.notify_all();
  run_job(own, fn);
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  fn_ = nullptr;
  if (first_error_) {
    std::exception_ptr error = std::move(first_error_);
    first_error_ = nullptr;
    error_pending_.store(false, std::memory_order_relaxed);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  std::size_t seen_generation = 0;
  for (;;) {
    Job job;
    const std::function<void(std::size_t)>* fn = nullptr;
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock,
                     [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = jobs_[worker_index];
      fn = fn_;
    }
    if (job.begin < job.end && fn != nullptr) {
      run_job(job, *fn);
      std::lock_guard lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_one();
    }
  }
}

}  // namespace pbw::util
