// Zipf-distributed sampling, used by workload generators to model the
// "skew in the inputs" that Section 6 motivates (skewed joins, nearly
// sorted lists, uneven task spawning).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace pbw::util {

/// Samples ranks 0..n-1 with Pr[rank k] proportional to 1/(k+1)^theta.
/// Precomputes the inverse CDF once; each sample is a binary search.
class ZipfSampler {
 public:
  /// theta = 0 degenerates to uniform; typical skew values 0.5..1.5.
  ZipfSampler(std::uint64_t n, double theta);

  [[nodiscard]] std::uint64_t sample(Xoshiro256& rng) const;

  [[nodiscard]] std::uint64_t universe() const noexcept { return n_; }
  [[nodiscard]] double theta() const noexcept { return theta_; }

 private:
  std::uint64_t n_;
  double theta_;
  std::vector<double> cdf_;
};

}  // namespace pbw::util
