// Minimal JSON value type with a writer and a strict parser.
//
// The campaign subsystem records every experiment as one JSON object per
// line (JSON Lines); downstream tooling (plots, regression dashboards)
// consumes those files, and the resume logic re-reads them.  The type is
// deliberately small: null/bool/number/string/array/object, objects keep
// insertion order so emitted records are stable and diffable.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pbw::util {

/// Thrown by Json::parse on malformed input.
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  ///< null
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : Json(static_cast<double>(v)) {}
  Json(long v) : Json(static_cast<double>(v)) {}
  Json(long long v) : Json(static_cast<double>(v)) {}
  Json(unsigned v) : Json(static_cast<double>(v)) {}
  Json(unsigned long v) : Json(static_cast<double>(v)) {}
  Json(unsigned long long v) : Json(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : Json(std::string(s)) {}

  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const noexcept { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return type_ == Type::kString; }
  [[nodiscard]] bool is_object() const noexcept { return type_ == Type::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array access.  push_back requires (or converts a null into) an array.
  Json& push_back(Json v);
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t i) const;

  /// Object access.  operator[] inserts a null member on first use and
  /// requires (or converts a null into) an object; get() returns nullptr
  /// when the key is absent.
  Json& operator[](const std::string& key);
  [[nodiscard]] const Json* get(std::string_view key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const;

  /// Compact single-line serialization (objects keep insertion order).
  [[nodiscard]] std::string dump() const;

  /// Strict parse of exactly one JSON document (trailing whitespace ok).
  [[nodiscard]] static Json parse(std::string_view text);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace pbw::util
