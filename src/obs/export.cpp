#include "obs/export.hpp"

#include <cstring>
#include <istream>
#include <iterator>
#include <map>
#include <ostream>

namespace pbw::obs {

util::Json run_header_json(const TraceRun& run) {
  util::Json j = util::Json::object();
  j["type"] = "run";
  j["run"] = run.id;
  j["model"] = run.info.model;
  j["p"] = run.info.p;
  j["seed"] = run.info.seed;
  return j;
}

util::Json superstep_json(const TraceRun& run, const SuperstepTraceRecord& rec) {
  util::Json j = util::Json::object();
  j["type"] = "superstep";
  j["run"] = run.id;
  j["superstep"] = rec.superstep;
  j["cost"] = rec.cost;
  j["w"] = rec.w;
  j["gh"] = rec.gh;
  j["h"] = rec.h;
  j["cm"] = rec.cm;
  j["kappa"] = rec.kappa;
  j["L"] = rec.L;
  j["dominant"] = rec.dominant;
  j["step_ns"] = rec.step_ns;
  j["merge_ns"] = rec.merge_ns;
  return j;
}

util::Json run_end_json(const TraceRun& run) {
  util::Json j = util::Json::object();
  j["type"] = "run_end";
  j["run"] = run.id;
  j["supersteps"] = run.summary.supersteps;
  j["total_time"] = run.summary.total_time;
  return j;
}

void write_jsonl(const std::vector<TraceRun>& runs, std::ostream& out) {
  for (const auto& run : runs) {
    out << run_header_json(run).dump() << "\n";
    for (const auto& rec : run.records) {
      out << superstep_json(run, rec).dump() << "\n";
    }
    out << run_end_json(run).dump() << "\n";
  }
}

void write_chrome_trace(const std::vector<TraceRun>& runs, std::ostream& out) {
  write_chrome_trace(runs, {}, out);
}

void write_chrome_trace(const std::vector<TraceRun>& runs,
                        const std::vector<SpanEvent>& spans,
                        std::ostream& out) {
  util::Json events = util::Json::array();
  for (const auto& run : runs) {
    // One Perfetto "process" per run, named after the model, so parallel
    // model runs of the same program line up as sibling tracks.
    util::Json meta = util::Json::object();
    meta["ph"] = "M";
    meta["pid"] = run.id;
    meta["tid"] = 0;
    meta["name"] = "process_name";
    util::Json meta_args = util::Json::object();
    meta_args["name"] = run.info.model;
    meta["args"] = std::move(meta_args);
    events.push_back(std::move(meta));

    double ts = 0.0;  // cumulative simulated time as microseconds
    for (const auto& rec : run.records) {
      util::Json slice = util::Json::object();
      slice["ph"] = "X";
      slice["pid"] = run.id;
      slice["tid"] = 0;
      slice["ts"] = ts;
      slice["dur"] = rec.cost;
      slice["name"] = rec.dominant;
      slice["cat"] = "superstep";
      util::Json args = util::Json::object();
      args["superstep"] = rec.superstep;
      args["cost"] = rec.cost;
      args["w"] = rec.w;
      args["gh"] = rec.gh;
      args["h"] = rec.h;
      args["cm"] = rec.cm;
      args["kappa"] = rec.kappa;
      args["L"] = rec.L;
      args["step_ns"] = rec.step_ns;
      args["merge_ns"] = rec.merge_ns;
      slice["args"] = std::move(args);
      events.push_back(std::move(slice));

      util::Json counter = util::Json::object();
      counter["ph"] = "C";
      counter["pid"] = run.id;
      counter["tid"] = 0;
      counter["ts"] = ts;
      counter["name"] = "cost components";
      util::Json cargs = util::Json::object();
      cargs["w"] = rec.w;
      cargs["gh"] = rec.gh;
      cargs["h"] = rec.h;
      cargs["cm"] = rec.cm;
      cargs["kappa"] = rec.kappa;
      cargs["L"] = rec.L;
      counter["args"] = std::move(cargs);
      events.push_back(std::move(counter));

      ts += rec.cost;
    }
  }
  if (!spans.empty()) {
    // Host wall-clock spans live in their own Perfetto "process" so the
    // flamegraph sits next to (never interleaved with) the model-time
    // rows.  Run pids are sequential sink ids, so the first pid past
    // them is free.
    const std::uint64_t host_pid = runs.size();
    util::Json meta = util::Json::object();
    meta["ph"] = "M";
    meta["pid"] = host_pid;
    meta["tid"] = 0;
    meta["name"] = "process_name";
    util::Json meta_args = util::Json::object();
    meta_args["name"] = "host wall clock (spans)";
    meta["args"] = std::move(meta_args);
    events.push_back(std::move(meta));

    for (const auto& span : spans) {
      util::Json slice = util::Json::object();
      slice["ph"] = "X";
      slice["pid"] = host_pid;
      slice["tid"] = span.tid;
      slice["ts"] = static_cast<double>(span.start_ns) / 1000.0;
      slice["dur"] = static_cast<double>(span.dur_ns) / 1000.0;
      slice["name"] = span.name;
      slice["cat"] = "span";
      util::Json args = util::Json::object();
      args["depth"] = span.depth;
      args["dur_ns"] = span.dur_ns;
      slice["args"] = std::move(args);
      events.push_back(std::move(slice));
    }
  }
  util::Json root = util::Json::object();
  root["traceEvents"] = std::move(events);
  root["displayTimeUnit"] = "ms";
  out << root.dump() << "\n";
}

namespace {

bool is_component_name(const std::string& name) {
  return name == "w" || name == "gh" || name == "h" || name == "cm" ||
         name == "kappa" || name == "L";
}

std::string at_line(std::size_t line, const std::string& message) {
  return "line " + std::to_string(line) + ": " + message;
}

}  // namespace

TraceValidation validate_trace_jsonl(std::istream& in) {
  TraceValidation v;
  struct RunState {
    std::uint64_t next_superstep = 0;
    bool ended = false;
  };
  std::map<std::int64_t, RunState> runs;
  std::string line;
  std::size_t line_no = 0;
  auto fail = [&](const std::string& message) {
    v.ok = false;
    v.error = at_line(line_no, message);
    return v;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    util::Json rec;
    try {
      rec = util::Json::parse(line);
    } catch (const util::JsonError& e) {
      return fail(std::string("not JSON: ") + e.what());
    }
    if (!rec.is_object()) return fail("record is not an object");
    const util::Json* type = rec.get("type");
    if (type == nullptr || !type->is_string()) return fail("missing type");
    const util::Json* run_id = rec.get("run");
    if (run_id == nullptr || !run_id->is_number()) return fail("missing run id");
    const std::int64_t id = run_id->as_int();

    if (type->as_string() == "run") {
      if (runs.count(id) != 0) return fail("duplicate run header");
      for (const char* field : {"model"}) {
        const util::Json* f = rec.get(field);
        if (f == nullptr || !f->is_string()) {
          return fail(std::string("run record missing ") + field);
        }
      }
      for (const char* field : {"p", "seed"}) {
        const util::Json* f = rec.get(field);
        if (f == nullptr || !f->is_number()) {
          return fail(std::string("run record missing ") + field);
        }
      }
      runs.emplace(id, RunState{});
      ++v.runs;
    } else if (type->as_string() == "superstep") {
      const auto it = runs.find(id);
      if (it == runs.end()) return fail("superstep before its run header");
      if (it->second.ended) return fail("superstep after run_end");
      for (const char* field :
           {"superstep", "cost", "w", "gh", "h", "cm", "kappa", "L",
            "step_ns", "merge_ns"}) {
        const util::Json* f = rec.get(field);
        if (f == nullptr || !f->is_number()) {
          return fail(std::string("superstep record missing ") + field);
        }
      }
      const util::Json* dominant = rec.get("dominant");
      if (dominant == nullptr || !dominant->is_string() ||
          !is_component_name(dominant->as_string())) {
        return fail("dominant must name a cost component");
      }
      const auto index =
          static_cast<std::uint64_t>(rec.get("superstep")->as_int());
      if (index != it->second.next_superstep) {
        return fail("superstep index not consecutive");
      }
      ++it->second.next_superstep;
      ++v.supersteps;
    } else if (type->as_string() == "run_end") {
      const auto it = runs.find(id);
      if (it == runs.end()) return fail("run_end before its run header");
      if (it->second.ended) return fail("duplicate run_end");
      const util::Json* supersteps = rec.get("supersteps");
      if (supersteps == nullptr || !supersteps->is_number()) {
        return fail("run_end missing supersteps");
      }
      if (static_cast<std::uint64_t>(supersteps->as_int()) !=
          it->second.next_superstep) {
        return fail("run_end superstep count mismatch");
      }
      if (rec.get("total_time") == nullptr) {
        return fail("run_end missing total_time");
      }
      it->second.ended = true;
    } else {
      return fail("unknown record type " + type->as_string());
    }
  }
  for (const auto& [id, state] : runs) {
    if (!state.ended) {
      v.ok = false;
      v.error = "run " + std::to_string(id) + " has no run_end";
      return v;
    }
  }
  return v;
}

ChromeTraceValidation validate_chrome_trace(std::istream& in) {
  ChromeTraceValidation v;
  auto fail = [&](const std::string& message) {
    v.ok = false;
    v.error = message;
    return v;
  };

  std::string text{std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  util::Json doc;
  try {
    doc = util::Json::parse(text);
  } catch (const util::JsonError& e) {
    return fail(std::string("not JSON: ") + e.what());
  }
  if (!doc.is_object()) return fail("document is not an object");
  const util::Json* events = doc.get("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return fail("missing traceEvents array");
  }

  for (std::size_t i = 0; i < events->size(); ++i) {
    const util::Json& event = events->at(i);
    const std::string where = "traceEvents[" + std::to_string(i) + "] ";
    if (!event.is_object()) return fail(where + "is not an object");
    const util::Json* ph = event.get("ph");
    if (ph == nullptr || !ph->is_string()) return fail(where + "missing ph");
    const util::Json* name = event.get("name");
    if (name == nullptr || !name->is_string()) {
      return fail(where + "missing name");
    }
    for (const char* field : {"pid", "tid"}) {
      const util::Json* f = event.get(field);
      if (f == nullptr || !f->is_number()) {
        return fail(where + "missing " + field);
      }
    }
    if (ph->as_string() == "X") {
      const util::Json* ts = event.get("ts");
      if (ts == nullptr || !ts->is_number()) return fail(where + "missing ts");
      const util::Json* dur = event.get("dur");
      if (dur == nullptr || !dur->is_number() || dur->as_double() < 0.0) {
        return fail(where + "bad dur");
      }
      ++v.slices;
    } else if (ph->as_string() == "M") {
      ++v.metas;
    }
  }
  return v;
}

}  // namespace pbw::obs
