#include "obs/telemetry/watchdog.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

namespace pbw::obs {

Watchdog::Watchdog(double stall_seconds, Poll poll, OnStall on_stall)
    : stall_seconds_(stall_seconds),
      poll_(std::move(poll)),
      on_stall_(std::move(on_stall)) {}

Watchdog::~Watchdog() { stop(); }

void Watchdog::start(double interval_seconds) {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this, interval_seconds] {
    const auto interval = std::chrono::duration<double>(interval_seconds);
    while (running_.load(std::memory_order_relaxed)) {
      check();
      // Sleep in short slices so stop() never waits a full interval.
      auto remaining = interval;
      while (running_.load(std::memory_order_relaxed) &&
             remaining.count() > 0) {
        const auto slice =
            std::min(remaining, std::chrono::duration<double>(0.05));
        std::this_thread::sleep_for(slice);
        remaining -= slice;
      }
    }
  });
}

void Watchdog::stop() {
  running_.store(false, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
}

std::vector<WatchdogTask> Watchdog::check() {
  const std::vector<WatchdogTask> tasks = poll_ ? poll_() : std::vector<WatchdogTask>{};
  std::vector<WatchdogTask> stalled;
  std::set<std::string> seen;
  for (const auto& task : tasks) {
    if (task.seconds < stall_seconds_) continue;
    stalled.push_back(task);
    seen.insert(task.name);
    if (flagged_.insert(task.name).second) {
      stalls_.fetch_add(1, std::memory_order_relaxed);
      if (on_stall_) on_stall_(task);
    }
  }
  // A task that finished (or dipped back under the threshold after the
  // board restarted it) starts a fresh episode next time it stalls.
  for (auto it = flagged_.begin(); it != flagged_.end();) {
    it = seen.count(*it) ? std::next(it) : flagged_.erase(it);
  }
  return stalled;
}

}  // namespace pbw::obs
