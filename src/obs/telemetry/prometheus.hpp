// Prometheus text exposition format, rendered from a metrics snapshot.
//
// The /metrics endpoint serves this.  Rendering reads the registry's
// JSON snapshot (MetricsRegistry::to_json()) rather than the registry
// internals so the text output and the --metrics dump can never
// disagree, and golden tests pin the exact bytes.  Mapping:
//
//   counters    -> `# TYPE pbw_<name> counter` + one sample
//   gauges      -> `# TYPE pbw_<name> gauge` + one sample
//   histograms  -> `# TYPE pbw_<name> histogram`, cumulative
//                  `_bucket{le="..."}` samples ending in le="+Inf",
//                  `_sum`, `_count`, plus `pbw_<name>_p50/_p95/_p99`
//                  gauges carrying the registry's percentile estimates
//
// Metric names sanitize '.', '-' and every other non-[a-zA-Z0-9_] byte
// to '_' and gain the `pbw_` prefix; ordering follows the snapshot
// (sorted), so output is deterministic.
#pragma once

#include <string>

#include "util/json.hpp"

namespace pbw::obs {

/// Renders a MetricsRegistry::to_json() snapshot as Prometheus text.
[[nodiscard]] std::string render_prometheus(const util::Json& snapshot);

/// `pbw_` + sanitized name (exposed for tests).
[[nodiscard]] std::string prometheus_name(const std::string& name);

}  // namespace pbw::obs
