// Cooperative SIGINT/SIGTERM shutdown for long campaign runs.
//
// The handler only sets an atomic flag; everything unsafe — flushing the
// metrics snapshot, the trace file, printing — happens on normal threads
// that poll the flag (the executor between jobs, the campaign CLI's
// supervisor loop).  A second signal while the first is still draining
// hard-exits with the conventional 128+sig code, so a wedged job can
// always be killed; by then the supervisor has already flushed the
// evidence snapshot, and the JSONL recorder writes whole lines only, so
// the results file and resume manifest stay consistent either way.
#pragma once

#include <atomic>

namespace pbw::obs {

/// Installs the SIGINT/SIGTERM handler (idempotent).
void install_shutdown_signals();

/// True once a shutdown signal arrived.
[[nodiscard]] bool shutdown_requested() noexcept;

/// The signal number that requested shutdown, or 0.
[[nodiscard]] int shutdown_signal() noexcept;

/// The flag itself, for pollers that want to share it without a function
/// call per check (campaign::ExecutorOptions::stop).
[[nodiscard]] const std::atomic<bool>* shutdown_flag() noexcept;

/// Clears the flag (tests; the handler stays installed).
void reset_shutdown_for_tests() noexcept;

}  // namespace pbw::obs
