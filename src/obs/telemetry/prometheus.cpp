#include "obs/telemetry/prometheus.hpp"

namespace pbw::obs {

namespace {

/// Formats exactly like the JSON dump (integers bare, else %.17g) so the
/// two exposition paths can never disagree on a value.
std::string fmt(const util::Json& value) { return value.dump(); }

void render_percentile_gauge(const std::string& base, const char* suffix,
                             const util::Json* value, std::string& out) {
  if (value == nullptr) return;
  out += "# TYPE " + base + suffix + " gauge\n";
  out += base + suffix + " " + fmt(*value) + "\n";
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out = "pbw_";
  out.reserve(name.size() + 4);
  for (const char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
    out.push_back(keep ? c : '_');
  }
  return out;
}

std::string render_prometheus(const util::Json& snapshot) {
  std::string out;

  // A registry name may embed a Prometheus label block after its base —
  // `http.requests{method="GET",path="/status",status="200"}` — in which
  // case only the base is sanitized, the labels pass through verbatim,
  // and `# TYPE` is emitted once per base (same-base series sort
  // adjacently in the registry's map).  Label-free names render exactly
  // as before.
  const auto render_series = [&out](const util::Json& series,
                                    const char* type) {
    std::string last_base;
    for (const auto& [name, value] : series.members()) {
      const std::size_t brace = name.find('{');
      const std::string base =
          prometheus_name(brace == std::string::npos ? name
                                                     : name.substr(0, brace));
      const std::string labels =
          brace == std::string::npos ? "" : name.substr(brace);
      if (base != last_base) {
        out += "# TYPE " + base + " " + type + "\n";
        last_base = base;
      }
      out += base + labels + " " + fmt(value) + "\n";
    }
  };

  if (const util::Json* counters = snapshot.get("counters")) {
    render_series(*counters, "counter");
  }

  if (const util::Json* gauges = snapshot.get("gauges")) {
    render_series(*gauges, "gauge");
  }

  if (const util::Json* histograms = snapshot.get("histograms")) {
    for (const auto& [name, hist] : histograms->members()) {
      const std::string metric = prometheus_name(name);
      out += "# TYPE " + metric + " histogram\n";
      double cumulative = 0.0;
      if (const util::Json* buckets = hist.get("buckets")) {
        for (std::size_t i = 0; i < buckets->size(); ++i) {
          const util::Json& bucket = buckets->at(i);
          cumulative += bucket.get("count")->as_double();
          out += metric + "_bucket{le=\"" + fmt(*bucket.get("hi")) + "\"} " +
                 fmt(util::Json(cumulative)) + "\n";
        }
      }
      out += metric + "_bucket{le=\"+Inf\"} " + fmt(*hist.get("count")) + "\n";
      out += metric + "_sum " + fmt(*hist.get("sum")) + "\n";
      out += metric + "_count " + fmt(*hist.get("count")) + "\n";
      render_percentile_gauge(metric, "_p50", hist.get("p50"), out);
      render_percentile_gauge(metric, "_p95", hist.get("p95"), out);
      render_percentile_gauge(metric, "_p99", hist.get("p99"), out);
    }
  }

  return out;
}

}  // namespace pbw::obs
