#include "obs/telemetry/rate.hpp"

namespace pbw::obs {

RateEstimator::RateEstimator(double window_seconds, std::size_t max_samples)
    : window_seconds_(window_seconds),
      max_samples_(max_samples < 2 ? 2 : max_samples) {}

void RateEstimator::observe(double t_seconds, std::uint64_t completed) {
  samples_.emplace_back(t_seconds, completed);
  while (samples_.size() > max_samples_ ||
         (samples_.size() > 2 &&
          samples_.back().first - samples_.front().first > window_seconds_)) {
    samples_.pop_front();
  }
}

double RateEstimator::rate() const {
  if (samples_.size() < 2) return 0.0;
  const auto& [t0, c0] = samples_.front();
  const auto& [t1, c1] = samples_.back();
  if (t1 <= t0 || c1 < c0) return 0.0;
  return static_cast<double>(c1 - c0) / (t1 - t0);
}

double RateEstimator::eta_seconds(std::uint64_t remaining) const {
  if (remaining == 0) return 0.0;
  const double r = rate();
  if (r <= 0.0) return -1.0;
  return static_cast<double>(remaining) / r;
}

}  // namespace pbw::obs
