#include "obs/telemetry/context.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>

namespace pbw::obs {

namespace {

thread_local TraceContext t_context;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Per-process id stream: wall clock + pid seed a counter, each draw runs
/// through splitmix64.  Not cryptographic — just collision-free in
/// practice across a fleet's worth of processes.
std::uint64_t next_id() {
  static const std::uint64_t seed =
      splitmix64(static_cast<std::uint64_t>(
                     std::chrono::system_clock::now().time_since_epoch()
                         .count()) ^
                 (static_cast<std::uint64_t>(::getpid()) << 32));
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t id = 0;
  while (id == 0) {
    id = splitmix64(seed + counter.fetch_add(1, std::memory_order_relaxed));
  }
  return id;
}

void hex16(std::uint64_t v, std::string& out) {
  static const char* digits = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out.push_back(digits[(v >> shift) & 0xF]);
  }
}

/// Parses exactly 16 hex digits; false on any non-hex character.
bool parse_hex16(std::string_view s, std::uint64_t& out) {
  out = 0;
  for (const char c : s) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
    out = (out << 4) | digit;
  }
  return true;
}

}  // namespace

std::string TraceContext::trace_id_hex() const {
  std::string out;
  out.reserve(32);
  hex16(trace_hi, out);
  hex16(trace_lo, out);
  return out;
}

std::string TraceContext::format() const {
  if (!valid()) return "";
  std::string out = "00-";
  out.reserve(55);
  hex16(trace_hi, out);
  hex16(trace_lo, out);
  out += '-';
  hex16(span_id, out);
  out += "-01";
  return out;
}

TraceContext TraceContext::parse(std::string_view wire) {
  TraceContext ctx;
  // "00-" + 32 hex + "-" + 16 hex + "-01" == 55 bytes, exactly.
  if (wire.size() != 55) return TraceContext{};
  if (wire.substr(0, 3) != "00-" || wire[35] != '-' ||
      wire.substr(52) != "-01") {
    return TraceContext{};
  }
  if (!parse_hex16(wire.substr(3, 16), ctx.trace_hi) ||
      !parse_hex16(wire.substr(19, 16), ctx.trace_lo) ||
      !parse_hex16(wire.substr(36, 16), ctx.span_id)) {
    return TraceContext{};
  }
  if (!ctx.valid()) return TraceContext{};
  return ctx;
}

TraceContext TraceContext::make_root() {
  TraceContext ctx;
  ctx.trace_hi = next_id();
  ctx.trace_lo = next_id();
  ctx.span_id = next_id();
  return ctx;
}

TraceContext TraceContext::child() const {
  if (!valid()) return TraceContext{};
  TraceContext ctx = *this;
  ctx.span_id = next_id();
  return ctx;
}

TraceContext current_context() noexcept { return t_context; }

ScopedContext::ScopedContext(const TraceContext& context) noexcept
    : saved_(t_context) {
  t_context = context;
}

ScopedContext::~ScopedContext() { t_context = saved_; }

std::string next_request_id() {
  std::string out = "r-";
  out.reserve(18);
  hex16(next_id(), out);
  return out;
}

}  // namespace pbw::obs
