#include "obs/telemetry/signals.hpp"

#include <csignal>
#include <cstdlib>
#include <unistd.h>

namespace pbw::obs {

namespace {

std::atomic<bool> g_requested{false};
std::atomic<int> g_signal{0};

extern "C" void shutdown_handler(int sig) {
  if (g_requested.exchange(true, std::memory_order_relaxed)) {
    // Second signal: the graceful path is stuck — leave now.  _exit is
    // async-signal-safe; the evidence snapshot was flushed when the
    // first signal was noticed.
    ::_exit(128 + sig);
  }
  g_signal.store(sig, std::memory_order_relaxed);
}

}  // namespace

void install_shutdown_signals() {
  struct sigaction action{};
  action.sa_handler = &shutdown_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: interrupt blocking syscalls
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

bool shutdown_requested() noexcept {
  return g_requested.load(std::memory_order_relaxed);
}

int shutdown_signal() noexcept {
  return g_signal.load(std::memory_order_relaxed);
}

const std::atomic<bool>* shutdown_flag() noexcept { return &g_requested; }

void reset_shutdown_for_tests() noexcept {
  g_requested.store(false, std::memory_order_relaxed);
  g_signal.store(0, std::memory_order_relaxed);
}

}  // namespace pbw::obs
