#include "obs/telemetry/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace pbw::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "OK";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer went away; nothing useful to do
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler handler) {
  if (running()) {
    throw std::logic_error("HttpServer::handle: server already started");
  }
  handlers_[std::move(path)] = std::move(handler);
}

void HttpServer::start(std::uint16_t port) {
  if (running()) throw std::logic_error("HttpServer::start: already running");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("HttpServer: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("HttpServer: bind 127.0.0.1:" +
                             std::to_string(port) + ": " + err);
  }
  if (::listen(fd, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("HttpServer: listen: " + err);
  }

  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  listen_fd_.store(fd, std::memory_order_release);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Unblock accept() so the thread notices the flag.
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (thread_.joinable()) thread_.join();
}

void HttpServer::serve_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) return;
      if (errno == EINTR) continue;
      return;  // listen socket is gone; stop() owns cleanup
    }
    timeval timeout{};
    timeout.tv_sec = 2;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    serve_connection(fd);
    ::close(fd);
  }
}

void HttpServer::serve_connection(int fd) {
  // Read until the header terminator (we never care about bodies) with a
  // small cap; a malformed or oversized request just gets dropped.
  std::string request;
  char buf[2048];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 16 * 1024) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;

  // "GET /path HTTP/1.1"
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return;
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const std::size_t q = path.find('?'); q != std::string::npos) {
    path.resize(q);
  }

  HttpResponse response;
  if (method != "GET") {
    response = HttpResponse{405, "text/plain; charset=utf-8",
                            "method not allowed\n"};
  } else if (const auto it = handlers_.find(path); it == handlers_.end()) {
    response = HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
  } else {
    try {
      response = it->second();
    } catch (const std::exception& e) {
      response = HttpResponse{500, "text/plain; charset=utf-8",
                              std::string("handler error: ") + e.what() + "\n"};
    }
  }

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  send_all(fd, out);
}

}  // namespace pbw::obs
