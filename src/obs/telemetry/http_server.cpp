#include "obs/telemetry/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace pbw::obs {

namespace {

const char* status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    default: return "OK";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer went away; nothing useful to do
    sent += static_cast<std::size_t>(n);
  }
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Case-insensitive header lookup in the raw header block; returns the
/// trimmed value or "" (headers end where `header_end` says).
std::string find_header(const std::string& request, std::size_t header_end,
                        const std::string& name) {
  const std::string haystack = lower(request.substr(0, header_end));
  const std::string needle = "\r\n" + lower(name) + ":";
  const std::size_t at = haystack.find(needle);
  if (at == std::string::npos) return "";
  std::size_t begin = at + needle.size();
  std::size_t end = haystack.find("\r\n", begin);
  if (end == std::string::npos) end = header_end;
  std::string value = request.substr(begin, end - begin);
  const auto first = value.find_first_not_of(" \t");
  if (first == std::string::npos) return "";
  const auto last = value.find_last_not_of(" \t");
  return value.substr(first, last - first + 1);
}

HttpResponse plain(int status, std::string body) {
  return HttpResponse{status, "text/plain; charset=utf-8", std::move(body)};
}

/// Metric label values come from the wire (the method) or from route
/// patterns; replace anything that could break Prometheus exposition or
/// explode cardinality with '_'.
std::string sanitize_label(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == '-' ||
                      c == '/' || c == '.' || c == '*';
    out.push_back(keep ? c : '_');
  }
  return out;
}

/// Decrements http.in_flight on every exit path, including a peer dying
/// mid-body.
struct InFlightGuard {
  Gauge& gauge;
  explicit InFlightGuard(Gauge& g) : gauge(g) { gauge.add(1.0); }
  ~InFlightGuard() { gauge.add(-1.0); }
};

}  // namespace

HttpServer::~HttpServer() { stop(); }

void HttpServer::handle(std::string path, Handler handler) {
  route("GET", std::move(path),
        [handler = std::move(handler)](const HttpRequest&) {
          return handler();
        });
}

void HttpServer::route(std::string method, std::string pattern,
                       RouteHandler handler) {
  if (running()) {
    throw std::logic_error("HttpServer::route: server already started");
  }
  Route r;
  r.method = std::move(method);
  r.label = pattern;
  if (pattern.size() >= 2 && pattern.compare(pattern.size() - 2, 2, "/*") == 0) {
    r.prefix = true;
    pattern.resize(pattern.size() - 1);  // keep the trailing '/'
  }
  r.pattern = std::move(pattern);
  r.handler = std::move(handler);
  routes_.push_back(std::move(r));
}

void HttpServer::set_access_log(const std::string& path) {
  if (running()) {
    throw std::logic_error("HttpServer::set_access_log: server already started");
  }
  access_log_.open(path, std::ios::app);
  if (!access_log_) {
    throw std::runtime_error("HttpServer: cannot open access log '" + path +
                             "'");
  }
  access_log_enabled_ = true;
}

void HttpServer::log_access(const HttpRequest& request, int status,
                            std::size_t response_bytes, double duration_ms) {
  if (!access_log_enabled_) return;
  util::Json row = util::Json::object();
  row["ts"] = std::chrono::duration<double>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count();
  row["id"] = request.id;
  row["method"] = request.method;
  row["path"] = request.path;
  row["status"] = status;
  row["bytes"] = response_bytes;
  row["duration_ms"] = duration_ms;
  row["trace"] = request.trace.trace_id_hex();
  std::lock_guard<std::mutex> lock(access_mutex_);
  access_log_ << row.dump() << "\n";
  access_log_.flush();
}

void HttpServer::start(std::uint16_t port, const std::string& bind) {
  if (running()) throw std::logic_error("HttpServer::start: already running");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, bind.c_str(), &addr.sin_addr) != 1) {
    throw std::runtime_error("HttpServer: bad bind address '" + bind + "'");
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error(std::string("HttpServer: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("HttpServer: bind " + bind + ":" +
                             std::to_string(port) + ": " + err);
  }
  if (::listen(fd, 64) < 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    throw std::runtime_error("HttpServer: listen: " + err);
  }

  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  bind_ = bind;
  listen_fd_.store(fd, std::memory_order_release);

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { serve_loop(); });
}

void HttpServer::stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // Unblock accept() so the thread notices the flag.
  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  if (thread_.joinable()) thread_.join();
}

void HttpServer::serve_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) return;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_acquire)) return;
      if (errno == EINTR) continue;
      return;  // listen socket is gone; stop() owns cleanup
    }
    timeval timeout{};
    timeout.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    serve_connection(fd);
    ::close(fd);
  }
}

const HttpServer::Route* HttpServer::match(const std::string& method,
                                           const std::string& path,
                                           bool& path_known) const {
  path_known = false;
  for (const auto& r : routes_) {
    const bool path_match =
        r.prefix ? path.compare(0, r.pattern.size(), r.pattern) == 0
                 : path == r.pattern;
    if (!path_match) continue;
    path_known = true;
    if (r.method == method) return &r;
  }
  return nullptr;
}

void HttpServer::serve_connection(int fd) {
  // Read until the header terminator, then the Content-Length body.  A
  // malformed or oversized header block just gets dropped.
  std::string request;
  char buf[4096];
  std::size_t header_end = std::string::npos;
  while ((header_end = request.find("\r\n\r\n")) == std::string::npos &&
         request.size() < 16 * 1024) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    request.append(buf, static_cast<std::size_t>(n));
  }
  if (header_end == std::string::npos) return;

  // "GET /path HTTP/1.1"
  const std::size_t line_end = request.find("\r\n");
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return;

  HttpRequest parsed;
  parsed.method = line.substr(0, sp1);
  parsed.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const std::size_t q = parsed.path.find('?'); q != std::string::npos) {
    parsed.query = parsed.path.substr(q + 1);
    parsed.path.resize(q);
  }

  // ---- middleware: request id + trace context + instrumentation ----------
  parsed.id = next_request_id();
  const std::string trace_header =
      find_header(request, header_end, kTraceHeader);
  if (!trace_header.empty() && trace_header.size() <= kMaxTraceHeaderBytes) {
    // A malformed header parses to an invalid context — the request is
    // served exactly as if the header were absent.
    parsed.trace = TraceContext::parse(trace_header);
  }
  parsed.trace_propagated = parsed.trace.valid();
  if (!parsed.trace_propagated) parsed.trace = TraceContext::make_root();

  auto& metrics = MetricsRegistry::global();
  InFlightGuard in_flight(metrics.gauge("http.in_flight"));
  const auto handle_start = std::chrono::steady_clock::now();

  // Route before reading any body: an unknown path or a known path with
  // an unregistered method is answered 404/405 immediately (the old
  // server silently closed the socket on anything it disliked).
  bool path_known = false;
  const Route* route = match(parsed.method, parsed.path, path_known);
  // Metric labels use the matched route pattern, never the raw path:
  // /results/<id> must not mint a fresh series per campaign.
  const std::string route_label =
      route != nullptr ? route->label : "unmatched";

  HttpResponse response;
  if (route == nullptr) {
    response = path_known ? plain(405, "method not allowed\n")
                          : plain(404, "not found\n");
  } else {
    const std::string length_header =
        find_header(request, header_end, "Content-Length");
    const bool expects_body =
        parsed.method == "POST" || parsed.method == "PUT";
    std::size_t content_length = 0;
    bool handled_early = false;
    if (!length_header.empty()) {
      char* end = nullptr;
      const unsigned long long v =
          std::strtoull(length_header.c_str(), &end, 10);
      if (end == length_header.c_str() || *end != '\0') {
        response = plain(400, "bad Content-Length\n");
        handled_early = true;
      } else {
        content_length = static_cast<std::size_t>(v);
      }
    } else if (expects_body) {
      // A body-carrying method must declare its length: answer 411
      // instead of timing out on a recv that will never complete.
      response = plain(411, "Content-Length required\n");
      handled_early = true;
    }
    if (!handled_early && content_length > kMaxBodyBytes) {
      response = plain(413, "payload too large\n");
      handled_early = true;
    }
    if (!handled_early) {
      parsed.body = request.substr(header_end + 4);
      while (parsed.body.size() < content_length) {
        const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
        if (n <= 0) return;  // peer died mid-body; nothing to answer
        parsed.body.append(buf, static_cast<std::size_t>(n));
      }
      parsed.body.resize(content_length);
      try {
        // The handler runs with the request's trace installed: every
        // PBW_SPAN it opens joins the caller's trace (or the fresh root).
        ScopedContext scope(parsed.trace);
        response = route->handler(parsed);
      } catch (const std::exception& e) {
        response = plain(500, std::string("handler error: ") + e.what() + "\n");
      }
    }
  }

  const double duration_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - handle_start)
          .count();
  metrics
      .counter("http.requests{method=\"" + sanitize_label(parsed.method) +
               "\",path=\"" + sanitize_label(route_label) + "\",status=\"" +
               std::to_string(response.status) + "\"}")
      .add(1);
  metrics.histogram("http.latency." + route_label, 0.0, 10.0, 64)
      .observe(duration_ms / 1000.0);
  // The access-log row goes out before the response bytes: a client that
  // saw an answer can rely on its row existing.
  log_access(parsed, response.status, response.body.size(), duration_ms);

  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    status_text(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "X-Pbw-Request-Id: " + parsed.id + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  send_all(fd, out);
}

}  // namespace pbw::obs
