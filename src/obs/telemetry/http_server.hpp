// Embedded HTTP endpoint: a tiny, dependency-free blocking server.
//
// `pbw-campaign --serve-port=N` exposes live telemetry over plain
// HTTP/1.1 — Prometheus text at /metrics, campaign progress JSON at
// /status — without pulling a networking library into the build.  One
// dedicated thread accepts loopback connections and answers one GET per
// connection (Connection: close); handlers are plain callables returning
// a body, so the server knows nothing about metrics or campaigns.
//
// Deliberately minimal: GET only, no keep-alive, no TLS, binds
// 127.0.0.1 only.  That is the right shape for scraping a local run;
// anything fancier belongs behind a real reverse proxy.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace pbw::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpServer {
 public:
  /// Handlers run on the server thread; exceptions become a 500.
  using Handler = std::function<HttpResponse()>;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers the handler for an exact path (query strings are stripped
  /// before lookup).  Must be called before start().
  void handle(std::string path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — see port()) and
  /// starts the accept thread.  Throws std::runtime_error on failure.
  void start(std::uint16_t port);

  /// Stops accepting, closes the socket, joins the thread.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// The bound port (the actual one when started with 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  void serve_loop();
  void serve_connection(int fd);

  std::map<std::string, Handler> handlers_;
  std::atomic<bool> running_{false};
  /// Atomic: stop() closes and clears the fd while the accept loop reads
  /// it (the loop re-checks running_ after every accept() return).
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace pbw::obs
