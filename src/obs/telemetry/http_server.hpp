// Embedded HTTP endpoint: a tiny, dependency-free blocking server.
//
// `pbw-campaign --serve-port=N` exposes live telemetry over plain
// HTTP/1.1 — Prometheus text at /metrics, campaign progress JSON at
// /status — and the fleet coordinator (src/fleet) runs its whole control
// plane (`POST /submit`, `POST /lease`, `POST /results/<id>`) through the
// same server, without pulling a networking library into the build.  One
// dedicated thread accepts connections and answers one request per
// connection (Connection: close); handlers are plain callables, so the
// server knows nothing about metrics, campaigns, or fleets.
//
// Deliberately minimal: GET/POST, no keep-alive, no TLS.  Binds
// 127.0.0.1 by default; pass an explicit bind address (e.g. "0.0.0.0")
// to serve a multi-machine fleet — anything fancier (auth, TLS) belongs
// behind a real reverse proxy.
#pragma once

#include <atomic>
#include <cstdint>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry/context.hpp"

namespace pbw::obs {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// One parsed request as a handler sees it: the method, the path with its
/// query string split off, and the body (empty unless Content-Length said
/// otherwise).
struct HttpRequest {
  std::string method;  ///< upper-case, e.g. "GET", "POST"
  std::string path;    ///< decoded-as-is, query stripped
  std::string query;   ///< text after '?', or empty
  std::string body;
  /// Process-unique request id ("r-<16 hex>"), assigned by the server.
  std::string id;
  /// The effective trace context: the X-Pbw-Trace header when the caller
  /// sent a valid one, else a fresh root.  Installed as the thread's
  /// current context for the handler's duration, so every PBW_SPAN the
  /// handler opens is stamped with this trace.
  TraceContext trace;
  /// True when `trace` came over the wire (vs. minted locally).
  bool trace_propagated = false;
};

class HttpServer {
 public:
  /// Legacy GET-only handler; exceptions become a 500.
  using Handler = std::function<HttpResponse()>;
  /// Full handler: sees the request (method, path, body).
  using RouteHandler = std::function<HttpResponse(const HttpRequest&)>;

  /// Bodies above this are answered with 413 and dropped.
  static constexpr std::size_t kMaxBodyBytes = 64u << 20;

  HttpServer() = default;
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers a GET handler for an exact path (query strings are
  /// stripped before lookup).  Must be called before start().
  void handle(std::string path, Handler handler);

  /// Registers a handler for `method` + `pattern`.  A pattern ending in
  /// "/*" matches every path under that prefix (the handler sees the full
  /// path); otherwise the match is exact.  A path that matches some
  /// pattern but no registered method answers 405.  Must be called before
  /// start().
  void route(std::string method, std::string pattern, RouteHandler handler);

  /// Opens `path` (append) as a JSONL access log: one object per served
  /// request — {"ts","id","method","path","status","bytes","duration_ms",
  /// "trace"} — written before the response bytes go out, so a client
  /// that saw an answer can rely on its row existing.  Must be called
  /// before start(); throws std::runtime_error when the file won't open.
  void set_access_log(const std::string& path);

  /// Binds `bind`:`port` (0 picks an ephemeral port — see port()) and
  /// starts the accept thread.  `bind` must be an IPv4 dotted-quad;
  /// the default keeps the historical loopback-only behaviour.  Throws
  /// std::runtime_error on failure.
  ///
  /// Every served request is also measured: counters
  /// `http.requests{method,path,status}` (path is the matched route
  /// pattern, never the raw path, so /results/<id> cannot explode the
  /// series), per-route latency histograms `http.latency.<pattern>`, and
  /// an `http.in_flight` gauge, all in MetricsRegistry::global().
  void start(std::uint16_t port, const std::string& bind = "127.0.0.1");

  /// Stops accepting, closes the socket, joins the thread.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }

  /// The bound port (the actual one when started with 0).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// The address start() bound ("" before start()).
  [[nodiscard]] const std::string& bind_address() const noexcept {
    return bind_;
  }

 private:
  struct Route {
    std::string method;
    std::string pattern;  ///< exact path, or prefix when `prefix` is set
    std::string label;    ///< the pattern as registered (e.g. "/results/*")
    bool prefix = false;
    RouteHandler handler;
  };

  void serve_loop();
  void serve_connection(int fd);
  [[nodiscard]] const Route* match(const std::string& method,
                                   const std::string& path,
                                   bool& path_known) const;
  void log_access(const HttpRequest& request, int status,
                  std::size_t response_bytes, double duration_ms);

  std::vector<Route> routes_;
  std::ofstream access_log_;
  std::mutex access_mutex_;
  bool access_log_enabled_ = false;
  std::atomic<bool> running_{false};
  /// Atomic: stop() closes and clears the fd while the accept loop reads
  /// it (the loop re-checks running_ after every accept() return).
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::string bind_;
  std::thread thread_;
};

}  // namespace pbw::obs
