// Span-based wall-clock profiler: the PBW_SPAN("name") RAII API.
//
// A span measures the host wall-clock time of a scope and feeds two
// consumers at once: the metrics registry (counters `span.<name>.count`
// and `span.<name>.total_ns`, so /metrics and --metrics expose phase
// breakdowns) and a bounded in-process event buffer that the Chrome
// trace exporter turns into flamegraph slices (obs/export.hpp).  Spans
// nest: each records its depth and a dense per-thread id, so slices on
// one thread stack correctly in Perfetto.
//
// This is the unification of the ad-hoc timers that used to live in
// engine/machine.cpp (step/merge ns), campaign/executor.cpp (per-job
// timing) and the replay layer (recost, tape-cache ops): all of them now
// open a Span, and a profiled campaign is one coherent host-time trace.
//
// Cost: a disabled span (global toggle off, or the site's own gate
// false, e.g. engine phases without MachineOptions::profile) is two
// branches and no clock read.  An enabled span reads the steady clock
// twice and takes the registry mutex once on close — fine for phases,
// jobs and cache operations; do not put one inside a per-element loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/json.hpp"

namespace pbw::obs {

/// One closed span occurrence, in host time.  `start_ns` is relative to
/// the process span epoch (first use), `tid` is a dense id assigned per
/// host thread on first span, `depth` is the nesting level at entry.
/// `trace_hi/trace_lo/parent_span` copy the thread's TraceContext at span
/// entry (obs/telemetry/context.hpp) — zero when no context was installed
/// — so spans from many processes can be re-joined under one trace id.
struct SpanEvent {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t parent_span = 0;
};

/// Process-wide span sink: per-name aggregates plus a bounded event
/// buffer for trace export.  Thread-safe; every accessor snapshots.
class SpanRegistry {
 public:
  struct Aggregate {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0;
    std::uint64_t max_ns = 0;
  };

  /// Globally enables/disables span recording (default: enabled).  A
  /// span that observed the toggle off at entry stays off for its whole
  /// scope; flipping the toggle never tears a half-open span.
  void set_enabled(bool on) noexcept;
  [[nodiscard]] bool enabled() const noexcept;

  /// Records one closed span; called by Span::stop().  Mirrors the
  /// occurrence into MetricsRegistry::global() as `span.<name>.count`
  /// and `span.<name>.total_ns`.  Events beyond the buffer cap are
  /// dropped (aggregates still update), tallied in dropped(), and
  /// counted in the `span.events_dropped` metric so truncation is
  /// visible on /metrics and /status instead of silently shortening
  /// flamegraphs.  When the calling thread has a ScopedSpanCollector
  /// installed, the event is redirected to it (aggregates and metrics
  /// still update here).
  void record(SpanEvent event);

  [[nodiscard]] std::map<std::string, Aggregate> aggregates() const;
  [[nodiscard]] std::vector<SpanEvent> events() const;
  [[nodiscard]] std::uint64_t dropped() const;

  /// Adds to the dropped tally without recording anything (collector
  /// overflow uses this so every lost event lands in one ledger).
  void note_dropped(std::uint64_t n);

  /// {"<name>": {"count": N, "total_ns": N, "min_ns": N, "max_ns": N,
  /// "mean_ns": N}, ...}, names sorted.
  [[nodiscard]] util::Json to_json() const;

  /// Drops aggregates, events and the dropped tally (tests; a fresh
  /// campaign invocation).  Thread ids and the epoch are preserved.
  void reset();

  [[nodiscard]] static SpanRegistry& global();

  /// Steady nanoseconds since the process span epoch.
  [[nodiscard]] static std::uint64_t now_ns();

  /// Event buffer cap: beyond this, record() drops events.
  static constexpr std::size_t kMaxEvents = 1u << 16;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Aggregate> aggregates_;
  std::vector<SpanEvent> events_;
  std::uint64_t dropped_ = 0;
  std::atomic<bool> enabled_{true};
};

/// RAII span.  Use via PBW_SPAN(name); construct directly only when the
/// site needs its own gate (engine phases) or the measured nanoseconds
/// (stop() returns them).
class Span {
 public:
  /// `name` must outlive the span (string literals in practice).
  explicit Span(const char* name) : Span(name, true) {}

  /// `enabled` is the call site's own gate, ANDed with the registry
  /// toggle; a span disabled either way never reads the clock.
  Span(const char* name, bool enabled);

  ~Span() { stop(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Closes the span now (idempotent) and returns its duration in
  /// nanoseconds — 0 when the span was disabled.
  std::uint64_t stop();

 private:
  const char* name_;
  std::uint64_t start_ns_ = 0;
  std::uint32_t tid_ = 0;
  std::uint32_t depth_ = 0;
  bool active_ = false;
};

/// Redirects the calling thread's span events into a private buffer for
/// the scope (collectors nest; the innermost wins).  Aggregates and
/// metrics still flow to the global registry — only the event stream is
/// diverted, so a fleet worker can ship exactly its shard's spans to the
/// coordinator without also depositing them in the local event buffer
/// (which, for an in-process worker in tests, would double-count them in
/// the coordinator's merged trace).
class ScopedSpanCollector {
 public:
  ScopedSpanCollector();
  ~ScopedSpanCollector();
  ScopedSpanCollector(const ScopedSpanCollector&) = delete;
  ScopedSpanCollector& operator=(const ScopedSpanCollector&) = delete;

  /// The events collected so far, in record order (moves them out).
  [[nodiscard]] std::vector<SpanEvent> take();

  /// Called by SpanRegistry::record on the owning thread.
  void collect(SpanEvent event);

 private:
  std::vector<SpanEvent> events_;
  ScopedSpanCollector* previous_ = nullptr;
};

}  // namespace pbw::obs

#define PBW_SPAN_CONCAT2(a, b) a##b
#define PBW_SPAN_CONCAT(a, b) PBW_SPAN_CONCAT2(a, b)
/// Profiles the enclosing scope as one span named `name`.
#define PBW_SPAN(name) \
  ::pbw::obs::Span PBW_SPAN_CONCAT(pbw_span_at_line_, __LINE__)(name)
