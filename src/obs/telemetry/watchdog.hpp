// Stall watchdog: flags long-running tasks on a heartbeat.
//
// The campaign executor publishes, per worker, which job it is running
// and for how long; the watchdog polls that board on its own thread and
// fires a callback the first time a task crosses the stall threshold
// (and once more if the same task recovers and stalls again — tracking
// is per task name per episode, so a 10-minute job does not spam stderr
// every tick).  The poll and callback are injected, so the detection
// logic is pure and testable without threads: tests drive check()
// directly with a fake board.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace pbw::obs {

/// One in-flight task as the watchdog sees it.
struct WatchdogTask {
  std::string name;     ///< task identity (campaign job base key)
  double seconds = 0.0; ///< how long it has been running
};

class Watchdog {
 public:
  using Poll = std::function<std::vector<WatchdogTask>()>;
  using OnStall = std::function<void(const WatchdogTask&)>;

  /// Tasks running longer than `stall_seconds` are stalled.  `poll`
  /// snapshots the in-flight tasks; `on_stall` fires once per stall
  /// episode, from the watchdog thread (or the check() caller).
  Watchdog(double stall_seconds, Poll poll, OnStall on_stall);
  ~Watchdog();
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Starts the heartbeat thread; polls every `interval_seconds`.
  void start(double interval_seconds = 1.0);
  void stop();

  /// One heartbeat: polls the board, fires on_stall for tasks newly over
  /// the threshold, forgets tasks that left the board, and returns every
  /// currently-stalled task.  Called by the thread and by tests.
  std::vector<WatchdogTask> check();

  [[nodiscard]] double stall_seconds() const noexcept { return stall_seconds_; }

  /// Stall episodes detected so far (monotone).
  [[nodiscard]] std::uint64_t stalls_detected() const noexcept {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  const double stall_seconds_;
  Poll poll_;
  OnStall on_stall_;
  std::set<std::string> flagged_;  ///< tasks already reported this episode
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<bool> running_{false};
  std::thread thread_;
};

}  // namespace pbw::obs
