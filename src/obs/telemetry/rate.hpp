// Sliding-window rate estimation for progress / ETA reporting.
//
// The campaign's /status endpoint reports jobs-per-second and a finish
// estimate; both come from here.  The estimator keeps (time, cumulative
// count) samples inside a trailing window and fits the straight line
// through the window's endpoints — robust to bursty completion (group
// representatives are slow, recosted members fast) because old samples
// age out instead of dragging the average.
//
// Timestamps are caller-supplied seconds (any monotone origin), which
// keeps the estimator deterministic and directly testable: the ETA
// monotonicity contract — constant observed rate and shrinking remaining
// work never push the estimate up — is asserted in tests/test_telemetry.
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

namespace pbw::obs {

class RateEstimator {
 public:
  /// `window_seconds` bounds sample age; `max_samples` bounds memory.
  /// The two newest samples always survive pruning, so a window shorter
  /// than the sampling interval degrades to last-interval rate instead
  /// of going blind.
  explicit RateEstimator(double window_seconds = 30.0,
                         std::size_t max_samples = 256);

  /// Observes the cumulative completion count at time `t_seconds`.
  /// Samples must arrive in non-decreasing time and count order.
  void observe(double t_seconds, std::uint64_t completed);

  /// Completions per second over the current window; 0 before two
  /// distinct-time samples exist.
  [[nodiscard]] double rate() const;

  /// Seconds until `remaining` further completions at the current rate,
  /// or -1 when the rate is unknown (never negative otherwise).
  [[nodiscard]] double eta_seconds(std::uint64_t remaining) const;

  [[nodiscard]] std::size_t sample_count() const { return samples_.size(); }

 private:
  double window_seconds_;
  std::size_t max_samples_;
  std::deque<std::pair<double, std::uint64_t>> samples_;
};

}  // namespace pbw::obs
