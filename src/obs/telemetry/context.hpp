// Distributed trace context: W3C-traceparent-style ids over HTTP.
//
// A fleet campaign crosses processes — submit client, coordinator,
// N workers — and PBW_SPAN events used to die at each HTTP boundary.
// TraceContext is the thread of identity that survives the hop: a
// 128-bit trace id naming one logical operation end-to-end plus a
// 64-bit span id naming the caller, serialized in a deterministic hex
// wire form modeled on W3C traceparent:
//
//     00-<32 hex trace id>-<16 hex span id>-01
//
// carried in the `X-Pbw-Trace` request header (kTraceHeader).
// fleet::http_request injects the current context automatically;
// obs::HttpServer parses it into HttpRequest::trace and installs it for
// the handler, so every PBW_SPAN closed underneath is stamped with
// (trace id, parent span id) and a later merge can reassemble one
// flamegraph from many processes.
//
// Parsing is deliberately tolerant: a truncated, malformed, or
// oversized header yields an invalid (all-zero) context and the request
// is served as if the header were absent — tracing must never turn a
// good request into an error.
//
// Trace ids never enter campaign JSONL rows or manifests: results stay
// bit-identical with tracing on or off.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace pbw::obs {

/// Request header carrying the wire form between fleet processes.
inline constexpr const char* kTraceHeader = "X-Pbw-Trace";

/// Headers longer than this are ignored wholesale (defense against a
/// confused client padding the value; the wire form is exactly 55 bytes).
inline constexpr std::size_t kMaxTraceHeaderBytes = 128;

struct TraceContext {
  std::uint64_t trace_hi = 0;  ///< trace id, high 64 bits
  std::uint64_t trace_lo = 0;  ///< trace id, low 64 bits
  std::uint64_t span_id = 0;   ///< the active span (parent of new spans)

  /// An all-zero trace id or span id is "no context" (mirrors W3C, where
  /// zero ids are explicitly invalid).
  [[nodiscard]] bool valid() const noexcept {
    return (trace_hi != 0 || trace_lo != 0) && span_id != 0;
  }

  [[nodiscard]] bool same_trace(const TraceContext& other) const noexcept {
    return trace_hi == other.trace_hi && trace_lo == other.trace_lo;
  }

  /// 32 lowercase hex digits of the trace id.
  [[nodiscard]] std::string trace_id_hex() const;

  /// "00-<32 hex trace>-<16 hex span>-01"; "" for an invalid context.
  [[nodiscard]] std::string format() const;

  /// Strict inverse of format(): exact length, exact dashes, lowercase or
  /// uppercase hex accepted.  Returns an invalid context on any deviation
  /// (truncated, bad hex, oversized, zero ids) — never throws.
  [[nodiscard]] static TraceContext parse(std::string_view wire);

  /// A fresh root: new random-ish trace id and span id (clock, pid and a
  /// process counter mixed through splitmix64 — unique enough to never
  /// collide within a fleet, with no global coordination).
  [[nodiscard]] static TraceContext make_root();

  /// Same trace, fresh span id: the context a caller passes downstream so
  /// the callee's spans parent onto this hop rather than onto ours.
  [[nodiscard]] TraceContext child() const;
};

/// The calling thread's active context (invalid when none installed).
[[nodiscard]] TraceContext current_context() noexcept;

/// RAII installer: makes `context` the thread's current context for the
/// scope, restoring the previous one (contexts nest like spans do).
class ScopedContext {
 public:
  explicit ScopedContext(const TraceContext& context) noexcept;
  ~ScopedContext();
  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  TraceContext saved_;
};

/// Process-unique request id ("r-" + 16 hex): the HTTP middleware stamps
/// one on every request for access-log and response correlation.
[[nodiscard]] std::string next_request_id();

}  // namespace pbw::obs
