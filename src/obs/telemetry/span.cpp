#include "obs/telemetry/span.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/telemetry/context.hpp"

namespace pbw::obs {

namespace {

/// Dense per-thread span ids, assigned on a thread's first span so trace
/// rows number compactly regardless of std::thread::id values.
std::atomic<std::uint32_t> g_next_tid{0};
thread_local std::uint32_t t_span_tid = UINT32_MAX;
thread_local std::uint32_t t_span_depth = 0;
thread_local ScopedSpanCollector* t_collector = nullptr;

std::uint32_t this_thread_tid() {
  if (t_span_tid == UINT32_MAX) {
    t_span_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return t_span_tid;
}

}  // namespace

void SpanRegistry::set_enabled(bool on) noexcept {
  enabled_.store(on, std::memory_order_relaxed);
}

bool SpanRegistry::enabled() const noexcept {
  return enabled_.load(std::memory_order_relaxed);
}

void SpanRegistry::record(SpanEvent event) {
  const std::uint64_t dur_ns = event.dur_ns;
  const std::string base = "span." + event.name;
  bool overflowed = false;
  {
    std::lock_guard lock(mutex_);
    auto [it, inserted] = aggregates_.try_emplace(event.name);
    Aggregate& agg = it->second;
    if (inserted) {
      agg.min_ns = agg.max_ns = dur_ns;
    } else {
      agg.min_ns = std::min(agg.min_ns, dur_ns);
      agg.max_ns = std::max(agg.max_ns, dur_ns);
    }
    ++agg.count;
    agg.total_ns += dur_ns;
    if (t_collector == nullptr) {
      if (events_.size() < kMaxEvents) {
        events_.push_back(std::move(event));
      } else {
        ++dropped_;
        overflowed = true;
      }
    }
  }
  if (t_collector != nullptr) t_collector->collect(std::move(event));
  auto& metrics = MetricsRegistry::global();
  metrics.counter(base + ".count").add(1);
  metrics.counter(base + ".total_ns").add(dur_ns);
  if (overflowed) metrics.counter("span.events_dropped").add(1);
}

std::map<std::string, SpanRegistry::Aggregate> SpanRegistry::aggregates()
    const {
  std::lock_guard lock(mutex_);
  return aggregates_;
}

std::vector<SpanEvent> SpanRegistry::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::uint64_t SpanRegistry::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void SpanRegistry::note_dropped(std::uint64_t n) {
  {
    std::lock_guard lock(mutex_);
    dropped_ += n;
  }
  MetricsRegistry::global().counter("span.events_dropped").add(n);
}

util::Json SpanRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  util::Json j = util::Json::object();
  for (const auto& [name, agg] : aggregates_) {
    util::Json entry = util::Json::object();
    entry["count"] = agg.count;
    entry["total_ns"] = agg.total_ns;
    entry["min_ns"] = agg.min_ns;
    entry["max_ns"] = agg.max_ns;
    entry["mean_ns"] =
        agg.count == 0
            ? 0.0
            : static_cast<double>(agg.total_ns) / static_cast<double>(agg.count);
    j[name] = std::move(entry);
  }
  return j;
}

void SpanRegistry::reset() {
  std::lock_guard lock(mutex_);
  aggregates_.clear();
  events_.clear();
  events_.shrink_to_fit();
  dropped_ = 0;
}

SpanRegistry& SpanRegistry::global() {
  static SpanRegistry registry;
  return registry;
}

std::uint64_t SpanRegistry::now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

Span::Span(const char* name, bool enabled)
    : name_(name), active_(enabled && SpanRegistry::global().enabled()) {
  if (!active_) return;
  tid_ = this_thread_tid();
  depth_ = t_span_depth++;
  start_ns_ = SpanRegistry::now_ns();
}

std::uint64_t Span::stop() {
  if (!active_) return 0;
  active_ = false;
  const std::uint64_t dur = SpanRegistry::now_ns() - start_ns_;
  --t_span_depth;
  SpanEvent event;
  event.name = name_;
  event.start_ns = start_ns_;
  event.dur_ns = dur;
  event.tid = tid_;
  event.depth = depth_;
  // The context is read at close, not entry: it is thread-local and spans
  // are strictly scoped, so the installed context cannot change across a
  // span's lifetime without nesting a ScopedContext inside it — in which
  // case the entry value is the right one and is what's restored by now.
  const TraceContext context = current_context();
  event.trace_hi = context.trace_hi;
  event.trace_lo = context.trace_lo;
  event.parent_span = context.span_id;
  SpanRegistry::global().record(std::move(event));
  return dur;
}

ScopedSpanCollector::ScopedSpanCollector() : previous_(t_collector) {
  t_collector = this;
}

ScopedSpanCollector::~ScopedSpanCollector() { t_collector = previous_; }

std::vector<SpanEvent> ScopedSpanCollector::take() {
  return std::move(events_);
}

void ScopedSpanCollector::collect(SpanEvent event) {
  if (events_.size() >= SpanRegistry::kMaxEvents) {
    SpanRegistry::global().note_dropped(1);
    return;
  }
  events_.push_back(std::move(event));
}

}  // namespace pbw::obs
