// Cost-attribution tracing: the sink interface the engine emits into.
//
// Every model of the paper charges a superstep max(...) over a handful of
// terms — w, g*h, h, c_m, kappa, L (Section 2) — and every separation in
// Table 1 comes down to which term dominates.  A TraceSink receives, for
// each superstep of each traced run, the value of every component of that
// max, which one dominated, and the engine phase wall-clock times, so the
// simulator's verdicts can cite the mechanism instead of only the total.
//
// The engine resolves its sink per run: an explicit MachineOptions sink
// wins, then the thread-local sink (ScopedSink — one per campaign job),
// then the process sink (installed by the --trace flag).  With no sink
// installed the cost is a single null-pointer check per superstep.
//
// Exporters for the recorded runs (JSON Lines, Chrome trace_event) live in
// obs/export.hpp; the metrics registry in obs/metrics.hpp.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace pbw::obs {

/// Identity of one traced Machine::run().
struct RunInfo {
  std::string model;      ///< CostModel::name()
  std::uint32_t p = 0;    ///< processors
  std::uint64_t seed = 0; ///< MachineOptions::seed
};

struct RunSummary {
  std::uint64_t supersteps = 0;
  double total_time = 0.0;
};

/// One superstep's cost attribution.  Field names are the normative
/// component taxonomy (docs/MODELS.md) and are emitted verbatim by the
/// JSONL exporter; a component a model does not charge is 0.
struct SuperstepTraceRecord {
  std::uint64_t superstep = 0;
  double cost = 0.0;   ///< the model's superstep charge (max of the terms)
  double w = 0.0;      ///< local work term
  double gh = 0.0;     ///< g*h, locally-limited models
  double h = 0.0;      ///< plain h, globally-limited models
  double cm = 0.0;     ///< aggregate charge c_m (n/m for self-scheduling)
  double kappa = 0.0;  ///< contention, QSM models
  double L = 0.0;      ///< latency / periodicity floor
  const char* dominant = "w";  ///< field name of the winning term
  std::uint64_t step_ns = 0;   ///< step-phase wall clock (profile mode, else 0)
  std::uint64_t merge_ns = 0;  ///< merge-phase wall clock (profile mode, else 0)
};

/// Receives trace events from the engine.  Implementations must be
/// thread-safe: the campaign executor runs one Machine per worker against
/// a shared sink unless per-job sinks are scoped in.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Called once per Machine::run(); the returned id tags every subsequent
  /// record of that run (ids are sink-scoped, not global).
  virtual std::uint64_t begin_run(const RunInfo& info) = 0;
  virtual void record(std::uint64_t run, const SuperstepTraceRecord& rec) = 0;
  virtual void end_run(std::uint64_t run, const RunSummary& summary) = 0;
};

/// One completed (or in-progress) traced run inside a RecordingSink.
struct TraceRun {
  std::uint64_t id = 0;
  RunInfo info;
  std::vector<SuperstepTraceRecord> records;
  RunSummary summary;
  bool finished = false;
};

/// In-memory sink: groups records by run, in emission order.  Run ids are
/// assigned sequentially per sink, so a single-threaded process produces
/// identical numbering on every execution.
class RecordingSink final : public TraceSink {
 public:
  std::uint64_t begin_run(const RunInfo& info) override;
  void record(std::uint64_t run, const SuperstepTraceRecord& rec) override;
  void end_run(std::uint64_t run, const RunSummary& summary) override;

  /// Snapshot of all runs recorded so far.
  [[nodiscard]] std::vector<TraceRun> runs() const;
  [[nodiscard]] std::size_t run_count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<TraceRun> runs_;
};

/// Process-wide default sink (nullptr = tracing off).  The --trace flag
/// installs a file-backed one via install_file_trace().
void set_process_sink(TraceSink* sink);
[[nodiscard]] TraceSink* process_sink();

/// The sink the engine resolves when MachineOptions carries none: the
/// thread-local override if a ScopedSink is live on this thread, else the
/// process sink.
[[nodiscard]] TraceSink* current_sink();

/// Scopes a thread-local sink override (pass nullptr to suppress tracing
/// on this thread).  Used by the campaign executor to give every job its
/// own stream even though jobs share worker threads.
class ScopedSink {
 public:
  explicit ScopedSink(TraceSink* sink);
  ~ScopedSink();
  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  TraceSink* previous_;
  bool previous_active_;
};

/// Installs a process-wide recording sink whose contents are written to
/// `path` when the process exits (or on an explicit flush_file_trace()).
/// `format` is "jsonl" (default), "chrome", or "both" (JSONL at `path`
/// plus Chrome trace at `path + ".chrome.json"`).  util::parse_model_flags
/// routes --trace=FILE / --trace-format=FMT here, which is how every bench
/// binary gets tracing without bespoke wiring.
void install_file_trace(std::string path, std::string format = "jsonl");
[[nodiscard]] bool file_trace_installed();

/// Writes the installed file trace now (idempotent; also runs at exit).
void flush_file_trace();

}  // namespace pbw::obs
