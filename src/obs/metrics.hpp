// Lightweight metrics registry: named counters, gauges, and histograms.
//
// The observability counterpart to the trace sink: traces answer "which
// cost term bound superstep s of run r", metrics answer "how much work did
// this process do overall".  The campaign executor feeds it (jobs
// executed/skipped/failed, per-job wall-clock), and any subsystem may
// register its own series; `pbw-campaign --metrics` dumps the registry as
// JSON after a run.  Counters and gauges are lock-free; histogram
// observation takes a per-histogram mutex (util::Histogram is not
// thread-safe).  Lookup by name takes the registry mutex — hold the
// returned reference, don't re-look-up in hot loops.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "util/histogram.hpp"
#include "util/json.hpp"

namespace pbw::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// util::Histogram plus the mutex and moment sums it lacks.
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t buckets)
      : histogram_(lo, hi, buckets) {}

  void observe(double value);
  [[nodiscard]] util::Json to_json() const;

  /// Percentile estimate by linear interpolation inside the bucket that
  /// holds the target rank, clamped to the observed [min, max] (the
  /// bucket grid clamps out-of-range values, so edge buckets would
  /// otherwise overstate the spread).  0 before any observation.
  [[nodiscard]] double quantile(double q) const;

 private:
  [[nodiscard]] double quantile_locked(double q) const;

  mutable std::mutex mutex_;
  util::Histogram histogram_;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t count_ = 0;
};

class MetricsRegistry {
 public:
  /// Find-or-create; the returned reference stays valid for the registry's
  /// lifetime.  A histogram's (lo, hi, buckets) is fixed by the first call.
  [[nodiscard]] Counter& counter(const std::string& name);
  [[nodiscard]] Gauge& gauge(const std::string& name);
  [[nodiscard]] HistogramMetric& histogram(const std::string& name, double lo,
                                           double hi, std::size_t buckets);

  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}, names
  /// sorted, so dumps diff cleanly across runs.
  [[nodiscard]] util::Json to_json() const;

  /// Drops every series (tests; a fresh campaign invocation).
  void reset();

  /// The process-wide registry.
  [[nodiscard]] static MetricsRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

}  // namespace pbw::obs
