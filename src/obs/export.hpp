// Trace exporters: JSON Lines and Chrome trace_event.
//
// JSONL is the machine-readable interchange format (one object per line,
// `type` in {run, superstep, run_end}); the Chrome format is the same data
// shaped for about://tracing and https://ui.perfetto.dev — one "process"
// per run, one duration slice per superstep on the simulated-time axis,
// plus counter tracks for the cost components.  Both emit through
// util::Json, so output is deterministic byte-for-byte given equal inputs.
// Schema details and samples: docs/OBSERVABILITY.md.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/telemetry/span.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace pbw::obs {

/// The three JSONL record shapes, exposed for tests and bespoke writers.
[[nodiscard]] util::Json run_header_json(const TraceRun& run);
[[nodiscard]] util::Json superstep_json(const TraceRun& run,
                                        const SuperstepTraceRecord& rec);
[[nodiscard]] util::Json run_end_json(const TraceRun& run);

/// One line per record: a `run` header, its `superstep` records in order,
/// then a `run_end` summary, for every run in order.
void write_jsonl(const std::vector<TraceRun>& runs, std::ostream& out);

/// Chrome trace_event JSON (the object form, `{"traceEvents": [...]}`).
/// Timestamps are cumulative simulated model time interpreted as
/// microseconds; each superstep is a complete ("X") slice named after its
/// dominant term, with every component in `args`.
void write_chrome_trace(const std::vector<TraceRun>& runs, std::ostream& out);

/// Same, plus host wall-clock span slices (PBW_SPAN occurrences) as one
/// extra "host" process: tids are the span profiler's dense thread ids,
/// timestamps span start offsets in microseconds, so nested engine
/// step/merge, executor job and replay recost spans stack into a
/// flamegraph next to the model-time rows.  The --trace flag's chrome
/// output passes SpanRegistry::global().events() here.
void write_chrome_trace(const std::vector<TraceRun>& runs,
                        const std::vector<SpanEvent>& spans, std::ostream& out);

/// Structural validation of a JSONL trace stream: every line parses, types
/// and required fields are present, dominant names a component field,
/// superstep indices increase per run, and every run header is eventually
/// closed by a run_end.  `ok` is false on the first violation, with a
/// line-numbered message in `error`.
struct TraceValidation {
  bool ok = true;
  std::string error;
  std::size_t runs = 0;       ///< run headers seen
  std::size_t supersteps = 0; ///< superstep records seen
};
[[nodiscard]] TraceValidation validate_trace_jsonl(std::istream& in);

/// Structural validation of a Chrome trace_event document (the object
/// form both write_chrome_trace and the fleet's GET /trace/<id> emit):
/// the document parses, `traceEvents` is an array, every event has a
/// string `ph` and `name` plus numeric `pid`/`tid`, and every complete
/// ("X") slice carries numeric `ts` and non-negative `dur`.  Counts
/// slices and metadata records so callers can assert non-emptiness.
struct ChromeTraceValidation {
  bool ok = true;
  std::string error;
  std::size_t slices = 0;  ///< "X" duration events
  std::size_t metas = 0;   ///< "M" metadata events
};
[[nodiscard]] ChromeTraceValidation validate_chrome_trace(std::istream& in);

}  // namespace pbw::obs
