#include "obs/metrics.hpp"

#include <algorithm>

namespace pbw::obs {

void HistogramMetric::observe(double value) {
  std::lock_guard lock(mutex_);
  histogram_.add(value);
  sum_ += value;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
}

double HistogramMetric::quantile(double q) const {
  std::lock_guard lock(mutex_);
  return quantile_locked(q);
}

double HistogramMetric::quantile_locked(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double target = q * static_cast<double>(count_);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < histogram_.bucket_count(); ++i) {
    const double in_bucket = histogram_.count(i);
    if (cumulative + in_bucket >= target && in_bucket > 0.0) {
      const double lo = histogram_.bucket_lo(i);
      const double hi = histogram_.bucket_hi(i);
      const double fraction = (target - cumulative) / in_bucket;
      const double estimate = lo + (hi - lo) * fraction;
      return std::clamp(estimate, min_, max_);
    }
    cumulative += in_bucket;
  }
  return max_;
}

util::Json HistogramMetric::to_json() const {
  std::lock_guard lock(mutex_);
  util::Json j = util::Json::object();
  j["count"] = count_;
  j["sum"] = sum_;
  j["mean"] = count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  j["min"] = min_;
  j["max"] = max_;
  j["p50"] = quantile_locked(0.5);
  j["p95"] = quantile_locked(0.95);
  j["p99"] = quantile_locked(0.99);
  util::Json buckets = util::Json::array();
  for (std::size_t i = 0; i < histogram_.bucket_count(); ++i) {
    util::Json bucket = util::Json::object();
    bucket["lo"] = histogram_.bucket_lo(i);
    bucket["hi"] = histogram_.bucket_hi(i);
    bucket["count"] = histogram_.count(i);
    buckets.push_back(std::move(bucket));
  }
  j["buckets"] = std::move(buckets);
  return j;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t buckets) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<HistogramMetric>(lo, hi, buckets);
  return *slot;
}

util::Json MetricsRegistry::to_json() const {
  std::lock_guard lock(mutex_);
  util::Json j = util::Json::object();
  util::Json counters = util::Json::object();
  for (const auto& [name, counter] : counters_) {
    counters[name] = counter->value();
  }
  j["counters"] = std::move(counters);
  util::Json gauges = util::Json::object();
  for (const auto& [name, gauge] : gauges_) {
    gauges[name] = gauge->value();
  }
  j["gauges"] = std::move(gauges);
  util::Json histograms = util::Json::object();
  for (const auto& [name, histogram] : histograms_) {
    histograms[name] = histogram->to_json();
  }
  j["histograms"] = std::move(histograms);
  return j;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace pbw::obs
