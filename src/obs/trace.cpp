#include "obs/trace.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/export.hpp"
#include "obs/telemetry/span.hpp"
#include "util/cli.hpp"

namespace pbw::obs {

std::uint64_t RecordingSink::begin_run(const RunInfo& info) {
  std::lock_guard lock(mutex_);
  TraceRun run;
  run.id = runs_.size();
  run.info = info;
  runs_.push_back(std::move(run));
  return runs_.back().id;
}

void RecordingSink::record(std::uint64_t run, const SuperstepTraceRecord& rec) {
  std::lock_guard lock(mutex_);
  if (run >= runs_.size()) {
    throw std::logic_error("RecordingSink::record: unknown run id");
  }
  runs_[run].records.push_back(rec);
}

void RecordingSink::end_run(std::uint64_t run, const RunSummary& summary) {
  std::lock_guard lock(mutex_);
  if (run >= runs_.size()) {
    throw std::logic_error("RecordingSink::end_run: unknown run id");
  }
  runs_[run].summary = summary;
  runs_[run].finished = true;
}

std::vector<TraceRun> RecordingSink::runs() const {
  std::lock_guard lock(mutex_);
  return runs_;
}

std::size_t RecordingSink::run_count() const {
  std::lock_guard lock(mutex_);
  return runs_.size();
}

namespace {

std::atomic<TraceSink*> g_process_sink{nullptr};
thread_local TraceSink* t_scoped_sink = nullptr;
thread_local bool t_scoped_active = false;

/// The --trace file sink: owned here, flushed at exit.
struct FileTrace {
  std::string path;
  std::string format;
  RecordingSink sink;
  bool flushed = false;
};
FileTrace* g_file_trace = nullptr;
std::once_flag g_atexit_once;

}  // namespace

void set_process_sink(TraceSink* sink) {
  g_process_sink.store(sink, std::memory_order_release);
}

TraceSink* process_sink() {
  return g_process_sink.load(std::memory_order_acquire);
}

TraceSink* current_sink() {
  if (t_scoped_active) return t_scoped_sink;
  return process_sink();
}

ScopedSink::ScopedSink(TraceSink* sink)
    : previous_(t_scoped_active ? t_scoped_sink : nullptr),
      previous_active_(t_scoped_active) {
  t_scoped_sink = sink;
  t_scoped_active = true;
}

ScopedSink::~ScopedSink() {
  // Nested scopes restore the enclosing override (which may itself be a
  // nullptr suppression); the outermost scope hands resolution back to the
  // process sink.
  t_scoped_sink = previous_;
  t_scoped_active = previous_active_;
}

void install_file_trace(std::string path, std::string format) {
  if (format != "jsonl" && format != "chrome" && format != "both") {
    std::fprintf(stderr,
                 "--trace-format=%s: expected jsonl, chrome, or both\n",
                 format.c_str());
    std::exit(2);
  }
  static FileTrace trace;
  trace.path = std::move(path);
  trace.format = std::move(format);
  trace.flushed = false;
  g_file_trace = &trace;
  set_process_sink(&trace.sink);
  // Force the span registry into existence before registering the atexit
  // flush: function-local statics are destroyed in reverse construction
  // order, interleaved with atexit handlers, so a registry first touched
  // mid-run (every engine Span probes it) would otherwise be destructed
  // before the handler reads its event buffer.
  (void)SpanRegistry::global();
  std::call_once(g_atexit_once, [] { std::atexit(&flush_file_trace); });
}

bool file_trace_installed() { return g_file_trace != nullptr; }

void flush_file_trace() {
  FileTrace* trace = g_file_trace;
  if (trace == nullptr || trace->flushed) return;
  trace->flushed = true;
  const auto runs = trace->sink.runs();
  const bool jsonl = trace->format == "jsonl" || trace->format == "both";
  const bool chrome = trace->format == "chrome" || trace->format == "both";
  if (jsonl) {
    std::ofstream out(trace->path);
    if (!out) {
      std::fprintf(stderr, "--trace: cannot write %s\n", trace->path.c_str());
      return;
    }
    write_jsonl(runs, out);
  }
  if (chrome) {
    const std::string path =
        trace->format == "chrome" ? trace->path : trace->path + ".chrome.json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "--trace: cannot write %s\n", path.c_str());
      return;
    }
    // Host-time spans (engine phases, executor jobs, replay recosts) ride
    // along in the chrome view so a profiled run is flamegraph-able.
    write_chrome_trace(runs, SpanRegistry::global().events(), out);
  }
}

namespace {

// Registers the trace-flag handler with util::parse_model_flags.  Lives in
// this TU (which machine.cpp pulls in via current_sink) so a static-library
// link never drops the registration.
[[maybe_unused]] const bool g_flag_hook = [] {
  util::set_trace_flag_handler(
      [](const std::string& file, const std::string& format) {
        install_file_trace(file, format);
      });
  return true;
}();

}  // namespace

}  // namespace pbw::obs
