// Shared command implementations of the planner CLI, used by both the
// standalone `pbw-plan` binary and the `pbw-campaign plan` subcommand so
// the two stay behaviour-identical.
//
//   solve  <request.json>  — answer a planning request locally
//   record <request.json>  — resolve the request's tape and dump it as JSON
//                            (feed it back later as an inline "tape")
//   serve                  — HTTP service: POST /plan, /metrics, /healthz
//
// Request/response schema: planner/wire.hpp and docs/PLANNER.md.
#pragma once

#include <string>

#include "util/cli.hpp"

namespace pbw::planner {

/// Reads the request document at `request_path` ("-" for stdin), solves
/// it, and writes the response JSON to --out (default "-" = stdout).
/// Exit 0 on success, 1 on a planner error, 2 on a usage error.
int cli_solve(const std::string& request_path, const util::Cli& cli);

/// Resolves the request's tape (recording the scenario if needed) and
/// writes it as a tape JSON document to --out.
int cli_record(const std::string& request_path, const util::Cli& cli);

/// Serves POST /plan (+ /metrics, /healthz) until SIGINT/SIGTERM.
/// Flags: --serve-port=N (default 0 = ephemeral), --serve-bind=ADDR.
int cli_serve(const util::Cli& cli);

}  // namespace pbw::planner
