// Bandwidth planner: what-if cost optimization over a recorded tape.
//
// The paper's central question — what does bandwidth restriction (local g
// vs. global m) cost a given computation? — is a planning query: given the
// model-independent record of one execution (a replay::StatsTape) and a
// hardware envelope (which model families are on the table, and which
// g/L/m/penalty values), find the configuration that charges least and
// explain it.  ROADMAP item 5; the design follows Kremlin's BWPlanner
// (SNIPPETS.md): profile once, then answer hardware what-ifs from the
// profile alone.
//
// solve() enumerates the envelope's cost grid and charges every point in
// ONE replay::recost_batch tape pass (the planner.tape_passes metric
// counts those passes — a 20k-point query is still one traversal), then
// reports:
//   - the cheapest configuration (argmin; ties go to the lowest grid
//     index, so the result is deterministic),
//   - the frontier of configurations within frontier_percent of optimal,
//   - the dominant cost term at the optimum (per-superstep max terms from
//     replay::recost_components, attributed to engine::CostComponents'
//     w/gh/h/cm/kappa/L taxonomy) and the bound verdict it implies,
//   - the marginal value of more bandwidth: dcost/dg and dcost/dm at the
//     optimum, finite-differenced on the envelope's own grid.
//
// Everything here is pure computation over (tape, envelope); the HTTP
// endpoint, scenario recording and caching live in planner/service.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/model/models.hpp"
#include "core/model/penalty.hpp"
#include "engine/cost.hpp"
#include "replay/batch.hpp"
#include "replay/tape.hpp"

namespace pbw::planner {

/// The hardware envelope of one planning query: the model families in
/// play and the candidate values of every cost parameter.  Each family
/// crosses only the axes it reads (ModelFamily docs in replay/batch.hpp):
/// BSP(g) is g x L, BSP(m) is L x m x penalty, QSM(g) is g, QSM(m) is
/// m x penalty, SS-BSP(m) is L x m — so no two grid points charge the
/// same model twice and grid_size() is the honest query cost.
struct Envelope {
  std::vector<replay::ModelFamily> families = {
      replay::ModelFamily::kBspG, replay::ModelFamily::kBspM,
      replay::ModelFamily::kQsmG, replay::ModelFamily::kQsmM,
      replay::ModelFamily::kSelfSchedulingBspM};
  std::vector<double> g = {1.0};        ///< gap axis (>= 1, increasing)
  std::vector<double> L = {1.0};        ///< latency axis (>= 1, increasing)
  std::vector<std::uint32_t> m = {1};   ///< bandwidth axis (>= 1, increasing)
  std::vector<core::Penalty> penalties = {core::Penalty::kExponential};
  double frontier_percent = 10.0;  ///< frontier = cost <= best * (1 + X/100)
  std::size_t max_frontier = 32;   ///< frontier points returned (cap)

  /// Validates the envelope: non-empty axes, no duplicate families or
  /// penalties, every axis strictly increasing (which is also what makes
  /// the finite differences meaningful), g/L >= 1, m >= 1,
  /// frontier_percent >= 0.  Throws std::invalid_argument.
  void check() const;

  /// Grid points solve() will charge (sum of per-family axis crossings).
  [[nodiscard]] std::size_t grid_size() const noexcept;

  /// The grid in canonical order: families in declaration order; within a
  /// family the read axes cross with g outermost, then L, then m, then
  /// penalty innermost.  Axes a family does not read stay at the
  /// CostPointSpec defaults.
  [[nodiscard]] std::vector<replay::CostPointSpec> enumerate() const;

  /// Stable text form ("families=...;g=...;..."), the envelope half of the
  /// service's solved-plan cache key.
  [[nodiscard]] std::string canonical_key() const;
};

/// One charged grid point.
struct PlannedPoint {
  replay::CostPointSpec spec;
  engine::SimTime cost = 0.0;
  std::size_t index = 0;  ///< position in Envelope::enumerate() order
};

/// A finite-differenced derivative at the optimum.  Undefined when the
/// best point's family does not read the axis or the envelope holds fewer
/// than two values of it.
struct Marginal {
  bool defined = false;
  double value = 0.0;
};

struct PlanResult {
  PlannedPoint best;
  /// Points with cost <= best * (1 + frontier_percent/100), cheapest
  /// first (ties by grid index), best itself included, capped at
  /// max_frontier.  frontier_total is the uncapped count.
  std::vector<PlannedPoint> frontier;
  std::size_t frontier_total = 0;

  /// Per-term sums of the optimum's per-superstep max charges: superstep
  /// s contributes its whole charge to the term that bound it (the
  /// CostComponents::dominant() bucket), so the shares answer "which term
  /// did the time actually go to".
  engine::CostComponents term_totals;
  std::string dominant_term;    ///< w | gh | h | cm | kappa | L
  double dominant_share = 0.0;  ///< dominant bucket / total charge
  std::string verdict;          ///< e.g. "local-bandwidth-bound"

  Marginal dcost_dg;  ///< dcost/dg at the optimum (>0: more local bw helps)
  Marginal dcost_dm;  ///< dcost/dm at the optimum (<0: more global bw helps)

  std::size_t grid_points = 0;
  std::size_t supersteps = 0;
  std::uint64_t tape_fingerprint = 0;

  /// How the batch pass executed (replay::BatchInfo): the SIMD kernel
  /// path name and the thread count it tiled across.  Attribution only —
  /// the numbers above are identical on every path and thread count.
  std::string simd_path = "scalar";
  std::size_t batch_threads = 1;
};

/// Charges the whole envelope against the tape in one recost_batch pass
/// and derives the report above.  Deterministic: same (tape, envelope) in,
/// bit-identical PlanResult out (pool or not, any SIMD path), and
/// best.cost is bit-equal to the scalar recost() of the winning
/// configuration.  A non-null `pool` lets the batch pass tile across idle
/// host threads.  Throws std::invalid_argument on an invalid envelope.
[[nodiscard]] PlanResult solve(const replay::StatsTape& tape,
                               const Envelope& envelope,
                               util::ThreadPool* pool = nullptr);

/// The concrete core:: model a CostPointSpec describes, parameterized for
/// p processors (used for dominant-term attribution and by the brute-force
/// equivalence tests).
[[nodiscard]] std::unique_ptr<core::ModelBase> make_model(
    std::uint32_t p, const replay::CostPointSpec& spec);

// ---- wire spellings (shared with grid.pattern's model axis) ---------------

[[nodiscard]] const char* family_name(replay::ModelFamily family) noexcept;
[[nodiscard]] std::optional<replay::ModelFamily> family_from_name(
    std::string_view name) noexcept;
// Penalties render via core::penalty_name ("linear" / "exp").
[[nodiscard]] std::optional<core::Penalty> penalty_from_name(
    std::string_view name) noexcept;

/// Which axes a family's charge reads (mirrors CostPointSpec semantics).
[[nodiscard]] bool family_reads_g(replay::ModelFamily family) noexcept;
[[nodiscard]] bool family_reads_L(replay::ModelFamily family) noexcept;
[[nodiscard]] bool family_reads_m(replay::ModelFamily family) noexcept;
[[nodiscard]] bool family_reads_penalty(replay::ModelFamily family) noexcept;

/// The bound verdict a dominant term implies: w -> "compute-bound",
/// gh/h -> "local-bandwidth-bound" (both are the largest per-processor
/// communication volume, charged at gap g resp. gap 1),
/// cm -> "global-bandwidth-bound" (the aggregate m-limit's overload
/// charge), kappa -> "contention-bound", L -> "latency-bound".
[[nodiscard]] const char* verdict_for_term(std::string_view term) noexcept;

}  // namespace pbw::planner
