// JSON wire format of the planner: envelope and tape codecs plus the plan
// report serializer, shared by the /plan HTTP endpoint and the pbw-plan
// CLI so a saved request file and a curl body are the same document.
//
// Schema (docs/PLANNER.md):
//
//   envelope: {
//     "families": ["bsp-g", "bsp-m", "qsm-g", "qsm-m", "ss-bsp-m"],
//     "g": [1, 2, 4]            — an axis is a list of values, or
//     "L": {"min": 1, "max": 64, "steps": 8, "scale": "linear"|"log"},
//     "m": ...,
//     "penalty": ["linear", "exp"],
//     "frontier_percent": 10, "max_frontier": 32
//   }
//
//   tape: {"p": .., "seed": .., "captured_model": ..,
//          "steps": [{"w": .., "sent": .., "received": .., "flits": ..,
//                     "reads": .., "writes": .., "kappa": .., "requests": ..,
//                     "slots": [..]} ..],
//          "totals": {"messages": .., "flits": .., "reads": .., "writes": ..}}
//
// Decoders are strict — unknown keys, wrong types and out-of-domain values
// throw std::invalid_argument, which the service maps to HTTP 400.
#pragma once

#include "planner/planner.hpp"
#include "replay/tape.hpp"
#include "util/json.hpp"

namespace pbw::planner {

/// Parses an envelope document (see schema above).  Absent keys keep the
/// Envelope defaults; a "log" range axis is a geometric progression with
/// integer axes deduplicated after rounding.
[[nodiscard]] Envelope envelope_from_json(const util::Json& json);

/// The plan report: best point, frontier, dominant-term analysis,
/// marginals, grid/tape identity (docs/PLANNER.md lists every field).
[[nodiscard]] util::Json plan_to_json(const PlanResult& result);

/// One grid point as {"family", the axes the family reads, "cost",
/// "index"}.
[[nodiscard]] util::Json point_to_json(const PlannedPoint& point);

/// Tape round-trip, for saving recorded tapes and POSTing inline ones.
[[nodiscard]] util::Json tape_to_json(const replay::StatsTape& tape);
[[nodiscard]] replay::StatsTape tape_from_json(const util::Json& json);

}  // namespace pbw::planner
