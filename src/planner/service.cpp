#include "planner/service.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "campaign/scenario.hpp"
#include "campaign/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/telemetry/span.hpp"
#include "replay/recorder.hpp"
#include "util/rng.hpp"

namespace pbw::planner {

namespace {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buf;
}

[[noreturn]] void bad(const std::string& message) {
  throw std::invalid_argument("plan request: " + message);
}

/// A request's parameter override as the string a spec file would have
/// carried: numbers print shortest-round-trip, so "p": 64 becomes "64".
std::string param_string(const util::Json& value, const std::string& key) {
  switch (value.type()) {
    case util::Json::Type::kString:
      return value.as_string();
    case util::Json::Type::kNumber: {
      char buf[32];
      const double v = value.as_double();
      if (v == std::floor(v) && std::abs(v) < 1e15) {
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
      } else {
        std::snprintf(buf, sizeof buf, "%.17g", v);
      }
      return buf;
    }
    case util::Json::Type::kBool:
      return value.as_bool() ? "true" : "false";
    default:
      bad("params." + key + " must be a string, number, or bool");
  }
}

std::uint64_t u64_or(const util::Json& request, const char* key,
                     std::uint64_t fallback) {
  const util::Json* value = request.get(key);
  if (value == nullptr) return fallback;
  if (!value->is_number()) bad(std::string(key) + " must be a number");
  const double v = value->as_double();
  if (!(v >= 0.0) || v != std::floor(v)) {
    bad(std::string(key) + " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

PlanService::PlanService(PlanServiceOptions options)
    : options_(options), tapes_(options.tape_cache_bytes) {
  // Only pay for worker threads when the host can actually run more than
  // one; an inline pool would just be dispatch overhead on every solve.
  if (options.solve_threads != 1) {
    auto pool = std::make_unique<util::ThreadPool>(options.solve_threads);
    if (pool->size() > 1) pool_ = std::move(pool);
  }
}

TapeRef PlanService::resolve_tape(const util::Json& request) {
  const util::Json* inline_tape = request.get("tape");
  const util::Json* scenario_name = request.get("scenario");
  if ((inline_tape != nullptr) == (scenario_name != nullptr)) {
    bad("give exactly one of \"tape\" (inline) or \"scenario\" (recorded)");
  }

  TapeRef ref;
  if (inline_tape != nullptr) {
    ref.owned =
        std::make_unique<replay::StatsTape>(tape_from_json(*inline_tape));
    ref.tape = ref.owned.get();
    ref.source = "inline";
    return ref;
  }

  const campaign::Scenario* scenario =
      campaign::Registry::instance().find(scenario_name->as_string());
  if (scenario == nullptr) {
    throw NotFound("unknown scenario \"" + scenario_name->as_string() + "\"");
  }

  campaign::ParamSet params;
  for (const campaign::ParamSpec& spec : scenario->params) {
    params.set(spec.name, spec.default_value);
  }
  if (const util::Json* overrides = request.get("params")) {
    if (!overrides->is_object()) bad("params must be an object");
    for (const auto& [key, value] : overrides->members()) {
      if (scenario->find_param(key) == nullptr) {
        bad("scenario " + scenario->name + " has no parameter \"" + key +
            "\"");
      }
      params.set(key, param_string(value, key));
    }
  }

  const std::uint64_t seed = u64_or(request, "seed", 1);
  const std::uint64_t trial = u64_or(request, "trial", 0);
  const std::uint64_t tape_index = u64_or(request, "tape_index", 0);
  const int trials = static_cast<int>(trial) + 1;

  const std::string key = scenario->name + "|" + params.canonical() +
                          "|seed=" + std::to_string(seed) +
                          "|trials=" + std::to_string(trials);
  std::shared_ptr<const replay::TapeGroup> group = tapes_.get(key);
  ref.cache_hit = group != nullptr;
  if (group == nullptr) {
    PBW_SPAN("planner.record_tape");
    // Mirror the campaign executor's trial derivation exactly
    // (executor.cpp simulate_job): same Job-keyed stream, same scoped
    // recorder, so this tape is bit-identical to a campaign capture of
    // the same grid point.
    campaign::Job job;
    job.scenario = scenario;
    job.params = params;
    job.seed = seed;
    job.trials = trials;
    const util::RngStreams streams(job.seed);
    const std::uint64_t key_hash = fnv1a64(job.rng_key());
    auto recorded = std::make_shared<replay::TapeGroup>();
    for (int t = 0; t < job.trials; ++t) {
      auto rng = streams.stream(key_hash, static_cast<std::uint64_t>(t));
      replay::TapeRecorder recorder;
      replay::CapturedTrial captured;
      {
        replay::ScopedTapeRecorder scope(&recorder);
        captured.metrics = job.scenario->run(job.params, rng);
      }
      captured.tapes = recorder.take();
      recorded->trials.push_back(std::move(captured));
    }
    group = recorded;
    tapes_.put(key, group);
  }

  const replay::CapturedTrial& captured = group->trials.at(trial);
  if (tape_index >= captured.tapes.size()) {
    throw NotFound("tape_index " + std::to_string(tape_index) +
                   " out of range: trial recorded " +
                   std::to_string(captured.tapes.size()) + " tape(s)");
  }
  ref.group = group;
  ref.tape = &captured.tapes[tape_index];
  ref.source = key + "#" + std::to_string(trial) + "." +
               std::to_string(tape_index);
  return ref;
}

util::Json PlanService::plan(const util::Json& request) {
  PBW_SPAN("planner.plan");
  if (!request.is_object()) bad("request must be a JSON object");
  for (const auto& [key, value] : request.members()) {
    (void)value;
    if (key != "scenario" && key != "params" && key != "seed" &&
        key != "trial" && key != "tape_index" && key != "tape" &&
        key != "envelope") {
      bad("unknown key \"" + key + "\"");
    }
  }
  const util::Json* envelope_json = request.get("envelope");
  if (envelope_json == nullptr) bad("missing \"envelope\"");
  const Envelope envelope = envelope_from_json(*envelope_json);

  const TapeRef tape = resolve_tape(request);
  const std::uint64_t fingerprint = tape.tape->fingerprint();
  const std::string plan_key =
      fingerprint_hex(fingerprint) + "|" + envelope.canonical_key();

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  std::shared_ptr<const PlanResult> result = cached_plan(plan_key);
  const bool plan_hit = result != nullptr;
  if (plan_hit) {
    metrics.counter("planner.cache_hits").add(1);
  } else {
    metrics.counter("planner.cache_misses").add(1);
    const auto start = std::chrono::steady_clock::now();
    result =
        std::make_shared<PlanResult>(solve(*tape.tape, envelope, pool_.get()));
    metrics.histogram("planner.solve_seconds", 0.0, 10.0, 64)
        .observe(std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count());
    store_plan(plan_key, result);
  }

  util::Json response = util::Json::object();
  util::Json tape_json = util::Json::object();
  tape_json["source"] = tape.source;
  tape_json["p"] = tape.tape->p;
  tape_json["supersteps"] = tape.tape->size();
  tape_json["fingerprint"] = fingerprint_hex(fingerprint);
  tape_json["cache_hit"] = tape.cache_hit;
  response["tape"] = std::move(tape_json);
  response["plan"] = plan_to_json(*result);
  util::Json cache = util::Json::object();
  cache["plan_hit"] = plan_hit;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cache["plan_hits"] = plan_hits_;
    cache["plan_misses"] = plan_misses_;
    cache["plan_entries"] = plan_lru_.size();
  }
  response["cache"] = std::move(cache);
  return response;
}

obs::HttpResponse PlanService::handle(const obs::HttpRequest& request) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  metrics.counter("planner.requests").add(1);
  obs::HttpResponse response;
  response.content_type = "application/json";
  const auto error_body = [](const std::string& message) {
    util::Json json = util::Json::object();
    json["error"] = message;
    return json.dump() + "\n";
  };
  try {
    const util::Json body = util::Json::parse(request.body);
    // Collect this request's spans (planner.plan / record_tape / solve /
    // recost_batch — all on this thread) so the response can attribute
    // its own latency per phase.  The HTTP middleware installed the
    // request's trace, so the spans also carry its trace id.
    obs::ScopedSpanCollector collector;
    util::Json doc = plan(body);
    util::Json req = util::Json::object();
    if (!request.id.empty()) req["id"] = request.id;
    if (request.trace.valid()) req["trace"] = request.trace.trace_id_hex();
    util::Json phases = util::Json::object();
    for (const obs::SpanEvent& event : collector.take()) {
      util::Json* total = &phases[event.name];
      *total = util::Json((total->is_number() ? total->as_double() : 0.0) +
                          static_cast<double>(event.dur_ns));
    }
    req["phase_ns"] = std::move(phases);
    doc["request"] = std::move(req);
    response.body = doc.dump() + "\n";
    return response;
  } catch (const util::JsonError& e) {
    response.status = 400;
    response.body = error_body(std::string("invalid JSON: ") + e.what());
  } catch (const std::invalid_argument& e) {
    response.status = 400;
    response.body = error_body(e.what());
  } catch (const NotFound& e) {
    response.status = 404;
    response.body = error_body(e.what());
  } catch (const std::exception& e) {
    response.status = 500;
    response.body = error_body(e.what());
  }
  metrics.counter("planner.errors").add(1);
  return response;
}

void PlanService::mount(obs::HttpServer& server) {
  server.route("POST", "/plan", [this](const obs::HttpRequest& request) {
    return handle(request);
  });
}

util::Json PlanService::stats() const {
  util::Json json = util::Json::object();
  util::Json plans = util::Json::object();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    plans["entries"] = plan_lru_.size();
    plans["hits"] = plan_hits_;
    plans["misses"] = plan_misses_;
  }
  json["plan_cache"] = std::move(plans);
  util::Json tapes = util::Json::object();
  tapes["entries"] = tapes_.entries();
  tapes["bytes"] = tapes_.bytes();
  tapes["hits"] = tapes_.hits();
  tapes["misses"] = tapes_.misses();
  tapes["evictions"] = tapes_.evictions();
  json["tape_cache"] = std::move(tapes);
  return json;
}

std::shared_ptr<const PlanResult> PlanService::cached_plan(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = plan_index_.find(key);
  if (it == plan_index_.end()) {
    ++plan_misses_;
    return nullptr;
  }
  ++plan_hits_;
  plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
  return it->second->result;
}

void PlanService::store_plan(const std::string& key,
                             std::shared_ptr<const PlanResult> result) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = plan_index_.find(key);
  if (it != plan_index_.end()) {
    it->second->result = std::move(result);
    plan_lru_.splice(plan_lru_.begin(), plan_lru_, it->second);
    return;
  }
  plan_lru_.push_front({key, std::move(result)});
  plan_index_[key] = plan_lru_.begin();
  while (plan_lru_.size() > options_.plan_cache_entries) {
    plan_index_.erase(plan_lru_.back().key);
    plan_lru_.pop_back();
  }
}

}  // namespace pbw::planner
