// pbw-plan — the bandwidth planner CLI (docs/PLANNER.md).
//
//   pbw-plan solve <request.json> [--out=<file>|-]
//       Answer a planning request locally: record (or load) the tape,
//       charge the envelope's cost grid in one recost_batch pass, print
//       the plan report JSON.  "-" reads the request from stdin.
//
//   pbw-plan record <request.json> [--out=<file>|-]
//       Resolve the request's tape only and dump it as a tape JSON
//       document, reusable as an inline "tape" in later requests (e.g.
//       against a remote /plan that has no scenario registry state).
//
//   pbw-plan serve [--serve-port=N] [--serve-bind=ADDR]
//       Run the planner as an HTTP service: POST /plan answers request
//       documents, /metrics exports the planner.* family as Prometheus
//       text, /healthz says ok.  The fleet coordinator mounts the same
//       endpoint (docs/FLEET.md), so `pbw-campaign serve` also plans.
//
//   pbw-plan post <request.json> --endpoint=HOST:PORT [--out=<file>|-]
//       Send a request to a running /plan endpoint and print the reply.
//
// `pbw-campaign plan <request.json>` is an alias of `pbw-plan solve`.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "fleet/http_client.hpp"
#include "planner/plan_cli.hpp"
#include "util/cli.hpp"

namespace {

using namespace pbw;

int usage() {
  std::cerr << "usage: pbw-plan <solve <request.json> | record <request.json>"
               " | serve | post <request.json>> [flags]\n"
               "  solve/record: [--out=<file>|-]\n"
               "  serve:        [--serve-port=N] [--serve-bind=ADDR]\n"
               "  post:         --endpoint=HOST:PORT [--out=<file>|-]\n"
               "  (request/response schema: docs/PLANNER.md)\n";
  return 2;
}

int cmd_post(const std::string& request_path, const util::Cli& cli) {
  const std::string endpoint_spec = cli.get("endpoint");
  if (endpoint_spec.empty()) return usage();
  std::string text;
  if (request_path == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    text = buffer.str();
  } else {
    std::ifstream in(request_path);
    if (!in) {
      std::cerr << "pbw-plan: cannot read " << request_path << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    text = buffer.str();
  }
  try {
    const fleet::Endpoint endpoint = fleet::parse_endpoint(endpoint_spec);
    const fleet::HttpResult result =
        fleet::http_post(endpoint.host, endpoint.port, "/plan", text);
    if (!result.ok) {
      std::cerr << "pbw-plan: " << result.error << "\n";
      return 1;
    }
    const std::string out = cli.get("out", "-");
    if (out == "-") {
      std::cout << result.body;
    } else {
      std::ofstream sink(out);
      sink << result.body;
      if (!sink) {
        std::cerr << "pbw-plan: cannot write " << out << "\n";
        return 1;
      }
    }
    if (result.status != 200) {
      std::cerr << "pbw-plan: /plan answered " << result.status << "\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "pbw-plan: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string command =
      cli.positional().empty() ? "" : cli.positional()[0];
  const std::string request_path =
      cli.positional().size() > 1 ? cli.positional()[1] : "";
  if (command == "serve") return planner::cli_serve(cli);
  if (request_path.empty()) return usage();
  if (command == "solve") return planner::cli_solve(request_path, cli);
  if (command == "record") return planner::cli_record(request_path, cli);
  if (command == "post") return cmd_post(request_path, cli);
  return usage();
}
