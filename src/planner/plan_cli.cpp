#include "planner/plan_cli.hpp"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/telemetry/prometheus.hpp"
#include "obs/telemetry/signals.hpp"
#include "planner/service.hpp"
#include "planner/wire.hpp"
#include "util/json.hpp"

namespace pbw::planner {

namespace {

bool read_document(const std::string& path, std::string& out) {
  if (path == "-") {
    std::stringstream buffer;
    buffer << std::cin.rdbuf();
    out = buffer.str();
    return true;
  }
  std::ifstream in(path);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

bool write_document(const std::string& path, const std::string& body) {
  if (path == "-") {
    std::cout << body << "\n";
    return true;
  }
  std::ofstream out(path);
  out << body << "\n";
  return static_cast<bool>(out);
}

int run_request(const std::string& request_path, const util::Cli& cli,
                bool record_only) {
  std::string text;
  if (!read_document(request_path, text)) {
    std::cerr << "pbw-plan: cannot read " << request_path << "\n";
    return 2;
  }
  try {
    const util::Json request = util::Json::parse(text);
    PlanService service;
    const util::Json response =
        record_only ? tape_to_json(*service.resolve_tape(request).tape)
                    : service.plan(request);
    const std::string out = cli.get("out", "-");
    if (!write_document(out, response.dump())) {
      std::cerr << "pbw-plan: cannot write " << out << "\n";
      return 1;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "pbw-plan: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace

int cli_solve(const std::string& request_path, const util::Cli& cli) {
  return run_request(request_path, cli, /*record_only=*/false);
}

int cli_record(const std::string& request_path, const util::Cli& cli) {
  return run_request(request_path, cli, /*record_only=*/true);
}

int cli_serve(const util::Cli& cli) {
  PlanService service;
  obs::HttpServer server;
  service.mount(server);
  server.route("GET", "/metrics", [](const obs::HttpRequest&) {
    obs::HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = obs::render_prometheus(obs::MetricsRegistry::global().to_json());
    return r;
  });
  server.route("GET", "/healthz", [](const obs::HttpRequest&) {
    obs::HttpResponse r;
    r.body = "ok\n";
    return r;
  });
  obs::install_shutdown_signals();
  try {
    server.start(static_cast<std::uint16_t>(cli.get_int("serve-port", 0)),
                 cli.get("serve-bind", "127.0.0.1"));
  } catch (const std::exception& e) {
    std::cerr << "pbw-plan: " << e.what() << "\n";
    return 1;
  }
  std::cerr << "pbw-plan: planner on http://" << server.bind_address() << ":"
            << server.port() << " (POST /plan, /metrics, /healthz)\n";
  while (!obs::shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();
  std::cerr << "pbw-plan: stopped\n";
  return 0;
}

}  // namespace pbw::planner
