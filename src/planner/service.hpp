// PlanService: the planner as a served endpoint.
//
// Wraps planner::solve() with everything a request needs beyond the math:
// tape acquisition (an inline JSON tape, or a named campaign scenario the
// service records on demand — with the executor's exact RNG derivation, so
// a planner tape is bit-identical to what a campaign capture of the same
// job would produce), an LRU of recorded tapes (replay::TapeCache), and an
// LRU of solved plans keyed by tape fingerprint + envelope canonical key,
// so a repeated what-if costs a hash lookup instead of a tape pass.
//
// The same object backs all three exposure paths: planner::solve() is the
// library API, plan() drives the pbw-plan / `pbw-campaign plan` CLIs, and
// mount() registers POST /plan on any obs::HttpServer (the fleet
// coordinator and `pbw-plan serve` both do).  Instrumentation: every
// request opens PBW_SPAN("planner.plan") and the planner.* metrics family
// (requests, errors, cache_hits/misses, tape_passes, grid_points,
// solve_seconds) lands on /metrics next to the campaign counters.
//
// Request document (docs/PLANNER.md):
//   {"scenario": "grid.pattern", "params": {...}, "seed": 1,
//    "trial": 0, "tape_index": 0,          — or "tape": {inline tape}
//    "envelope": {...}}                    — planner/wire.hpp schema
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "obs/telemetry/http_server.hpp"
#include "planner/planner.hpp"
#include "planner/wire.hpp"
#include "replay/cache.hpp"
#include "util/json.hpp"

namespace pbw::planner {

/// Thrown for a request that names something that does not exist (an
/// unregistered scenario, an out-of-range tape index): HTTP 404, where
/// a malformed document (std::invalid_argument) is a 400.
class NotFound : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct PlanServiceOptions {
  std::size_t plan_cache_entries = 128;       ///< solved-plan LRU cap
  std::size_t tape_cache_bytes = 64u << 20;   ///< recorded-tape LRU cap
  /// Threads solve()'s batch pass may tile across (0 = hardware
  /// concurrency, 1 = inline).  The plan report is bit-identical at every
  /// setting; on a single-core host the pool stays inline regardless.
  std::size_t solve_threads = 0;
};

/// The tape a request resolved to.  `tape` points into `group` (scenario
/// path) or `owned` (inline path); keep the struct alive while using it.
struct TapeRef {
  std::shared_ptr<const replay::TapeGroup> group;
  std::unique_ptr<replay::StatsTape> owned;
  const replay::StatsTape* tape = nullptr;
  std::string source;     ///< "inline" or "scenario|params|seed=N#trial.tape"
  bool cache_hit = false; ///< scenario tape served from the tape cache
};

class PlanService {
 public:
  explicit PlanService(PlanServiceOptions options = {});

  /// Answers one planning request; the full response document (plan report
  /// plus tape identity and cache accounting).  Throws
  /// std::invalid_argument (bad document), NotFound (unknown scenario /
  /// tape index), util::JsonError is the caller's to map.
  [[nodiscard]] util::Json plan(const util::Json& request);

  /// Resolves the request's tape without solving — the `pbw-plan record`
  /// path.  Scenario tapes go through (and populate) the tape cache.
  [[nodiscard]] TapeRef resolve_tape(const util::Json& request);

  /// HTTP adapter: parses the body, maps exceptions to 400/404/500, and
  /// counts planner.requests / planner.errors.
  [[nodiscard]] obs::HttpResponse handle(const obs::HttpRequest& request);

  /// Registers POST /plan on `server`.  The service must outlive it.
  void mount(obs::HttpServer& server);

  /// Cache accounting: {"plan_cache": {...}, "tape_cache": {...}}.
  [[nodiscard]] util::Json stats() const;

 private:
  struct CachedPlan {
    std::string key;
    std::shared_ptr<const PlanResult> result;
  };

  [[nodiscard]] std::shared_ptr<const PlanResult> cached_plan(
      const std::string& key);
  void store_plan(const std::string& key,
                  std::shared_ptr<const PlanResult> result);

  PlanServiceOptions options_;
  std::unique_ptr<util::ThreadPool> pool_;  ///< batch tiling; null = inline
  replay::TapeCache tapes_;
  mutable std::mutex mutex_;  ///< guards the plan LRU and its stats
  std::list<CachedPlan> plan_lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<CachedPlan>::iterator> plan_index_;
  std::uint64_t plan_hits_ = 0;
  std::uint64_t plan_misses_ = 0;
};

}  // namespace pbw::planner
