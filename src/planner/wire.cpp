#include "planner/wire.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <initializer_list>
#include <stdexcept>
#include <string>
#include <vector>

#include "engine/cost.hpp"

namespace pbw::planner {

namespace {

[[noreturn]] void bad(const std::string& message) {
  throw std::invalid_argument("plan request: " + message);
}

double require_number(const util::Json& json, const std::string& where) {
  if (!json.is_number()) bad(where + " must be a number");
  return json.as_double();
}

std::uint64_t require_u64(const util::Json& json, const std::string& where) {
  const double v = require_number(json, where);
  if (!(v >= 0.0) || v != std::floor(v)) {
    bad(where + " must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(v);
}

void reject_unknown_keys(const util::Json& object,
                         std::initializer_list<const char*> known,
                         const std::string& where) {
  for (const auto& [key, value] : object.members()) {
    (void)value;
    if (std::find_if(known.begin(), known.end(), [&](const char* k) {
          return key == k;
        }) == known.end()) {
      bad("unknown " + where + " key \"" + key + "\"");
    }
  }
}

/// An axis is a JSON array of values or a {"min","max","steps","scale"}
/// range; `integral` rounds and deduplicates (a log-scaled integer range
/// may round neighbours together).
std::vector<double> parse_axis(const util::Json& json, const std::string& name,
                               bool integral) {
  std::vector<double> values;
  if (json.is_array()) {
    for (std::size_t i = 0; i < json.size(); ++i) {
      values.push_back(require_number(json.at(i), "envelope." + name + "[]"));
    }
  } else if (json.is_object()) {
    reject_unknown_keys(json, {"min", "max", "steps", "scale"},
                        "envelope." + name);
    const util::Json* min = json.get("min");
    const util::Json* max = json.get("max");
    if (min == nullptr || max == nullptr) {
      bad("envelope." + name + " range needs min and max");
    }
    const double lo = require_number(*min, "envelope." + name + ".min");
    const double hi = require_number(*max, "envelope." + name + ".max");
    const util::Json* steps_json = json.get("steps");
    const std::uint64_t steps =
        steps_json != nullptr
            ? require_u64(*steps_json, "envelope." + name + ".steps")
            : 2;
    if (steps == 0) bad("envelope." + name + ".steps must be >= 1");
    const util::Json* scale_json = json.get("scale");
    const std::string scale =
        scale_json != nullptr ? scale_json->as_string() : "linear";
    if (scale != "linear" && scale != "log") {
      bad("envelope." + name + ".scale must be \"linear\" or \"log\"");
    }
    if (hi < lo) bad("envelope." + name + ": max < min");
    if (scale == "log" && lo <= 0.0) {
      bad("envelope." + name + ": log scale needs min > 0");
    }
    if (steps == 1) {
      values.push_back(lo);
    } else {
      for (std::uint64_t i = 0; i < steps; ++i) {
        const double t =
            static_cast<double>(i) / static_cast<double>(steps - 1);
        values.push_back(scale == "log"
                             ? lo * std::pow(hi / lo, t)
                             : lo + (hi - lo) * t);
      }
    }
  } else {
    bad("envelope." + name + " must be an array or a {min,max,steps} range");
  }
  if (integral) {
    for (double& v : values) v = std::round(v);
    values.erase(std::unique(values.begin(), values.end()), values.end());
  }
  return values;
}

}  // namespace

Envelope envelope_from_json(const util::Json& json) {
  if (!json.is_object()) bad("envelope must be an object");
  reject_unknown_keys(json,
                      {"families", "g", "L", "m", "penalty",
                       "frontier_percent", "max_frontier"},
                      "envelope");
  Envelope envelope;
  if (const util::Json* families = json.get("families")) {
    if (!families->is_array()) bad("envelope.families must be an array");
    envelope.families.clear();
    for (std::size_t i = 0; i < families->size(); ++i) {
      const std::string& name = families->at(i).as_string();
      const auto family = family_from_name(name);
      if (!family) bad("unknown model family \"" + name + "\"");
      envelope.families.push_back(*family);
    }
  }
  if (const util::Json* g = json.get("g")) {
    envelope.g = parse_axis(*g, "g", /*integral=*/false);
  }
  if (const util::Json* L = json.get("L")) {
    envelope.L = parse_axis(*L, "L", /*integral=*/false);
  }
  if (const util::Json* m = json.get("m")) {
    envelope.m.clear();
    for (const double v : parse_axis(*m, "m", /*integral=*/true)) {
      if (v < 0.0 || v > 4294967295.0) bad("envelope.m value out of range");
      envelope.m.push_back(static_cast<std::uint32_t>(v));
    }
  }
  if (const util::Json* penalty = json.get("penalty")) {
    if (!penalty->is_array()) bad("envelope.penalty must be an array");
    envelope.penalties.clear();
    for (std::size_t i = 0; i < penalty->size(); ++i) {
      const std::string& name = penalty->at(i).as_string();
      const auto parsed = penalty_from_name(name);
      if (!parsed) bad("unknown penalty \"" + name + "\" (linear | exp)");
      envelope.penalties.push_back(*parsed);
    }
  }
  if (const util::Json* pct = json.get("frontier_percent")) {
    envelope.frontier_percent = require_number(*pct, "envelope.frontier_percent");
  }
  if (const util::Json* cap = json.get("max_frontier")) {
    envelope.max_frontier =
        static_cast<std::size_t>(require_u64(*cap, "envelope.max_frontier"));
  }
  envelope.check();
  return envelope;
}

util::Json point_to_json(const PlannedPoint& point) {
  util::Json json = util::Json::object();
  json["family"] = family_name(point.spec.family);
  if (family_reads_g(point.spec.family)) json["g"] = point.spec.g;
  if (family_reads_L(point.spec.family)) json["L"] = point.spec.L;
  if (family_reads_m(point.spec.family)) json["m"] = point.spec.m;
  if (family_reads_penalty(point.spec.family)) {
    json["penalty"] = core::penalty_name(point.spec.penalty);
  }
  json["cost"] = static_cast<double>(point.cost);
  json["index"] = point.index;
  return json;
}

util::Json plan_to_json(const PlanResult& result) {
  util::Json json = util::Json::object();
  json["best"] = point_to_json(result.best);

  util::Json frontier = util::Json::array();
  for (const PlannedPoint& point : result.frontier) {
    util::Json entry = point_to_json(point);
    const double best = static_cast<double>(result.best.cost);
    entry["over_best"] =
        best > 0.0 ? static_cast<double>(point.cost) / best - 1.0 : 0.0;
    frontier.push_back(std::move(entry));
  }
  json["frontier"] = std::move(frontier);
  json["frontier_total"] = result.frontier_total;

  util::Json dominant = util::Json::object();
  dominant["term"] = result.dominant_term;
  dominant["share"] = result.dominant_share;
  dominant["verdict"] = result.verdict;
  util::Json terms = util::Json::object();
  terms["w"] = result.term_totals.w;
  terms["gh"] = result.term_totals.gh;
  terms["h"] = result.term_totals.h;
  terms["cm"] = result.term_totals.cm;
  terms["kappa"] = result.term_totals.kappa;
  terms["L"] = result.term_totals.L;
  dominant["terms"] = std::move(terms);
  json["dominant"] = std::move(dominant);

  util::Json marginal = util::Json::object();
  const auto marginal_json = [](const Marginal& m) {
    util::Json j = util::Json::object();
    j["defined"] = m.defined;
    if (m.defined) j["value"] = m.value;
    return j;
  };
  marginal["dcost_dg"] = marginal_json(result.dcost_dg);
  marginal["dcost_dm"] = marginal_json(result.dcost_dm);
  json["marginal"] = std::move(marginal);

  json["grid_points"] = result.grid_points;
  json["supersteps"] = result.supersteps;
  util::Json kernel = util::Json::object();
  kernel["simd"] = result.simd_path;
  kernel["threads"] = result.batch_threads;
  json["batch_kernel"] = std::move(kernel);
  char fp[19];
  std::snprintf(fp, sizeof fp, "0x%016llx",
                static_cast<unsigned long long>(result.tape_fingerprint));
  json["tape_fingerprint"] = fp;
  return json;
}

util::Json tape_to_json(const replay::StatsTape& tape) {
  util::Json json = util::Json::object();
  json["p"] = tape.p;
  json["seed"] = tape.seed;
  if (!tape.captured_model.empty()) {
    json["captured_model"] = tape.captured_model;
  }
  util::Json steps = util::Json::array();
  for (std::size_t i = 0; i < tape.size(); ++i) {
    util::Json step = util::Json::object();
    step["w"] = tape.max_work[i];
    step["sent"] = tape.max_sent[i];
    step["received"] = tape.max_received[i];
    step["flits"] = tape.step_flits[i];
    step["reads"] = tape.max_reads[i];
    step["writes"] = tape.max_writes[i];
    step["kappa"] = tape.kappa[i];
    step["requests"] = tape.step_requests[i];
    util::Json slots = util::Json::array();
    for (const std::uint64_t count : tape.slots(i)) slots.push_back(count);
    step["slots"] = std::move(slots);
    steps.push_back(std::move(step));
  }
  json["steps"] = std::move(steps);
  util::Json totals = util::Json::object();
  totals["messages"] = tape.total_messages;
  totals["flits"] = tape.total_flits;
  totals["reads"] = tape.total_reads;
  totals["writes"] = tape.total_writes;
  json["totals"] = std::move(totals);
  return json;
}

replay::StatsTape tape_from_json(const util::Json& json) {
  if (!json.is_object()) bad("tape must be an object");
  reject_unknown_keys(json, {"p", "seed", "captured_model", "steps", "totals"},
                      "tape");
  replay::StatsTape tape;
  if (const util::Json* p = json.get("p")) {
    tape.p = static_cast<std::uint32_t>(require_u64(*p, "tape.p"));
  }
  if (const util::Json* seed = json.get("seed")) {
    tape.seed = require_u64(*seed, "tape.seed");
  }
  if (const util::Json* model = json.get("captured_model")) {
    tape.captured_model = model->as_string();
  }
  const util::Json* steps = json.get("steps");
  if (steps == nullptr || !steps->is_array()) {
    bad("tape.steps must be an array");
  }
  for (std::size_t i = 0; i < steps->size(); ++i) {
    const util::Json& step = steps->at(i);
    if (!step.is_object()) bad("tape.steps[] must be objects");
    reject_unknown_keys(step,
                        {"w", "sent", "received", "flits", "reads", "writes",
                         "kappa", "requests", "slots"},
                        "tape.steps[]");
    engine::SuperstepStats stats;
    if (const util::Json* w = step.get("w")) {
      stats.max_work = require_number(*w, "tape.steps[].w");
    }
    const auto u64_field = [&](const char* name, std::uint64_t& out) {
      if (const util::Json* field = step.get(name)) {
        out = require_u64(*field, std::string("tape.steps[].") + name);
      }
    };
    u64_field("sent", stats.max_sent);
    u64_field("received", stats.max_received);
    u64_field("flits", stats.total_flits);
    u64_field("reads", stats.max_reads);
    u64_field("writes", stats.max_writes);
    u64_field("kappa", stats.kappa);
    u64_field("requests", stats.total_requests);
    if (const util::Json* slots = step.get("slots")) {
      if (!slots->is_array()) bad("tape.steps[].slots must be an array");
      for (std::size_t s = 0; s < slots->size(); ++s) {
        stats.slot_counts.push_back(
            require_u64(slots->at(s), "tape.steps[].slots[]"));
      }
    }
    tape.append(stats);
  }
  if (const util::Json* totals = json.get("totals")) {
    if (!totals->is_object()) bad("tape.totals must be an object");
    reject_unknown_keys(*totals, {"messages", "flits", "reads", "writes"},
                        "tape.totals");
    if (const util::Json* v = totals->get("messages")) {
      tape.total_messages = require_u64(*v, "tape.totals.messages");
    }
    if (const util::Json* v = totals->get("flits")) {
      tape.total_flits = require_u64(*v, "tape.totals.flits");
    }
    if (const util::Json* v = totals->get("reads")) {
      tape.total_reads = require_u64(*v, "tape.totals.reads");
    }
    if (const util::Json* v = totals->get("writes")) {
      tape.total_writes = require_u64(*v, "tape.totals.writes");
    }
  }
  return tape;
}

}  // namespace pbw::planner
