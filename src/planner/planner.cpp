#include "planner/planner.hpp"

#include <algorithm>
#include <array>
#include <cstdio>
#include <span>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/telemetry/span.hpp"

namespace pbw::planner {

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

template <typename T>
void require_axis(const std::vector<T>& axis, const char* name, T floor) {
  if (axis.empty()) {
    throw std::invalid_argument(std::string("Envelope: empty ") + name +
                                " axis");
  }
  T prev = floor;
  bool first = true;
  for (const T v : axis) {
    if (v < floor) {
      throw std::invalid_argument(std::string("Envelope: ") + name +
                                  " value below " + num(double(floor)));
    }
    if (!first && v <= prev) {
      throw std::invalid_argument(std::string("Envelope: ") + name +
                                  " axis must be strictly increasing");
    }
    prev = v;
    first = false;
  }
}

/// Sizes of the axes family `f` reads, in enumerate() nesting order
/// (g, L, m, penalty); an unread axis contributes size 1 to the product
/// and no loop level.
std::array<std::size_t, 4> family_axis_sizes(const Envelope& e,
                                             replay::ModelFamily f) {
  return {family_reads_g(f) ? e.g.size() : 1,
          family_reads_L(f) ? e.L.size() : 1,
          family_reads_m(f) ? e.m.size() : 1,
          family_reads_penalty(f) ? e.penalties.size() : 1};
}

/// Where the best point sits inside its family's block: the family's
/// offset into the flat grid plus the per-axis indices, recoverable from
/// the flat index because enumerate() nests the read axes in a fixed
/// order.  Lets the marginal computation step to a value-neighbour on one
/// axis by pure index arithmetic instead of re-searching the grid.
struct GridPosition {
  replay::ModelFamily family = replay::ModelFamily::kBspG;
  std::size_t block_offset = 0;
  std::array<std::size_t, 4> sizes = {1, 1, 1, 1};    // g, L, m, penalty
  std::array<std::size_t, 4> strides = {0, 0, 0, 0};  // in flat-grid points
  std::array<std::size_t, 4> at = {0, 0, 0, 0};       // best point's indices
};

GridPosition locate(const Envelope& envelope, std::size_t flat_index) {
  std::size_t offset = 0;
  for (const replay::ModelFamily family : envelope.families) {
    const auto sizes = family_axis_sizes(envelope, family);
    const std::size_t block = sizes[0] * sizes[1] * sizes[2] * sizes[3];
    if (flat_index < offset + block) {
      GridPosition pos;
      pos.family = family;
      pos.block_offset = offset;
      pos.sizes = sizes;
      pos.strides = {sizes[1] * sizes[2] * sizes[3], sizes[2] * sizes[3],
                     sizes[3], 1};
      std::size_t rest = flat_index - offset;
      for (int axis = 0; axis < 4; ++axis) {
        pos.at[axis] = rest / pos.strides[axis];
        rest %= pos.strides[axis];
      }
      return pos;
    }
    offset += block;
  }
  throw std::logic_error("planner: grid index out of range");
}

/// Finite difference along one axis of the best point's block.  `axis` is
/// the nesting level (0 = g, 2 = m), `values` the envelope's axis values.
template <typename T>
Marginal differentiate(const GridPosition& pos, int axis,
                       const std::vector<T>& values,
                       std::span<const engine::SimTime> costs) {
  Marginal marginal;
  if (pos.sizes[axis] < 2) return marginal;  // axis unread or single-valued
  const std::size_t i = pos.at[axis];
  const std::size_t lo = i > 0 ? i - 1 : i;
  const std::size_t hi = i + 1 < pos.sizes[axis] ? i + 1 : i;
  const auto cost_at = [&](std::size_t k) {
    std::size_t flat = pos.block_offset;
    for (int a = 0; a < 4; ++a) {
      flat += (a == axis ? k : pos.at[a]) * pos.strides[a];
    }
    return static_cast<double>(costs[flat]);
  };
  marginal.defined = true;
  marginal.value = (cost_at(hi) - cost_at(lo)) /
                   (static_cast<double>(values[hi]) -
                    static_cast<double>(values[lo]));
  return marginal;
}

double* term_slot(engine::CostComponents& totals, const char* name) {
  const std::string_view term(name);
  if (term == "w") return &totals.w;
  if (term == "gh") return &totals.gh;
  if (term == "h") return &totals.h;
  if (term == "cm") return &totals.cm;
  if (term == "kappa") return &totals.kappa;
  return &totals.L;
}

}  // namespace

void Envelope::check() const {
  if (families.empty()) {
    throw std::invalid_argument("Envelope: no model families");
  }
  for (std::size_t i = 0; i < families.size(); ++i) {
    for (std::size_t j = i + 1; j < families.size(); ++j) {
      if (families[i] == families[j]) {
        throw std::invalid_argument(std::string("Envelope: duplicate family ") +
                                    family_name(families[i]));
      }
    }
  }
  require_axis(g, "g", 1.0);
  require_axis(L, "L", 1.0);
  require_axis(m, "m", std::uint32_t{1});
  if (penalties.empty()) {
    throw std::invalid_argument("Envelope: empty penalty set");
  }
  if (penalties.size() > 2 ||
      (penalties.size() == 2 && penalties[0] == penalties[1])) {
    throw std::invalid_argument("Envelope: duplicate penalty");
  }
  if (!(frontier_percent >= 0.0)) {
    throw std::invalid_argument("Envelope: frontier_percent must be >= 0");
  }
}

std::size_t Envelope::grid_size() const noexcept {
  std::size_t total = 0;
  for (const replay::ModelFamily family : families) {
    const auto sizes = family_axis_sizes(*this, family);
    total += sizes[0] * sizes[1] * sizes[2] * sizes[3];
  }
  return total;
}

std::vector<replay::CostPointSpec> Envelope::enumerate() const {
  check();
  std::vector<replay::CostPointSpec> points;
  points.reserve(grid_size());
  for (const replay::ModelFamily family : families) {
    const auto sizes = family_axis_sizes(*this, family);
    for (std::size_t ig = 0; ig < sizes[0]; ++ig) {
      for (std::size_t iL = 0; iL < sizes[1]; ++iL) {
        for (std::size_t im = 0; im < sizes[2]; ++im) {
          for (std::size_t ip = 0; ip < sizes[3]; ++ip) {
            replay::CostPointSpec spec;
            spec.family = family;
            if (family_reads_g(family)) spec.g = g[ig];
            if (family_reads_L(family)) spec.L = L[iL];
            if (family_reads_m(family)) spec.m = m[im];
            if (family_reads_penalty(family)) spec.penalty = penalties[ip];
            points.push_back(spec);
          }
        }
      }
    }
  }
  return points;
}

std::string Envelope::canonical_key() const {
  std::string key = "families=";
  for (std::size_t i = 0; i < families.size(); ++i) {
    if (i > 0) key += ",";
    key += family_name(families[i]);
  }
  key += ";g=";
  for (std::size_t i = 0; i < g.size(); ++i) {
    if (i > 0) key += ",";
    key += num(g[i]);
  }
  key += ";L=";
  for (std::size_t i = 0; i < L.size(); ++i) {
    if (i > 0) key += ",";
    key += num(L[i]);
  }
  key += ";m=";
  for (std::size_t i = 0; i < m.size(); ++i) {
    if (i > 0) key += ",";
    key += std::to_string(m[i]);
  }
  key += ";penalty=";
  for (std::size_t i = 0; i < penalties.size(); ++i) {
    if (i > 0) key += ",";
    key += core::penalty_name(penalties[i]);
  }
  key += ";frontier=" + num(frontier_percent) + "," +
         std::to_string(max_frontier);
  return key;
}

PlanResult solve(const replay::StatsTape& tape, const Envelope& envelope,
                 util::ThreadPool* pool) {
  PBW_SPAN("planner.solve");
  const std::vector<replay::CostPointSpec> points = envelope.enumerate();

  obs::MetricsRegistry& metrics = obs::MetricsRegistry::global();
  metrics.counter("planner.grid_points").add(points.size());
  std::vector<engine::SimTime> costs;
  replay::BatchInfo batch_info;
  {
    PBW_SPAN("planner.recost_batch");
    metrics.counter("planner.tape_passes").add(1);
    costs = replay::recost_batch(tape, points, pool, &batch_info);
  }

  PlanResult result;
  result.grid_points = points.size();
  result.supersteps = tape.size();
  result.tape_fingerprint = tape.fingerprint();
  result.simd_path = simd::path_name(batch_info.path);
  result.batch_threads = batch_info.threads;

  // Argmin; ties to the lowest index for determinism.  A NaN charge never
  // wins (every comparison with it is false), matching max_term()'s
  // poisoning rule: a poisoned point simply cannot be the plan.
  std::size_t best = 0;
  for (std::size_t i = 1; i < costs.size(); ++i) {
    if (costs[i] < costs[best]) best = i;
  }
  result.best = {points[best], costs[best], best};

  const double threshold =
      static_cast<double>(costs[best]) * (1.0 + envelope.frontier_percent / 100.0);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    if (static_cast<double>(costs[i]) <= threshold) {
      result.frontier.push_back({points[i], costs[i], i});
    }
  }
  result.frontier_total = result.frontier.size();
  std::stable_sort(result.frontier.begin(), result.frontier.end(),
                   [](const PlannedPoint& a, const PlannedPoint& b) {
                     return a.cost < b.cost;
                   });
  if (result.frontier.size() > envelope.max_frontier) {
    result.frontier.resize(envelope.max_frontier);
  }

  // Dominant-term attribution at the optimum: each superstep's whole max
  // charge lands in the bucket of the term that bound it.
  const auto model = make_model(tape.p, result.best.spec);
  double total_charge = 0.0;
  for (const engine::CostComponents& comps :
       replay::recost_components(tape, *model)) {
    const double charge = comps.max_term();
    *term_slot(result.term_totals, comps.dominant()) += charge;
    total_charge += charge;
  }
  result.dominant_term = "w";
  double dominant_value = result.term_totals.w;
  for (const char* name : {"gh", "h", "cm", "kappa", "L"}) {
    const double value = *term_slot(result.term_totals, name);
    if (value > dominant_value) {
      dominant_value = value;
      result.dominant_term = name;
    }
  }
  result.dominant_share =
      total_charge > 0.0 ? dominant_value / total_charge : 0.0;
  result.verdict = tape.empty() ? "empty-tape"
                                : verdict_for_term(result.dominant_term);

  const GridPosition pos = locate(envelope, best);
  result.dcost_dg = differentiate(pos, 0, envelope.g, costs);
  result.dcost_dm = differentiate(pos, 2, envelope.m, costs);
  return result;
}

std::unique_ptr<core::ModelBase> make_model(std::uint32_t p,
                                            const replay::CostPointSpec& spec) {
  core::ModelParams params;
  params.p = p > 0 ? p : 1;  // synthetic tapes may carry p = 0
  params.g = spec.g;
  params.L = spec.L;
  params.m = spec.m;
  switch (spec.family) {
    case replay::ModelFamily::kBspG:
      return std::make_unique<core::BspG>(params);
    case replay::ModelFamily::kBspM:
      return std::make_unique<core::BspM>(params, spec.penalty);
    case replay::ModelFamily::kQsmG:
      return std::make_unique<core::QsmG>(params);
    case replay::ModelFamily::kQsmM:
      return std::make_unique<core::QsmM>(params, spec.penalty);
    case replay::ModelFamily::kSelfSchedulingBspM:
      return std::make_unique<core::SelfSchedulingBspM>(params);
  }
  throw std::invalid_argument("planner: unknown model family");
}

const char* family_name(replay::ModelFamily family) noexcept {
  switch (family) {
    case replay::ModelFamily::kBspG: return "bsp-g";
    case replay::ModelFamily::kBspM: return "bsp-m";
    case replay::ModelFamily::kQsmG: return "qsm-g";
    case replay::ModelFamily::kQsmM: return "qsm-m";
    case replay::ModelFamily::kSelfSchedulingBspM: return "ss-bsp-m";
  }
  return "?";
}

std::optional<replay::ModelFamily> family_from_name(
    std::string_view name) noexcept {
  if (name == "bsp-g") return replay::ModelFamily::kBspG;
  if (name == "bsp-m") return replay::ModelFamily::kBspM;
  if (name == "qsm-g") return replay::ModelFamily::kQsmG;
  if (name == "qsm-m") return replay::ModelFamily::kQsmM;
  if (name == "ss-bsp-m") return replay::ModelFamily::kSelfSchedulingBspM;
  return std::nullopt;
}

std::optional<core::Penalty> penalty_from_name(std::string_view name) noexcept {
  if (name == "linear") return core::Penalty::kLinear;
  if (name == "exp") return core::Penalty::kExponential;
  return std::nullopt;
}

bool family_reads_g(replay::ModelFamily family) noexcept {
  return family == replay::ModelFamily::kBspG ||
         family == replay::ModelFamily::kQsmG;
}

bool family_reads_L(replay::ModelFamily family) noexcept {
  return family == replay::ModelFamily::kBspG ||
         family == replay::ModelFamily::kBspM ||
         family == replay::ModelFamily::kSelfSchedulingBspM;
}

bool family_reads_m(replay::ModelFamily family) noexcept {
  return family == replay::ModelFamily::kBspM ||
         family == replay::ModelFamily::kQsmM ||
         family == replay::ModelFamily::kSelfSchedulingBspM;
}

bool family_reads_penalty(replay::ModelFamily family) noexcept {
  return family == replay::ModelFamily::kBspM ||
         family == replay::ModelFamily::kQsmM;
}

const char* verdict_for_term(std::string_view term) noexcept {
  if (term == "w") return "compute-bound";
  if (term == "gh" || term == "h") return "local-bandwidth-bound";
  if (term == "cm") return "global-bandwidth-bound";
  if (term == "kappa") return "contention-bound";
  return "latency-bound";
}

}  // namespace pbw::planner
