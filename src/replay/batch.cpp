#include "replay/batch.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "core/model/charge.hpp"
#include "replay/batch_lanes.hpp"

namespace pbw::replay {

namespace {

namespace charge = core::charge;

/// Per-(m, penalty) key for the aggregate-charge cache.  m is 32-bit, so
/// the penalty bit packs into the low bit of a 64-bit key losslessly.
std::uint64_t cm_key(std::uint32_t m, core::Penalty penalty) {
  return (static_cast<std::uint64_t>(m) << 1) |
         (penalty == core::Penalty::kExponential ? 1u : 0u);
}

/// The charge kernels this binary compiled.  Scalar is unconditional; the
/// vector TUs are compiled (and their PBW_HAVE_KERNEL_* macro defined by
/// src/replay/CMakeLists.txt) only when the build enables the matching
/// instruction set, so a -DPBW_SIMD_AVX2=OFF binary simply has no AVX2
/// entry to dispatch to.
detail::ChargeBlockFn kernel_for(simd::Path path) noexcept {
  switch (path) {
    case simd::Path::kScalar:
      return &detail::charge_block_scalar;
    case simd::Path::kSse2:
#if defined(PBW_HAVE_KERNEL_SSE2)
      return &detail::charge_block_sse2;
#else
      return nullptr;
#endif
    case simd::Path::kAvx2:
#if defined(PBW_HAVE_KERNEL_AVX2)
      return &detail::charge_block_avx2;
#else
      return nullptr;
#endif
    case simd::Path::kAvx512:
#if defined(PBW_HAVE_KERNEL_AVX512)
      return &detail::charge_block_avx512;
#else
      return nullptr;
#endif
    case simd::Path::kNeon:
#if defined(PBW_HAVE_KERNEL_NEON)
      return &detail::charge_block_neon;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

/// Degrades `path` until this binary has a kernel for it.  Terminates:
/// the ladder ends at kScalar, which is always compiled.
simd::Path clamp_to_compiled(simd::Path path) noexcept {
  while (kernel_for(path) == nullptr) path = simd::step_down(path);
  return path;
}

/// One charge block under construction: the points of one family sharing
/// a c_m array, with their per-point parameters gathered into SoA lanes.
struct Block {
  ModelFamily family = ModelFamily::kBspG;
  const double* cm = nullptr;   ///< bound after all c_m arrays are final
  std::uint64_t cm_id = 0;      ///< cm_key the block shares (m-families)
  std::uint32_t m = 0;          ///< the (m, penalty) behind cm_id
  core::Penalty penalty = core::Penalty::kLinear;
  std::size_t count = 0;         ///< points in this block (then fill cursor)
  std::vector<double> p0, p1;    ///< family-specific lanes (batch_lanes.hpp)
  std::vector<double> out;       ///< per-point totals, pre-zeroed
};

}  // namespace

void CostPointSpec::check() const {
  switch (family) {
    case ModelFamily::kBspG:
    case ModelFamily::kQsmG:
      if (g < 1.0) throw std::invalid_argument("CostPointSpec: g < 1");
      break;
    case ModelFamily::kBspM:
    case ModelFamily::kQsmM:
    case ModelFamily::kSelfSchedulingBspM:
      if (m == 0) throw std::invalid_argument("CostPointSpec: m == 0");
      break;
  }
  switch (family) {
    case ModelFamily::kBspG:
    case ModelFamily::kBspM:
    case ModelFamily::kSelfSchedulingBspM:
      if (L < 1.0) throw std::invalid_argument("CostPointSpec: L < 1");
      break;
    case ModelFamily::kQsmG:
    case ModelFamily::kQsmM:
      break;  // QSM has no latency floor
  }
}

simd::Path batch_kernel_path() noexcept {
  return clamp_to_compiled(simd::active_path());
}

std::vector<simd::Path> available_kernel_paths() {
  std::vector<simd::Path> paths;
  for (simd::Path path : simd::supported_paths()) {
    if (kernel_for(path) != nullptr) paths.push_back(path);
  }
  return paths;
}

std::vector<engine::SimTime> recost_batch(const StatsTape& tape,
                                          std::span<const CostPointSpec> points) {
  return recost_batch(tape, points, nullptr, nullptr);
}

std::vector<engine::SimTime> recost_batch(const StatsTape& tape,
                                          std::span<const CostPointSpec> points,
                                          util::ThreadPool* pool,
                                          BatchInfo* info) {
  if (info != nullptr) {
    *info = BatchInfo{};
    info->path = batch_kernel_path();
  }
  // Empty batch: nothing to validate, no tape traversal, no allocations.
  if (points.empty()) return {};

  const std::size_t n = tape.size();
  if (n == 0) {
    // Matches scalar recost: an empty tape replays to total_time == 0.0
    // for every (still validated) point.
    for (const CostPointSpec& point : points) point.check();
    return std::vector<engine::SimTime>(points.size(), 0.0);
  }

  // Partition the batch into charge blocks: one per (family, c_m array).
  // Families without a c_m array form one block each; their parameter
  // spread lives entirely in the lanes.  Two passes: discover blocks and
  // sizes (validating each point on the way), then gather the lanes into
  // exactly-sized SoA arrays.  Real grids arrive in runs (the inner axes
  // vary fastest), so a two-entry MRU of the last blocks resolves almost
  // every point without touching the hash map — on a million-point batch
  // that lookup would otherwise dominate the partition.
  std::vector<Block> blocks;
  std::unordered_map<std::uint64_t, std::size_t> block_index;
  std::vector<std::uint32_t> point_block(points.size());
  // Dense side array for the per-point size increment: the Block structs
  // themselves are too big to keep dozens of them cache-hot in this pass.
  std::vector<std::size_t> counts;
  {
    std::uint64_t mru_key[2] = {~0ull, ~0ull};
    std::uint32_t mru_block[2] = {0, 0};
    for (std::size_t k = 0; k < points.size(); ++k) {
      const CostPointSpec& point = points[k];
      point.check();
      const bool has_cm = point.family == ModelFamily::kBspM ||
                          point.family == ModelFamily::kQsmM;
      const std::uint64_t id = has_cm ? cm_key(point.m, point.penalty) : 0;
      // cm_key spans 33 bits (32-bit m plus the penalty bit); the family
      // tag packs above it.
      const std::uint64_t key =
          (static_cast<std::uint64_t>(point.family) << 34) | id;
      std::uint32_t b;
      if (key == mru_key[0]) {
        b = mru_block[0];
      } else if (key == mru_key[1]) {
        b = mru_block[1];
        std::swap(mru_key[0], mru_key[1]);
        std::swap(mru_block[0], mru_block[1]);
      } else {
        auto [it, inserted] = block_index.try_emplace(key, blocks.size());
        if (inserted) {
          blocks.emplace_back();
          blocks.back().family = point.family;
          blocks.back().cm_id = id;
          blocks.back().m = point.m;
          blocks.back().penalty = point.penalty;
          counts.push_back(0);
        }
        b = static_cast<std::uint32_t>(it->second);
        mru_key[1] = mru_key[0];
        mru_block[1] = mru_block[0];
        mru_key[0] = key;
        mru_block[0] = b;
      }
      point_block[k] = b;
      ++counts[b];
    }
  }
  for (std::size_t b = 0; b < blocks.size(); ++b) blocks[b].count = counts[b];
  for (Block& block : blocks) {
    switch (block.family) {
      case ModelFamily::kBspG:
      case ModelFamily::kSelfSchedulingBspM:
        block.p0.resize(block.count);
        block.p1.resize(block.count);
        break;
      case ModelFamily::kBspM:
      case ModelFamily::kQsmG:
        block.p0.resize(block.count);
        break;
      case ModelFamily::kQsmM:
        break;  // no per-point lanes: every point of the block is identical
    }
    block.count = 0;  // becomes the gather cursor below
  }
  for (std::size_t k = 0; k < points.size(); ++k) {
    const CostPointSpec& point = points[k];
    Block& block = blocks[point_block[k]];
    const std::size_t slot = block.count++;
    switch (point.family) {
      case ModelFamily::kBspG:
        block.p0[slot] = point.g;
        block.p1[slot] = point.L;
        break;
      case ModelFamily::kBspM:
        block.p0[slot] = point.L;
        break;
      case ModelFamily::kQsmG:
        block.p0[slot] = point.g;
        break;
      case ModelFamily::kQsmM:
        break;
      case ModelFamily::kSelfSchedulingBspM:
        block.p0[slot] = static_cast<double>(point.m);
        block.p1[slot] = point.L;
        break;
    }
  }

  std::vector<engine::SimTime> totals(points.size(), 0.0);
  // Which term arrays does this batch need?  Derived from the blocks —
  // the partition already folded a million points down to a handful.
  bool need_msg_h = false, need_mem_h = false, need_mem_h1 = false;
  bool need_kappa = false, need_flits = false;
  for (const Block& block : blocks) {
    switch (block.family) {
      case ModelFamily::kBspG:
      case ModelFamily::kBspM:
        need_msg_h = true;
        break;
      case ModelFamily::kQsmG:
        need_mem_h1 = true;
        need_kappa = true;
        break;
      case ModelFamily::kQsmM:
        need_mem_h = true;
        need_kappa = true;
        break;
      case ModelFamily::kSelfSchedulingBspM:
        need_msg_h = true;
        need_flits = true;
        break;
    }
  }

  // Per-superstep term arrays, derived once for the whole batch with the
  // same charge.hpp helpers cost_components() uses.
  std::vector<double> msg_h, mem_h, mem_h1, kappa_d, flits_d;
  if (need_msg_h) {
    msg_h.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      msg_h[i] = charge::flit_h(tape.max_sent[i], tape.max_received[i]);
    }
  }
  if (need_mem_h) {
    mem_h.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      mem_h[i] = charge::mem_h(tape.max_reads[i], tape.max_writes[i]);
    }
  }
  if (need_mem_h1) {
    mem_h1.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      mem_h1[i] = charge::mem_h_floor1(tape.max_reads[i], tape.max_writes[i]);
    }
  }
  if (need_kappa) {
    kappa_d.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      kappa_d[i] = static_cast<double>(tape.kappa[i]);
    }
  }
  if (need_flits) {
    flits_d.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      flits_d[i] = static_cast<double>(tape.step_flits[i]);
    }
  }

  // Aggregate charge c_m[i] = sum_t f_m(m_t), computed once per distinct
  // (m, penalty) pair however many points share it (the blocks carry one
  // (m, penalty) each, so this walks blocks, not points).  Summation runs
  // in slot order, matching ModelBase::aggregate_charge flit for flit;
  // the exponential charge is memoized per distinct overloaded occupancy,
  // so exp() is paid once per distinct m_t value instead of once per slot
  // (the memo returns the very double overload_charge computed).
  std::unordered_map<std::uint64_t, std::vector<double>> cm_arrays;
  for (const Block& block : blocks) {
    if (block.family != ModelFamily::kBspM &&
        block.family != ModelFamily::kQsmM) {
      continue;
    }
    auto [it, inserted] = cm_arrays.try_emplace(block.cm_id);
    if (!inserted) continue;
    std::vector<double>& cm = it->second;
    cm.resize(n);
    const bool memoize = block.penalty == core::Penalty::kExponential;
    std::unordered_map<std::uint64_t, double> exp_memo;
    for (std::size_t i = 0; i < n; ++i) {
      engine::SimTime c = 0.0;
      for (std::uint64_t m_t : tape.slots(i)) {
        if (memoize && m_t > block.m) {
          auto [mit, miss] = exp_memo.try_emplace(m_t, 0.0);
          if (miss) {
            mit->second = core::overload_charge(m_t, block.m, block.penalty);
          }
          c += mit->second;
        } else {
          c += core::overload_charge(m_t, block.m, block.penalty);
        }
      }
      cm[i] = c;
    }
  }

  for (Block& block : blocks) {
    block.out.assign(block.count, 0.0);
    if (block.family == ModelFamily::kBspM ||
        block.family == ModelFamily::kQsmM) {
      block.cm = cm_arrays.at(block.cm_id).data();
    }
  }

  const double* w = tape.max_work.data();
  const detail::TermStreams terms{
      n,
      w,
      need_msg_h ? msg_h.data() : nullptr,
      need_mem_h ? mem_h.data() : nullptr,
      need_mem_h1 ? mem_h1.data() : nullptr,
      need_kappa ? kappa_d.data() : nullptr,
      need_flits ? flits_d.data() : nullptr,
  };

  // QSM(m) blocks collapse: with m and penalty fixed by the block, every
  // point charges identically, so run the scalar chain once and fan the
  // total out.
  for (Block& block : blocks) {
    if (block.family != ModelFamily::kQsmM) continue;
    const charge::QsmM f{};
    engine::SimTime total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += f(w[i], mem_h[i], block.cm[i], kappa_d[i]);
    }
    std::fill(block.out.begin(), block.out.end(), total);
  }

  // Everything else goes through the dispatched kernel, chopped into
  // fixed-size point ranges.  Ranges write disjoint out slots, so the
  // task-to-thread assignment cannot affect the result.
  const simd::Path path = batch_kernel_path();
  const detail::ChargeBlockFn kernel = kernel_for(path);
  struct Task {
    std::size_t block = 0;
    std::size_t begin = 0;
    std::size_t end = 0;
  };
  // A multiple of the kernel's L1 tile; big enough that task dispatch
  // overhead stays invisible, small enough to load-balance a skewed
  // block mix.
  constexpr std::size_t kTaskPoints = 8192;
  std::vector<Task> tasks;
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    if (blocks[b].family == ModelFamily::kQsmM) continue;
    const std::size_t count = blocks[b].count;
    for (std::size_t begin = 0; begin < count; begin += kTaskPoints) {
      tasks.push_back(Task{b, begin, std::min(count, begin + kTaskPoints)});
    }
  }

  const auto run_task = [&](std::size_t t) {
    Block& block = blocks[tasks[t].block];
    const detail::LaneBlock lanes{
        block.family,
        block.cm,
        block.count,
        block.p0.empty() ? nullptr : block.p0.data(),
        block.p1.empty() ? nullptr : block.p1.data(),
        block.out.data(),
    };
    kernel(terms, lanes, tasks[t].begin, tasks[t].end);
  };

  std::size_t threads = 1;
  if (pool != nullptr && pool->size() > 1 && tasks.size() > 1) {
    threads = std::min(pool->size(), tasks.size());
    pool->parallel_for(tasks.size(), run_task);
  } else {
    for (std::size_t t = 0; t < tasks.size(); ++t) run_task(t);
  }

  // Scatter block outputs back to input order by replaying the gather
  // cursors: point k was the cursor[b]-th point of its block.
  std::fill(counts.begin(), counts.end(), 0);
  for (std::size_t k = 0; k < points.size(); ++k) {
    const std::uint32_t b = point_block[k];
    totals[k] = blocks[b].out[counts[b]++];
  }

  if (info != nullptr) {
    info->path = path;
    info->threads = threads;
    info->blocks = blocks.size();
  }
  return totals;
}

}  // namespace pbw::replay
