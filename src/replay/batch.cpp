#include "replay/batch.hpp"

#include <stdexcept>
#include <unordered_map>

#include "core/model/charge.hpp"

namespace pbw::replay {

namespace {

namespace charge = core::charge;

/// Per-(m, penalty) key for the aggregate-charge cache.  m is 32-bit, so
/// the penalty bit packs into the low bit of a 64-bit key losslessly.
std::uint64_t cm_key(std::uint32_t m, core::Penalty penalty) {
  return (static_cast<std::uint64_t>(m) << 1) |
         (penalty == core::Penalty::kExponential ? 1u : 0u);
}

}  // namespace

void CostPointSpec::check() const {
  switch (family) {
    case ModelFamily::kBspG:
    case ModelFamily::kQsmG:
      if (g < 1.0) throw std::invalid_argument("CostPointSpec: g < 1");
      break;
    case ModelFamily::kBspM:
    case ModelFamily::kQsmM:
    case ModelFamily::kSelfSchedulingBspM:
      if (m == 0) throw std::invalid_argument("CostPointSpec: m == 0");
      break;
  }
  switch (family) {
    case ModelFamily::kBspG:
    case ModelFamily::kBspM:
    case ModelFamily::kSelfSchedulingBspM:
      if (L < 1.0) throw std::invalid_argument("CostPointSpec: L < 1");
      break;
    case ModelFamily::kQsmG:
    case ModelFamily::kQsmM:
      break;  // QSM has no latency floor
  }
}

std::vector<engine::SimTime> recost_batch(const StatsTape& tape,
                                          std::span<const CostPointSpec> points) {
  for (const CostPointSpec& point : points) point.check();

  std::vector<engine::SimTime> totals;
  totals.reserve(points.size());
  const std::size_t n = tape.size();
  if (n == 0) {
    // Matches scalar recost: an empty tape replays to total_time == 0.0.
    totals.assign(points.size(), 0.0);
    return totals;
  }

  // Which term arrays does this batch need?
  bool need_msg_h = false, need_mem_h = false, need_mem_h1 = false;
  bool need_kappa = false, need_flits = false;
  for (const CostPointSpec& point : points) {
    switch (point.family) {
      case ModelFamily::kBspG:
      case ModelFamily::kBspM:
        need_msg_h = true;
        break;
      case ModelFamily::kQsmG:
        need_mem_h1 = true;
        need_kappa = true;
        break;
      case ModelFamily::kQsmM:
        need_mem_h = true;
        need_kappa = true;
        break;
      case ModelFamily::kSelfSchedulingBspM:
        need_msg_h = true;
        need_flits = true;
        break;
    }
  }

  // Per-superstep term arrays, derived once for the whole batch with the
  // same charge.hpp helpers cost_components() uses.
  std::vector<double> msg_h, mem_h, mem_h1, kappa_d, flits_d;
  if (need_msg_h) {
    msg_h.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      msg_h[i] = charge::flit_h(tape.max_sent[i], tape.max_received[i]);
    }
  }
  if (need_mem_h) {
    mem_h.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      mem_h[i] = charge::mem_h(tape.max_reads[i], tape.max_writes[i]);
    }
  }
  if (need_mem_h1) {
    mem_h1.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      mem_h1[i] = charge::mem_h_floor1(tape.max_reads[i], tape.max_writes[i]);
    }
  }
  if (need_kappa) {
    kappa_d.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      kappa_d[i] = static_cast<double>(tape.kappa[i]);
    }
  }
  if (need_flits) {
    flits_d.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      flits_d[i] = static_cast<double>(tape.step_flits[i]);
    }
  }

  // Aggregate charge c_m[i] = sum_t f_m(m_t), computed once per distinct
  // (m, penalty) pair however many points share it.  Summation runs in
  // slot order, matching ModelBase::aggregate_charge flit for flit.
  std::unordered_map<std::uint64_t, std::vector<double>> cm_arrays;
  for (const CostPointSpec& point : points) {
    if (point.family != ModelFamily::kBspM &&
        point.family != ModelFamily::kQsmM) {
      continue;
    }
    auto [it, inserted] =
        cm_arrays.try_emplace(cm_key(point.m, point.penalty));
    if (!inserted) continue;
    std::vector<double>& cm = it->second;
    cm.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      engine::SimTime c = 0.0;
      for (std::uint64_t m_t : tape.slots(i)) {
        c += core::overload_charge(m_t, point.m, point.penalty);
      }
      cm[i] = c;
    }
  }

  const double* w = tape.max_work.data();
  for (const CostPointSpec& point : points) {
    engine::SimTime total = 0.0;
    switch (point.family) {
      case ModelFamily::kBspG: {
        const charge::BspG f{point.g, point.L};
        for (std::size_t i = 0; i < n; ++i) total += f(w[i], msg_h[i]);
        break;
      }
      case ModelFamily::kBspM: {
        const charge::BspM f{point.L};
        const double* cm = cm_arrays.at(cm_key(point.m, point.penalty)).data();
        for (std::size_t i = 0; i < n; ++i) total += f(w[i], msg_h[i], cm[i]);
        break;
      }
      case ModelFamily::kQsmG: {
        const charge::QsmG f{point.g};
        for (std::size_t i = 0; i < n; ++i) {
          total += f(w[i], mem_h1[i], kappa_d[i]);
        }
        break;
      }
      case ModelFamily::kQsmM: {
        const charge::QsmM f{};
        const double* cm = cm_arrays.at(cm_key(point.m, point.penalty)).data();
        for (std::size_t i = 0; i < n; ++i) {
          total += f(w[i], mem_h[i], cm[i], kappa_d[i]);
        }
        break;
      }
      case ModelFamily::kSelfSchedulingBspM: {
        const charge::SelfSchedulingBspM f{static_cast<double>(point.m),
                                           point.L};
        for (std::size_t i = 0; i < n; ++i) {
          total += f(w[i], msg_h[i], flits_d[i]);
        }
        break;
      }
    }
    totals.push_back(total);
  }
  return totals;
}

}  // namespace pbw::replay
