// 4 x double batch charge loop (AVX2).  This TU alone is compiled with
// -mavx2 (see src/replay/CMakeLists.txt); nothing outside it may call in
// unless the CPU reports AVX2 (replay::batch_kernel_path guards this).
//
// VMAXPD keeps legacy MAXPD semantics — (src1 > src2) ? src1 : src2,
// second operand on ties and NaNs — matching the scalar chain step.
#include "replay/batch_lanes.hpp"

#if (defined(__x86_64__) || defined(_M_X64)) && defined(__AVX2__)
#include <immintrin.h>

namespace pbw::replay::detail {

namespace {

struct Avx2Lanes {
  static constexpr std::size_t kWidth = 4;
  using Reg = __m256d;
  static Reg load(const double* p) noexcept { return _mm256_loadu_pd(p); }
  static void store(double* p, Reg v) noexcept { _mm256_storeu_pd(p, v); }
  static Reg broadcast(double v) noexcept { return _mm256_set1_pd(v); }
  static Reg mul(Reg a, Reg b) noexcept { return _mm256_mul_pd(a, b); }
  static Reg div(Reg a, Reg b) noexcept { return _mm256_div_pd(a, b); }
  static Reg max(Reg x, Reg v) noexcept { return _mm256_max_pd(x, v); }
  static Reg add(Reg a, Reg b) noexcept { return _mm256_add_pd(a, b); }
};

}  // namespace

void charge_block_avx2(const TermStreams& terms, const LaneBlock& block,
                       std::size_t begin, std::size_t end) {
  charge_block_impl<Avx2Lanes>(terms, block, begin, end);
}

}  // namespace pbw::replay::detail

#endif  // x86-64 && __AVX2__
