// 2 x double batch charge loop (SSE2, the x86-64 baseline — compiled
// whenever the target is x86-64, no extra flags needed).
//
// MAXPD computes (src1 > src2) ? src1 : src2, returning the second
// operand on equal values (signed zeros included) and NaNs — exactly the
// scalar chain step `(x > v) ? x : v` with x as the first operand.
#include "replay/batch_lanes.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <emmintrin.h>

namespace pbw::replay::detail {

namespace {

struct Sse2Lanes {
  static constexpr std::size_t kWidth = 2;
  using Reg = __m128d;
  static Reg load(const double* p) noexcept { return _mm_loadu_pd(p); }
  static void store(double* p, Reg v) noexcept { _mm_storeu_pd(p, v); }
  static Reg broadcast(double v) noexcept { return _mm_set1_pd(v); }
  static Reg mul(Reg a, Reg b) noexcept { return _mm_mul_pd(a, b); }
  static Reg div(Reg a, Reg b) noexcept { return _mm_div_pd(a, b); }
  static Reg max(Reg x, Reg v) noexcept { return _mm_max_pd(x, v); }
  static Reg add(Reg a, Reg b) noexcept { return _mm_add_pd(a, b); }
};

}  // namespace

void charge_block_sse2(const TermStreams& terms, const LaneBlock& block,
                       std::size_t begin, std::size_t end) {
  charge_block_impl<Sse2Lanes>(terms, block, begin, end);
}

}  // namespace pbw::replay::detail

#endif  // x86-64
