// 2 x double batch charge loop (aarch64 NEON / AdvSIMD).
//
// NEON's FMAX has IEEE maxNum-style NaN handling that does NOT match the
// scalar comparison chain, so max is spelled as an explicit
// compare-and-select: vbslq(vcgtq(x, v), x, v) == (x > v) ? x : v per
// lane, bit-exactly (ties keep v, NaN comparisons are false, so a NaN x
// loses and a NaN v survives — the scalar chain's behavior).
#include "replay/batch_lanes.hpp"

#if defined(__aarch64__)
#include <arm_neon.h>

namespace pbw::replay::detail {

namespace {

struct NeonLanes {
  static constexpr std::size_t kWidth = 2;
  using Reg = float64x2_t;
  static Reg load(const double* p) noexcept { return vld1q_f64(p); }
  static void store(double* p, Reg v) noexcept { vst1q_f64(p, v); }
  static Reg broadcast(double v) noexcept { return vdupq_n_f64(v); }
  static Reg mul(Reg a, Reg b) noexcept { return vmulq_f64(a, b); }
  static Reg div(Reg a, Reg b) noexcept { return vdivq_f64(a, b); }
  static Reg max(Reg x, Reg v) noexcept {
    return vbslq_f64(vcgtq_f64(x, v), x, v);
  }
  static Reg add(Reg a, Reg b) noexcept { return vaddq_f64(a, b); }
};

}  // namespace

void charge_block_neon(const TermStreams& terms, const LaneBlock& block,
                       std::size_t begin, std::size_t end) {
  charge_block_impl<NeonLanes>(terms, block, begin, end);
}

}  // namespace pbw::replay::detail

#endif  // __aarch64__
