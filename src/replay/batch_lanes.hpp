// Private kernel interface of replay::recost_batch: the data layout the
// dispatcher hands to the per-instruction-set charge loops, and the
// shared loop template every lane TU instantiates.
//
// Layout.  The dispatcher (batch.cpp) partitions a batch into *blocks*:
// all points of one model family that share the same per-(m, penalty)
// aggregate-charge array.  Within a block the only things that vary per
// point are that family's per-point parameter lanes (p0/p1: contiguous
// SoA double arrays), so a superstep charges a whole block with broadcast
// term values against vector registers holding the lanes.  Point j's
// total accumulates one add per superstep in superstep order — the same
// accumulation sequence as scalar recost(), which is what keeps every
// lane width bit-identical to it — and lands in out[j] with one store.
//
// Bit-equality discipline (the whole point of this file):
//   * Lanes::max(x, v) must compute exactly (x > v) ? x : v per lane —
//     the comparison chain CostComponents::max_term() and the charge.hpp
//     functors use.  x86 MAXPD has precisely these semantics (second
//     operand returned on equal values and NaNs), so Lanes::max maps x to
//     the first operand and v to the second; NEON emulates it with a
//     compare+select (vbslq), because FMAX's NaN rules differ.
//   * mul/div/add are IEEE-exact per lane, identical to their scalar
//     spellings.  No FMA anywhere: the kernels use explicit intrinsics,
//     and the scalar TU has no mul-add pattern a compiler could contract.
//   * Broadcast hoists (e.g. BSP(m)'s max(w, h, c_m), shared by every
//     lane) run the same scalar comparison chain the per-point loop would
//     have, in the same order, so hoisting is value-preserving.
//   * Vector-width tails run the identical scalar chain; a width-1
//     instantiation (ScalarLanes) *is* that chain, so every path degrades
//     to the same arithmetic.
//
// tests/test_replay.cpp pins each compiled path in turn (simd::ScopedPath)
// and asserts bit-equal totals against scalar recost() on randomized
// tapes and batch shapes.
#pragma once

#include <algorithm>
#include <cstddef>

#include "replay/batch.hpp"

namespace pbw::replay::detail {

/// Per-superstep term streams, derived once per batch (length n each).
/// Null when no point in the batch reads the term.
struct TermStreams {
  std::size_t n = 0;
  const double* w = nullptr;       ///< max_work
  const double* msg_h = nullptr;   ///< charge::flit_h per superstep
  const double* mem_h = nullptr;   ///< charge::mem_h per superstep
  const double* mem_h1 = nullptr;  ///< charge::mem_h_floor1 per superstep
  const double* kappa = nullptr;   ///< kappa as double
  const double* flits = nullptr;   ///< total_flits as double
};

/// One charge block: `count` points of `family` sharing the `cm` array.
/// Lane meanings by family (unused lanes are null):
///   kBspG:               p0 = g,            p1 = L
///   kBspM:               p0 = L             (cm set)
///   kQsmG:               p0 = g
///   kSelfSchedulingBspM: p0 = m (as double), p1 = L
/// kQsmM blocks never reach a kernel: with m and penalty fixed by the
/// block every point is identical, so the dispatcher charges the chain
/// once and fills the block's outputs.
struct LaneBlock {
  ModelFamily family = ModelFamily::kBspG;
  const double* cm = nullptr;
  std::size_t count = 0;
  const double* p0 = nullptr;
  const double* p1 = nullptr;
  double* out = nullptr;  ///< totals; kernel writes each slot once
};

/// Charges points [begin, end) of one block over every superstep.  The
/// range bounds are the thread-tiling seam: disjoint ranges touch
/// disjoint out slots, so tiles schedule freely with no effect on the
/// result.
using ChargeBlockFn = void (*)(const TermStreams&, const LaneBlock&,
                               std::size_t begin, std::size_t end);

// One definition per compiled lane TU; batch.cpp references each only
// when the matching PBW_HAVE_KERNEL_* macro is set by the build.
void charge_block_scalar(const TermStreams&, const LaneBlock&, std::size_t,
                         std::size_t);
void charge_block_sse2(const TermStreams&, const LaneBlock&, std::size_t,
                       std::size_t);
void charge_block_avx2(const TermStreams&, const LaneBlock&, std::size_t,
                       std::size_t);
void charge_block_avx512(const TermStreams&, const LaneBlock&, std::size_t,
                         std::size_t);
void charge_block_neon(const TermStreams&, const LaneBlock&, std::size_t,
                       std::size_t);

/// Scalar (x > v) ? x : v — the reference chain step, used by every tail.
[[nodiscard]] inline double chain_max(double x, double v) noexcept {
  return x > v ? x : v;
}

/// The shared charge loop, instantiated once per lane type.  Points are
/// register-blocked: each group of kAcc vectors loads its parameter lanes
/// once, sweeps every superstep with the accumulators held in registers
/// (kAcc independent add chains hide the add latency), and stores each
/// point's total exactly once — no out-array traffic inside the sweep.
/// Per point the accumulation is still one add per superstep in superstep
/// order, the same sequence as scalar recost(), so register blocking is
/// purely a scheduling change.  Group remainders run a one-vector sweep,
/// then a scalar sweep — the identical chain at narrower width.
template <class Lanes>
void charge_block_impl(const TermStreams& t, const LaneBlock& b,
                       std::size_t begin, std::size_t end) {
  constexpr std::size_t W = Lanes::kWidth;
  constexpr std::size_t kAcc = 4;  // independent accumulator chains
  const std::size_t n = t.n;
  switch (b.family) {
    case ModelFamily::kBspG: {
      // v = max(L_j, max(g_j * h_i, w_i))
      std::size_t j = begin;
      for (; j + kAcc * W <= end; j += kAcc * W) {
        decltype(Lanes::broadcast(0.0)) g[kAcc], L[kAcc], acc[kAcc];
        for (std::size_t a = 0; a < kAcc; ++a) {
          g[a] = Lanes::load(b.p0 + j + a * W);
          L[a] = Lanes::load(b.p1 + j + a * W);
          acc[a] = Lanes::broadcast(0.0);
        }
        for (std::size_t i = 0; i < n; ++i) {
          const auto wv = Lanes::broadcast(t.w[i]);
          const auto hv = Lanes::broadcast(t.msg_h[i]);
          for (std::size_t a = 0; a < kAcc; ++a) {
            auto v = Lanes::max(Lanes::mul(g[a], hv), wv);
            v = Lanes::max(L[a], v);
            acc[a] = Lanes::add(acc[a], v);
          }
        }
        for (std::size_t a = 0; a < kAcc; ++a) {
          Lanes::store(b.out + j + a * W, acc[a]);
        }
      }
      for (; j + W <= end; j += W) {
        const auto g = Lanes::load(b.p0 + j);
        const auto L = Lanes::load(b.p1 + j);
        auto acc = Lanes::broadcast(0.0);
        for (std::size_t i = 0; i < n; ++i) {
          auto v = Lanes::max(Lanes::mul(g, Lanes::broadcast(t.msg_h[i])),
                              Lanes::broadcast(t.w[i]));
          v = Lanes::max(L, v);
          acc = Lanes::add(acc, v);
        }
        Lanes::store(b.out + j, acc);
      }
      for (; j < end; ++j) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          double v = chain_max(b.p0[j] * t.msg_h[i], t.w[i]);
          v = chain_max(b.p1[j], v);
          acc += v;
        }
        b.out[j] = acc;
      }
      break;
    }
    case ModelFamily::kBspM: {
      // s_i = max(w, h, c_m) is lane-invariant; v = max(L_j, s_i).
      std::size_t j = begin;
      for (; j + kAcc * W <= end; j += kAcc * W) {
        decltype(Lanes::broadcast(0.0)) L[kAcc], acc[kAcc];
        for (std::size_t a = 0; a < kAcc; ++a) {
          L[a] = Lanes::load(b.p0 + j + a * W);
          acc[a] = Lanes::broadcast(0.0);
        }
        for (std::size_t i = 0; i < n; ++i) {
          double s = t.w[i];
          s = chain_max(t.msg_h[i], s);
          s = chain_max(b.cm[i], s);
          const auto sv = Lanes::broadcast(s);
          for (std::size_t a = 0; a < kAcc; ++a) {
            acc[a] = Lanes::add(acc[a], Lanes::max(L[a], sv));
          }
        }
        for (std::size_t a = 0; a < kAcc; ++a) {
          Lanes::store(b.out + j + a * W, acc[a]);
        }
      }
      for (; j + W <= end; j += W) {
        const auto L = Lanes::load(b.p0 + j);
        auto acc = Lanes::broadcast(0.0);
        for (std::size_t i = 0; i < n; ++i) {
          double s = t.w[i];
          s = chain_max(t.msg_h[i], s);
          s = chain_max(b.cm[i], s);
          acc = Lanes::add(acc, Lanes::max(L, Lanes::broadcast(s)));
        }
        Lanes::store(b.out + j, acc);
      }
      for (; j < end; ++j) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          double s = t.w[i];
          s = chain_max(t.msg_h[i], s);
          s = chain_max(b.cm[i], s);
          acc += chain_max(b.p0[j], s);
        }
        b.out[j] = acc;
      }
      break;
    }
    case ModelFamily::kQsmG: {
      // v = max(kappa_i, max(g_j * h1_i, w_i))
      std::size_t j = begin;
      for (; j + kAcc * W <= end; j += kAcc * W) {
        decltype(Lanes::broadcast(0.0)) g[kAcc], acc[kAcc];
        for (std::size_t a = 0; a < kAcc; ++a) {
          g[a] = Lanes::load(b.p0 + j + a * W);
          acc[a] = Lanes::broadcast(0.0);
        }
        for (std::size_t i = 0; i < n; ++i) {
          const auto wv = Lanes::broadcast(t.w[i]);
          const auto hv = Lanes::broadcast(t.mem_h1[i]);
          const auto kv = Lanes::broadcast(t.kappa[i]);
          for (std::size_t a = 0; a < kAcc; ++a) {
            auto v = Lanes::max(Lanes::mul(g[a], hv), wv);
            v = Lanes::max(kv, v);
            acc[a] = Lanes::add(acc[a], v);
          }
        }
        for (std::size_t a = 0; a < kAcc; ++a) {
          Lanes::store(b.out + j + a * W, acc[a]);
        }
      }
      for (; j + W <= end; j += W) {
        const auto g = Lanes::load(b.p0 + j);
        auto acc = Lanes::broadcast(0.0);
        for (std::size_t i = 0; i < n; ++i) {
          auto v = Lanes::max(Lanes::mul(g, Lanes::broadcast(t.mem_h1[i])),
                              Lanes::broadcast(t.w[i]));
          v = Lanes::max(Lanes::broadcast(t.kappa[i]), v);
          acc = Lanes::add(acc, v);
        }
        Lanes::store(b.out + j, acc);
      }
      for (; j < end; ++j) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          double v = chain_max(b.p0[j] * t.mem_h1[i], t.w[i]);
          v = chain_max(t.kappa[i], v);
          acc += v;
        }
        b.out[j] = acc;
      }
      break;
    }
    case ModelFamily::kQsmM:
      break;  // dispatcher-charged (all points of a block identical)
    case ModelFamily::kSelfSchedulingBspM: {
      // s_i = max(h, w); v = max(L_j, max(flits_i / m_j, s_i))
      std::size_t j = begin;
      for (; j + kAcc * W <= end; j += kAcc * W) {
        decltype(Lanes::broadcast(0.0)) m[kAcc], L[kAcc], acc[kAcc];
        for (std::size_t a = 0; a < kAcc; ++a) {
          m[a] = Lanes::load(b.p0 + j + a * W);
          L[a] = Lanes::load(b.p1 + j + a * W);
          acc[a] = Lanes::broadcast(0.0);
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double s = chain_max(t.msg_h[i], t.w[i]);
          const auto sv = Lanes::broadcast(s);
          const auto fv = Lanes::broadcast(t.flits[i]);
          for (std::size_t a = 0; a < kAcc; ++a) {
            auto v = Lanes::max(Lanes::div(fv, m[a]), sv);
            v = Lanes::max(L[a], v);
            acc[a] = Lanes::add(acc[a], v);
          }
        }
        for (std::size_t a = 0; a < kAcc; ++a) {
          Lanes::store(b.out + j + a * W, acc[a]);
        }
      }
      for (; j + W <= end; j += W) {
        const auto m = Lanes::load(b.p0 + j);
        const auto L = Lanes::load(b.p1 + j);
        auto acc = Lanes::broadcast(0.0);
        for (std::size_t i = 0; i < n; ++i) {
          const double s = chain_max(t.msg_h[i], t.w[i]);
          auto v = Lanes::max(Lanes::div(Lanes::broadcast(t.flits[i]), m),
                              Lanes::broadcast(s));
          v = Lanes::max(L, v);
          acc = Lanes::add(acc, v);
        }
        Lanes::store(b.out + j, acc);
      }
      for (; j < end; ++j) {
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double s = chain_max(t.msg_h[i], t.w[i]);
          double v = chain_max(t.flits[i] / b.p0[j], s);
          v = chain_max(b.p1[j], v);
          acc += v;
        }
        b.out[j] = acc;
      }
      break;
    }
  }
}

}  // namespace pbw::replay::detail
