// Tape capture: how a StatsTape gets recorded.
//
// Mirrors the cost-attribution sink chain (obs/trace.hpp): the engine
// resolves a recorder per Machine::run() — an explicit MachineOptions
// recorder wins, then the thread-local one a ScopedTapeRecorder installs —
// and appends one tape per run.  With no recorder installed, capture costs
// one null-pointer check per run plus one per superstep.  Subsystems that
// charge costs without a Machine (e.g. the slot-schedule evaluator behind
// sched.penalty) may call begin_tape() themselves and fill the tape with
// synthetic stats.
#pragma once

#include <cstdint>
#include <deque>

#include "replay/tape.hpp"

namespace pbw::replay {

/// The tapes of one capture, in run order.  A deque so that references
/// returned by begin_tape() stay valid while later runs append (the engine
/// holds the reference for the duration of its run).
using TapeList = std::deque<StatsTape>;

/// Collects one StatsTape per captured run, in run order.  Not thread-safe:
/// scope one recorder per logical job (the campaign executor installs one
/// per trial on the worker thread).
class TapeRecorder {
 public:
  /// Starts a new tape; the returned reference stays valid for the
  /// recorder's lifetime.
  StatsTape& begin_tape(std::uint32_t p, std::uint64_t seed);

  [[nodiscard]] TapeList& tapes() noexcept { return tapes_; }
  [[nodiscard]] const TapeList& tapes() const noexcept { return tapes_; }

  /// Moves the captured tapes out, leaving the recorder empty.
  [[nodiscard]] TapeList take() noexcept { return std::move(tapes_); }

 private:
  TapeList tapes_;
};

/// The recorder the engine resolves when MachineOptions carries none: the
/// thread-local override if a ScopedTapeRecorder is live on this thread,
/// else nullptr (capture off).
[[nodiscard]] TapeRecorder* current_tape_recorder() noexcept;

/// Scopes a thread-local recorder override (pass nullptr to suppress
/// capture on this thread).  Used by the campaign executor so each job's
/// tapes stay separate even though jobs share worker threads.
class ScopedTapeRecorder {
 public:
  explicit ScopedTapeRecorder(TapeRecorder* recorder) noexcept;
  ~ScopedTapeRecorder();
  ScopedTapeRecorder(const ScopedTapeRecorder&) = delete;
  ScopedTapeRecorder& operator=(const ScopedTapeRecorder&) = delete;

 private:
  TapeRecorder* previous_;
  bool previous_active_;
};

}  // namespace pbw::replay
