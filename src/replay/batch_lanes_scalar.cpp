// Width-1 instantiation of the batch charge loop: the portable fallback
// and the bit-equality reference every vector path is tested against.
#include "replay/batch_lanes.hpp"

namespace pbw::replay::detail {

namespace {

struct ScalarLanes {
  static constexpr std::size_t kWidth = 1;
  using Reg = double;
  static Reg load(const double* p) noexcept { return *p; }
  static void store(double* p, Reg v) noexcept { *p = v; }
  static Reg broadcast(double v) noexcept { return v; }
  static Reg mul(Reg a, Reg b) noexcept { return a * b; }
  static Reg div(Reg a, Reg b) noexcept { return a / b; }
  /// (x > v) ? x : v — the max_term comparison chain, verbatim.
  static Reg max(Reg x, Reg v) noexcept { return x > v ? x : v; }
  static Reg add(Reg a, Reg b) noexcept { return a + b; }
};

}  // namespace

void charge_block_scalar(const TermStreams& terms, const LaneBlock& block,
                         std::size_t begin, std::size_t end) {
  charge_block_impl<ScalarLanes>(terms, block, begin, end);
}

}  // namespace pbw::replay::detail
