#include "replay/recorder.hpp"

namespace pbw::replay {

namespace {

// The thread-local override and whether one is active (a live
// ScopedTapeRecorder holding nullptr suppresses capture, which is distinct
// from "no recorder scoped").
thread_local TapeRecorder* tl_recorder = nullptr;
thread_local bool tl_active = false;

}  // namespace

StatsTape& TapeRecorder::begin_tape(std::uint32_t p, std::uint64_t seed) {
  StatsTape& tape = tapes_.emplace_back();
  tape.p = p;
  tape.seed = seed;
  return tape;
}

TapeRecorder* current_tape_recorder() noexcept {
  return tl_active ? tl_recorder : nullptr;
}

ScopedTapeRecorder::ScopedTapeRecorder(TapeRecorder* recorder) noexcept
    : previous_(tl_recorder), previous_active_(tl_active) {
  tl_recorder = recorder;
  tl_active = true;
}

ScopedTapeRecorder::~ScopedTapeRecorder() {
  tl_recorder = previous_;
  tl_active = previous_active_;
}

}  // namespace pbw::replay
