#include "replay/cache.hpp"

namespace pbw::replay {

std::size_t CapturedTrial::memory_bytes() const noexcept {
  std::size_t bytes = sizeof(CapturedTrial);
  for (const auto& tape : tapes) bytes += tape.memory_bytes();
  for (const auto& [name, value] : metrics) {
    bytes += name.size() + sizeof(value) + sizeof(std::string);
  }
  return bytes;
}

std::size_t TapeGroup::memory_bytes() const noexcept {
  std::size_t bytes = sizeof(TapeGroup);
  for (const auto& trial : trials) bytes += trial.memory_bytes();
  return bytes;
}

std::shared_ptr<const TapeGroup> TapeCache::get(const std::string& key) {
  std::lock_guard lock(mutex_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->group;
}

void TapeCache::put(const std::string& key,
                    std::shared_ptr<const TapeGroup> group) {
  if (group == nullptr) return;
  const std::size_t group_bytes = group->memory_bytes();
  std::lock_guard lock(mutex_);
  if (group_bytes > max_bytes_) {
    // Reject before touching the index: an oversized replacement must not
    // erase the entry already serving hits for this key.
    ++rejected_;
    return;
  }
  if (const auto it = index_.find(key); it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  lru_.push_front(Entry{key, std::move(group), group_bytes});
  index_[key] = lru_.begin();
  bytes_ += group_bytes;
  evict_over_cap();
}

std::size_t TapeCache::entries() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

void TapeCache::evict_over_cap() {
  // Drain all the way: put() guarantees no single entry exceeds the cap,
  // so stopping while one entry remains (the old `size() > 1` guard) could
  // leave the cache permanently over budget.
  while (bytes_ > max_bytes_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    bytes_ -= victim.bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace pbw::replay
