// 8 x double batch charge loop (AVX-512F).  This TU alone is compiled
// with -mavx512f; replay::batch_kernel_path only dispatches here when the
// CPU reports avx512f.
//
// EVEX VMAXPD keeps MAXPD semantics — (src1 > src2) ? src1 : src2, second
// operand on ties and NaNs — matching the scalar chain step.
#include "replay/batch_lanes.hpp"

#if (defined(__x86_64__) || defined(_M_X64)) && defined(__AVX512F__)
#include <immintrin.h>

namespace pbw::replay::detail {

namespace {

struct Avx512Lanes {
  static constexpr std::size_t kWidth = 8;
  using Reg = __m512d;
  static Reg load(const double* p) noexcept { return _mm512_loadu_pd(p); }
  static void store(double* p, Reg v) noexcept { _mm512_storeu_pd(p, v); }
  static Reg broadcast(double v) noexcept { return _mm512_set1_pd(v); }
  static Reg mul(Reg a, Reg b) noexcept { return _mm512_mul_pd(a, b); }
  static Reg div(Reg a, Reg b) noexcept { return _mm512_div_pd(a, b); }
  static Reg max(Reg x, Reg v) noexcept { return _mm512_max_pd(x, v); }
  static Reg add(Reg a, Reg b) noexcept { return _mm512_add_pd(a, b); }
};

}  // namespace

void charge_block_avx512(const TermStreams& terms, const LaneBlock& block,
                         std::size_t begin, std::size_t end) {
  charge_block_impl<Avx512Lanes>(terms, block, begin, end);
}

}  // namespace pbw::replay::detail

#endif  // x86-64 && __AVX512F__
