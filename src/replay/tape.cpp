#include "replay/tape.hpp"

#include <cassert>
#include <cstring>

#include "obs/trace.hpp"

namespace pbw::replay {

namespace {

/// Debug guard for the attribution invariant: the max over a model's
/// cost_components must BE its superstep_cost, bit for bit (NaNs
/// included, so the comparison is on bit patterns).
[[maybe_unused]] bool same_bits(double a, double b) noexcept {
  std::uint64_t ua = 0, ub = 0;
  std::memcpy(&ua, &a, sizeof a);
  std::memcpy(&ub, &b, sizeof b);
  return ua == ub;
}

}  // namespace

void StatsTape::append(const engine::SuperstepStats& stats) {
  if (slot_begin.empty()) slot_begin.push_back(0);
  max_work.push_back(stats.max_work);
  max_sent.push_back(stats.max_sent);
  max_received.push_back(stats.max_received);
  step_flits.push_back(stats.total_flits);
  max_reads.push_back(stats.max_reads);
  max_writes.push_back(stats.max_writes);
  kappa.push_back(stats.kappa);
  step_requests.push_back(stats.total_requests);
  slot_data.insert(slot_data.end(), stats.slot_counts.begin(),
                   stats.slot_counts.end());
  slot_begin.push_back(slot_data.size());
}

std::span<const std::uint64_t> StatsTape::slots(std::size_t i) const {
  return {slot_data.data() + slot_begin[i], slot_begin[i + 1] - slot_begin[i]};
}

engine::SuperstepStats StatsTape::step(std::size_t i) const {
  engine::SuperstepStats stats;
  fill_step(i, stats);
  return stats;
}

void StatsTape::fill_step(std::size_t i, engine::SuperstepStats& out) const {
  out.max_work = max_work[i];
  out.max_sent = max_sent[i];
  out.max_received = max_received[i];
  out.total_flits = step_flits[i];
  out.max_reads = max_reads[i];
  out.max_writes = max_writes[i];
  out.kappa = kappa[i];
  out.total_requests = step_requests[i];
  const auto s = slots(i);
  out.slot_counts.assign(s.begin(), s.end());
}

std::size_t StatsTape::memory_bytes() const noexcept {
  std::size_t bytes = sizeof(StatsTape) + captured_model.size();
  bytes += max_work.capacity() * sizeof(double);
  bytes += (max_sent.capacity() + max_received.capacity() +
            step_flits.capacity() + max_reads.capacity() +
            max_writes.capacity() + kappa.capacity() +
            step_requests.capacity() + slot_data.capacity()) *
           sizeof(std::uint64_t);
  bytes += slot_begin.capacity() * sizeof(std::size_t);
  return bytes;
}

std::uint64_t StatsTape::fingerprint() const noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  const auto mix_bytes = [&h](const void* data, std::size_t n) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 0x100000001B3ULL;
    }
  };
  const auto mix_u64 = [&mix_bytes](std::uint64_t v) noexcept {
    mix_bytes(&v, sizeof v);
  };
  mix_u64(p);
  mix_u64(seed);
  // Lengths delimit the variable-size arrays so concatenation boundaries
  // (and empty-vs-missing slot rows) cannot collide.
  mix_u64(size());
  mix_u64(slot_data.size());
  mix_bytes(max_work.data(), max_work.size() * sizeof(double));
  for (const auto* arr : {&max_sent, &max_received, &step_flits, &max_reads,
                          &max_writes, &kappa, &step_requests, &slot_data}) {
    mix_bytes(arr->data(), arr->size() * sizeof(std::uint64_t));
  }
  for (const std::size_t offset : slot_begin) {
    mix_u64(static_cast<std::uint64_t>(offset));
  }
  mix_u64(total_messages);
  mix_u64(total_flits);
  mix_u64(total_reads);
  mix_u64(total_writes);
  return h;
}

RecostResult recost(const StatsTape& tape, const engine::CostModel& model) {
  RecostResult result;
  result.supersteps = tape.size();
  result.costs.reserve(tape.size());
  // Same accumulation order as Machine::execute_superstep: one += per
  // superstep, in superstep order, so the total is bit-equal to a fresh run.
  engine::SuperstepStats scratch;
  for (std::size_t i = 0; i < tape.size(); ++i) {
    tape.fill_step(i, scratch);
    const engine::SimTime cost = model.superstep_cost(scratch);
    result.costs.push_back(cost);
    result.total_time += cost;
  }
  return result;
}

std::vector<engine::CostComponents> recost_components(
    const StatsTape& tape, const engine::CostModel& model) {
  std::vector<engine::CostComponents> components;
  components.reserve(tape.size());
  engine::SuperstepStats scratch;
  for (std::size_t i = 0; i < tape.size(); ++i) {
    tape.fill_step(i, scratch);
    components.push_back(model.cost_components(scratch));
  }
  return components;
}

engine::RunResult recost_run(const StatsTape& tape,
                             const engine::CostModel& model, bool trace) {
  engine::RunResult result;
  result.supersteps = tape.size();
  result.total_messages = tape.total_messages;
  result.total_flits = tape.total_flits;
  result.total_reads = tape.total_reads;
  result.total_writes = tape.total_writes;
  if (trace) result.trace.reserve(tape.size());
  engine::SuperstepStats scratch;
  for (std::size_t i = 0; i < tape.size(); ++i) {
    tape.fill_step(i, scratch);
    const engine::SimTime cost = model.superstep_cost(scratch);
    result.total_time += cost;
    if (trace) result.trace.push_back(engine::SuperstepRecord{scratch, cost});
  }
  return result;
}

void recost_to_sink(const StatsTape& tape, const engine::CostModel& model,
                    obs::TraceSink& sink) {
  obs::RunInfo info;
  info.model = model.name();
  info.p = tape.p;
  info.seed = tape.seed;
  const std::uint64_t run = sink.begin_run(info);
  engine::SimTime total = 0.0;
  engine::SuperstepStats scratch;
  for (std::size_t i = 0; i < tape.size(); ++i) {
    tape.fill_step(i, scratch);
    const engine::CostComponents comps = model.cost_components(scratch);
    obs::SuperstepTraceRecord rec;
    rec.superstep = i;
    rec.cost = comps.max_term();
    assert(same_bits(rec.cost, model.superstep_cost(scratch)));
    rec.w = comps.w;
    rec.gh = comps.gh;
    rec.h = comps.h;
    rec.cm = comps.cm;
    rec.kappa = comps.kappa;
    rec.L = comps.L;
    rec.dominant = comps.dominant();
    sink.record(run, rec);
    total += rec.cost;
  }
  sink.end_run(run, obs::RunSummary{tape.size(), total});
}

}  // namespace pbw::replay
