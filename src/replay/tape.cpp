#include "replay/tape.hpp"

#include "obs/trace.hpp"

namespace pbw::replay {

std::size_t StatsTape::memory_bytes() const noexcept {
  std::size_t bytes = sizeof(StatsTape) + captured_model.size();
  bytes += steps.capacity() * sizeof(engine::SuperstepStats);
  for (const auto& step : steps) {
    bytes += step.slot_counts.capacity() * sizeof(std::uint64_t);
  }
  return bytes;
}

RecostResult recost(const StatsTape& tape, const engine::CostModel& model) {
  RecostResult result;
  result.supersteps = tape.steps.size();
  result.costs.reserve(tape.steps.size());
  // Same accumulation order as Machine::execute_superstep: one += per
  // superstep, in superstep order, so the total is bit-equal to a fresh run.
  for (const auto& stats : tape.steps) {
    const engine::SimTime cost = model.superstep_cost(stats);
    result.costs.push_back(cost);
    result.total_time += cost;
  }
  return result;
}

std::vector<engine::CostComponents> recost_components(
    const StatsTape& tape, const engine::CostModel& model) {
  std::vector<engine::CostComponents> components;
  components.reserve(tape.steps.size());
  for (const auto& stats : tape.steps) {
    components.push_back(model.cost_components(stats));
  }
  return components;
}

engine::RunResult recost_run(const StatsTape& tape,
                             const engine::CostModel& model, bool trace) {
  engine::RunResult result;
  result.supersteps = tape.steps.size();
  result.total_messages = tape.total_messages;
  result.total_flits = tape.total_flits;
  result.total_reads = tape.total_reads;
  result.total_writes = tape.total_writes;
  if (trace) result.trace.reserve(tape.steps.size());
  for (const auto& stats : tape.steps) {
    const engine::SimTime cost = model.superstep_cost(stats);
    result.total_time += cost;
    if (trace) result.trace.push_back(engine::SuperstepRecord{stats, cost});
  }
  return result;
}

void recost_to_sink(const StatsTape& tape, const engine::CostModel& model,
                    obs::TraceSink& sink) {
  obs::RunInfo info;
  info.model = model.name();
  info.p = tape.p;
  info.seed = tape.seed;
  const std::uint64_t run = sink.begin_run(info);
  engine::SimTime total = 0.0;
  std::uint64_t superstep = 0;
  for (const auto& stats : tape.steps) {
    const engine::CostComponents comps = model.cost_components(stats);
    obs::SuperstepTraceRecord rec;
    rec.superstep = superstep++;
    rec.cost = comps.max_term();
    rec.w = comps.w;
    rec.gh = comps.gh;
    rec.h = comps.h;
    rec.cm = comps.cm;
    rec.kappa = comps.kappa;
    rec.L = comps.L;
    rec.dominant = comps.dominant();
    sink.record(run, rec);
    total += rec.cost;
  }
  sink.end_run(run, obs::RunSummary{tape.steps.size(), total});
}

}  // namespace pbw::replay
