// In-memory LRU cache of captured tape groups, keyed by structural key.
//
// A campaign's cost-only grid collapses to one simulation per structural
// point; the tapes of that simulation serve every other point of the
// group.  The cache bounds how much tape memory a large campaign may pin:
// groups are evicted least-recently-used once the byte cap is exceeded,
// and an evicted group simply costs one extra simulation when touched
// again.  Thread-safe; hit/miss/eviction tallies feed the campaign's
// metrics registry.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "replay/recorder.hpp"

namespace pbw::replay {

/// Everything one captured trial needs to be recosted elsewhere: the tapes
/// of its machine runs (in run order) and the metric row the capture run
/// emitted (execution-derived values like correctness flags are copied
/// from it rather than re-derived).
struct CapturedTrial {
  TapeList tapes;
  std::vector<std::pair<std::string, double>> metrics;

  [[nodiscard]] std::size_t memory_bytes() const noexcept;
};

/// One structural grid point's capture: one CapturedTrial per trial.
struct TapeGroup {
  std::vector<CapturedTrial> trials;

  [[nodiscard]] std::size_t memory_bytes() const noexcept;
};

class TapeCache {
 public:
  /// `max_bytes` caps the summed TapeGroup::memory_bytes(); 0 disables
  /// caching entirely (every get() misses, put() drops).
  explicit TapeCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  /// The cached group, freshly promoted to most-recently-used, or nullptr.
  [[nodiscard]] std::shared_ptr<const TapeGroup> get(const std::string& key);

  /// Inserts (or replaces) the group and evicts LRU entries over the cap.
  /// A group larger than the whole cap is rejected up front (counted in
  /// rejected()) without disturbing any existing entry for `key` — callers
  /// hold their own shared_ptr, so the current group keeps working.
  void put(const std::string& key, std::shared_ptr<const TapeGroup> group);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept { return evictions_; }
  /// Groups dropped by put() because they alone exceed the byte cap.
  [[nodiscard]] std::uint64_t rejected() const noexcept { return rejected_; }
  [[nodiscard]] std::size_t bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t entries() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const TapeGroup> group;
    std::size_t bytes = 0;
  };

  void evict_over_cap();  ///< caller holds mutex_

  const std::size_t max_bytes_;
  mutable std::mutex mutex_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::size_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace pbw::replay
