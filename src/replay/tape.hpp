// Trace-replay recosting: simulate a communication pattern once, re-charge
// it under any cost model.
//
// Every model of the paper maps a per-superstep SuperstepStats to a charge
// (engine/cost.hpp); the stats stream itself depends only on the program,
// p, and the seed — never on g, L, m, or the penalty shape.  A StatsTape is
// that stream, recorded once, so a cost-parameter sweep over a fixed
// pattern pays one simulation plus one cheap recost per grid point instead
// of one simulation per point.  recost() reproduces Machine::run's charge
// accumulation bit-for-bit: same per-superstep stats, same summation
// order, hence the same doubles.
//
// The tape stores the stream in SoA (structure-of-arrays) form: one
// contiguous array per stats field, plus a ragged CSR-style pair
// (slot_data, slot_begin) for the per-slot injection counts.  A recost is
// a linear scan over a handful of flat arrays — no per-step pointer
// chasing — which is what lets recost_batch (replay/batch.hpp) charge
// thousands of cost points per traversal with vectorizable inner loops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "engine/cost.hpp"
#include "engine/machine.hpp"

namespace pbw::obs {
class TraceSink;
}

namespace pbw::replay {

/// The model-independent record of one Machine::run(): the per-superstep
/// stats stream plus the run totals a RunResult reports.
struct StatsTape {
  std::uint32_t p = 0;          ///< processors of the captured machine
  std::uint64_t seed = 0;       ///< MachineOptions::seed of the capture run
  std::string captured_model;   ///< CostModel::name() at capture (diagnostics)

  // --- per-superstep stream, SoA: entry i of each array is superstep i's
  // SuperstepStats field of the same name (all arrays share length size()).
  std::vector<double> max_work;
  std::vector<std::uint64_t> max_sent;
  std::vector<std::uint64_t> max_received;
  std::vector<std::uint64_t> step_flits;     ///< SuperstepStats::total_flits
  std::vector<std::uint64_t> max_reads;
  std::vector<std::uint64_t> max_writes;
  std::vector<std::uint64_t> kappa;
  std::vector<std::uint64_t> step_requests;  ///< SuperstepStats::total_requests
  /// Ragged slot counts, CSR layout: superstep i's m_t vector is
  /// slot_data[slot_begin[i] .. slot_begin[i+1]).  slot_begin holds
  /// size()+1 offsets once any step is appended (empty on a fresh tape).
  std::vector<std::uint64_t> slot_data;
  std::vector<std::size_t> slot_begin;

  // --- run totals (what RunResult reports beyond time) ---
  std::uint64_t total_messages = 0;
  std::uint64_t total_flits = 0;
  std::uint64_t total_reads = 0;
  std::uint64_t total_writes = 0;

  /// Supersteps recorded.
  [[nodiscard]] std::size_t size() const noexcept { return max_work.size(); }
  [[nodiscard]] bool empty() const noexcept { return max_work.empty(); }

  /// Appends one superstep's stats to every array.
  void append(const engine::SuperstepStats& stats);

  /// Superstep i's slot-count vector, zero-copy.
  [[nodiscard]] std::span<const std::uint64_t> slots(std::size_t i) const;

  /// Materializes superstep i as the SuperstepStats the engine gathered.
  [[nodiscard]] engine::SuperstepStats step(std::size_t i) const;

  /// step() into a caller-owned scratch struct, reusing its slot_counts
  /// capacity — the allocation-free form the scalar recost loop uses.
  void fill_step(std::size_t i, engine::SuperstepStats& out) const;

  /// Approximate heap footprint, for LRU cache accounting.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Content hash of the recorded stream (FNV-1a over p, seed, the array
  /// lengths, and every SoA array's raw bytes, in a fixed order).  Two
  /// tapes fingerprint equal iff every quantity a recost can read is
  /// identical, so the planner's solved-envelope cache may key on it; the
  /// diagnostics-only captured_model string is deliberately excluded.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept;
};

/// recost() output: the quantities Machine::run derives from the model.
struct RecostResult {
  engine::SimTime total_time = 0.0;
  std::uint64_t supersteps = 0;
  std::vector<engine::SimTime> costs;  ///< per-superstep charges, in order
};

/// Re-derives total_time and the per-superstep charges from a tape under
/// `model`, without touching a machine.  Bit-equal to a fresh Machine::run
/// of the same execution under the same model.
[[nodiscard]] RecostResult recost(const StatsTape& tape,
                                  const engine::CostModel& model);

/// Per-superstep cost attribution of a replayed run (the CostComponents a
/// traced fresh run would have emitted).
[[nodiscard]] std::vector<engine::CostComponents> recost_components(
    const StatsTape& tape, const engine::CostModel& model);

/// Rebuilds the RunResult a fresh `Machine(model).run(program)` would have
/// returned (trace records included when `trace` is set).
[[nodiscard]] engine::RunResult recost_run(const StatsTape& tape,
                                           const engine::CostModel& model,
                                           bool trace = false);

/// Emits the replayed run into a trace sink exactly as a traced fresh run
/// would (phase wall-clocks are 0, matching a fresh run without profiling),
/// so --trace-dir campaigns stay complete when jobs are recosted.
void recost_to_sink(const StatsTape& tape, const engine::CostModel& model,
                    obs::TraceSink& sink);

}  // namespace pbw::replay
