// Batched recosting: charge a million cost points in one tape pass.
//
// A cost-only parameter sweep holds the communication pattern fixed and
// varies only (model family, g, L, m, penalty).  Scalar recost() already
// skips re-simulation but still traverses the tape once per point, through
// CostModel::superstep_cost vtable dispatch and a SuperstepStats
// materialization per superstep.  recost_batch() instead:
//
//   1. derives each superstep's cost terms (w, h variants, kappa, n) once
//      into flat double arrays — straight scans over the SoA tape;
//   2. computes each distinct (m, penalty) aggregate-charge array c_m[] once,
//      however many points share it (the only expensive term: a slot-count
//      scan, with the e^{m_t/m - 1} charges memoized per distinct slot
//      occupancy so exp() is paid once per distinct m_t, not once per slot);
//   3. partitions the batch into charge *blocks* — points of one family
//      sharing a c_m array — whose per-point parameters (g, L, m) become
//      contiguous SoA lanes, and charges whole blocks with explicit SIMD
//      kernels (SSE2/AVX2/AVX-512 on x86-64, NEON on aarch64, scalar
//      everywhere), selected at runtime via the pbw::simd shim;
//   4. optionally tiles block charging across a ThreadPool: tasks are
//      fixed-size point ranges writing disjoint output slots, so the
//      result is identical for any thread count.
//
// Contract: recost_batch(tape, pts)[k] is bit-identical to
// recost(tape, *model-for-pts[k]).total_time — on EVERY dispatch path and
// thread count.  The kernels replicate CostComponents::max_term()'s
// comparison chain lanewise over the exact term values cost_components()
// computes (see batch_lanes.hpp for the discipline), SIMD runs across
// points while each point's per-superstep accumulation stays in superstep
// order, and tests/test_replay.cpp pins every compiled path in turn to
// enforce equality across families, tapes, and batch shapes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/model/penalty.hpp"
#include "engine/types.hpp"
#include "replay/tape.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"

namespace pbw::replay {

/// The four model families of the paper (the globally-limited ones carry a
/// penalty shape), plus the Section 6 self-scheduling variant.
enum class ModelFamily : std::uint8_t {
  kBspG,                ///< BSP(g):   T = max(w, g*h, L)
  kBspM,                ///< BSP(m):   T = max(w, h, c_m, L)
  kQsmG,                ///< QSM(g):   T = max(w, g*max(1,h), kappa)
  kQsmM,                ///< QSM(m):   T = max(w, h, c_m, kappa)
  kSelfSchedulingBspM,  ///< SS-BSP(m): T = max(w, h, n/m, L)
};

/// One cost point of a batch: a model family plus the parameters that
/// family reads.  Unused fields are ignored (e.g. g for BSP(m)).
struct CostPointSpec {
  ModelFamily family = ModelFamily::kBspG;
  double g = 1.0;       ///< gap (kBspG, kQsmG)
  double L = 1.0;       ///< latency floor (kBspG, kBspM, kSelfSchedulingBspM)
  std::uint32_t m = 1;  ///< aggregate bandwidth (kBspM, kQsmM, kSelfSchedulingBspM)
  core::Penalty penalty = core::Penalty::kLinear;  ///< kBspM, kQsmM

  /// Same domain as ModelParams::check for the fields the family reads;
  /// throws std::invalid_argument on violation.
  void check() const;
};

/// How a recost_batch call actually executed — for /status, plan
/// responses, and campaign summaries, so a perf number is attributable.
struct BatchInfo {
  simd::Path path = simd::Path::kScalar;  ///< kernel the batch dispatched to
  std::size_t threads = 1;  ///< pool lanes that charged blocks (1 = inline)
  std::size_t blocks = 0;   ///< charge blocks the batch partitioned into
};

/// Total replayed run time for every point, in input order.  Element k is
/// bit-identical to scalar recost() under the model pts[k] describes.
/// Validates every point up front (std::invalid_argument on a bad one).
/// An empty `points` span returns an empty vector immediately — no tape
/// traversal, no allocation.
[[nodiscard]] std::vector<engine::SimTime> recost_batch(
    const StatsTape& tape, std::span<const CostPointSpec> points);

/// As above, tiling block charging across `pool` when it is non-null and
/// the batch is large enough to bother.  The thread count never changes
/// the result (tasks write disjoint output ranges).  `pool` must not be
/// mid-parallel_for on the calling thread (no recursive dispatch).  When
/// `info` is non-null it receives the kernel path, thread count, and block
/// count the call used.
[[nodiscard]] std::vector<engine::SimTime> recost_batch(
    const StatsTape& tape, std::span<const CostPointSpec> points,
    util::ThreadPool* pool, BatchInfo* info = nullptr);

/// The kernel path recost_batch would dispatch to right now: the simd
/// policy choice (simd::active_path) degraded to a path this binary
/// actually compiled (a -DPBW_SIMD_AVX2=OFF build ships no AVX2 kernel
/// even on an AVX2 CPU).
[[nodiscard]] simd::Path batch_kernel_path() noexcept;

/// Every kernel path compiled into this binary that the host CPU can run,
/// narrowest first.  Always contains simd::Path::kScalar.  Tests iterate
/// this to pin each path and assert bit-equality.
[[nodiscard]] std::vector<simd::Path> available_kernel_paths();

}  // namespace pbw::replay
