// Batched recosting: charge thousands of cost points in one tape pass.
//
// A cost-only parameter sweep holds the communication pattern fixed and
// varies only (model family, g, L, m, penalty).  Scalar recost() already
// skips re-simulation but still traverses the tape once per point, through
// CostModel::superstep_cost vtable dispatch and a SuperstepStats
// materialization per superstep.  recost_batch() instead:
//
//   1. derives each superstep's cost terms (w, h variants, kappa, n) once
//      into flat double arrays — straight scans over the SoA tape;
//   2. computes each distinct (m, penalty) aggregate-charge array c_m[] once,
//      however many points share it (the only expensive term: a slot-count
//      scan with an exp() per overloaded slot for the exponential penalty);
//   3. charges every point with a branch-free non-virtual functor
//      (core/model/charge.hpp) over those arrays — a tight multiply/compare/
//      accumulate loop the compiler can vectorize.
//
// Contract: recost_batch(tape, pts)[k] is bit-identical to
// recost(tape, *model-for-pts[k]).total_time.  The functors replicate
// CostComponents::max_term()'s comparison chain over the exact term values
// cost_components() computes (both sides share the charge.hpp term
// helpers), and the per-superstep accumulation order is the same, so the
// doubles come out the same.  tests/test_replay.cpp enforces this across
// families, tapes, and batch shapes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/model/penalty.hpp"
#include "engine/types.hpp"
#include "replay/tape.hpp"

namespace pbw::replay {

/// The four model families of the paper (the globally-limited ones carry a
/// penalty shape), plus the Section 6 self-scheduling variant.
enum class ModelFamily : std::uint8_t {
  kBspG,                ///< BSP(g):   T = max(w, g*h, L)
  kBspM,                ///< BSP(m):   T = max(w, h, c_m, L)
  kQsmG,                ///< QSM(g):   T = max(w, g*max(1,h), kappa)
  kQsmM,                ///< QSM(m):   T = max(w, h, c_m, kappa)
  kSelfSchedulingBspM,  ///< SS-BSP(m): T = max(w, h, n/m, L)
};

/// One cost point of a batch: a model family plus the parameters that
/// family reads.  Unused fields are ignored (e.g. g for BSP(m)).
struct CostPointSpec {
  ModelFamily family = ModelFamily::kBspG;
  double g = 1.0;       ///< gap (kBspG, kQsmG)
  double L = 1.0;       ///< latency floor (kBspG, kBspM, kSelfSchedulingBspM)
  std::uint32_t m = 1;  ///< aggregate bandwidth (kBspM, kQsmM, kSelfSchedulingBspM)
  core::Penalty penalty = core::Penalty::kLinear;  ///< kBspM, kQsmM

  /// Same domain as ModelParams::check for the fields the family reads;
  /// throws std::invalid_argument on violation.
  void check() const;
};

/// Total replayed run time for every point, in input order.  Element k is
/// bit-identical to scalar recost() under the model pts[k] describes.
/// Validates every point up front (std::invalid_argument on a bad one).
[[nodiscard]] std::vector<engine::SimTime> recost_batch(
    const StatsTape& tape, std::span<const CostPointSpec> points);

}  // namespace pbw::replay
