// Umbrella header: the whole public API.
//
//   #include "pbw.hpp"
//
// Fine-grained headers remain available for faster builds; this header is
// for examples, experiments, and exploratory use.
#pragma once

// Substrate: the SPMD superstep simulator.
#include "engine/cost.hpp"
#include "engine/error.hpp"
#include "engine/machine.hpp"
#include "engine/program.hpp"
#include "engine/types.hpp"

// The paper's models and bounds.
#include "core/bounds.hpp"
#include "core/model/emulation.hpp"
#include "core/model/models.hpp"
#include "core/model/params.hpp"
#include "core/model/penalty.hpp"
#include "core/trace_report.hpp"

// Section 6: unbalanced h-relation scheduling.
#include "sched/count_n.hpp"
#include "sched/qsm_routing.hpp"
#include "sched/relation.hpp"
#include "sched/runner.hpp"
#include "sched/schedule.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"

// Section 4: algorithms on the four models.
#include "algos/broadcast.hpp"
#include "algos/columnsort.hpp"
#include "algos/gossip.hpp"
#include "algos/list_ranking.hpp"
#include "algos/one_to_all.hpp"
#include "algos/prefix.hpp"
#include "algos/reduce.hpp"
#include "algos/sorting.hpp"

// Sections 4.1 and 5: PRAM substrates.
#include "pram/cr_sim.hpp"
#include "pram/h_relation.hpp"
#include "pram/leader.hpp"
#include "pram/pram.hpp"

// Section 6.2: adversarial queuing.
#include "aqt/adversary.hpp"
#include "aqt/dynamic.hpp"
#include "aqt/sliding.hpp"

// Observability: cost-attribution tracing, metrics, exporters
// (docs/OBSERVABILITY.md).
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// Utilities used throughout.
#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/zipf.hpp"
