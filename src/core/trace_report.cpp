#include "core/trace_report.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <sstream>

namespace pbw::core {

std::string cost_term_name(CostTerm term) {
  switch (term) {
    case CostTerm::kWork: return "work (w)";
    case CostTerm::kGap: return "per-proc comm (h / g*h)";
    case CostTerm::kAggregate: return "aggregate bandwidth (c_m, n/m)";
    case CostTerm::kContention: return "contention (kappa)";
    case CostTerm::kLatency: return "latency (L)";
  }
  return "?";
}

double CostBreakdown::fraction(CostTerm term) const {
  if (total <= 0.0) return 0.0;
  switch (term) {
    case CostTerm::kWork: return work / total;
    case CostTerm::kGap: return gap / total;
    case CostTerm::kAggregate: return aggregate / total;
    case CostTerm::kContention: return contention / total;
    case CostTerm::kLatency: return latency / total;
  }
  return 0.0;
}

std::string CostBreakdown::render() const {
  std::ostringstream out;
  out << "cost breakdown over " << supersteps << " supersteps (total " << total
      << "):\n";
  const std::array<std::pair<CostTerm, double>, 5> rows{
      {{CostTerm::kWork, work},
       {CostTerm::kGap, gap},
       {CostTerm::kAggregate, aggregate},
       {CostTerm::kContention, contention},
       {CostTerm::kLatency, latency}}};
  for (const auto& [term, value] : rows) {
    if (value <= 0.0) continue;
    char line[128];
    std::snprintf(line, sizeof line, "  %-32s %12.4g  (%5.1f%%)\n",
                  cost_term_name(term).c_str(), value,
                  100.0 * (total > 0 ? value / total : 0.0));
    out << line;
  }
  return out.str();
}

CostBreakdown analyze_trace(const engine::RunResult& run,
                            const ModelParams& params, TraceModel model,
                            Penalty penalty) {
  CostBreakdown breakdown;
  for (const auto& record : run.trace) {
    const auto& stats = record.stats;

    double work = stats.max_work;
    double gap = 0.0;
    double aggregate = 0.0;
    double contention = 0.0;
    double latency = 0.0;

    const auto msg_h = static_cast<double>(std::max(stats.max_sent, stats.max_received));
    const auto mem_h = static_cast<double>(std::max(stats.max_reads, stats.max_writes));

    engine::SimTime c_m = 0.0;
    for (std::uint64_t m_t : stats.slot_counts) {
      c_m += overload_charge(m_t, params.m, penalty);
    }

    switch (model) {
      case TraceModel::kBspG:
        gap = params.g * msg_h;
        latency = params.L;
        break;
      case TraceModel::kBspM:
        gap = msg_h;
        aggregate = c_m;
        latency = params.L;
        break;
      case TraceModel::kQsmG:
        gap = mem_h > 0 ? params.g * std::max(1.0, mem_h) : 0.0;
        contention = static_cast<double>(stats.kappa);
        break;
      case TraceModel::kQsmM:
        gap = mem_h;
        aggregate = c_m;
        contention = static_cast<double>(stats.kappa);
        break;
      case TraceModel::kSelfSchedBspM:
        gap = msg_h;
        aggregate = static_cast<double>(stats.total_flits) /
                    static_cast<double>(params.m);
        latency = params.L;
        break;
    }

    const double cost = record.cost;
    // Attribute to the dominant term; ties break in declaration order.
    const std::array<std::pair<CostTerm, double>, 5> terms{
        {{CostTerm::kWork, work},
         {CostTerm::kGap, gap},
         {CostTerm::kAggregate, aggregate},
         {CostTerm::kContention, contention},
         {CostTerm::kLatency, latency}}};
    const auto dominant = std::max_element(
        terms.begin(), terms.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    switch (dominant->first) {
      case CostTerm::kWork: breakdown.work += cost; break;
      case CostTerm::kGap: breakdown.gap += cost; break;
      case CostTerm::kAggregate: breakdown.aggregate += cost; break;
      case CostTerm::kContention: breakdown.contention += cost; break;
      case CostTerm::kLatency: breakdown.latency += cost; break;
    }
    breakdown.total += cost;
    ++breakdown.supersteps;
  }
  return breakdown;
}

CostBreakdown analyze_trace(const engine::RunResult& run,
                            const engine::CostModel& model) {
  CostBreakdown breakdown;
  for (const auto& record : run.trace) {
    const engine::CostComponents comps = model.cost_components(record.stats);
    const char* dom = comps.dominant();
    const double cost = record.cost;
    if (std::strcmp(dom, "w") == 0) {
      breakdown.work += cost;
    } else if (std::strcmp(dom, "gh") == 0 || std::strcmp(dom, "h") == 0) {
      breakdown.gap += cost;
    } else if (std::strcmp(dom, "cm") == 0) {
      breakdown.aggregate += cost;
    } else if (std::strcmp(dom, "kappa") == 0) {
      breakdown.contention += cost;
    } else {
      breakdown.latency += cost;
    }
    breakdown.total += cost;
    ++breakdown.supersteps;
  }
  return breakdown;
}

}  // namespace pbw::core
