#include "core/bounds.hpp"

#include <algorithm>
#include <cmath>

namespace pbw::core::bounds {

double lg(double x) { return std::max(1.0, std::log2(x)); }

double one_to_all_local(std::uint32_t p, double g, double L, bool bsp) {
  const double comm = g * static_cast<double>(p - 1);
  return bsp ? std::max(comm, L) : comm;
}

double one_to_all_global(std::uint32_t p, double L, bool bsp) {
  const double comm = static_cast<double>(p - 1);
  return bsp ? std::max(comm, L) : comm;
}

double broadcast_qsm_m(std::uint32_t p, std::uint32_t m) {
  return lg(m) + static_cast<double>(p) / static_cast<double>(m);
}

double broadcast_qsm_g(std::uint32_t p, double g) {
  return g * lg(p) / lg(g);
}

double broadcast_bsp_m(std::uint32_t p, std::uint32_t m, double L) {
  return L * lg(m) / lg(L) + static_cast<double>(p) / static_cast<double>(m) + L;
}

double broadcast_bsp_g(std::uint32_t p, double g, double L) {
  return L * lg(p) / lg(L / g);
}

double broadcast_bsp_g_lower(std::uint32_t p, double g, double L) {
  return L * lg(p) / (2.0 * std::max(1.0, std::log2(2.0 * L / g + 1.0)));
}

double broadcast_ternary(std::uint32_t p, double g) {
  return g * std::ceil(std::log(static_cast<double>(p)) / std::log(3.0));
}

double reduce_qsm_m(std::uint64_t n, std::uint32_t m) {
  return lg(m) + static_cast<double>(n) / static_cast<double>(m);
}

double reduce_qsm_g_lower(std::uint64_t n, double g) {
  return g * lg(static_cast<double>(n)) / lg(lg(static_cast<double>(n)));
}

double reduce_bsp_m(std::uint64_t n, std::uint32_t m, double L) {
  return L * lg(m) / lg(L) + static_cast<double>(n) / static_cast<double>(m) + L;
}

double reduce_bsp_g(std::uint64_t n, double g, double L) {
  return L * lg(static_cast<double>(n)) / lg(L / g);
}

double list_rank_qsm_m(std::uint64_t n, std::uint32_t m) {
  return lg(m) + static_cast<double>(n) / static_cast<double>(m);
}

double list_rank_bsp_m(std::uint64_t n, std::uint32_t m, double L) {
  return L * lg(m) + static_cast<double>(n) / static_cast<double>(m);
}

double list_rank_local_lower(std::uint64_t n, double g, double L, bool bsp) {
  const double bound =
      g * lg(static_cast<double>(n)) / lg(lg(static_cast<double>(n)));
  return bsp ? bound + L : bound;
}

double sort_qsm_m(std::uint64_t n, std::uint32_t m) {
  return static_cast<double>(n) / static_cast<double>(m);
}

double sort_bsp_m(std::uint64_t n, std::uint32_t m, double L) {
  return static_cast<double>(n) / static_cast<double>(m) + L;
}

double sort_local_lower(std::uint64_t n, double g, double L, bool bsp) {
  return list_rank_local_lower(n, g, L, bsp);
}

std::uint32_t lg_star(double x) {
  std::uint32_t count = 0;
  while (x > 1.0) {
    x = std::log2(x);
    ++count;
  }
  return count;
}

double det_transfer(double crcw_lower, double g) { return g * crcw_lower; }

double rand_transfer(double crcw_lower, double g, double L, std::uint32_t p) {
  const double star = std::max<double>(1, lg_star(static_cast<double>(p)));
  return g * crcw_lower * std::min((L + g) / (g * star), 1.0);
}

double cr_step_sim_qsm_m(std::uint32_t p, std::uint32_t m) {
  return static_cast<double>(p) / static_cast<double>(m);
}

double leader_qsm_m_lower(std::uint32_t p, std::uint32_t m,
                          std::uint32_t word_bits) {
  return static_cast<double>(p) * lg(m) /
         (2.0 * static_cast<double>(m) * static_cast<double>(word_bits));
}

double leader_cr_upper(std::uint32_t p, std::uint32_t word_bits) {
  return std::max(lg(p) / static_cast<double>(word_bits), 1.0);
}

double er_cr_separation(std::uint32_t p, std::uint32_t m) {
  return static_cast<double>(p) * lg(m) / (static_cast<double>(m) * lg(p));
}

double routing_bsp_g(std::uint64_t xbar, std::uint64_t ybar, double g, double L) {
  return std::max(g * static_cast<double>(std::max(xbar, ybar)), L);
}

double routing_bsp_m_optimal(std::uint64_t n, std::uint64_t xbar,
                             std::uint64_t ybar, std::uint32_t m, double L) {
  return std::max({static_cast<double>(n) / static_cast<double>(m),
                   static_cast<double>(xbar), static_cast<double>(ybar), L});
}

double count_n_time(std::uint32_t p, std::uint32_t m, double L) {
  return static_cast<double>(p) / static_cast<double>(m) + L + L * lg(m) / lg(L);
}

double unbalanced_send_bound(std::uint64_t n, std::uint64_t xbar,
                             std::uint64_t ybar, std::uint32_t p, std::uint32_t m,
                             double L, double eps) {
  const double body = std::max(
      {(1.0 + eps) * static_cast<double>(n) / static_cast<double>(m),
       static_cast<double>(xbar), static_cast<double>(ybar), L});
  return body + count_n_time(p, m, L);
}

double consecutive_send_bound(std::uint64_t n, std::uint64_t xbar,
                              std::uint64_t ybar, std::uint64_t xbar_small,
                              std::uint32_t p, std::uint32_t m, double L,
                              double eps) {
  const double body = std::max(
      {(1.0 + eps) * static_cast<double>(n) / static_cast<double>(m) +
           static_cast<double>(xbar_small),
       static_cast<double>(xbar), static_cast<double>(ybar), L});
  return body + count_n_time(p, m, L);
}

double unbalanced_send_failure_prob(std::uint64_t n, std::uint32_t m, double eps) {
  const double per_slot = std::exp(-eps * eps * static_cast<double>(m) / 3.0);
  const double slots = (1.0 + eps) * static_cast<double>(n) / static_cast<double>(m);
  return std::min(1.0, slots * per_slot);
}

bool bsp_g_stable(double beta, double g) { return beta <= 1.0 / g; }

double algob_alpha_limit(std::uint32_t m, double a, double w, double u) {
  return static_cast<double>(m) / a - static_cast<double>(m) * u / (w * a);
}

double algob_beta_limit(double b, double w, double u) {
  return 1.0 / b - u / (w * b);
}

}  // namespace pbw::core::bounds
