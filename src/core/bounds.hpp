// Every closed-form bound in the paper, as named functions.
//
// A lower bound cannot be "run"; the reproducible artifact is the bound
// curve printed next to the measured cost of the matching algorithm.  Each
// function cites the paper location it implements.  lg denotes log base 2;
// logarithms are guarded so the formulas stay finite at the small-parameter
// boundary (lg of anything < 2 is treated as 1, matching the Theta()
// reading of the bounds).
#pragma once

#include <cstdint>

namespace pbw::core::bounds {

/// Guarded base-2 logarithm: max(1, lg x).
[[nodiscard]] double lg(double x);

// ---- Section 4 intro: one-to-all personalized communication ------------

/// QSM(g)/BSP(g) LB: g * (p - 1) [+L for BSP].
[[nodiscard]] double one_to_all_local(std::uint32_t p, double g, double L,
                                      bool bsp);
/// QSM(m)/BSP(m): p - 1 [max with L for BSP]; bandwidth is never the
/// bottleneck for any m >= 1.
[[nodiscard]] double one_to_all_global(std::uint32_t p, double L, bool bsp);

// ---- Table 1: broadcasting ----------------------------------------------

/// QSM(m) UB: lg m + p/m.
[[nodiscard]] double broadcast_qsm_m(std::uint32_t p, std::uint32_t m);
/// QSM(g) bound: g * lg p / lg g.
[[nodiscard]] double broadcast_qsm_g(std::uint32_t p, double g);
/// BSP(m) UB: L * lg m / lg L + p/m + L.
[[nodiscard]] double broadcast_bsp_m(std::uint32_t p, std::uint32_t m, double L);
/// BSP(g) bound: L * lg p / lg(L/g).
[[nodiscard]] double broadcast_bsp_g(std::uint32_t p, double g, double L);
/// Theorem 4.1 LB for BSP(g): L * lg p / (2 * lg(2L/g + 1)).
[[nodiscard]] double broadcast_bsp_g_lower(std::uint32_t p, double g, double L);
/// Non-receipt ternary algorithm UB: g * ceil(log_3 p), valid when L <= g.
[[nodiscard]] double broadcast_ternary(std::uint32_t p, double g);

// ---- Table 1: parity / summation ---------------------------------------

/// QSM(m) UB: lg m + n/m.
[[nodiscard]] double reduce_qsm_m(std::uint64_t n, std::uint32_t m);
/// QSM(g) LB (Beame-Hastad transfer): g * lg n / lg lg n.
[[nodiscard]] double reduce_qsm_g_lower(std::uint64_t n, double g);
/// BSP(m) UB: L * lg m / lg L + n/m + L.
[[nodiscard]] double reduce_bsp_m(std::uint64_t n, std::uint32_t m, double L);
/// BSP(g) bound: L * lg n / lg(L/g).
[[nodiscard]] double reduce_bsp_g(std::uint64_t n, double g, double L);

// ---- Table 1: list ranking ----------------------------------------------

/// QSM(m) UB: lg m + n/m   (via work-optimal EREW simulation).
[[nodiscard]] double list_rank_qsm_m(std::uint64_t n, std::uint32_t m);
/// BSP(m) UB: L * lg m + n/m.
[[nodiscard]] double list_rank_bsp_m(std::uint64_t n, std::uint32_t m, double L);
/// QSM(g)/BSP(g) LB: g * lg n / lg lg n [+L for BSP].
[[nodiscard]] double list_rank_local_lower(std::uint64_t n, double g, double L,
                                           bool bsp);

// ---- Table 1: sorting ----------------------------------------------------

/// QSM(m) bound: n/m, valid for m = O(n^{1-eps}).
[[nodiscard]] double sort_qsm_m(std::uint64_t n, std::uint32_t m);
/// BSP(m) bound: n/m + L.
[[nodiscard]] double sort_bsp_m(std::uint64_t n, std::uint32_t m, double L);
/// QSM(g)/BSP(g) LB: g * lg n / lg lg n [+L for BSP].
[[nodiscard]] double sort_local_lower(std::uint64_t n, double g, double L, bool bsp);

// ---- Section 4.1: CRCW-to-BSP(g) lower-bound transfer ---------------------

/// Iterated logarithm lg* x (number of lg applications to reach <= 1).
[[nodiscard]] std::uint32_t lg_star(double x);

/// Deterministic transfer: a CRCW PRAM time lower bound t(n) becomes a
/// BSP(g) lower bound g * t(n) (via the O(h) h-relation realization).
[[nodiscard]] double det_transfer(double crcw_lower, double g);

/// Randomized transfer: t(n) becomes g * t(n) * min((L+g)/(g lg* p), 1)
/// (via the O(h + lg* p)-time randomized h-relation realization).
[[nodiscard]] double rand_transfer(double crcw_lower, double g, double L,
                                   std::uint32_t p);

// ---- Section 5: concurrent read -----------------------------------------

/// Theorem 5.1 UB: simulate one CRCW PRAM(m) step on QSM(m) in O(p/m).
[[nodiscard]] double cr_step_sim_qsm_m(std::uint32_t p, std::uint32_t m);
/// Lemma 5.3 LB for Leader Recognition on QSM(m): p * lg m / (2 m w).
[[nodiscard]] double leader_qsm_m_lower(std::uint32_t p, std::uint32_t m,
                                        std::uint32_t word_bits);
/// CR PRAM(m) Leader Recognition UB: max(lg p / w, 1).
[[nodiscard]] double leader_cr_upper(std::uint32_t p, std::uint32_t word_bits);
/// ER-vs-CR PRAM(m) separation: p * lg m / (m * lg p).
[[nodiscard]] double er_cr_separation(std::uint32_t p, std::uint32_t m);

// ---- Section 6: unbalanced h-relations -----------------------------------

/// Proposition 6.1: BSP(g) routing cost Theta(g (xbar + ybar) + L).
[[nodiscard]] double routing_bsp_g(std::uint64_t xbar, std::uint64_t ybar,
                                   double g, double L);
/// The globally-limited routing LB: max(n/m, xbar, ybar, L).
[[nodiscard]] double routing_bsp_m_optimal(std::uint64_t n, std::uint64_t xbar,
                                           std::uint64_t ybar, std::uint32_t m,
                                           double L);
/// tau of Theorem 6.2: time to compute and broadcast n:
/// p/m + L + L lg m / lg L.
[[nodiscard]] double count_n_time(std::uint32_t p, std::uint32_t m, double L);
/// Theorem 6.2 UB: max((1+eps) n/m, xbar, ybar, L) + tau.
[[nodiscard]] double unbalanced_send_bound(std::uint64_t n, std::uint64_t xbar,
                                           std::uint64_t ybar, std::uint32_t p,
                                           std::uint32_t m, double L, double eps);
/// Theorem 6.3 UB: max((1+eps) n/m + xbar_small, xbar, ybar, L) + tau, where
/// xbar_small is the max x_i among processors with x_i <= (1+eps) n/m.
[[nodiscard]] double consecutive_send_bound(std::uint64_t n, std::uint64_t xbar,
                                            std::uint64_t ybar,
                                            std::uint64_t xbar_small,
                                            std::uint32_t p, std::uint32_t m,
                                            double L, double eps);
/// Chernoff failure probability per slot used in Theorem 6.2's proof:
/// exp(-eps^2 m / 3), and the union bound over (1+eps)n/m slots.
[[nodiscard]] double unbalanced_send_failure_prob(std::uint64_t n, std::uint32_t m,
                                                  double eps);

// ---- Section 6.2: dynamic (adversarial queuing) ---------------------------

/// Theorem 6.5: BSP(g) is unstable iff the local arrival rate beta > 1/g.
[[nodiscard]] bool bsp_g_stable(double beta, double g);
/// Theorem 6.7 admissible rates for Algorithm B, given the inner
/// algorithm's (a, b) constants, window w and slack u:
/// alpha <= m/a - m u/(w a), beta <= 1/b - u/(w b).
[[nodiscard]] double algob_alpha_limit(std::uint32_t m, double a, double w,
                                       double u);
[[nodiscard]] double algob_beta_limit(double b, double w, double u);

}  // namespace pbw::core::bounds
