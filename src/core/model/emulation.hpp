// The locally-limited-on-globally-limited emulation of Section 4.
//
// "Any QSM(g) algorithm can be emulated on the QSM(m) with the same time
// bound, as can a BSP(g) algorithm on a BSP(m).  This is done by grouping
// the processors (arbitrarily) into g groups of p/g processors each, and by
// subdividing each communication step into g substeps.  The processors send
// their messages in the ith substep of each communication step."
//
// In slot terms: processor i's k-th injection (k = 0, 1, ...) goes into
// slot k*g + (i mod g) + 1.  At most ceil(p/g) = m processors then share
// any slot, so the aggregate limit is respected and the g-model charge
// g * h becomes the occupied-slot count g * h on the m-model.
#pragma once

#include <cstdint>

#include "engine/types.hpp"

namespace pbw::core {

/// Slot for processor `proc`'s k-th injection under the grouping emulation
/// with gap `g` (rounded to an integer substep count, at least 1).
[[nodiscard]] inline engine::Slot emulation_slot(engine::ProcId proc,
                                                 std::uint32_t k, double g) {
  const auto substeps = static_cast<std::uint32_t>(g < 1.0 ? 1.0 : g);
  return static_cast<engine::Slot>(k) * substeps + (proc % substeps) + 1;
}

}  // namespace pbw::core
