#include "core/model/models.hpp"

#include <algorithm>
#include <cstdio>

namespace pbw::core {
namespace {

std::string format_name(const char* base, const ModelParams& params, bool local,
                        const char* suffix = "") {
  char buf[96];
  if (local) {
    std::snprintf(buf, sizeof buf, "%s(g=%g,L=%g,p=%u)%s", base, params.g,
                  params.L, params.p, suffix);
  } else {
    std::snprintf(buf, sizeof buf, "%s(m=%u,L=%g,p=%u)%s", base, params.m,
                  params.L, params.p, suffix);
  }
  return buf;
}

}  // namespace

engine::SimTime ModelBase::aggregate_charge(const engine::SuperstepStats& stats,
                                            Penalty penalty) const {
  engine::SimTime c_m = 0.0;
  for (std::uint64_t m_t : stats.slot_counts) {
    c_m += overload_charge(m_t, params_.m, penalty);
  }
  return c_m;
}

engine::SimTime BspG::superstep_cost(const engine::SuperstepStats& stats) const {
  const auto h = static_cast<double>(std::max(stats.max_sent, stats.max_received));
  return std::max({stats.max_work, params_.g * h, params_.L});
}

std::string BspG::name() const { return format_name("BSP", params_, true); }

engine::SimTime BspM::superstep_cost(const engine::SuperstepStats& stats) const {
  const auto h = static_cast<double>(std::max(stats.max_sent, stats.max_received));
  const engine::SimTime c_m = aggregate_charge(stats, penalty_);
  return std::max({stats.max_work, h, c_m, params_.L});
}

std::string BspM::name() const {
  return format_name("BSP", params_, false,
                     penalty_ == Penalty::kLinear ? "[lin]" : "[exp]");
}

engine::SimTime QsmG::superstep_cost(const engine::SuperstepStats& stats) const {
  // QSM charges h = max(1, max_i(r_i, w_i)): even a communication-free
  // phase pays one gap unit, so every superstep costs at least g.
  const std::uint64_t raw_h = std::max(stats.max_reads, stats.max_writes);
  const double h = static_cast<double>(std::max<std::uint64_t>(raw_h, 1));
  return std::max({stats.max_work, params_.g * h, static_cast<double>(stats.kappa)});
}

std::string QsmG::name() const { return format_name("QSM", params_, true); }

engine::SimTime QsmM::superstep_cost(const engine::SuperstepStats& stats) const {
  const auto h = static_cast<double>(std::max(stats.max_reads, stats.max_writes));
  const engine::SimTime c_m = aggregate_charge(stats, penalty_);
  return std::max(
      {stats.max_work, h, static_cast<double>(stats.kappa), c_m});
}

std::string QsmM::name() const {
  return format_name("QSM", params_, false,
                     penalty_ == Penalty::kLinear ? "[lin]" : "[exp]");
}

engine::SimTime SelfSchedulingBspM::superstep_cost(
    const engine::SuperstepStats& stats) const {
  const auto h = static_cast<double>(std::max(stats.max_sent, stats.max_received));
  const double bandwidth = static_cast<double>(stats.total_flits) /
                           static_cast<double>(params_.m);
  return std::max({stats.max_work, h, bandwidth, params_.L});
}

std::string SelfSchedulingBspM::name() const {
  return format_name("SS-BSP", params_, false);
}

}  // namespace pbw::core
