#include "core/model/models.hpp"

#include <algorithm>
#include <cstdio>

#include "core/model/charge.hpp"

namespace pbw::core {
namespace {

std::string format_name(const char* base, const ModelParams& params, bool local,
                        const char* suffix = "") {
  char buf[96];
  if (local) {
    std::snprintf(buf, sizeof buf, "%s(g=%g,L=%g,p=%u)%s", base, params.g,
                  params.L, params.p, suffix);
  } else {
    std::snprintf(buf, sizeof buf, "%s(m=%u,L=%g,p=%u)%s", base, params.m,
                  params.L, params.p, suffix);
  }
  return buf;
}

}  // namespace

engine::SimTime ModelBase::aggregate_charge(const engine::SuperstepStats& stats,
                                            Penalty penalty) const {
  engine::SimTime c_m = 0.0;
  for (std::uint64_t m_t : stats.slot_counts) {
    c_m += overload_charge(m_t, params_.m, penalty);
  }
  return c_m;
}

// Each model's superstep_cost is the max over its cost_components, and is
// computed that way: the component split is the single source of truth, so
// the attribution the tracer emits can never drift from the charge.  The
// raw-counter -> term derivations come from core/model/charge.hpp, the
// same helpers the non-virtual batch-recost functors use, so the two
// charging paths cannot diverge on how a term is computed.

engine::SimTime BspG::superstep_cost(const engine::SuperstepStats& stats) const {
  return cost_components(stats).max_term();
}

engine::CostComponents BspG::cost_components(
    const engine::SuperstepStats& stats) const {
  engine::CostComponents c;
  c.w = stats.max_work;
  c.gh = params_.g * charge::flit_h(stats.max_sent, stats.max_received);
  c.L = params_.L;
  return c;
}

std::string BspG::name() const { return format_name("BSP", params_, true); }

engine::SimTime BspM::superstep_cost(const engine::SuperstepStats& stats) const {
  return cost_components(stats).max_term();
}

engine::CostComponents BspM::cost_components(
    const engine::SuperstepStats& stats) const {
  engine::CostComponents c;
  c.w = stats.max_work;
  c.h = charge::flit_h(stats.max_sent, stats.max_received);
  c.cm = aggregate_charge(stats, penalty_);
  c.L = params_.L;
  return c;
}

std::string BspM::name() const {
  return format_name("BSP", params_, false,
                     penalty_ == Penalty::kLinear ? "[lin]" : "[exp]");
}

engine::SimTime QsmG::superstep_cost(const engine::SuperstepStats& stats) const {
  return cost_components(stats).max_term();
}

engine::CostComponents QsmG::cost_components(
    const engine::SuperstepStats& stats) const {
  // QSM charges h = max(1, max_i(r_i, w_i)): even a communication-free
  // phase pays one gap unit, so every superstep costs at least g.
  engine::CostComponents c;
  c.w = stats.max_work;
  c.gh = params_.g * charge::mem_h_floor1(stats.max_reads, stats.max_writes);
  c.kappa = static_cast<double>(stats.kappa);
  return c;
}

std::string QsmG::name() const { return format_name("QSM", params_, true); }

engine::SimTime QsmM::superstep_cost(const engine::SuperstepStats& stats) const {
  return cost_components(stats).max_term();
}

engine::CostComponents QsmM::cost_components(
    const engine::SuperstepStats& stats) const {
  engine::CostComponents c;
  c.w = stats.max_work;
  c.h = charge::mem_h(stats.max_reads, stats.max_writes);
  c.cm = aggregate_charge(stats, penalty_);
  c.kappa = static_cast<double>(stats.kappa);
  return c;
}

std::string QsmM::name() const {
  return format_name("QSM", params_, false,
                     penalty_ == Penalty::kLinear ? "[lin]" : "[exp]");
}

engine::SimTime SelfSchedulingBspM::superstep_cost(
    const engine::SuperstepStats& stats) const {
  return cost_components(stats).max_term();
}

engine::CostComponents SelfSchedulingBspM::cost_components(
    const engine::SuperstepStats& stats) const {
  engine::CostComponents c;
  c.w = stats.max_work;
  c.h = charge::flit_h(stats.max_sent, stats.max_received);
  c.cm = charge::self_sched_cm(stats.total_flits, params_.m);
  c.L = params_.L;
  return c;
}

std::string SelfSchedulingBspM::name() const {
  return format_name("SS-BSP", params_, false);
}

}  // namespace pbw::core
