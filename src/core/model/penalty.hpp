// Overload penalty functions f_m for the globally-limited models.
//
// Section 2: f_m(m_t) = 0 when m_t = 0, = 1 when 1 <= m_t <= m, and when
// m_t > m it is an increasing function with f_m(m_t) >= m_t/m.  The paper
// uses the linear charge for lower bounds and the exponential charge
// e^{m_t/m - 1} for upper bounds ("the breaking point at which the
// performance of the network deteriorates drastically").
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "engine/types.hpp"

namespace pbw::core {

enum class Penalty {
  kLinear,       ///< f_m(m_t) = m_t / m for m_t > m (lower-bound model)
  kExponential,  ///< f_m(m_t) = e^{m_t/m - 1} for m_t > m (upper-bound model)
};

/// f_m(m_t) for aggregate limit m under the given penalty regime.
[[nodiscard]] inline engine::SimTime overload_charge(std::uint64_t m_t,
                                                     std::uint32_t m,
                                                     Penalty penalty) {
  // Callers that bypass ModelParams::check() (e.g. raw m fed to the
  // schedule evaluator) would otherwise divide by zero and poison every
  // downstream cost with inf/NaN.
  if (m == 0) throw std::invalid_argument("overload_charge: m == 0");
  if (m_t == 0) return 0.0;
  if (m_t <= m) return 1.0;
  const double ratio = static_cast<double>(m_t) / static_cast<double>(m);
  switch (penalty) {
    case Penalty::kLinear:
      return ratio;
    case Penalty::kExponential:
      return std::exp(ratio - 1.0);
  }
  return ratio;  // unreachable
}

[[nodiscard]] inline std::string penalty_name(Penalty penalty) {
  return penalty == Penalty::kLinear ? "linear" : "exp";
}

}  // namespace pbw::core
