// The four cost models of the paper, plus the self-scheduling BSP(m).
//
//   BSP(g):  T = max(w, g*h, L)           h = max_i max(s_i, r_i)
//   BSP(m):  T = max(w, h, c_m, L)        c_m = sum_t f_m(m_t)
//   QSM(g):  T = max(w, g*h, kappa)       h = max(1, max_i max(r_i, w_i))
//   QSM(m):  T = max(w, h, kappa, c_m)
//   self-scheduling BSP(m):  T = max(w, h, n/m, L)
//
// Section 6's scheduling theorems justify replacing BSP(m) by the
// self-scheduling variant in most situations; bench_selfsched quantifies
// the (1+eps) gap between the two.
#pragma once

#include <memory>
#include <string>

#include "core/model/params.hpp"
#include "core/model/penalty.hpp"
#include "engine/cost.hpp"

namespace pbw::core {

/// Common base holding the parameters.
class ModelBase : public engine::CostModel {
 public:
  explicit ModelBase(ModelParams params) : params_(params) { params_.check(); }
  [[nodiscard]] std::uint32_t processors() const override { return params_.p; }
  [[nodiscard]] const ModelParams& params() const noexcept { return params_; }

 protected:
  /// c_m = sum_t f_m(m_t) over the occupied slots of a superstep.
  [[nodiscard]] engine::SimTime aggregate_charge(
      const engine::SuperstepStats& stats, Penalty penalty) const;

  ModelParams params_;
};

/// The BSP model of Valiant with per-processor gap g (locally limited).
class BspG final : public ModelBase {
 public:
  using ModelBase::ModelBase;
  [[nodiscard]] engine::SimTime superstep_cost(
      const engine::SuperstepStats& stats) const override;
  [[nodiscard]] engine::CostComponents cost_components(
      const engine::SuperstepStats& stats) const override;
  [[nodiscard]] std::string name() const override;
};

/// The BSP(m) model defined in Section 2 (globally limited).
class BspM final : public ModelBase {
 public:
  BspM(ModelParams params, Penalty penalty = Penalty::kExponential)
      : ModelBase(params), penalty_(penalty) {}
  [[nodiscard]] engine::SimTime superstep_cost(
      const engine::SuperstepStats& stats) const override;
  [[nodiscard]] engine::CostComponents cost_components(
      const engine::SuperstepStats& stats) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Penalty penalty() const noexcept { return penalty_; }

 private:
  Penalty penalty_;
};

/// The Queuing Shared Memory model with per-processor gap g.
class QsmG final : public ModelBase {
 public:
  using ModelBase::ModelBase;
  [[nodiscard]] engine::SimTime superstep_cost(
      const engine::SuperstepStats& stats) const override;
  [[nodiscard]] engine::CostComponents cost_components(
      const engine::SuperstepStats& stats) const override;
  [[nodiscard]] std::string name() const override;
};

/// The QSM(m) model defined in Section 2 (globally limited).
class QsmM final : public ModelBase {
 public:
  QsmM(ModelParams params, Penalty penalty = Penalty::kExponential)
      : ModelBase(params), penalty_(penalty) {}
  [[nodiscard]] engine::SimTime superstep_cost(
      const engine::SuperstepStats& stats) const override;
  [[nodiscard]] engine::CostComponents cost_components(
      const engine::SuperstepStats& stats) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] Penalty penalty() const noexcept { return penalty_; }

 private:
  Penalty penalty_;
};

/// The self-scheduling BSP(m): ignores injection slots and charges
/// max(w, h, n/m, L) for a superstep transmitting n flits (Section 2,
/// "A simplified cost metric").
class SelfSchedulingBspM final : public ModelBase {
 public:
  using ModelBase::ModelBase;
  [[nodiscard]] engine::SimTime superstep_cost(
      const engine::SuperstepStats& stats) const override;
  [[nodiscard]] engine::CostComponents cost_components(
      const engine::SuperstepStats& stats) const override;
  [[nodiscard]] std::string name() const override;
};

}  // namespace pbw::core
