// Model parameters shared by the four models of the paper.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace pbw::core {

/// Parameter bundle.  Following Section 4, comparisons between local and
/// global models hold the aggregate bandwidth fixed: p * (1/g) = m, i.e.
/// g = p / m.
struct ModelParams {
  std::uint32_t p = 1;   ///< processors
  double g = 1.0;        ///< per-processor gap (locally-limited models)
  std::uint32_t m = 1;   ///< aggregate bandwidth (globally-limited models)
  double L = 1.0;        ///< BSP latency / periodicity parameter

  void check() const {
    if (p == 0) throw std::invalid_argument("ModelParams: p == 0");
    if (g < 1.0) throw std::invalid_argument("ModelParams: g < 1");
    if (m == 0) throw std::invalid_argument("ModelParams: m == 0");
    if (L < 1.0) throw std::invalid_argument("ModelParams: L < 1");
  }

  /// Matched pair: given p and g, the globally-limited counterpart with the
  /// same aggregate bandwidth has m = p/g (rounded down, at least 1).
  [[nodiscard]] static ModelParams matched(std::uint32_t p, double g, double L) {
    ModelParams params;
    params.p = p;
    params.g = g;
    params.m = static_cast<std::uint32_t>(p / g);
    if (params.m == 0) params.m = 1;
    params.L = L;
    params.check();
    return params;
  }
};

}  // namespace pbw::core
