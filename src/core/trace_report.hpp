// Cost-term attribution for traced runs.
//
// Every model of the paper charges a superstep max(...) over a handful of
// terms (work, g*h or h, c_m, kappa, L).  When tuning an algorithm it
// matters *which* term bound each superstep: a c_m-bound superstep needs
// better staggering, an h-bound one needs load balancing, an L-bound one
// is latency floor.  analyze_trace() classifies every superstep of a
// traced RunResult and aggregates time per dominant term.
#pragma once

#include <cstdint>
#include <string>

#include "core/model/params.hpp"
#include "core/model/penalty.hpp"
#include "engine/machine.hpp"

namespace pbw::core {

enum class CostTerm { kWork, kGap, kAggregate, kContention, kLatency };

[[nodiscard]] std::string cost_term_name(CostTerm term);

struct CostBreakdown {
  double work = 0.0;        ///< time in supersteps bound by local work
  double gap = 0.0;         ///< ... by g*h (local models) or h (global)
  double aggregate = 0.0;   ///< ... by c_m (or n/m for self-scheduling)
  double contention = 0.0;  ///< ... by kappa (QSM models)
  double latency = 0.0;     ///< ... by L
  std::uint64_t supersteps = 0;
  double total = 0.0;

  /// Fraction of total time attributed to `term`.
  [[nodiscard]] double fraction(CostTerm term) const;
  /// Multi-line human-readable report.
  [[nodiscard]] std::string render() const;
};

/// Which model family the trace was charged under.
enum class TraceModel { kBspG, kBspM, kQsmG, kQsmM, kSelfSchedBspM };

/// Attributes each traced superstep's cost to its dominant term (ties go
/// to the earlier term in the CostTerm order).  The run must have been
/// executed with MachineOptions::trace = true.
[[nodiscard]] CostBreakdown analyze_trace(const engine::RunResult& run,
                                          const ModelParams& params,
                                          TraceModel model,
                                          Penalty penalty = Penalty::kExponential);

/// Same attribution driven by the model's own cost_components() instead of
/// re-deriving the terms from (params, TraceModel, penalty) — works for
/// any CostModel, and cannot disagree with what the run was charged.  The
/// gh and h components both map to CostTerm::kGap.
[[nodiscard]] CostBreakdown analyze_trace(const engine::RunResult& run,
                                          const engine::CostModel& model);

}  // namespace pbw::core
