#include "aqt/dynamic.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "core/bounds.hpp"
#include "sched/relation.hpp"
#include "sched/schedule.hpp"
#include "sched/senders.hpp"
#include "util/stats.hpp"

namespace pbw::aqt {
namespace {

sched::Relation batch_to_relation(const std::vector<Arrival>& batch,
                                  std::uint32_t p) {
  sched::Relation rel(p);
  for (const auto& a : batch) rel.add(a.src, a.dst);
  return rel;
}

/// Shared FIFO queue dynamics: batch i becomes eligible at time (i+1)*w,
/// starts at max(eligible, previous completion), runs for `service`.
/// The queue sample at window boundary t*w counts messages of batches not
/// yet completed by that time.
DynamicResult simulate_queue(Adversary& adversary, std::uint64_t windows,
                             std::uint64_t seed,
                             const std::function<double(const sched::Relation&,
                                                        util::Xoshiro256&)>& service_time) {
  DynamicResult result;
  const auto& prm = adversary.params();
  util::RngStreams streams(seed);

  std::vector<std::uint64_t> batch_size(windows, 0);
  std::vector<double> completion(windows, 0.0);
  util::Accumulator service_acc;
  double prev_completion = 0.0;

  for (std::uint64_t i = 0; i < windows; ++i) {
    auto arrivals_rng = streams.stream(0xAD7E55ULL, i);
    const auto batch = adversary.interval(i, arrivals_rng);
    result.restrictions_ok &= respects_restrictions(batch, prm);
    batch_size[i] = batch.size();
    result.injected += batch.size();

    const auto rel = batch_to_relation(batch, prm.p);
    auto sched_rng = streams.stream(0x5EED5ULL, i);
    const double service = batch.empty() ? 0.0 : service_time(rel, sched_rng);
    service_acc.add(service);
    result.max_service = std::max(result.max_service, service);

    const double eligible = static_cast<double>((i + 1) * prm.w);
    const double start = std::max(eligible, prev_completion);
    completion[i] = start + service;
    prev_completion = completion[i];
  }
  result.mean_service = service_acc.mean();

  util::Accumulator sojourn_acc;
  for (std::uint64_t i = 0; i < windows; ++i) {
    sojourn_acc.add(completion[i] - static_cast<double>((i + 1) * prm.w));
  }
  result.mean_sojourn = sojourn_acc.mean();
  result.max_sojourn = sojourn_acc.max();

  // Queue samples at window boundaries.
  result.queue_series.resize(windows, 0.0);
  for (std::uint64_t t = 1; t <= windows; ++t) {
    const double now = static_cast<double>(t * prm.w);
    double queued = 0.0;
    for (std::uint64_t i = 0; i < windows; ++i) {
      const double injected_at = static_cast<double>(i * prm.w);
      if (injected_at < now && completion[i] > now) {
        queued += static_cast<double>(batch_size[i]);
      }
    }
    result.queue_series[t - 1] = queued;
  }
  for (std::uint64_t i = 0; i < windows; ++i) {
    if (completion[i] <= static_cast<double>(windows * prm.w)) {
      result.delivered += batch_size[i];
    }
  }

  const auto summary = util::summarize(result.queue_series);
  result.mean_queue = summary.mean;
  result.max_queue = summary.max;
  result.final_queue = result.queue_series.empty() ? 0.0 : result.queue_series.back();

  // Tail slope over the second half, in messages per window.
  const std::size_t half = result.queue_series.size() / 2;
  std::vector<double> xs, ys;
  for (std::size_t i = half; i < result.queue_series.size(); ++i) {
    xs.push_back(static_cast<double>(i));
    ys.push_back(result.queue_series[i]);
  }
  result.tail_slope = util::regression_slope(xs, ys);
  // Stable: no sustained drift and the backlog never exceeds a handful of
  // windows' worth of arrivals.
  const double per_window = prm.alpha * prm.w;
  result.stable = result.tail_slope < 0.05 * std::max(1.0, per_window) &&
                  result.final_queue <= 8.0 * std::max(1.0, per_window);
  return result;
}

}  // namespace

DynamicResult run_algorithm_b(Adversary& adversary, std::uint32_t m, double eps,
                              std::uint64_t windows, double L, BatchPolicy policy,
                              std::uint64_t seed) {
  const auto& prm = adversary.params();
  // Algorithm A is run with n fixed to the adversary's global budget, so
  // no counting phase is needed (tau = 0).
  const std::uint64_t n_fixed = prm.global_cap();
  return simulate_queue(
      adversary, windows, seed,
      [&](const sched::Relation& rel, util::Xoshiro256& rng) {
        sched::SlotSchedule schedule(rel.p());
        switch (policy) {
          case BatchPolicy::kUnbalancedSend:
            schedule = sched::unbalanced_send_schedule(
                rel, m, eps, std::max(n_fixed, rel.total_flits()), rng);
            break;
          case BatchPolicy::kNaive:
            schedule = sched::naive_schedule(rel);
            break;
          case BatchPolicy::kOffline:
            schedule = sched::offline_optimal_schedule(rel, m);
            break;
        }
        const auto cost = sched::evaluate_schedule(
            rel, schedule, m, core::Penalty::kExponential, L);
        return cost.total;
      });
}

DynamicResult run_bsp_g_dynamic(Adversary& adversary, double g,
                                std::uint64_t windows, double L,
                                std::uint64_t seed) {
  return simulate_queue(adversary, windows, seed,
                        [&](const sched::Relation& rel, util::Xoshiro256&) {
                          return core::bounds::routing_bsp_g(
                              rel.max_sent(), rel.max_received(), g, L);
                        });
}

double mg1_mean_queue(double arrival_rate, double mu1, double mu2) {
  const double rho = arrival_rate * mu1;
  if (rho >= 1.0) return std::numeric_limits<double>::infinity();
  return arrival_rate * mu1 +
         arrival_rate * arrival_rate * mu2 / (2.0 * (1.0 - rho));
}

ServiceMoments algob_service_moments(double w, double u) {
  ServiceMoments moments;
  // Converges quickly: terms decay like 1/k^3 and 1/k^2 respectively.
  for (int k = 1; k < 100000; ++k) {
    const double pk = 1.0 / std::pow(k, 4) - 1.0 / std::pow(k + 1, 4);
    const double v = static_cast<double>(k) * w / u;
    moments.mu1 += pk * v;
    moments.mu2 += pk * v * v;
  }
  return moments;
}

}  // namespace pbw::aqt
