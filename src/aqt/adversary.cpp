#include "aqt/adversary.hpp"

#include <algorithm>
#include <cmath>

namespace pbw::aqt {
namespace {

engine::ProcId other(engine::ProcId src, std::uint32_t p) {
  return p > 1 ? (src + 1) % p : src;
}

/// Fills `batch` with up to `count` additional messages spread round-robin
/// over sources starting at `first_src`, never exceeding the per-source or
/// per-destination caps already consumed by the existing batch contents.
void spread(std::vector<Arrival>& batch, std::uint64_t count,
            engine::ProcId first_src, const AqtParams& prm) {
  const std::uint32_t p = prm.p;
  if (p < 2) return;
  std::vector<std::uint64_t> out(p, 0), in(p, 0);
  for (const auto& a : batch) {
    ++out[a.src];
    ++in[a.dst];
  }
  const std::uint64_t cap = prm.local_cap();
  auto src = first_src % p;
  for (std::uint64_t k = 0; k < count; ++k) {
    std::uint32_t tries = 0;
    while (out[src] >= cap && tries++ < p) src = (src + 1) % p;
    if (out[src] >= cap) return;  // all sources saturated
    auto dst = other(src, p);
    tries = 0;
    while ((in[dst] >= cap || dst == src) && tries++ < p) dst = (dst + 1) % p;
    if (in[dst] >= cap || dst == src) return;
    batch.push_back(Arrival{src, dst});
    ++out[src];
    ++in[dst];
    src = (src + 1) % p;
  }
}

class Steady final : public Adversary {
 public:
  using Adversary::Adversary;
  std::vector<Arrival> interval(std::uint64_t index, util::Xoshiro256&) override {
    std::vector<Arrival> batch;
    spread(batch, params_.global_cap(),
           static_cast<engine::ProcId>(index % params_.p), params_);
    return batch;
  }
  std::string name() const override { return "steady"; }
};

class SingleSource : public Adversary {
 public:
  using Adversary::Adversary;
  std::vector<Arrival> interval(std::uint64_t, util::Xoshiro256& rng) override {
    return burst(0, rng);
  }
  std::string name() const override { return "single-source"; }

 protected:
  std::vector<Arrival> burst(engine::ProcId hot, util::Xoshiro256& rng) {
    const std::uint64_t total = params_.global_cap();
    const std::uint64_t hot_count = std::min(params_.local_cap(), total);
    std::vector<Arrival> batch;
    // The hot source sends its full local budget to random destinations
    // (spread so no destination exceeds its cap).
    for (std::uint64_t k = 0; k < hot_count; ++k) {
      auto dst = static_cast<engine::ProcId>(
          params_.p > 1 ? rng.below(params_.p - 1) : 0);
      if (dst >= hot) ++dst;
      // Enforce the per-destination cap deterministically by cycling.
      batch.push_back(Arrival{hot, dst});
    }
    rebalance_destinations(batch);
    spread(batch, total - hot_count, (hot + 1) % params_.p, params_);
    return batch;
  }

  /// Rewrites destinations so no destination exceeds the local cap.
  void rebalance_destinations(std::vector<Arrival>& batch) const {
    std::vector<std::uint64_t> load(params_.p, 0);
    for (auto& a : batch) {
      engine::ProcId dst = a.dst;
      while (load[dst] >= params_.local_cap() || dst == a.src) {
        dst = (dst + 1) % params_.p;
      }
      a.dst = dst;
      ++load[dst];
    }
  }
};

class RotatingHotspot final : public SingleSource {
 public:
  using SingleSource::SingleSource;
  std::vector<Arrival> interval(std::uint64_t index, util::Xoshiro256& rng) override {
    return burst(static_cast<engine::ProcId>(index % params_.p), rng);
  }
  std::string name() const override { return "rotating-hotspot"; }
};

class DestinationHotspot final : public Adversary {
 public:
  using Adversary::Adversary;
  std::vector<Arrival> interval(std::uint64_t index, util::Xoshiro256&) override {
    const std::uint64_t total = params_.global_cap();
    const std::uint64_t hot_count = std::min(params_.local_cap(), total);
    const auto hot = static_cast<engine::ProcId>(index % params_.p);
    std::vector<Arrival> batch;
    // hot destination drains the local cap, one message per source.
    for (std::uint64_t k = 0; k < hot_count; ++k) {
      const auto src =
          static_cast<engine::ProcId>((hot + 1 + k) % params_.p);
      if (src == hot) continue;
      batch.push_back(Arrival{src, hot});
    }
    spread(batch, total - batch.size(), (hot + 1) % params_.p, params_);
    return batch;
  }
  std::string name() const override { return "destination-hotspot"; }
};

class RandomAdversary final : public Adversary {
 public:
  using Adversary::Adversary;
  std::vector<Arrival> interval(std::uint64_t, util::Xoshiro256& rng) override {
    const std::uint64_t total = params_.global_cap();
    std::vector<std::uint64_t> out_load(params_.p, 0), in_load(params_.p, 0);
    std::vector<Arrival> batch;
    for (std::uint64_t k = 0; k < total; ++k) {
      engine::ProcId src = static_cast<engine::ProcId>(rng.below(params_.p));
      for (std::uint32_t tries = 0;
           out_load[src] >= params_.local_cap() && tries < params_.p; ++tries) {
        src = (src + 1) % params_.p;
      }
      if (out_load[src] >= params_.local_cap()) break;  // budget exhausted
      engine::ProcId dst = static_cast<engine::ProcId>(rng.below(params_.p));
      for (std::uint32_t tries = 0;
           (in_load[dst] >= params_.local_cap() || dst == src) &&
           tries < params_.p + 1;
           ++tries) {
        dst = (dst + 1) % params_.p;
      }
      if (in_load[dst] >= params_.local_cap() || dst == src) break;
      ++out_load[src];
      ++in_load[dst];
      batch.push_back(Arrival{src, dst});
    }
    return batch;
  }
  std::string name() const override { return "random"; }
};

}  // namespace

bool respects_restrictions(const std::vector<Arrival>& batch,
                           const AqtParams& params) {
  if (batch.size() > params.global_cap()) return false;
  std::vector<std::uint64_t> out(params.p, 0), in(params.p, 0);
  for (const auto& a : batch) {
    if (a.src >= params.p || a.dst >= params.p) return false;
    if (++out[a.src] > params.local_cap()) return false;
    if (++in[a.dst] > params.local_cap()) return false;
  }
  return true;
}

std::unique_ptr<Adversary> make_steady(AqtParams params) {
  return std::make_unique<Steady>(params);
}
std::unique_ptr<Adversary> make_single_source(AqtParams params) {
  return std::make_unique<SingleSource>(params);
}
std::unique_ptr<Adversary> make_rotating_hotspot(AqtParams params) {
  return std::make_unique<RotatingHotspot>(params);
}
std::unique_ptr<Adversary> make_destination_hotspot(AqtParams params) {
  return std::make_unique<DestinationHotspot>(params);
}
std::unique_ptr<Adversary> make_random(AqtParams params) {
  return std::make_unique<RandomAdversary>(params);
}

std::vector<std::unique_ptr<Adversary>> adversary_zoo(AqtParams params) {
  std::vector<std::unique_ptr<Adversary>> zoo;
  zoo.push_back(make_steady(params));
  zoo.push_back(make_single_source(params));
  zoo.push_back(make_rotating_hotspot(params));
  zoo.push_back(make_destination_hotspot(params));
  zoo.push_back(make_random(params));
  return zoo;
}

}  // namespace pbw::aqt
