#include "aqt/sliding.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace pbw::aqt {
namespace {

/// Sliding-window maximum of per-step counts via a two-pointer sweep.
/// fn(arrival) selects the tracked key (or returns p for "count all").
template <typename KeyFn>
SlidingLoad sweep(const std::vector<TimedArrival>& stream, std::uint32_t p,
                  std::uint32_t w, KeyFn&& key_of, SlidingLoad load) {
  std::vector<std::uint64_t> per_key(p + 1, 0);
  std::uint64_t global = 0;
  std::size_t tail = 0;
  std::uint64_t worst_key = 0;
  for (std::size_t head = 0; head < stream.size(); ++head) {
    // Window ending at stream[head].step, i.e. [step - w + 1, step + 1).
    const std::uint64_t begin =
        stream[head].step + 1 >= w ? stream[head].step + 1 - w : 0;
    while (tail < head && stream[tail].step < begin) {
      --per_key[key_of(stream[tail])];
      --global;
      ++tail;
    }
    ++per_key[key_of(stream[head])];
    ++global;
    worst_key = std::max(worst_key, per_key[key_of(stream[head])]);
    load.max_global = std::max(load.max_global, global);
  }
  load.max_source = std::max(load.max_source, worst_key);
  return load;
}

}  // namespace

std::vector<TimedArrival> spread_batch_over_window(
    const std::vector<Arrival>& batch, std::uint64_t index, std::uint32_t w) {
  std::vector<TimedArrival> timed;
  timed.reserve(batch.size());
  const std::uint64_t base = index * w;
  const std::size_t count = batch.size();
  for (std::size_t k = 0; k < count; ++k) {
    // Even spacing: message k lands at step base + floor(k * w / count).
    const std::uint64_t offset =
        count == 0 ? 0 : (k * w) / count;
    timed.push_back(TimedArrival{base + std::min<std::uint64_t>(offset, w - 1),
                                 batch[k].src, batch[k].dst});
  }
  return timed;
}

std::vector<TimedArrival> timed_stream(Adversary& adversary,
                                       std::uint64_t windows,
                                       std::uint64_t seed) {
  util::RngStreams streams(seed);
  std::vector<TimedArrival> stream;
  for (std::uint64_t i = 0; i < windows; ++i) {
    auto rng = streams.stream(0x511D1ULL, i);
    const auto batch = adversary.interval(i, rng);
    const auto timed =
        spread_batch_over_window(batch, i, adversary.params().w);
    stream.insert(stream.end(), timed.begin(), timed.end());
  }
  std::stable_sort(stream.begin(), stream.end(),
                   [](const TimedArrival& a, const TimedArrival& b) {
                     return a.step < b.step;
                   });
  return stream;
}

SlidingLoad sliding_load(const std::vector<TimedArrival>& stream,
                         std::uint32_t p, std::uint32_t w) {
  SlidingLoad load;
  load = sweep(stream, p, w,
               [](const TimedArrival& a) { return a.src; }, load);
  SlidingLoad dest;
  dest = sweep(stream, p, w,
               [](const TimedArrival& a) { return a.dst; }, dest);
  load.max_dest = dest.max_source;
  load.max_global = std::max(load.max_global, dest.max_global);
  return load;
}

bool verify_sliding_restrictions(const std::vector<TimedArrival>& stream,
                                 const AqtParams& params) {
  for (std::size_t i = 1; i < stream.size(); ++i) {
    if (stream[i].step < stream[i - 1].step) return false;  // unsorted
  }
  for (const auto& a : stream) {
    if (a.src >= params.p || a.dst >= params.p) return false;
  }
  const SlidingLoad load = sliding_load(stream, params.p, params.w);
  // A window may straddle two intervals, so the per-interval caps admit
  // up to twice the aligned budget across any sliding window; the paper's
  // adversary is defined directly on sliding windows, hence the checker
  // uses the exact caps — callers generating via intervals should target
  // half rate.  See test_aqt2.cpp for both usages.
  return load.max_global <= params.global_cap() &&
         load.max_source <= params.local_cap() &&
         load.max_dest <= params.local_cap();
}

}  // namespace pbw::aqt
