// The dynamic unbalanced routing problem (Section 6.2).
//
// Algorithm B (Theorem 6.7) on the BSP(m): time is partitioned into
// windows of w steps; the messages arriving in window i are sent with the
// static algorithm A (Unbalanced-Send with n fixed to ceil(alpha w), so
// tau = 0) starting at the later of window i+1's start and the completion
// of window i-1's batch.  Stability = bounded queue.
//
// The BSP(g) interval algorithm (Theorem 6.5) batches the same way and
// routes each batch as one h-relation at cost g*max(xbar, ybar) (+L); it
// is stable iff beta <= 1/g.
#pragma once

#include <cstdint>
#include <vector>

#include "aqt/adversary.hpp"
#include "core/model/penalty.hpp"

namespace pbw::aqt {

struct DynamicResult {
  /// Queue length (messages not yet fully transmitted) sampled at each
  /// window boundary.
  std::vector<double> queue_series;
  double mean_queue = 0.0;
  double max_queue = 0.0;
  double final_queue = 0.0;
  /// Least-squares slope of the queue over the second half of the run;
  /// stability shows as slope ~ 0, instability as a positive drift.
  double tail_slope = 0.0;
  bool stable = false;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  double mean_service = 0.0;       ///< mean per-batch transmission time
  double max_service = 0.0;
  /// Mean sojourn of a batch: completion minus the end of its arrival
  /// window.  Theorem 6.7 bounds the expectation by O(w^2/u).
  double mean_sojourn = 0.0;
  double max_sojourn = 0.0;
  bool restrictions_ok = true;     ///< adversary stayed within (alpha,beta,w)
};

/// Scheduling policy Algorithm B delegates each batch to.
enum class BatchPolicy {
  kUnbalancedSend,  ///< Theorem 6.2 schedule with n = ceil(alpha w) known
  kNaive,           ///< everyone injects from slot 1 (exponential blow-up)
  kOffline,         ///< clairvoyant optimal (lower-bound reference)
};

/// Runs Algorithm B on the BSP(m) for `windows` windows.
[[nodiscard]] DynamicResult run_algorithm_b(Adversary& adversary, std::uint32_t m,
                                            double eps, std::uint64_t windows,
                                            double L, BatchPolicy policy,
                                            std::uint64_t seed = 1);

/// Runs the Theorem 6.5 interval algorithm on the BSP(g).
[[nodiscard]] DynamicResult run_bsp_g_dynamic(Adversary& adversary, double g,
                                              std::uint64_t windows, double L,
                                              std::uint64_t seed = 1);

// ---- M/G/1 reference (Claim 6.8) ----------------------------------------

/// Mean queue at departure instants: r*mu1 + r^2*mu2 / (2 (1 - r*mu1)).
[[nodiscard]] double mg1_mean_queue(double arrival_rate, double mu1, double mu2);

/// First and second moments of the dominating service distribution S''_0:
/// value k*w/u with probability 1/k^4 - 1/(k+1)^4, k >= 1.  mu1 converges
/// to (w/u) * sum 1/k^3-ish < 1.21 w/u as the claim states.
struct ServiceMoments {
  double mu1 = 0.0;
  double mu2 = 0.0;
};
[[nodiscard]] ServiceMoments algob_service_moments(double w, double u);

}  // namespace pbw::aqt
