// Per-step arrival streams and the sliding-window restriction.
//
// The paper's adversary is constrained over *any* set of w consecutive
// time steps, not just window-aligned intervals.  This module refines the
// interval-level adversaries: arrivals carry explicit time steps, and
// verify_sliding_restrictions() checks the three caps (global ceil(alpha w),
// per-source and per-destination ceil(beta w)) over every offset of the
// sliding window.  spread_batch_over_window() converts an interval batch
// into a timed stream that provably satisfies the sliding constraint
// whenever the per-interval caps hold at half rate (arrivals spaced evenly
// make any window straddle at most two intervals).
#pragma once

#include <cstdint>
#include <vector>

#include "aqt/adversary.hpp"

namespace pbw::aqt {

struct TimedArrival {
  std::uint64_t step = 0;
  engine::ProcId src = 0;
  engine::ProcId dst = 0;
};

/// Checks the (alpha, beta, w) caps over every window [t, t + w) that
/// intersects the stream.  Arrivals must be sorted by step.
[[nodiscard]] bool verify_sliding_restrictions(
    const std::vector<TimedArrival>& stream, const AqtParams& params);

/// Spreads the messages of interval `index` evenly across its w steps
/// (stable order), producing a timed stream segment.
[[nodiscard]] std::vector<TimedArrival> spread_batch_over_window(
    const std::vector<Arrival>& batch, std::uint64_t index, std::uint32_t w);

/// Generates `windows` intervals from the adversary, spreads each across
/// its window, and concatenates; the returned stream is sorted by step.
[[nodiscard]] std::vector<TimedArrival> timed_stream(Adversary& adversary,
                                                     std::uint64_t windows,
                                                     std::uint64_t seed);

/// Summary of worst-case sliding-window loads, for reporting.
struct SlidingLoad {
  std::uint64_t max_global = 0;  ///< max messages in any w-step window
  std::uint64_t max_source = 0;  ///< max from one source in any window
  std::uint64_t max_dest = 0;    ///< max to one destination in any window
};

[[nodiscard]] SlidingLoad sliding_load(const std::vector<TimedArrival>& stream,
                                       std::uint32_t p, std::uint32_t w);

}  // namespace pbw::aqt
