// Adversarial Queuing Theory arrivals (Section 6.2).
//
// "There is a parameter w, the global arrival rate alpha, and the local
// arrival rate beta.  For any set of w consecutive time steps, the
// adversary may inject up to ceil(alpha w) point-to-point messages, at
// most ceil(beta w) from any given processor and at most ceil(beta w) to
// any given processor.  The adversary is non-adaptive."
//
// We generate arrivals per window-aligned interval, which is exactly the
// granularity Algorithm B batches at; respects_restrictions() checks the
// three caps for each interval.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/types.hpp"
#include "util/rng.hpp"

namespace pbw::aqt {

struct Arrival {
  engine::ProcId src = 0;
  engine::ProcId dst = 0;
};

struct AqtParams {
  std::uint32_t p = 1;   ///< processors
  double alpha = 0.0;    ///< global arrival rate
  double beta = 0.0;     ///< local (per-source and per-destination) rate
  std::uint32_t w = 1;   ///< window length

  [[nodiscard]] std::uint64_t global_cap() const {
    return static_cast<std::uint64_t>(std::ceil(alpha * w));
  }
  [[nodiscard]] std::uint64_t local_cap() const {
    return static_cast<std::uint64_t>(std::ceil(beta * w));
  }
};

class Adversary {
 public:
  explicit Adversary(AqtParams params) : params_(params) {}
  virtual ~Adversary() = default;

  /// Messages injected during window `index`.
  [[nodiscard]] virtual std::vector<Arrival> interval(std::uint64_t index,
                                                      util::Xoshiro256& rng) = 0;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] const AqtParams& params() const noexcept { return params_; }

 protected:
  AqtParams params_;
};

/// True iff the batch satisfies the (alpha, beta, w) caps.
[[nodiscard]] bool respects_restrictions(const std::vector<Arrival>& batch,
                                         const AqtParams& params);

/// Spreads arrivals evenly over sources and destinations (the benign
/// pattern: h ~ n/p every window).
[[nodiscard]] std::unique_ptr<Adversary> make_steady(AqtParams params);

/// Saturates one fixed source at the local cap, fills the rest of the
/// global budget evenly — the pattern that breaks BSP(g) when beta > 1/g.
[[nodiscard]] std::unique_ptr<Adversary> make_single_source(AqtParams params);

/// As single_source, but the hot source rotates every window (defeats any
/// per-processor provisioning).
[[nodiscard]] std::unique_ptr<Adversary> make_rotating_hotspot(AqtParams params);

/// Saturates one destination at the local cap (stresses ybar).
[[nodiscard]] std::unique_ptr<Adversary> make_destination_hotspot(AqtParams params);

/// Random sources/destinations, rejection-sampled under the caps.
[[nodiscard]] std::unique_ptr<Adversary> make_random(AqtParams params);

/// All adversaries, for sweep benches.
[[nodiscard]] std::vector<std::unique_ptr<Adversary>> adversary_zoo(AqtParams params);

}  // namespace pbw::aqt
