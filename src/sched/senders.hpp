// The Section 6 scheduling algorithms and their baselines.
//
// All schedulers return a SlotSchedule with consecutive flit layout; the
// wrapped assignments of the paper's Unbalanced-Send are resolved to
// absolute slots here (including the long-message boundary-crossing rule,
// which extends a wrap-crossing message past the window end at an additive
// cost of at most lhat — Section 6.1, long-message variant).
#pragma once

#include <cstdint>

#include "sched/relation.hpp"
#include "sched/schedule.hpp"
#include "util/rng.hpp"

namespace pbw::sched {

/// Unscheduled baseline: every processor injects back-to-back from slot 1.
/// This is what a BSP(g)-minded program does; under the exponential
/// penalty it is catastrophically expensive whenever more than m
/// processors are active.
[[nodiscard]] SlotSchedule naive_schedule(const Relation& rel);

/// Offline optimal: lays all n flits consecutively around a ring of
/// T = max(ceil(n/m), xbar) slots in processor order.  Every slot carries
/// at most ceil(n/T) <= m flits and no processor occupies a slot twice,
/// so the cost is exactly the routing lower bound max(n/m, xbar, ybar, L).
/// Long messages use the boundary-crossing extension (additive <= lhat).
[[nodiscard]] SlotSchedule offline_optimal_schedule(const Relation& rel,
                                                    std::uint32_t m);

/// Algorithm Unbalanced-Send (Theorem 6.2).  Requires unit-length
/// messages; n is the (known or counted) total message count.  Processors
/// with x_i <= W = ceil((1+eps) n/m) place their messages consecutively
/// mod W from a uniformly random slot; heavier processors start at slot 1.
[[nodiscard]] SlotSchedule unbalanced_send_schedule(const Relation& rel,
                                                    std::uint32_t m, double eps,
                                                    std::uint64_t n,
                                                    util::Xoshiro256& rng);

/// Algorithm Unbalanced-Consecutive-Send (Theorem 6.3).  As above but a
/// light processor sends all its flits consecutively (no wrap) from its
/// random slot — usable when messages must occupy consecutive time steps;
/// pays an additive xbar' (max light-processor load).
[[nodiscard]] SlotSchedule consecutive_send_schedule(const Relation& rel,
                                                     std::uint32_t m, double eps,
                                                     std::uint64_t n,
                                                     util::Xoshiro256& rng);

/// Algorithm Unbalanced-Granular-Send (Theorem 6.4).  Random start slots on
/// a grid of granularity t' = max(1, n/p) within a window of c*n/m slots;
/// succeeds w.h.p. in p (rather than in n), i.e. needs only p < e^{alpha m}.
[[nodiscard]] SlotSchedule granular_send_schedule(const Relation& rel,
                                                  std::uint32_t m, double c,
                                                  std::uint64_t n,
                                                  util::Xoshiro256& rng);

/// Long-message variant of Unbalanced-Send: per-processor flit streams are
/// wrapped mod W, but any message crossing the window boundary is instead
/// sent in consecutive slots past the end (additive <= lhat).
[[nodiscard]] SlotSchedule long_message_schedule(const Relation& rel,
                                                 std::uint32_t m, double eps,
                                                 std::uint64_t n,
                                                 util::Xoshiro256& rng);

/// Startup-overhead variant: a processor needs a gap of o slots before
/// each message it injects (LogP-style overhead o).  Schedules the
/// relation as if each message were o + length flits long (window
/// (1+eps)(1 + o/lbar) n/m), then shifts each message's start past its
/// dummy prefix; the prefix occupies the processor but not the network.
[[nodiscard]] SlotSchedule overhead_schedule(const Relation& rel, std::uint32_t o,
                                             std::uint32_t m, double eps,
                                             util::Xoshiro256& rng);

/// Template variant of Unbalanced-Send (Section 6.1: "we can use the same
/// algorithm on any sending pattern 'template', where the sending times
/// are chosen by cyclically shifting the template by j slots").  Here the
/// template enforces a separation of `gap` idle slots between consecutive
/// messages of the same processor (e.g. a sender-side pacing constraint);
/// a processor's k-th message occupies template position k*(gap+1),
/// cyclically shifted by a uniformly random j within the stretched window
/// ceil((1+eps) n (gap+1) / m).  Requires unit-length messages.
[[nodiscard]] SlotSchedule template_shift_schedule(const Relation& rel,
                                                   std::uint32_t m, double eps,
                                                   std::uint64_t n,
                                                   std::uint32_t gap,
                                                   util::Xoshiro256& rng);

/// The Section 4 grouping emulation of a BSP(g) send on the BSP(m):
/// processor i's k-th message goes to slot k*g + (i mod g) + 1.  Requires
/// unit-length messages.
[[nodiscard]] SlotSchedule emulation_schedule(const Relation& rel, double g);

}  // namespace pbw::sched
