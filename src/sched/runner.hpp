// Executes a scheduled h-relation on the engine and packages the
// measurements the Section-6 experiments report.
#pragma once

#include <cstdint>

#include "core/bounds.hpp"
#include "engine/cost.hpp"
#include "engine/machine.hpp"
#include "sched/relation.hpp"
#include "sched/schedule.hpp"

namespace pbw::sched {

/// Result of routing one h-relation under one schedule on one model.
struct RoutingResult {
  engine::SimTime send_time = 0.0;    ///< cost of the sending superstep
  engine::SimTime count_time = 0.0;   ///< tau: cost of computing/broadcasting n (0 if n known)
  engine::SimTime total_time = 0.0;   ///< send + count
  std::uint64_t max_mt = 0;           ///< peak slot occupancy
  bool within_limit = false;          ///< never exceeded m
  bool delivered = false;             ///< every message arrived intact
  engine::SimTime optimal = 0.0;      ///< max(n/m, xbar, ybar, L): the offline LB
  double ratio = 0.0;                 ///< total_time / optimal
};

/// Runs the relation as a single sending superstep with the given slot
/// schedule on `model`, verifying delivery.  `m` is the aggregate limit
/// used for the optimal baseline; if `count_n` is true the measured
/// count-and-broadcast time for this relation on this model is added
/// (Theorem 6.2's tau term), using combining-tree arity = L.
[[nodiscard]] RoutingResult route_relation(const engine::CostModel& model,
                                           const Relation& rel,
                                           const SlotSchedule& sched,
                                           std::uint32_t m, double L,
                                           bool count_n = false,
                                           engine::MachineOptions options = {});

}  // namespace pbw::sched
