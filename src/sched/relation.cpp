#include "sched/relation.hpp"

#include <algorithm>

namespace pbw::sched {

std::uint64_t Relation::sent_by(engine::ProcId src) const {
  std::uint64_t flits = 0;
  for (const auto& item : out_[src]) flits += item.length;
  return flits;
}

std::uint64_t Relation::total_flits() const {
  std::uint64_t n = 0;
  for (std::uint32_t i = 0; i < p(); ++i) n += sent_by(i);
  return n;
}

std::uint64_t Relation::total_messages() const {
  std::uint64_t n = 0;
  for (const auto& items : out_) n += items.size();
  return n;
}

std::uint64_t Relation::max_sent() const {
  std::uint64_t best = 0;
  for (std::uint32_t i = 0; i < p(); ++i) best = std::max(best, sent_by(i));
  return best;
}

std::uint64_t Relation::max_received() const {
  std::vector<std::uint64_t> recv(p(), 0);
  for (const auto& items : out_) {
    for (const auto& item : items) recv[item.dst] += item.length;
  }
  return recv.empty() ? 0 : *std::max_element(recv.begin(), recv.end());
}

std::uint64_t Relation::max_sent_below(double threshold) const {
  std::uint64_t best = 0;
  for (std::uint32_t i = 0; i < p(); ++i) {
    const std::uint64_t x = sent_by(i);
    if (static_cast<double>(x) <= threshold) best = std::max(best, x);
  }
  return best;
}

std::uint32_t Relation::max_length() const {
  std::uint32_t best = 0;
  for (const auto& items : out_) {
    for (const auto& item : items) best = std::max(best, item.length);
  }
  return best;
}

double Relation::mean_length() const {
  const std::uint64_t msgs = total_messages();
  return msgs == 0 ? 0.0
                   : static_cast<double>(total_flits()) / static_cast<double>(msgs);
}

}  // namespace pbw::sched
