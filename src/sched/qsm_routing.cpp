#include "sched/qsm_routing.hpp"

#include <algorithm>
#include <numeric>

#include "core/bounds.hpp"
#include "engine/error.hpp"
#include "engine/program.hpp"
#include "sched/senders.hpp"

namespace pbw::sched {
namespace {

/// Two-phase mailbox routing: writes at the given schedule's slots, reads
/// at an offline-optimal staggering of the reverse (receive-side)
/// relation.  In the full protocol the receivers learn their in-degree
/// from the same counting phase that computes n; here the harness
/// precomputes the mailbox layout, which does not change any charged
/// superstep (layout arithmetic is free local work in the model).
class QsmRouteProgram final : public engine::SuperstepProgram {
 public:
  QsmRouteProgram(const Relation& rel, const SlotSchedule& sched)
      : rel_(rel), sched_(sched), received_(rel.p(), 0) {
    const std::uint32_t p = rel.p();
    // Mailbox region per destination: base[d] .. base[d] + y_d.
    std::vector<std::uint64_t> indegree(p, 0);
    for (std::uint32_t src = 0; src < p; ++src) {
      for (const auto& item : rel.items(src)) {
        if (item.length != 1) {
          throw engine::SimulationError("route_relation_qsm: unit messages only");
        }
        ++indegree[item.dst];
      }
    }
    base_.resize(p + 1, 0);
    std::partial_sum(indegree.begin(), indegree.end(), base_.begin() + 1);
    cells_ = base_[p];

    // Assign each message its mailbox cell (arrival order within region).
    std::vector<std::uint64_t> cursor(base_.begin(), base_.end() - 1);
    cell_of_.resize(p);
    for (std::uint32_t src = 0; src < p; ++src) {
      cell_of_[src].reserve(rel.items(src).size());
      for (const auto& item : rel.items(src)) {
        cell_of_[src].push_back(cursor[item.dst]++);
      }
    }

    // Read-side staggering: the reverse relation (who receives how much)
    // laid out on the offline ring, one read per (receiver, slot).
    Relation reverse(p);
    for (std::uint32_t d = 0; d < p; ++d) {
      for (std::uint64_t k = 0; k < indegree[d]; ++k) reverse.add(d, d);
    }
    // m is only needed for the ring size; recover it from the forward
    // schedule evaluation context via max occupancy of the write side —
    // the caller passes the same m to evaluate; we store reads per ring of
    // the reverse offline schedule computed in route_relation_qsm().
    reverse_ = std::move(reverse);
  }

  void set_read_schedule(SlotSchedule read_sched) {
    read_sched_ = std::move(read_sched);
  }
  [[nodiscard]] const Relation& reverse() const { return reverse_; }

  void setup(engine::Machine& machine) override {
    machine.resize_shared(std::max<std::uint64_t>(cells_, 1), -1);
  }

  bool step(engine::ProcContext& ctx) override {
    const auto id = ctx.id();
    switch (ctx.superstep()) {
      case 0: {  // write phase at the forward schedule's slots
        const auto& items = rel_.items(id);
        for (std::size_t k = 0; k < items.size(); ++k) {
          ctx.write(cell_of_[id][k], static_cast<engine::Word>(id),
                    sched_.start[id][k]);
        }
        return true;
      }
      case 1: {  // read phase at the reverse schedule's slots
        const std::uint64_t mine = base_[id + 1] - base_[id];
        for (std::uint64_t k = 0; k < mine; ++k) {
          ctx.read(base_[id] + k, read_sched_.start[id][k]);
        }
        return true;
      }
      default:
        for (const engine::Word v : ctx.reads()) received_[id] += (v >= 0);
        return false;
    }
  }

  [[nodiscard]] std::uint64_t total_received() const {
    std::uint64_t total = 0;
    for (std::uint64_t r : received_) total += r;
    return total;
  }

 private:
  const Relation& rel_;
  const SlotSchedule& sched_;
  Relation reverse_{0};
  SlotSchedule read_sched_;
  std::vector<std::uint64_t> base_;
  std::vector<std::vector<std::uint64_t>> cell_of_;
  std::uint64_t cells_ = 0;
  std::vector<std::uint64_t> received_;
};

}  // namespace

RoutingResult route_relation_qsm(const engine::CostModel& model,
                                 const Relation& rel, const SlotSchedule& sched,
                                 std::uint32_t m, double L,
                                 engine::MachineOptions options) {
  QsmRouteProgram program(rel, sched);
  program.set_read_schedule(
      offline_optimal_schedule(program.reverse(), m));

  options.trace = true;
  engine::Machine machine(model, options);
  const auto run = machine.run(program);

  RoutingResult result;
  // Charge the write and read supersteps (the drain superstep is free of
  // communication and only adds the model's floor).
  for (std::size_t i = 0; i + 1 < run.trace.size() && i < 2; ++i) {
    result.send_time += run.trace[i].cost;
    for (std::uint64_t m_t : run.trace[i].stats.slot_counts) {
      result.max_mt = std::max(result.max_mt, m_t);
    }
  }
  result.total_time = result.send_time;
  result.within_limit = result.max_mt <= m;
  result.delivered = program.total_received() == rel.total_flits();
  result.optimal = core::bounds::routing_bsp_m_optimal(
      rel.total_flits(), rel.max_sent(), rel.max_received(), m, L);
  result.ratio = result.optimal > 0 ? result.total_time / result.optimal : 0.0;
  return result;
}

}  // namespace pbw::sched
