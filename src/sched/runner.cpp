#include "sched/runner.hpp"

#include <algorithm>

#include "engine/program.hpp"
#include "sched/count_n.hpp"

namespace pbw::sched {
namespace {

/// One-superstep program: every processor injects its relation items at
/// the scheduled slots; receivers tally delivered flits for verification.
class SendProgram final : public engine::SuperstepProgram {
 public:
  SendProgram(const Relation& rel, const SlotSchedule& sched)
      : rel_(rel), sched_(sched), received_(rel.p(), 0) {}

  bool step(engine::ProcContext& ctx) override {
    const auto id = ctx.id();
    if (ctx.superstep() == 0) {
      const auto& items = rel_.items(id);
      for (std::size_t k = 0; k < items.size(); ++k) {
        ctx.send(items[k].dst, static_cast<engine::Word>(id),
                 sched_.start[id][k], items[k].length);
      }
      return true;
    }
    for (const auto& msg : ctx.inbox()) received_[id] += msg.length;
    return false;
  }

  [[nodiscard]] std::uint64_t total_received() const {
    std::uint64_t total = 0;
    for (std::uint64_t r : received_) total += r;
    return total;
  }

 private:
  const Relation& rel_;
  const SlotSchedule& sched_;
  std::vector<std::uint64_t> received_;
};

}  // namespace

RoutingResult route_relation(const engine::CostModel& model, const Relation& rel,
                             const SlotSchedule& sched, std::uint32_t m, double L,
                             bool count_n, engine::MachineOptions options) {
  RoutingResult result;

  options.trace = true;
  SendProgram program(rel, sched);
  engine::Machine machine(model, options);
  const engine::RunResult run = machine.run(program);

  // The first superstep is the send; the trailing superstep only drains
  // inboxes and is charged max(w, L)=L by every model — the paper's
  // accounting ends when the last message lands, so we report the send
  // superstep's cost.
  result.send_time = run.trace.empty() ? run.total_time : run.trace[0].cost;
  for (std::uint64_t m_t : run.trace.empty()
                               ? std::vector<std::uint64_t>{}
                               : run.trace[0].stats.slot_counts) {
    result.max_mt = std::max(result.max_mt, m_t);
  }
  result.within_limit = result.max_mt <= m;
  result.delivered = program.total_received() == rel.total_flits();

  if (count_n) {
    std::vector<std::uint64_t> x(rel.p());
    for (std::uint32_t i = 0; i < rel.p(); ++i) x[i] = rel.sent_by(i);
    const CountNResult count = count_and_broadcast(
        model, x, m, static_cast<std::uint32_t>(L), options);
    result.count_time = count.time;
  }
  result.total_time = result.send_time + result.count_time;

  result.optimal = core::bounds::routing_bsp_m_optimal(
      rel.total_flits(), rel.max_sent(), rel.max_received(), m, L);
  result.ratio = result.optimal > 0.0 ? result.total_time / result.optimal : 0.0;
  return result;
}

}  // namespace pbw::sched
