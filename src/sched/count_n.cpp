#include "sched/count_n.hpp"

#include <algorithm>

#include "engine/error.hpp"
#include "engine/program.hpp"

namespace pbw::sched {
namespace {

/// ceil(log_B m): number of combining rounds to reduce m partials.
std::uint32_t tree_rounds(std::uint32_t m, std::uint32_t arity) {
  std::uint32_t rounds = 0;
  std::uint64_t reach = 1;
  while (reach < m) {
    reach *= arity;
    ++rounds;
  }
  return rounds;
}

/// pow for small tree arguments, saturating to avoid overflow.
std::uint64_t ipow(std::uint64_t base, std::uint32_t exp) {
  std::uint64_t result = 1;
  for (std::uint32_t i = 0; i < exp; ++i) {
    if (result > (1ull << 40)) return result;  // saturate; beyond any m
    result *= base;
  }
  return result;
}

class CountNProgram final : public engine::SuperstepProgram {
 public:
  CountNProgram(std::vector<std::uint64_t> x, std::uint32_t m, std::uint32_t arity)
      : x_(std::move(x)),
        p_(static_cast<std::uint32_t>(x_.size())),
        collectors_(std::min(m, p_)),
        arity_(std::max<std::uint32_t>(2, arity)),
        rounds_(tree_rounds(collectors_, arity_)),
        partial_(p_, 0),
        known_(p_, -1) {}

  bool step(engine::ProcContext& ctx) override {
    const auto id = ctx.id();
    const auto s = ctx.superstep();
    const std::uint64_t last = 2ull * rounds_ + 2;

    if (s == 0) {
      // Funnel x_i to collector (id mod collectors_), staggered so that
      // slot k carries at most `collectors_` <= m messages.
      ctx.send(id % collectors_, static_cast<engine::Word>(x_[id]),
               static_cast<engine::Slot>(id / collectors_ + 1));
      return true;
    }

    // Collectors accumulate every reduce-phase delivery.
    if (id < collectors_ && s <= rounds_ + 1) {
      for (const auto& msg : ctx.inbox()) {
        partial_[id] += static_cast<std::uint64_t>(msg.payload);
      }
    }

    // Reduce: at superstep s in [1, rounds_], processors that are group
    // leaders at level s-1 but not at level s forward their partial.
    if (id < collectors_ && s >= 1 && s <= rounds_) {
      const std::uint64_t below = ipow(arity_, static_cast<std::uint32_t>(s - 1));
      const std::uint64_t at = below * arity_;
      if (id % below == 0 && id % at != 0) {
        const auto leader = static_cast<engine::ProcId>(id - id % at);
        ctx.send(leader, static_cast<engine::Word>(partial_[id]), 1);
        return true;
      }
    }

    if (id == 0 && s == rounds_ + 1) known_[0] = static_cast<engine::Word>(partial_[0]);

    // Fan the total back out: mirror of the reduce tree.
    if (id < collectors_ && s >= rounds_ + 1 && s <= 2ull * rounds_) {
      const auto t = static_cast<std::uint32_t>(s - (rounds_ + 1));
      const std::uint64_t level = ipow(arity_, rounds_ - t);
      const std::uint64_t child_level = level / arity_;
      if (known_[id] < 0) {
        for (const auto& msg : ctx.inbox()) known_[id] = msg.payload;
      }
      if (id % level == 0 && known_[id] >= 0) {
        for (std::uint32_t k = 1; k < arity_; ++k) {
          const std::uint64_t child = id + k * child_level;
          if (child < collectors_) {
            ctx.send(static_cast<engine::ProcId>(child), known_[id],
                     static_cast<engine::Slot>(k));
          }
        }
      }
      return true;
    }

    // Final distribution: collectors inform the rest of the processors.
    if (s == 2ull * rounds_ + 1) {
      if (id < collectors_) {
        if (known_[id] < 0) {
          for (const auto& msg : ctx.inbox()) known_[id] = msg.payload;
        }
        std::uint32_t k = 1;
        for (std::uint64_t target = id + collectors_; target < p_;
             target += collectors_, ++k) {
          ctx.send(static_cast<engine::ProcId>(target), known_[id],
                   static_cast<engine::Slot>(k));
        }
      }
      return true;
    }

    if (s == last) {
      if (id >= collectors_) {
        for (const auto& msg : ctx.inbox()) known_[id] = msg.payload;
      }
      return false;
    }
    return true;
  }

  [[nodiscard]] const std::vector<engine::Word>& known() const { return known_; }

 private:
  std::vector<std::uint64_t> x_;
  std::uint32_t p_;
  std::uint32_t collectors_;
  std::uint32_t arity_;
  std::uint32_t rounds_;
  std::vector<std::uint64_t> partial_;
  std::vector<engine::Word> known_;
};

}  // namespace

CountNResult count_and_broadcast(const engine::CostModel& model,
                                 const std::vector<std::uint64_t>& local_counts,
                                 std::uint32_t m, std::uint32_t fanout,
                                 engine::MachineOptions options) {
  if (local_counts.size() != model.processors()) {
    throw engine::SimulationError("count_and_broadcast: |x| != p");
  }
  CountNProgram program(local_counts, m, fanout);
  engine::Machine machine(model, options);
  const engine::RunResult run = machine.run(program);

  CountNResult result;
  result.time = run.total_time;
  result.supersteps = run.supersteps;
  std::uint64_t expected = 0;
  for (std::uint64_t x : local_counts) expected += x;
  result.n = expected;
  result.all_procs_agree =
      std::all_of(program.known().begin(), program.known().end(),
                  [&](engine::Word v) {
                    return v == static_cast<engine::Word>(expected);
                  });
  return result;
}

}  // namespace pbw::sched
