// Routing h-relations through shared memory — the QSM(m) counterpart of
// Section 6's results ("the same techniques can be used to obtain similar
// results for the QSM(m), an exercise left to the reader").
//
// A message becomes a write into a per-destination mailbox region followed
// by the destination's read; both the writes and the reads inherit the
// message's slot from the SlotSchedule, so Unbalanced-Send's guarantee
// transfers: writes respect the aggregate limit w.h.p., every mailbox cell
// has one writer and one reader (kappa = 1), and the cost is
// max(h, c_m) ~ (1+eps) max(n/m, xbar, ybar).
#pragma once

#include "engine/cost.hpp"
#include "engine/machine.hpp"
#include "sched/relation.hpp"
#include "sched/runner.hpp"
#include "sched/schedule.hpp"

namespace pbw::sched {

/// Routes `rel` (unit-length messages) on a QSM-family model using the
/// given slot schedule for the write phase and a mirrored staggering for
/// the read phase.  Verifies delivery; `m` and `L` feed the optimal
/// baseline exactly as in route_relation().
[[nodiscard]] RoutingResult route_relation_qsm(const engine::CostModel& model,
                                               const Relation& rel,
                                               const SlotSchedule& sched,
                                               std::uint32_t m, double L,
                                               engine::MachineOptions options = {});

}  // namespace pbw::sched
