// Computing and broadcasting n on the BSP(m) — the tau of Theorem 6.2.
//
// "Processors perform a prefix sum and a broadcast to inform every
// processor of the value n", in O(p/m + L + L lg m / lg L) time:
//   1. the p processors funnel their x_i to m collectors, staggered so
//      that every slot carries at most m messages (cost ~ p/m),
//   2. the m partial sums are combined up an L-ary tree (L lg m / lg L),
//   3. the total is fanned back out to the m collectors and from them to
//      all p processors (mirror of 1 and 2).
#pragma once

#include <cstdint>
#include <vector>

#include "engine/cost.hpp"
#include "engine/machine.hpp"

namespace pbw::sched {

struct CountNResult {
  std::uint64_t n = 0;                ///< the computed total
  engine::SimTime time = 0.0;         ///< model time for the whole routine
  std::uint64_t supersteps = 0;
  bool all_procs_agree = false;       ///< every processor learned n
};

/// Runs the count-and-broadcast routine on the given model (meant for
/// BSP(m); works on any message-passing model).  `local_counts[i]` is
/// processor i's x_i; `fanout` is the combining-tree arity (the paper uses
/// L).  The aggregate limit used for staggering is `m`.
[[nodiscard]] CountNResult count_and_broadcast(const engine::CostModel& model,
                                               const std::vector<std::uint64_t>& local_counts,
                                               std::uint32_t m, std::uint32_t fanout,
                                               engine::MachineOptions options = {});

}  // namespace pbw::sched
