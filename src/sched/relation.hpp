// Unbalanced h-relations: the routing instances of Section 6.
//
// "Each processor i has x_i messages to send.  Let n = sum x_i and
// xbar = max x_i.  Let y_i be the number of messages destined for
// processor i, and ybar = max y_i.  Each processor i knows x_i, but n,
// xbar, y_i and ybar are unknown."  Messages may have nonnegative lengths
// (the unbalanced total-exchange problem); quantities are in flits.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/types.hpp"

namespace pbw::sched {

/// One message of an h-relation instance.
struct RelationItem {
  engine::ProcId dst = 0;
  std::uint32_t length = 1;  ///< flits
};

/// A complete unbalanced h-relation: out[i] lists processor i's messages.
class Relation {
 public:
  explicit Relation(std::uint32_t p) : out_(p) {}

  [[nodiscard]] std::uint32_t p() const noexcept {
    return static_cast<std::uint32_t>(out_.size());
  }

  void add(engine::ProcId src, engine::ProcId dst, std::uint32_t length = 1) {
    out_.at(src).push_back(RelationItem{dst, length});
  }

  [[nodiscard]] const std::vector<RelationItem>& items(engine::ProcId src) const {
    return out_[src];
  }

  /// x_i: flits sent by processor i.
  [[nodiscard]] std::uint64_t sent_by(engine::ProcId src) const;
  /// n: total flits.
  [[nodiscard]] std::uint64_t total_flits() const;
  /// Total number of messages (not flits).
  [[nodiscard]] std::uint64_t total_messages() const;
  /// xbar = max_i x_i (flits).
  [[nodiscard]] std::uint64_t max_sent() const;
  /// ybar = max_i y_i (flits received).
  [[nodiscard]] std::uint64_t max_received() const;
  /// Max x_i over processors with x_i <= threshold (the xbar' of Thm 6.3).
  [[nodiscard]] std::uint64_t max_sent_below(double threshold) const;
  /// Maximum single message length (the lhat of the long-message variant).
  [[nodiscard]] std::uint32_t max_length() const;
  /// Mean message length lbar (0 if no messages).
  [[nodiscard]] double mean_length() const;

 private:
  std::vector<std::vector<RelationItem>> out_;
};

}  // namespace pbw::sched
