#include "sched/schedule.hpp"

#include <algorithm>
#include <unordered_set>

#include "engine/error.hpp"

namespace pbw::sched {
namespace {

/// Applies fn(slot) to every slot occupied by a message of `length` flits
/// starting at `start` under the given layout.
template <typename Fn>
void for_each_flit_slot(engine::Slot start, std::uint32_t length,
                        FlitLayout layout, std::uint64_t window, Fn&& fn) {
  if (layout == FlitLayout::kConsecutive || window == 0) {
    for (std::uint32_t k = 0; k < length; ++k) fn(start + k);
    return;
  }
  // Wrapped: slots are 1-based; wrap within [1, window].
  for (std::uint32_t k = 0; k < length; ++k) {
    const std::uint64_t slot = (start - 1 + k) % window + 1;
    fn(static_cast<engine::Slot>(slot));
  }
}

}  // namespace

std::vector<std::uint64_t> slot_occupancy(const Relation& rel,
                                          const SlotSchedule& sched) {
  std::uint64_t max_slot = 0;
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    const auto& items = rel.items(src);
    for (std::size_t k = 0; k < items.size(); ++k) {
      for_each_flit_slot(sched.start[src][k], items[k].length, sched.layout,
                         sched.window,
                         [&](engine::Slot s) { max_slot = std::max<std::uint64_t>(max_slot, s); });
    }
  }
  std::vector<std::uint64_t> counts(max_slot, 0);
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    const auto& items = rel.items(src);
    for (std::size_t k = 0; k < items.size(); ++k) {
      for_each_flit_slot(sched.start[src][k], items[k].length, sched.layout,
                         sched.window, [&](engine::Slot s) { ++counts[s - 1]; });
    }
  }
  return counts;
}

ScheduleCost evaluate_schedule(const Relation& rel, const SlotSchedule& sched,
                               std::uint32_t m, core::Penalty penalty, double L) {
  const auto h = static_cast<double>(std::max(rel.max_sent(), rel.max_received()));
  return evaluate_occupancy(slot_occupancy(rel, sched), h, m, penalty, L);
}

ScheduleCost evaluate_occupancy(const std::vector<std::uint64_t>& counts,
                                double h, std::uint32_t m,
                                core::Penalty penalty, double L) {
  ScheduleCost cost;
  cost.slots_used = counts.size();
  for (std::uint64_t m_t : counts) {
    cost.c_m += core::overload_charge(m_t, m, penalty);
    cost.max_mt = std::max(cost.max_mt, m_t);
  }
  cost.within_limit = cost.max_mt <= m;
  cost.total = std::max({h, cost.c_m, L});
  return cost;
}

void validate_schedule(const Relation& rel, const SlotSchedule& sched) {
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    const auto& items = rel.items(src);
    if (sched.start[src].size() != items.size()) {
      throw engine::SimulationError("schedule/relation size mismatch at proc " +
                                    std::to_string(src));
    }
    std::unordered_set<std::uint64_t> occupied;
    for (std::size_t k = 0; k < items.size(); ++k) {
      bool clash = false;
      for_each_flit_slot(sched.start[src][k], items[k].length, sched.layout,
                         sched.window, [&](engine::Slot s) {
                           if (!occupied.insert(s).second) clash = true;
                         });
      if (clash) {
        throw engine::SimulationError("processor " + std::to_string(src) +
                                      " occupies a slot twice");
      }
    }
  }
}

}  // namespace pbw::sched
