#include "sched/workloads.hpp"

#include <algorithm>

#include "util/zipf.hpp"

namespace pbw::sched {
namespace {

/// Uniform destination different from src (self-messages carry no
/// bandwidth in a real machine, so generators avoid them).
engine::ProcId random_dst(std::uint32_t p, engine::ProcId src,
                          util::Xoshiro256& rng) {
  if (p == 1) return 0;
  auto dst = static_cast<engine::ProcId>(rng.below(p - 1));
  if (dst >= src) ++dst;
  return dst;
}

}  // namespace

Relation balanced_relation(std::uint32_t p, std::uint32_t per_proc,
                           util::Xoshiro256& rng) {
  Relation rel(p);
  for (engine::ProcId src = 0; src < p; ++src) {
    for (std::uint32_t k = 0; k < per_proc; ++k) {
      rel.add(src, random_dst(p, src, rng));
    }
  }
  return rel;
}

Relation point_skew_relation(std::uint32_t p, std::uint64_t n, double hot_fraction,
                             util::Xoshiro256& rng) {
  Relation rel(p);
  hot_fraction = std::clamp(hot_fraction, 0.0, 1.0);
  const auto hot = static_cast<std::uint64_t>(hot_fraction * static_cast<double>(n));
  const engine::ProcId hot_proc = 0;
  for (std::uint64_t k = 0; k < hot; ++k) {
    rel.add(hot_proc, random_dst(p, hot_proc, rng));
  }
  const std::uint64_t rest = n - hot;
  for (std::uint64_t k = 0; k < rest; ++k) {
    const auto src = static_cast<engine::ProcId>(k % p);
    rel.add(src, random_dst(p, src, rng));
  }
  return rel;
}

Relation zipf_relation(std::uint32_t p, std::uint64_t n, double theta,
                       util::Xoshiro256& rng) {
  Relation rel(p);
  util::ZipfSampler sampler(p, theta);
  for (std::uint64_t k = 0; k < n; ++k) {
    const auto src = static_cast<engine::ProcId>(sampler.sample(rng));
    rel.add(src, random_dst(p, src, rng));
  }
  return rel;
}

Relation nearly_local_relation(std::uint32_t p, std::uint64_t n,
                               double remote_fraction, util::Xoshiro256& rng) {
  Relation rel(p);
  remote_fraction = std::clamp(remote_fraction, 0.0, 1.0);
  const auto remote = static_cast<std::uint64_t>(remote_fraction * static_cast<double>(n));
  // Remote items originate from a contiguous band covering ~10% of the
  // processors — a hot spot, as when one region of a nearly-sorted array is
  // out of place.
  const std::uint32_t band = std::max<std::uint32_t>(1, p / 10);
  for (std::uint64_t k = 0; k < remote; ++k) {
    const auto src = static_cast<engine::ProcId>(k % band);
    rel.add(src, random_dst(p, src, rng));
  }
  return rel;
}

Relation total_exchange_relation(std::uint32_t p, std::uint32_t length) {
  Relation rel(p);
  for (engine::ProcId src = 0; src < p; ++src) {
    for (engine::ProcId dst = 0; dst < p; ++dst) {
      if (dst != src) rel.add(src, dst, length);
    }
  }
  return rel;
}

Relation variable_length_relation(std::uint32_t p, std::uint64_t messages,
                                  std::uint32_t max_length, double hot_fraction,
                                  util::Xoshiro256& rng) {
  Relation rel(p);
  hot_fraction = std::clamp(hot_fraction, 0.0, 1.0);
  const auto hot =
      static_cast<std::uint64_t>(hot_fraction * static_cast<double>(messages));
  for (std::uint64_t k = 0; k < messages; ++k) {
    const engine::ProcId src =
        k < hot ? 0 : static_cast<engine::ProcId>(k % p);
    const auto length =
        static_cast<std::uint32_t>(rng.range(1, std::max(1u, max_length)));
    rel.add(src, random_dst(p, src, rng), length);
  }
  return rel;
}

Relation permutation_relation(std::uint32_t p, util::Xoshiro256& rng) {
  Relation rel(p);
  // Random derangement-ish mapping: shuffle, then rotate any fixed points
  // away (self-messages carry no bandwidth).
  std::vector<engine::ProcId> dst(p);
  for (std::uint32_t i = 0; i < p; ++i) dst[i] = i;
  for (std::uint32_t i = p; i > 1; --i) {
    std::swap(dst[i - 1], dst[rng.below(i)]);
  }
  for (std::uint32_t i = 0; i < p; ++i) {
    if (dst[i] == i && p > 1) {
      const std::uint32_t j = (i + 1) % p;
      std::swap(dst[i], dst[j]);
    }
  }
  for (std::uint32_t i = 0; i < p; ++i) {
    if (dst[i] != i) rel.add(i, dst[i]);
  }
  return rel;
}

Relation dest_skew_relation(std::uint32_t p, std::uint64_t n, double theta,
                            util::Xoshiro256& rng) {
  Relation rel(p);
  util::ZipfSampler sampler(p, theta);
  for (std::uint64_t k = 0; k < n; ++k) {
    const auto src = static_cast<engine::ProcId>(k % p);
    auto dst = static_cast<engine::ProcId>(sampler.sample(rng));
    if (dst == src) dst = (dst + 1) % p;
    rel.add(src, dst);
  }
  return rel;
}

}  // namespace pbw::sched
