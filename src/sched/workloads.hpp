// Workload generators for unbalanced h-relations.
//
// Section 6 motivates imbalance by "skew in the inputs, skew in the
// fraction of data that is already local (sorting a nearly-sorted list),
// skew in the amount of new values produced (an intermediate result of a
// join operation), skew in the number of new tasks spawned".  Each
// generator below models one of those regimes.
#pragma once

#include <cstdint>

#include "sched/relation.hpp"
#include "util/rng.hpp"

namespace pbw::sched {

/// Balanced: every processor sends `per_proc` unit messages to uniformly
/// random destinations.  The no-skew baseline (h ~ n/p).
[[nodiscard]] Relation balanced_relation(std::uint32_t p, std::uint32_t per_proc,
                                         util::Xoshiro256& rng);

/// Point skew: one hot processor sends hot_fraction of the n messages; the
/// remainder is spread evenly.  Models one-to-all-style imbalance where
/// h >> n/p (the regime where globally-limited models win by Theta(g)).
[[nodiscard]] Relation point_skew_relation(std::uint32_t p, std::uint64_t n,
                                           double hot_fraction,
                                           util::Xoshiro256& rng);

/// Zipf skew: each message's source is drawn with Zipf(theta) rank;
/// destinations uniform.  Models join/task-spawn skew.
[[nodiscard]] Relation zipf_relation(std::uint32_t p, std::uint64_t n, double theta,
                                     util::Xoshiro256& rng);

/// Nearly-local: only `remote_fraction` of n logical items need a message
/// at all (sorting a nearly-sorted list; list-ranking a nearly-ordered
/// list); remote items come from a contiguous band of processors.
[[nodiscard]] Relation nearly_local_relation(std::uint32_t p, std::uint64_t n,
                                             double remote_fraction,
                                             util::Xoshiro256& rng);

/// All-to-all personalized (total exchange): every processor sends one
/// message of `length` flits to every other processor.
[[nodiscard]] Relation total_exchange_relation(std::uint32_t p,
                                               std::uint32_t length = 1);

/// Variable-length messages: message count per processor from `base` with
/// point skew, lengths uniform in [1, max_length].  Used by the
/// long-message and startup-overhead experiments.
[[nodiscard]] Relation variable_length_relation(std::uint32_t p,
                                                std::uint64_t messages,
                                                std::uint32_t max_length,
                                                double hot_fraction,
                                                util::Xoshiro256& rng);

/// Destination-skewed: sources balanced, destinations drawn Zipf(theta);
/// stresses the ybar term.
[[nodiscard]] Relation dest_skew_relation(std::uint32_t p, std::uint64_t n,
                                          double theta, util::Xoshiro256& rng);

/// Random permutation: every processor sends exactly one message and
/// receives exactly one (h = 1) — the boundary case where the local
/// bound g*h equals the global bound max(n/m, h) at matched bandwidth,
/// i.e. where global limits buy nothing.
[[nodiscard]] Relation permutation_relation(std::uint32_t p,
                                            util::Xoshiro256& rng);

}  // namespace pbw::sched
