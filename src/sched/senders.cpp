#include "sched/senders.hpp"

#include <algorithm>
#include <cmath>

#include "engine/error.hpp"

namespace pbw::sched {
namespace {

void require_unit_lengths(const Relation& rel, const char* who) {
  if (rel.max_length() > 1) {
    throw engine::SimulationError(std::string(who) +
                                  ": requires unit-length messages; use the "
                                  "long-message variant");
  }
}

/// Window W = ceil((1+eps) n / m), at least 1.
std::uint64_t window_size(std::uint64_t n, std::uint32_t m, double eps) {
  const double w = (1.0 + eps) * static_cast<double>(n) / static_cast<double>(m);
  return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::ceil(w)));
}

/// Lays a processor's flit stream consecutively around a ring of W slots
/// starting at 0-based ring offset `ring_start`, applying the boundary-
/// crossing rule for long messages.  Writes start slots into out.
void lay_stream_wrapped(const std::vector<RelationItem>& items,
                        std::uint64_t ring_start, std::uint64_t window,
                        std::vector<engine::Slot>& out) {
  std::uint64_t offset = ring_start;
  out.resize(items.size());
  for (std::size_t k = 0; k < items.size(); ++k) {
    const std::uint64_t pos = offset % window;  // 0-based
    // Consecutive from pos+1; if pos + length > window the message runs
    // past the window end ("send it in time slots j, ..., j+l-1").
    out[k] = static_cast<engine::Slot>(pos + 1);
    offset += items[k].length;
  }
}

}  // namespace

SlotSchedule naive_schedule(const Relation& rel) {
  SlotSchedule sched(rel.p());
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    const auto& items = rel.items(src);
    sched.start[src].resize(items.size());
    std::uint64_t next = 1;
    for (std::size_t k = 0; k < items.size(); ++k) {
      sched.start[src][k] = static_cast<engine::Slot>(next);
      next += items[k].length;
    }
  }
  return sched;
}

SlotSchedule offline_optimal_schedule(const Relation& rel, std::uint32_t m) {
  const std::uint64_t n = rel.total_flits();
  const std::uint64_t ring = std::max<std::uint64_t>(
      {1,
       static_cast<std::uint64_t>(
           std::ceil(static_cast<double>(n) / static_cast<double>(m))),
       rel.max_sent()});
  SlotSchedule sched(rel.p());
  std::uint64_t cursor = 0;  // global flit counter; 0-based ring offset
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    lay_stream_wrapped(rel.items(src), cursor, ring, sched.start[src]);
    cursor += rel.sent_by(src);
  }
  return sched;
}

SlotSchedule unbalanced_send_schedule(const Relation& rel, std::uint32_t m,
                                      double eps, std::uint64_t n,
                                      util::Xoshiro256& rng) {
  require_unit_lengths(rel, "unbalanced_send_schedule");
  const std::uint64_t window = window_size(n, m, eps);
  SlotSchedule sched(rel.p());
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    const auto& items = rel.items(src);
    sched.start[src].resize(items.size());
    const std::uint64_t x = rel.sent_by(src);
    if (x <= window) {
      const std::uint64_t j = rng.below(window);  // 0-based ring start
      for (std::size_t k = 0; k < items.size(); ++k) {
        sched.start[src][k] = static_cast<engine::Slot>((j + k) % window + 1);
      }
    } else {
      for (std::size_t k = 0; k < items.size(); ++k) {
        sched.start[src][k] = static_cast<engine::Slot>(k + 1);
      }
    }
  }
  return sched;
}

SlotSchedule consecutive_send_schedule(const Relation& rel, std::uint32_t m,
                                       double eps, std::uint64_t n,
                                       util::Xoshiro256& rng) {
  const std::uint64_t window = window_size(n, m, eps);
  SlotSchedule sched(rel.p());
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    const auto& items = rel.items(src);
    sched.start[src].resize(items.size());
    const std::uint64_t x = rel.sent_by(src);
    const std::uint64_t start = x <= window ? rng.below(window) : 0;
    std::uint64_t offset = start;  // 0-based; no wrap
    for (std::size_t k = 0; k < items.size(); ++k) {
      sched.start[src][k] = static_cast<engine::Slot>(offset + 1);
      offset += items[k].length;
    }
  }
  return sched;
}

SlotSchedule granular_send_schedule(const Relation& rel, std::uint32_t m, double c,
                                    std::uint64_t n, util::Xoshiro256& rng) {
  const std::uint64_t p = rel.p();
  // t' = n/p, the padding granularity; window c*n/m.
  const std::uint64_t granule =
      std::max<std::uint64_t>(1, n / std::max<std::uint64_t>(1, p));
  const auto window = static_cast<std::uint64_t>(
      std::ceil(c * static_cast<double>(n) / static_cast<double>(m)));
  const double heavy_threshold =
      static_cast<double>(n) / static_cast<double>(m);
  SlotSchedule sched(rel.p());
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    const auto& items = rel.items(src);
    sched.start[src].resize(items.size());
    const std::uint64_t x = rel.sent_by(src);
    std::uint64_t offset = 0;
    if (static_cast<double>(x) <= heavy_threshold) {
      // j in [0, (c n/m - x)/t' - 1]; guard the degenerate small window.
      const std::uint64_t span = window > x ? (window - x) / granule : 0;
      const std::uint64_t j = span > 0 ? rng.below(span) : 0;
      offset = j * granule;
    }
    for (std::size_t k = 0; k < items.size(); ++k) {
      sched.start[src][k] = static_cast<engine::Slot>(offset + 1);
      offset += items[k].length;
    }
  }
  return sched;
}

SlotSchedule long_message_schedule(const Relation& rel, std::uint32_t m, double eps,
                                   std::uint64_t n, util::Xoshiro256& rng) {
  const std::uint64_t window = window_size(n, m, eps);
  SlotSchedule sched(rel.p());
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    const auto& items = rel.items(src);
    const std::uint64_t x = rel.sent_by(src);
    if (x <= window) {
      lay_stream_wrapped(items, rng.below(window), window, sched.start[src]);
    } else {
      sched.start[src].resize(items.size());
      std::uint64_t offset = 0;
      for (std::size_t k = 0; k < items.size(); ++k) {
        sched.start[src][k] = static_cast<engine::Slot>(offset + 1);
        offset += items[k].length;
      }
    }
  }
  return sched;
}

SlotSchedule overhead_schedule(const Relation& rel, std::uint32_t o,
                               std::uint32_t m, double eps,
                               util::Xoshiro256& rng) {
  // Build the inflated relation (each message prepended with o dummy
  // flits), schedule it with the long-message algorithm, then shift each
  // real message past its dummy prefix.
  Relation inflated(rel.p());
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    for (const auto& item : rel.items(src)) {
      inflated.add(src, item.dst, item.length + o);
    }
  }
  const std::uint64_t n_inflated = inflated.total_flits();
  SlotSchedule sched =
      long_message_schedule(inflated, m, eps, n_inflated, rng);
  for (auto& starts : sched.start) {
    for (auto& slot : starts) slot += o;
  }
  return sched;
}

SlotSchedule template_shift_schedule(const Relation& rel, std::uint32_t m,
                                     double eps, std::uint64_t n,
                                     std::uint32_t gap, util::Xoshiro256& rng) {
  require_unit_lengths(rel, "template_shift_schedule");
  const std::uint64_t stride = static_cast<std::uint64_t>(gap) + 1;
  // Stretch the window so the expected per-slot load stays m/(1+eps):
  // each message occupies one slot but claims a stride of template space.
  const std::uint64_t window = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil((1.0 + eps) * static_cast<double>(n) *
                       static_cast<double>(stride) / static_cast<double>(m))));
  SlotSchedule sched(rel.p());
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    const auto& items = rel.items(src);
    sched.start[src].resize(items.size());
    const std::uint64_t span = items.size() * stride;
    if (span <= window) {
      const std::uint64_t j = rng.below(window);
      for (std::size_t k = 0; k < items.size(); ++k) {
        sched.start[src][k] =
            static_cast<engine::Slot>((j + k * stride) % window + 1);
      }
    } else {
      // Too heavy for the template ring: pace from slot 1.
      for (std::size_t k = 0; k < items.size(); ++k) {
        sched.start[src][k] = static_cast<engine::Slot>(k * stride + 1);
      }
    }
  }
  return sched;
}

SlotSchedule emulation_schedule(const Relation& rel, double g) {
  require_unit_lengths(rel, "emulation_schedule");
  const auto substeps = static_cast<std::uint64_t>(std::max(1.0, g));
  SlotSchedule sched(rel.p());
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    const auto& items = rel.items(src);
    sched.start[src].resize(items.size());
    for (std::size_t k = 0; k < items.size(); ++k) {
      sched.start[src][k] =
          static_cast<engine::Slot>(k * substeps + (src % substeps) + 1);
    }
  }
  return sched;
}

}  // namespace pbw::sched
