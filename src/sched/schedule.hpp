// Slot schedules: when each message of an h-relation is injected.
//
// A globally-limited model only rewards algorithms that stagger injections
// to respect the aggregate limit m; a schedule assigns each message a
// 1-based start slot (flits of long messages occupy consecutive slots in
// consecutive-flit mode, or wrap around the window in wrapped mode).  The
// evaluation functions here replay a schedule against the BSP(m) charging
// rule directly — a fast path equivalent to running the engine with a
// single sending superstep, used heavily by the AQT simulations.
#pragma once

#include <cstdint>
#include <vector>

#include "core/model/penalty.hpp"
#include "engine/types.hpp"
#include "sched/relation.hpp"

namespace pbw::sched {

/// How a long message's flits are laid out from its start slot.
enum class FlitLayout {
  kConsecutive,  ///< flits occupy start, start+1, ..., start+len-1
  kWrapped,      ///< flits wrap modulo the window (Unbalanced-Send style)
};

/// Slot assignment parallel to a Relation: start[src][k] is the start slot
/// of Relation::items(src)[k].
struct SlotSchedule {
  std::vector<std::vector<engine::Slot>> start;
  FlitLayout layout = FlitLayout::kConsecutive;
  /// Window for wrapped layout (ignored for consecutive).
  std::uint64_t window = 0;

  explicit SlotSchedule(std::uint32_t p = 0) : start(p) {}
};

/// Per-slot injection counts m_t implied by (relation, schedule);
/// index t-1 holds slot t.
[[nodiscard]] std::vector<std::uint64_t> slot_occupancy(const Relation& rel,
                                                        const SlotSchedule& sched);

/// Evaluation of one sending superstep under BSP(m) charging.
struct ScheduleCost {
  engine::SimTime c_m = 0.0;       ///< sum_t f_m(m_t)
  engine::SimTime total = 0.0;     ///< max(h, c_m, L)
  std::uint64_t max_mt = 0;        ///< peak injections in one slot
  std::uint64_t slots_used = 0;    ///< last occupied slot
  bool within_limit = false;       ///< max_mt <= m
};

[[nodiscard]] ScheduleCost evaluate_schedule(const Relation& rel,
                                             const SlotSchedule& sched,
                                             std::uint32_t m,
                                             core::Penalty penalty, double L);

/// The same charging rule applied to a precomputed occupancy vector and h
/// (max per-processor flits sent/received).  evaluate_schedule delegates
/// here; replay recosting calls it directly on a recorded occupancy, so a
/// recosted schedule is bit-equal to re-evaluating it fresh.
[[nodiscard]] ScheduleCost evaluate_occupancy(
    const std::vector<std::uint64_t>& counts, double h, std::uint32_t m,
    core::Penalty penalty, double L);

/// Throws engine::SimulationError if any processor occupies one slot twice
/// (model contract: one injection per processor per step).
void validate_schedule(const Relation& rel, const SlotSchedule& sched);

}  // namespace pbw::sched
