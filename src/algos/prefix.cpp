#include "algos/prefix.hpp"

#include <algorithm>
#include <map>

#include "engine/error.hpp"
#include "engine/program.hpp"

namespace pbw::algos {
namespace {

std::uint32_t tree_rounds(std::uint32_t width, std::uint32_t arity) {
  std::uint32_t rounds = 0;
  std::uint64_t reach = 1;
  while (reach < width) {
    reach *= arity;
    ++rounds;
  }
  return rounds;
}

std::uint64_t ipow(std::uint64_t base, std::uint32_t exp) {
  std::uint64_t r = 1;
  for (std::uint32_t i = 0; i < exp; ++i) {
    if (r > (1ull << 40)) return r;
    r *= base;
  }
  return r;
}

/// Blelloch-style upsweep/downsweep over the collector tree; contiguous
/// blocks keep processor order (prefix must respect index order).
class PrefixProgram final : public engine::SuperstepProgram {
 public:
  PrefixProgram(std::vector<engine::Word> inputs, std::uint32_t collectors,
                std::uint32_t arity)
      : inputs_(std::move(inputs)),
        p_(static_cast<std::uint32_t>(inputs_.size())),
        c_(std::max(1u, std::min(collectors, p_))),
        arity_(std::max(2u, arity)),
        rounds_(tree_rounds(c_, arity_)),
        block_((p_ + c_ - 1) / c_),
        state_(c_),
        prefixes_(p_, 0),
        totals_(p_, 0) {}

  bool step(engine::ProcContext& ctx) override {
    const auto id = ctx.id();
    const auto s = ctx.superstep();
    const std::uint64_t dist_s = 2ull * rounds_ + 1;
    const std::uint64_t last = dist_s + 1;

    if (s == 0) {
      // Funnel: proc i's value to collector i / block, tagged with i.
      ctx.send(static_cast<engine::ProcId>(id / block_), inputs_[id],
               static_cast<engine::Slot>(id % block_ + 1), 1, id);
      return true;
    }
    if (id < c_) collector_step(ctx, id, s, dist_s);
    if (s == last) {
      for (const auto& msg : ctx.inbox()) {
        if (msg.tag % 2 == 0) {
          prefixes_[id] = msg.payload;
        } else {
          totals_[id] = msg.payload;
        }
      }
      return false;
    }
    return true;
  }

  [[nodiscard]] const std::vector<engine::Word>& prefixes() const {
    return prefixes_;
  }
  [[nodiscard]] const std::vector<engine::Word>& totals() const { return totals_; }

 private:
  struct CollectorState {
    std::map<std::uint64_t, engine::Word> block;    // proc -> value
    engine::Word partial = 0;
    std::vector<engine::Word> before;               // P_v[r]: partial before
                                                    // absorbing round r
    std::vector<std::vector<std::pair<engine::ProcId, engine::Word>>> children;
    engine::Word offset = 0;
    engine::Word total = 0;
    bool have_offset = false;
  };

  void collector_step(engine::ProcContext& ctx, engine::ProcId id,
                      std::uint64_t s, std::uint64_t dist_s) {
    auto& st = state_[id];
    if (st.before.empty()) {
      st.before.assign(rounds_ + 1, 0);
      st.children.assign(rounds_ + 1, {});
    }

    if (s == 1) {
      for (const auto& msg : ctx.inbox()) {
        st.block[msg.tag] = msg.payload;
        st.partial += msg.payload;
      }
      ctx.charge(static_cast<double>(st.block.size()));
    } else if (s >= 2 && s <= rounds_ + 1) {
      // Absorb upsweep round s-2's contributions; remember what came
      // before for the downsweep.
      const auto r = static_cast<std::uint32_t>(s - 2);
      st.before[r] = st.partial;
      for (const auto& msg : ctx.inbox()) {
        st.children[r].emplace_back(msg.src, msg.payload);
        st.partial += msg.payload;
      }
      std::sort(st.children[r].begin(), st.children[r].end());
    }

    // Upsweep sends: round r at superstep r + 1.
    if (s >= 1 && s <= rounds_) {
      const auto r = static_cast<std::uint32_t>(s - 1);
      const std::uint64_t below = ipow(arity_, r);
      const std::uint64_t at = below * arity_;
      if (id % below == 0 && id % at != 0) {
        ctx.send(static_cast<engine::ProcId>(id - id % at), st.partial, 1);
      }
      return;
    }

    // Downsweep: the root starts at rounds_+1; each level relays in the
    // next superstep.  A node at tree level r receives (offset, total) and
    // forwards child offsets using the recorded subtotals.
    if (s >= rounds_ + 1 && s < dist_s) {
      if (id == 0 && s == rounds_ + 1) {
        st.offset = 0;
        st.total = st.partial;
        st.have_offset = true;
      }
      if (!st.have_offset) {
        for (const auto& msg : ctx.inbox()) {
          if (msg.tag % 2 == 0) {
            st.offset = msg.payload;
            st.have_offset = true;
          } else {
            st.total = msg.payload;
          }
        }
      }
      // Level being expanded this superstep: root expands level rounds_-1
      // at rounds_+1, then rounds_-2, ...
      const auto t = static_cast<std::uint32_t>(s - (rounds_ + 1));
      if (t < rounds_) {
        const auto r = static_cast<std::uint32_t>(rounds_ - 1 - t);
        const std::uint64_t level = ipow(arity_, r + 1);
        if (id % level == 0 && st.have_offset) {
          engine::Word running = st.offset + st.before[r];
          std::uint32_t slot = 1;
          for (const auto& [child, subtotal] : st.children[r]) {
            ctx.send(child, running, slot++, 1, /*tag=*/0);
            ctx.send(child, st.total, slot++, 1, /*tag=*/1);
            running += subtotal;
          }
        }
      }
      return;
    }

    if (s == dist_s) {
      if (!st.have_offset) {  // single-collector case (rounds_ == 0)
        for (const auto& msg : ctx.inbox()) {
          if (msg.tag % 2 == 0) {
            st.offset = msg.payload;
          } else {
            st.total = msg.payload;
          }
        }
        st.have_offset = true;
        if (c_ == 1) {
          st.offset = 0;
          st.total = st.partial;
        }
      }
      // Per-processor prefixes within the block, then scatter.
      engine::Word running = st.offset;
      std::uint32_t slot = 1;
      for (const auto& [proc, value] : st.block) {
        ctx.send(static_cast<engine::ProcId>(proc), running, slot++, 1,
                 /*tag=*/2 * proc);
        ctx.send(static_cast<engine::ProcId>(proc), st.total, slot++, 1,
                 /*tag=*/2 * proc + 1);
        running += value;
        ctx.charge(1.0);
      }
    }
  }

  std::vector<engine::Word> inputs_;
  std::uint32_t p_;
  std::uint32_t c_;
  std::uint32_t arity_;
  std::uint32_t rounds_;
  std::uint32_t block_;
  std::vector<CollectorState> state_;
  std::vector<engine::Word> prefixes_;
  std::vector<engine::Word> totals_;
};

/// QSM variant: binary Blelloch tree over shared cells.
/// Layout: IN [0,p) inputs; SUM [p, p+C); OFF [p+C, p+2C);
/// TOT [p+2C, p+3C) (replicated total); OUT [p+3C, p+3C+p).
class QsmPrefixProgram final : public engine::SuperstepProgram {
 public:
  QsmPrefixProgram(std::vector<engine::Word> inputs, std::uint32_t collectors,
                   std::uint32_t m)
      : inputs_(std::move(inputs)),
        p_(static_cast<std::uint32_t>(inputs_.size())),
        c_(std::max(1u, std::min(collectors, p_))),
        m_(m),
        rounds_(tree_rounds(c_, 2)),
        block_((p_ + c_ - 1) / c_),
        state_(c_),
        prefixes_(p_, 0),
        totals_(p_, 0) {}

  void setup(engine::Machine& machine) override {
    machine.resize_shared(static_cast<std::size_t>(p_) + 3 * c_ + p_, 0);
    for (std::uint32_t i = 0; i < p_; ++i) machine.poke_shared(i, inputs_[i]);
  }

  bool step(engine::ProcContext& ctx) override {
    const auto id = ctx.id();
    const auto s = ctx.superstep();
    const std::uint64_t up_end = 2 + 2ull * rounds_;
    const std::uint64_t down_end = up_end + 2ull * rounds_;
    const std::uint64_t last = down_end + 2;
    const engine::Addr sum0 = p_, off0 = p_ + c_, tot0 = p_ + 2ull * c_,
                       out0 = p_ + 3ull * c_;

    if (id < c_) {
      auto& st = state_[id];
      if (s == 0) {  // read block inputs, staggered
        const std::uint64_t begin = static_cast<std::uint64_t>(id) * block_;
        const std::uint64_t end = std::min<std::uint64_t>(begin + block_, p_);
        for (std::uint64_t a = begin; a < end; ++a) {
          ctx.read(a, algos::stagger_slot(id, a - begin, c_, m_));
        }
        return true;
      }
      if (s == 1) {  // local reduce; publish block sum
        st.sum = 0;
        for (const engine::Word v : ctx.reads()) {
          st.block.push_back(v);
          st.sum += v;
          ctx.charge(1.0);
        }
        ctx.write(sum0 + id, st.sum);
        return true;
      }
      // Upsweep: round r reads partner (even offset), merges (odd).
      if (s >= 2 && s < up_end) {
        const auto r = static_cast<std::uint32_t>((s - 2) / 2);
        const std::uint64_t span = 1ull << r;
        const bool leader = id % (2 * span) == 0 && id + span < c_;
        if ((s - 2) % 2 == 0) {
          if (leader) ctx.read(sum0 + id + span);
        } else if (leader) {
          st.left_sum.push_back(st.sum);  // subtotal before absorbing right
          st.sum += ctx.reads()[0];
          ctx.write(sum0 + id, st.sum);
        } else if (id % (2 * span) == 0) {
          st.left_sum.push_back(st.sum);  // right child absent
        }
        return true;
      }
      // Downsweep: root seeds; each level writes (even) and reads (odd).
      if (s >= up_end && s < down_end) {
        const auto t = static_cast<std::uint32_t>((s - up_end) / 2);
        const auto r = static_cast<std::uint32_t>(rounds_ - 1 - t);
        const std::uint64_t span = 1ull << r;
        if (id == 0 && t == 0 && (s - up_end) % 2 == 0) {
          st.offset = 0;
          st.total = st.sum;
          st.have = true;
        }
        if ((s - up_end) % 2 == 0) {
          // Absorb the offset read issued last superstep, if any, then
          // push the right child's offset + total at this level.
          if (st.pending && !st.have) {
            auto reads = ctx.reads();
            st.offset = reads[0];
            st.total = reads[1];
            st.have = true;
          }
          const bool leader = id % (2 * span) == 0 && id + span < c_;
          if (leader && st.have) {
            ctx.write(off0 + id + span,
                      st.offset + st.left_sum.at(r), 1);
            ctx.write(tot0 + id + span, st.total, 2);
          }
        } else {
          // Right children pick their values up.
          if (!st.have && id % span == 0 && (id / span) % 2 == 1) {
            ctx.read(off0 + id, 1);
            ctx.read(tot0 + id, 2);
            st.pending = true;
          }
        }
        return true;
      }
      if (s == down_end) {  // absorb final reads; scatter per-proc prefixes
        if (st.pending && !st.have) {
          auto reads = ctx.reads();
          st.offset = reads[0];
          st.total = reads[1];
          st.have = true;
        }
        if (c_ == 1) {
          st.offset = 0;
          st.total = st.sum;
          st.have = true;
        }
        engine::Word running = st.offset;
        const std::uint64_t begin = static_cast<std::uint64_t>(id) * block_;
        std::uint64_t w = 0;
        for (std::size_t k = 0; k < st.block.size(); ++k) {
          ctx.write(out0 + begin + k, running,
                    algos::stagger_slot(id, w++, c_, m_));
          running += st.block[k];
        }
        ctx.write(tot0 + id, st.total, algos::stagger_slot(id, w++, c_, m_));
        return true;
      }
    }
    if (s == down_end + 1) {  // every processor fetches its prefix + total
      ctx.read(out0 + id, algos::stagger_slot(id, 0, p_, m_));
      ctx.read(tot0 + id % c_, algos::stagger_slot(id, 1, p_, m_));
      return true;
    }
    if (s == last) {
      auto reads = ctx.reads();
      prefixes_[id] = reads[0];
      totals_[id] = reads[1];
      return false;
    }
    return s < last;
  }

  [[nodiscard]] const std::vector<engine::Word>& prefixes() const {
    return prefixes_;
  }
  [[nodiscard]] const std::vector<engine::Word>& totals() const { return totals_; }

 private:
  struct Node {
    std::vector<engine::Word> block;
    std::vector<engine::Word> left_sum;  // subtotal per upsweep round
    engine::Word sum = 0;
    engine::Word offset = 0;
    engine::Word total = 0;
    bool have = false;
    bool pending = false;
  };

  std::vector<engine::Word> inputs_;
  std::uint32_t p_;
  std::uint32_t c_;
  std::uint32_t m_;
  std::uint32_t rounds_;
  std::uint32_t block_;
  std::vector<Node> state_;
  std::vector<engine::Word> prefixes_;
  std::vector<engine::Word> totals_;
};

}  // namespace

PrefixResult prefix_sums_qsm(const engine::CostModel& model,
                             const std::vector<engine::Word>& inputs,
                             std::uint32_t collectors, std::uint32_t m,
                             engine::MachineOptions options) {
  if (inputs.size() != model.processors()) {
    throw engine::SimulationError("prefix_sums_qsm: |inputs| != p");
  }
  QsmPrefixProgram program(inputs, collectors, m);
  engine::Machine machine(model, options);
  const auto run = machine.run(program);

  PrefixResult result;
  result.time = run.total_time;
  result.supersteps = run.supersteps;
  result.prefixes = program.prefixes();
  engine::Word running = 0;
  bool ok = true;
  for (std::uint32_t i = 0; i < inputs.size(); ++i) {
    ok &= (result.prefixes[i] == running);
    running += inputs[i];
  }
  for (std::uint32_t i = 0; i < inputs.size(); ++i) {
    ok &= (program.totals()[i] == running);
  }
  result.total = running;
  result.correct = ok;
  return result;
}

PrefixResult prefix_sums_bsp(const engine::CostModel& model,
                             const std::vector<engine::Word>& inputs,
                             std::uint32_t collectors, std::uint32_t arity,
                             engine::MachineOptions options) {
  if (inputs.size() != model.processors()) {
    throw engine::SimulationError("prefix_sums_bsp: |inputs| != p");
  }
  PrefixProgram program(inputs, collectors, arity);
  engine::Machine machine(model, options);
  const auto run = machine.run(program);

  PrefixResult result;
  result.time = run.total_time;
  result.supersteps = run.supersteps;
  result.prefixes = program.prefixes();

  engine::Word running = 0;
  bool ok = true;
  for (std::uint32_t i = 0; i < inputs.size(); ++i) {
    ok &= (result.prefixes[i] == running);
    running += inputs[i];
  }
  for (std::uint32_t i = 0; i < inputs.size(); ++i) {
    ok &= (program.totals()[i] == running);
  }
  result.total = running;
  result.correct = ok;
  return result;
}

}  // namespace pbw::algos
