// Parity and summation of n = p inputs (Table 1 row 3).
//
// The globally-limited algorithms funnel the inputs to m reducers with
// staggered injections (cost ~ n/m), reduce locally, and combine the m
// partials up a tree; the locally-limited algorithms combine up a
// (L/g)-ary (BSP) or binary (QSM) tree over all processors.  The
// locally-limited lower bound Omega(g lg n / lg lg n) comes from the
// CRCW transfer of Section 4.1 and is in core/bounds.
#pragma once

#include "algos/common.hpp"
#include "engine/cost.hpp"

namespace pbw::algos {

enum class ReduceOp { kSum, kXor };

/// BSP reduction.  `collectors` is the funnel width (use m for BSP(m), p
/// for BSP(g) — p collectors means no funnel superstep); `arity` is the
/// combining-tree branching factor (use L for BSP(m), max(2, L/g) for
/// BSP(g)).  inputs.size() must equal p; processor 0 ends with the result.
[[nodiscard]] AlgoResult reduce_bsp(const engine::CostModel& model,
                                    const std::vector<engine::Word>& inputs,
                                    std::uint32_t collectors, std::uint32_t arity,
                                    ReduceOp op,
                                    engine::MachineOptions options = {});

/// QSM reduction.  Inputs start in shared memory cells [0, n).
/// `collectors` readers each scan n/collectors inputs (staggered under
/// limit m), then combine via a `arity`-ary tree of shared cells.
[[nodiscard]] AlgoResult reduce_qsm(const engine::CostModel& model,
                                    const std::vector<engine::Word>& inputs,
                                    std::uint32_t collectors, std::uint32_t arity,
                                    std::uint32_t m, ReduceOp op,
                                    engine::MachineOptions options = {});

/// Sequential reference for verification.
[[nodiscard]] engine::Word reduce_reference(const std::vector<engine::Word>& inputs,
                                            ReduceOp op);

}  // namespace pbw::algos
