// Parallel prefix sums on the message-passing models.
//
// The Section 6 protocols lean on "processors perform a prefix sum and a
// broadcast"; this module provides the full prefix primitive (every
// processor i learns sum of inputs 0..i-1 and the total) with the same
// funnel-tree-fanout structure as CountN: collectors handle p/m inputs
// each, an arity-A tree computes collector offsets, and the exclusive
// prefixes flow back down — O(p/m + L lg m / lg L + L) on the BSP(m).
#pragma once

#include "algos/common.hpp"
#include "engine/cost.hpp"

namespace pbw::algos {

struct PrefixResult {
  engine::SimTime time = 0.0;
  std::uint64_t supersteps = 0;
  bool correct = false;
  std::vector<engine::Word> prefixes;  ///< exclusive prefix per processor
  engine::Word total = 0;
};

/// Exclusive prefix sums of one value per processor.  `collectors` is the
/// funnel width (use m), `arity` the combining-tree branching factor
/// (use L).  Verified against a sequential scan.
[[nodiscard]] PrefixResult prefix_sums_bsp(const engine::CostModel& model,
                                           const std::vector<engine::Word>& inputs,
                                           std::uint32_t collectors,
                                           std::uint32_t arity,
                                           engine::MachineOptions options = {});

/// Shared-memory counterpart for the QSM models: inputs start in cells
/// [0, p); collectors scan staggered blocks, combine up a binary tree of
/// cells (Blelloch upsweep/downsweep, contention 1 throughout), and the
/// per-processor prefixes are read back staggered.  O(p/m + lg m) on the
/// QSM(m); `m` drives the staggering.
[[nodiscard]] PrefixResult prefix_sums_qsm(const engine::CostModel& model,
                                           const std::vector<engine::Word>& inputs,
                                           std::uint32_t collectors,
                                           std::uint32_t m,
                                           engine::MachineOptions options = {});

}  // namespace pbw::algos
