#include "algos/one_to_all.hpp"

#include <vector>

#include "engine/program.hpp"

namespace pbw::algos {
namespace {

engine::Word expected_payload(engine::ProcId i) {
  return 3 * static_cast<engine::Word>(i) + 1;
}

class OneToAllBsp final : public engine::SuperstepProgram {
 public:
  explicit OneToAllBsp(std::uint32_t p) : got_(p, 0) {}

  bool step(engine::ProcContext& ctx) override {
    if (ctx.superstep() == 0) {
      if (ctx.id() == 0) {
        for (engine::ProcId i = 1; i < ctx.p(); ++i) {
          ctx.send(i, expected_payload(i), /*slot=*/i);
        }
      }
      return true;
    }
    for (const auto& msg : ctx.inbox()) got_[ctx.id()] = msg.payload;
    return false;
  }

  [[nodiscard]] bool verify(std::uint32_t p) const {
    for (engine::ProcId i = 1; i < p; ++i) {
      if (got_[i] != expected_payload(i)) return false;
    }
    return true;
  }

 private:
  std::vector<engine::Word> got_;
};

class OneToAllQsm final : public engine::SuperstepProgram {
 public:
  OneToAllQsm(std::uint32_t p, std::uint32_t m) : m_(m), got_(p, 0) {}

  void setup(engine::Machine& machine) override {
    machine.resize_shared(machine.p());
  }

  bool step(engine::ProcContext& ctx) override {
    switch (ctx.superstep()) {
      case 0:
        if (ctx.id() == 0) {
          for (engine::ProcId i = 1; i < ctx.p(); ++i) {
            ctx.write(i, expected_payload(i), /*slot=*/i);
          }
        }
        return true;
      case 1:
        if (ctx.id() != 0) {
          ctx.read(ctx.id(), stagger_slot(ctx.id(), 0, ctx.p(), m_));
        }
        return true;
      default:
        if (ctx.id() != 0) got_[ctx.id()] = ctx.reads()[0];
        return false;
    }
  }

  [[nodiscard]] bool verify(std::uint32_t p) const {
    for (engine::ProcId i = 1; i < p; ++i) {
      if (got_[i] != expected_payload(i)) return false;
    }
    return true;
  }

 private:
  std::uint32_t m_;
  std::vector<engine::Word> got_;
};

}  // namespace

AlgoResult one_to_all_bsp(const engine::CostModel& model,
                          engine::MachineOptions options) {
  OneToAllBsp program(model.processors());
  engine::Machine machine(model, options);
  const auto run = machine.run(program);
  return AlgoResult{run.total_time, run.supersteps, program.verify(model.processors())};
}

AlgoResult one_to_all_qsm(const engine::CostModel& model, std::uint32_t m,
                          engine::MachineOptions options) {
  OneToAllQsm program(model.processors(), m);
  engine::Machine machine(model, options);
  const auto run = machine.run(program);
  return AlgoResult{run.total_time, run.supersteps, program.verify(model.processors())};
}

}  // namespace pbw::algos
