#include "algos/broadcast.hpp"

#include <algorithm>
#include <vector>

#include "engine/program.hpp"

namespace pbw::algos {
namespace {

/// k-ary tree broadcast: informed prefix [0, c) grows to [0, c*(k+1)).
class BspTreeBroadcast final : public engine::SuperstepProgram {
 public:
  BspTreeBroadcast(std::uint32_t p, std::uint32_t arity, engine::Word value)
      : arity_(std::max(1u, arity)), value_(value), got_(p, 0) {
    got_[0] = value_;
  }

  bool step(engine::ProcContext& ctx) override {
    for (const auto& msg : ctx.inbox()) got_[ctx.id()] = msg.payload;
    // Informed prefix size before this superstep.
    std::uint64_t informed = 1;
    for (std::uint64_t s = 0; s < ctx.superstep(); ++s) {
      informed = std::min<std::uint64_t>(informed * (arity_ + 1), ctx.p());
    }
    if (informed >= ctx.p()) return false;
    if (ctx.id() < informed) {
      for (std::uint32_t k = 1; k <= arity_; ++k) {
        const std::uint64_t dst = ctx.id() + k * informed;
        if (dst < ctx.p()) {
          ctx.send(static_cast<engine::ProcId>(dst), got_[ctx.id()]);
        }
      }
    }
    return true;
  }

  [[nodiscard]] bool verify() const {
    return std::all_of(got_.begin(), got_.end(),
                       [&](engine::Word v) { return v == value_; });
  }

 private:
  std::uint32_t arity_;
  engine::Word value_;
  std::vector<engine::Word> got_;
};

/// Section 4.2 non-receipt broadcast of one bit: region membership — or
/// silence — tells a processor the bit.
class TernaryBroadcast final : public engine::SuperstepProgram {
 public:
  TernaryBroadcast(std::uint32_t p, bool bit)
      : bit_(bit), known_(p, -1) {
    known_[0] = bit ? 1 : 0;
  }

  bool step(engine::ProcContext& ctx) override {
    const auto id = ctx.id();
    // Frontier before this superstep: f = 3^superstep.
    std::uint64_t frontier = 1;
    for (std::uint64_t s = 0; s < ctx.superstep(); ++s) frontier *= 3;

    // Inference for processors in the regions targeted last superstep
    // (frontier/3 .. frontier): receipt or non-receipt decides the bit.
    if (ctx.superstep() > 0 && known_[id] < 0) {
      const std::uint64_t prev = frontier / 3;
      const bool received = !ctx.inbox().empty();
      if (id >= prev && id < 2 * prev) known_[id] = received ? 0 : 1;
      if (id >= 2 * prev && id < 3 * prev) known_[id] = received ? 1 : 0;
    }
    if (frontier >= ctx.p()) return false;
    if (id < frontier && known_[id] >= 0) {
      const std::uint64_t dst =
          known_[id] == 0 ? id + frontier : id + 2 * frontier;
      if (dst < ctx.p()) ctx.send(static_cast<engine::ProcId>(dst), known_[id]);
    }
    return true;
  }

  [[nodiscard]] bool verify() const {
    const engine::Word want = bit_ ? 1 : 0;
    return std::all_of(known_.begin(), known_.end(),
                       [&](engine::Word v) { return v == want; });
  }

 private:
  bool bit_;
  std::vector<engine::Word> known_;
};

/// BSP(m): arity-A tree among the first m processors, then each of them
/// relays to its residue class, one message per slot.
class BspMBroadcast final : public engine::SuperstepProgram {
 public:
  BspMBroadcast(std::uint32_t p, std::uint32_t m, std::uint32_t arity,
                engine::Word value)
      : m_(std::min(m, p)), arity_(std::max(1u, arity)), value_(value), got_(p, 0) {
    got_[0] = value_;
    tree_steps_ = 0;
    std::uint64_t informed = 1;
    while (informed < m_) {
      informed *= (arity_ + 1);
      ++tree_steps_;
    }
  }

  bool step(engine::ProcContext& ctx) override {
    const auto id = ctx.id();
    for (const auto& msg : ctx.inbox()) got_[id] = msg.payload;
    const auto s = ctx.superstep();
    if (s < tree_steps_) {
      std::uint64_t informed = 1;
      for (std::uint64_t t = 0; t < s; ++t) informed *= (arity_ + 1);
      if (id < informed) {
        for (std::uint32_t k = 1; k <= arity_; ++k) {
          const std::uint64_t dst = id + k * informed;
          if (dst < m_) ctx.send(static_cast<engine::ProcId>(dst), got_[id]);
        }
      }
      return true;
    }
    if (s == tree_steps_) {
      if (id < m_) {
        std::uint32_t k = 1;
        for (std::uint64_t dst = id + m_; dst < ctx.p(); dst += m_, ++k) {
          ctx.send(static_cast<engine::ProcId>(dst), got_[id],
                   static_cast<engine::Slot>(k));
        }
      }
      return true;
    }
    return false;
  }

  [[nodiscard]] bool verify() const {
    return std::all_of(got_.begin(), got_.end(),
                       [&](engine::Word v) { return v == value_; });
  }

 private:
  std::uint32_t m_;
  std::uint32_t arity_;
  engine::Word value_;
  std::uint64_t tree_steps_;
  std::vector<engine::Word> got_;
};

/// QSM(g): the value replicates through cells with read contention
/// `fanout`; read and write supersteps alternate.
class QsmGBroadcast final : public engine::SuperstepProgram {
 public:
  QsmGBroadcast(std::uint32_t p, std::uint32_t fanout, engine::Word value)
      : fanout_(std::max(2u, fanout)), value_(value), got_(p, -1) {
    got_[0] = value_;
  }

  void setup(engine::Machine& machine) override {
    machine.resize_shared(machine.p(), -1);
    machine.poke_shared(0, value_);
  }

  bool step(engine::ProcContext& ctx) override {
    const auto id = ctx.id();
    const auto s = ctx.superstep();
    // Round r = s / 2: cells [0, c) hold the value, c = fanout^r.
    std::uint64_t c = 1;
    for (std::uint64_t r = 0; r < s / 2; ++r) {
      c = std::min<std::uint64_t>(c * fanout_, ctx.p());
    }
    if (s % 2 == 0) {  // read superstep
      if (c >= ctx.p()) return false;
      const std::uint64_t reach = std::min<std::uint64_t>(c * fanout_, ctx.p());
      if (id >= c && id < reach) ctx.read(id % c);
      return true;
    }
    // write superstep: newly informed processors publish into their cell.
    const std::uint64_t reach = std::min<std::uint64_t>(c * fanout_, ctx.p());
    if (id >= c && id < reach) {
      got_[id] = ctx.reads()[0];
      ctx.write(id, got_[id]);
    }
    return true;
  }

  [[nodiscard]] bool verify() const {
    return std::all_of(got_.begin(), got_.end(),
                       [&](engine::Word v) { return v == value_; });
  }

 private:
  std::uint32_t fanout_;
  engine::Word value_;
  std::vector<engine::Word> got_;
};

/// QSM(m): doubling among m cells (contention 1), then a staggered
/// all-processor read of cell (id mod m) with contention p/m.
class QsmMBroadcast final : public engine::SuperstepProgram {
 public:
  QsmMBroadcast(std::uint32_t p, std::uint32_t m, engine::Word value)
      : m_(std::min(m, p)), value_(value), got_(p, -1) {
    got_[0] = value_;
    double_steps_ = 0;
    std::uint64_t c = 1;
    while (c < m_) {
      c *= 2;
      ++double_steps_;
    }
  }

  void setup(engine::Machine& machine) override {
    machine.resize_shared(machine.p(), -1);
    machine.poke_shared(0, value_);
  }

  bool step(engine::ProcContext& ctx) override {
    const auto id = ctx.id();
    const auto s = ctx.superstep();
    if (s < 2 * double_steps_) {
      std::uint64_t c = 1;
      for (std::uint64_t r = 0; r < s / 2; ++r) c *= 2;
      const std::uint64_t reach = std::min<std::uint64_t>(2 * c, m_);
      if (s % 2 == 0) {
        if (id >= c && id < reach) ctx.read(id - c);
      } else if (id >= c && id < reach) {
        got_[id] = ctx.reads()[0];
        ctx.write(id, got_[id]);
      }
      return true;
    }
    if (s == 2 * double_steps_) {
      if (got_[id] < 0 || id >= m_) {
        ctx.read(id % m_, static_cast<engine::Slot>(id / m_ + 1));
      }
      return true;
    }
    if (got_[id] < 0) got_[id] = ctx.reads()[0];
    return false;
  }

  [[nodiscard]] bool verify() const {
    return std::all_of(got_.begin(), got_.end(),
                       [&](engine::Word v) { return v == value_; });
  }

 private:
  std::uint32_t m_;
  engine::Word value_;
  std::uint64_t double_steps_;
  std::vector<engine::Word> got_;
};

template <typename Program>
AlgoResult run_broadcast(const engine::CostModel& model, Program& program,
                         engine::MachineOptions options) {
  engine::Machine machine(model, options);
  const auto run = machine.run(program);
  return AlgoResult{run.total_time, run.supersteps, program.verify()};
}

}  // namespace

AlgoResult broadcast_bsp_tree(const engine::CostModel& model, std::uint32_t arity,
                              engine::Word value, engine::MachineOptions options) {
  BspTreeBroadcast program(model.processors(), arity, value);
  return run_broadcast(model, program, options);
}

AlgoResult broadcast_ternary_bsp(const engine::CostModel& model, bool bit,
                                 engine::MachineOptions options) {
  TernaryBroadcast program(model.processors(), bit);
  return run_broadcast(model, program, options);
}

AlgoResult broadcast_bsp_m(const engine::CostModel& model, std::uint32_t m,
                           std::uint32_t arity, engine::Word value,
                           engine::MachineOptions options) {
  BspMBroadcast program(model.processors(), m, arity, value);
  return run_broadcast(model, program, options);
}

AlgoResult broadcast_qsm_g(const engine::CostModel& model, std::uint32_t fanout,
                           engine::Word value, engine::MachineOptions options) {
  QsmGBroadcast program(model.processors(), fanout, value);
  return run_broadcast(model, program, options);
}

AlgoResult broadcast_qsm_m(const engine::CostModel& model, std::uint32_t m,
                           engine::Word value, engine::MachineOptions options) {
  QsmMBroadcast program(model.processors(), m, value);
  return run_broadcast(model, program, options);
}

}  // namespace pbw::algos
