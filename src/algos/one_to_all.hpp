// One-to-all personalized communication (Section 1 / Table 1 row 1):
// processor 0 sends a distinct message to each of the other p-1 processors.
//
// Under a per-processor gap this costs Theta(g p); under an aggregate limit
// the single sender is never the bandwidth bottleneck and the cost is
// Theta(p) — the introductory Theta(g) separation of the paper.
#pragma once

#include "algos/common.hpp"
#include "engine/cost.hpp"

namespace pbw::algos {

/// Message-passing version: runs on BSP(g), BSP(m) or self-scheduling
/// BSP(m); processor 0 injects one message per slot.  Verifies that
/// processor i received payload 3*i + 1.
[[nodiscard]] AlgoResult one_to_all_bsp(const engine::CostModel& model,
                                        engine::MachineOptions options = {});

/// Shared-memory version: processor 0 writes p-1 distinct cells (one per
/// slot); processor i then reads its cell, staggered so at most m reads
/// land per slot.  Runs on QSM(g) and QSM(m).
[[nodiscard]] AlgoResult one_to_all_qsm(const engine::CostModel& model,
                                        std::uint32_t m,
                                        engine::MachineOptions options = {});

}  // namespace pbw::algos
