#include "algos/reduce.hpp"

#include <algorithm>

#include "engine/error.hpp"
#include "engine/program.hpp"

namespace pbw::algos {
namespace {

engine::Word apply(ReduceOp op, engine::Word a, engine::Word b) {
  return op == ReduceOp::kSum ? a + b : (a ^ b);
}

std::uint32_t tree_rounds(std::uint32_t width, std::uint32_t arity) {
  std::uint32_t rounds = 0;
  std::uint64_t reach = 1;
  while (reach < width) {
    reach *= arity;
    ++rounds;
  }
  return rounds;
}

std::uint64_t ipow(std::uint64_t base, std::uint32_t exp) {
  std::uint64_t r = 1;
  for (std::uint32_t i = 0; i < exp; ++i) {
    if (r > (1ull << 40)) return r;
    r *= base;
  }
  return r;
}

class BspReduce final : public engine::SuperstepProgram {
 public:
  BspReduce(std::vector<engine::Word> inputs, std::uint32_t collectors,
            std::uint32_t arity, ReduceOp op)
      : inputs_(std::move(inputs)),
        p_(static_cast<std::uint32_t>(inputs_.size())),
        collectors_(std::min(collectors, p_)),
        arity_(std::max(2u, arity)),
        rounds_(tree_rounds(collectors_, arity_)),
        op_(op),
        funnel_(collectors_ < p_ ? 1u : 0u),
        partial_(p_, op == ReduceOp::kSum ? 0 : 0) {
    if (funnel_ == 0) partial_ = inputs_;
  }

  bool step(engine::ProcContext& ctx) override {
    const auto id = ctx.id();
    const auto s = ctx.superstep();
    if (funnel_ == 1 && s == 0) {
      ctx.send(id % collectors_, inputs_[id],
               static_cast<engine::Slot>(id / collectors_ + 1));
      return true;
    }
    // Accumulate whatever arrived (funnel inputs or subtree partials).
    if (id < collectors_) {
      for (const auto& msg : ctx.inbox()) {
        partial_[id] = apply(op_, partial_[id], msg.payload);
        ctx.charge(1.0);
      }
    }
    const std::uint64_t r = s - funnel_;
    if (r < rounds_ && id < collectors_) {
      const std::uint64_t below = ipow(arity_, static_cast<std::uint32_t>(r));
      const std::uint64_t at = below * arity_;
      if (id % below == 0 && id % at != 0) {
        ctx.send(static_cast<engine::ProcId>(id - id % at), partial_[id], 1);
      }
      return true;
    }
    return r < rounds_;  // non-collectors idle until the tree finishes
  }

  [[nodiscard]] engine::Word result() const { return partial_[0]; }

 private:
  std::vector<engine::Word> inputs_;
  std::uint32_t p_;
  std::uint32_t collectors_;
  std::uint32_t arity_;
  std::uint32_t rounds_;
  ReduceOp op_;
  std::uint32_t funnel_;
  std::vector<engine::Word> partial_;
};

class QsmReduce final : public engine::SuperstepProgram {
 public:
  QsmReduce(std::vector<engine::Word> inputs, std::uint32_t collectors,
            std::uint32_t arity, std::uint32_t m, ReduceOp op)
      : inputs_(std::move(inputs)),
        n_(static_cast<std::uint32_t>(inputs_.size())),
        collectors_(std::min(collectors, n_)),
        arity_(std::max(2u, arity)),
        rounds_(tree_rounds(collectors_, arity_)),
        m_(m),
        op_(op),
        partial_(n_, 0) {}

  void setup(engine::Machine& machine) override {
    machine.resize_shared(n_);
    for (std::uint32_t i = 0; i < n_; ++i) {
      machine.poke_shared(i, inputs_[i]);
    }
  }

  bool step(engine::ProcContext& ctx) override {
    const auto id = ctx.id();
    const auto s = ctx.superstep();
    const std::uint32_t chunk = (n_ + collectors_ - 1) / collectors_;

    if (s == 0) {  // scan phase: collector j reads its block, staggered
      if (id < collectors_) {
        const std::uint64_t begin = static_cast<std::uint64_t>(id) * chunk;
        const std::uint64_t end = std::min<std::uint64_t>(begin + chunk, n_);
        for (std::uint64_t a = begin; a < end; ++a) {
          ctx.read(a, stagger_slot(id, a - begin, collectors_, m_));
        }
      }
      return true;
    }
    if (s == 1) {  // local reduce; publish partial into own cell
      if (id < collectors_) {
        for (const engine::Word v : ctx.reads()) {
          partial_[id] = apply(op_, partial_[id], v);
          ctx.charge(1.0);
        }
        ctx.write(id, partial_[id]);
      }
      return true;
    }
    // Tree rounds: read children (even offset), fold + write (odd offset).
    const std::uint64_t r = (s - 2) / 2;
    if (r >= rounds_) return false;
    const std::uint64_t below = ipow(arity_, static_cast<std::uint32_t>(r));
    const std::uint64_t at = below * arity_;
    const bool leader = id < collectors_ && id % at == 0;
    if ((s - 2) % 2 == 0) {
      if (leader) {
        for (std::uint32_t k = 1; k < arity_; ++k) {
          const std::uint64_t child = id + k * below;
          if (child < collectors_) ctx.read(child, k);
        }
      }
      return true;
    }
    if (leader) {
      for (const engine::Word v : ctx.reads()) {
        partial_[id] = apply(op_, partial_[id], v);
        ctx.charge(1.0);
      }
      ctx.write(id, partial_[id]);
    }
    return true;
  }

  [[nodiscard]] engine::Word result() const { return partial_[0]; }

 private:
  std::vector<engine::Word> inputs_;
  std::uint32_t n_;
  std::uint32_t collectors_;
  std::uint32_t arity_;
  std::uint32_t rounds_;
  std::uint32_t m_;
  ReduceOp op_;
  std::vector<engine::Word> partial_;
};

}  // namespace

engine::Word reduce_reference(const std::vector<engine::Word>& inputs, ReduceOp op) {
  engine::Word acc = 0;
  for (engine::Word v : inputs) acc = apply(op, acc, v);
  return acc;
}

AlgoResult reduce_bsp(const engine::CostModel& model,
                      const std::vector<engine::Word>& inputs,
                      std::uint32_t collectors, std::uint32_t arity, ReduceOp op,
                      engine::MachineOptions options) {
  if (inputs.size() != model.processors()) {
    throw engine::SimulationError("reduce_bsp: |inputs| != p");
  }
  BspReduce program(inputs, collectors, arity, op);
  engine::Machine machine(model, options);
  const auto run = machine.run(program);
  return AlgoResult{run.total_time, run.supersteps,
                    program.result() == reduce_reference(inputs, op)};
}

AlgoResult reduce_qsm(const engine::CostModel& model,
                      const std::vector<engine::Word>& inputs,
                      std::uint32_t collectors, std::uint32_t arity,
                      std::uint32_t m, ReduceOp op,
                      engine::MachineOptions options) {
  if (inputs.size() != model.processors()) {
    throw engine::SimulationError("reduce_qsm: |inputs| != p");
  }
  QsmReduce program(inputs, collectors, arity, m, op);
  engine::Machine machine(model, options);
  const auto run = machine.run(program);
  return AlgoResult{run.total_time, run.supersteps,
                    program.result() == reduce_reference(inputs, op)};
}

}  // namespace pbw::algos
