// Sorting n keys on the message-passing models (Table 1 row 5).
//
// The paper sorts on the BSP(m) by routing the keys to a subset of
// m lg n processors and running the deterministic columnsort adaptation of
// Adler–Byers–Karp; the running time is dominated by routing a balanced
// permutation, O(n/m + L), whenever m = O(n^{1-eps}).  We implement the
// standard randomized equivalent — sample sort over S = Theta(m) sorters —
// whose communication volume is the same three balanced n-relations
// (distribute, bucket exchange, final placement), each staggered to cost
// ~n/m on the BSP(m); on the BSP(g) the same program pays g * (n/S) per
// relation.  DESIGN.md records this substitution.
//
// Sorter count S is the largest power of two <= min(p, m lg n) — the
// paper's m lg n sorters, which keeps local sort work (n/S) lg(n/S) within
// a small constant of n/m.  The sample all-gather costs ~S^2 t / m, so the
// Theta(n/m) shape requires m^2 lg^2 n = O(n) (i.e. m = O(sqrt(n)/lg n)),
// a narrower regime than the paper's m = O(n^{1-eps}); DESIGN.md records
// this substitution (splitter selection instead of the recursive
// columnsort of Adler-Byers-Karp).
#pragma once

#include "algos/common.hpp"
#include "engine/cost.hpp"

namespace pbw::algos {

/// Sorts `keys` (distributed n/p per processor in index order) and leaves
/// them redistributed in globally sorted order.  `m` is the aggregate
/// limit used for staggering; `samples_per_sorter` tunes splitter quality.
/// Verifies the final distributed order against std::sort.
[[nodiscard]] AlgoResult sample_sort_bsp(const engine::CostModel& model,
                                         const std::vector<engine::Word>& keys,
                                         std::uint32_t m,
                                         std::uint32_t samples_per_sorter = 4,
                                         engine::MachineOptions options = {});

}  // namespace pbw::algos
