#include "algos/sorting.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "engine/error.hpp"
#include "engine/program.hpp"

namespace pbw::algos {
namespace {

std::uint32_t floor_pow2(std::uint32_t x) {
  std::uint32_t p = 1;
  while (2 * p <= x) p *= 2;
  return p;
}

std::uint32_t lg_exact(std::uint32_t pow2) {
  std::uint32_t l = 0;
  while ((1u << l) < pow2) ++l;
  return l;
}

/// Distributed randomized sample sort; see header for the phase plan:
///   s0                 distribute keys to S sorters (staggered n-relation)
///   s1                 local sort + pick samples; all-gather round 0
///   s1+k, k<lgS        hypercube all-gather of samples
///   sA = 1+lgS         splitters; bucket exchange (staggered n-relation)
///   sA+1               bucket sort; size all-gather round 0
///   sA+1+k, k<lgS      hypercube all-gather of bucket sizes
///   sB = sA+1+lgS      global offsets; final placement (staggered, by rank)
///   sB+1               receivers store keys at their rank offsets
class SampleSortProgram final : public engine::SuperstepProgram {
 public:
  SampleSortProgram(const std::vector<engine::Word>& keys, std::uint32_t p,
                    std::uint32_t m, std::uint32_t samples)
      : keys_(keys),
        n_(static_cast<std::uint64_t>(keys.size())),
        p_(p),
        m_(m),
        samples_(std::max(1u, samples)),
        sorters_(floor_pow2(std::max(
            2u, std::min(p, m * static_cast<std::uint32_t>(std::ceil(std::log2(
                                std::max<double>(4, double(keys.size())))))))))
            ,
        lg_s_(lg_exact(sorters_)),
        chunk_((n_ + p - 1) / p),
        state_(sorters_),
        output_(p) {
    if (p_ == 1) sorters_ = 1;
  }

  bool step(engine::ProcContext& ctx) override;

  [[nodiscard]] bool verify() const {
    std::vector<engine::Word> expected(keys_);
    std::sort(expected.begin(), expected.end());
    std::vector<engine::Word> got;
    got.reserve(n_);
    for (const auto& part : output_) {
      got.insert(got.end(), part.begin(), part.end());
    }
    return got == expected;
  }

 private:
  struct SorterState {
    std::vector<engine::Word> keys;       // received keys, then sorted
    std::vector<engine::Word> gathered;   // all-gather sample pool
    std::vector<engine::Word> splitters;
    std::vector<engine::Word> bucket;     // this sorter's bucket, sorted
    std::vector<std::pair<std::uint32_t, std::uint64_t>> sizes;  // (sorter, n)
  };

  void send_staggered(engine::ProcContext& ctx, engine::ProcId dst,
                      engine::Word payload, std::uint64_t tag, std::uint32_t member,
                      std::uint64_t& counter, std::uint32_t group) {
    ctx.send(dst, payload, stagger_slot(member, counter++, group, m_), 1, tag);
  }

  const std::vector<engine::Word>& keys_;
  std::uint64_t n_;
  std::uint32_t p_;
  std::uint32_t m_;
  std::uint32_t samples_;
  std::uint32_t sorters_;
  std::uint32_t lg_s_;
  std::uint64_t chunk_;
  std::vector<SorterState> state_;
  std::vector<std::vector<engine::Word>> output_;
};

bool SampleSortProgram::step(engine::ProcContext& ctx) {
  const auto id = ctx.id();
  const auto s = ctx.superstep();

  if (p_ == 1) {  // trivial single-processor path
    if (s == 0) {
      output_[0] = keys_;
      std::sort(output_[0].begin(), output_[0].end());
      ctx.charge(static_cast<double>(n_) *
                 std::log2(std::max<double>(2, static_cast<double>(n_))));
    }
    return false;
  }

  const std::uint64_t sA = 1 + lg_s_;
  const std::uint64_t sB = sA + 1 + lg_s_;

  if (s == 0) {
    // Distribute: proc id's k-th key (global index q) goes to sorter q % S.
    const std::uint64_t begin = static_cast<std::uint64_t>(id) * chunk_;
    const std::uint64_t end = std::min(begin + chunk_, n_);
    std::uint64_t counter = 0;
    for (std::uint64_t q = begin; q < end; ++q) {
      send_staggered(ctx, static_cast<engine::ProcId>(q % sorters_), keys_[q], 0,
                     id, counter, p_);
    }
    return true;
  }

  if (id >= sorters_ && s < sB + 1) return true;  // only sorters act below
  SorterState* st = id < sorters_ ? &state_[id] : nullptr;

  if (s == 1 && st != nullptr) {
    for (const auto& msg : ctx.inbox()) st->keys.push_back(msg.payload);
    std::sort(st->keys.begin(), st->keys.end());
    ctx.charge(static_cast<double>(st->keys.size()) *
               std::log2(std::max<double>(2, double(st->keys.size()))));
    for (std::uint32_t t = 0; t < samples_; ++t) {
      st->gathered.push_back(
          st->keys.empty()
              ? 0
              : st->keys[ctx.rng().below(st->keys.size())]);
    }
  }

  if (s >= 1 && s < sA && st != nullptr) {
    // Sample all-gather round k = s - 1: merge what arrived (k > 0), then
    // send the whole pool to partner id ^ 2^k.
    if (s > 1) {
      for (const auto& msg : ctx.inbox()) st->gathered.push_back(msg.payload);
    }
    const auto partner = static_cast<engine::ProcId>(id ^ (1u << (s - 1)));
    std::uint64_t counter = 0;
    for (const engine::Word v : st->gathered) {
      send_staggered(ctx, partner, v, 0, id, counter, sorters_);
    }
    return true;
  }

  if (s == sA && st != nullptr) {
    for (const auto& msg : ctx.inbox()) st->gathered.push_back(msg.payload);
    std::sort(st->gathered.begin(), st->gathered.end());
    ctx.charge(static_cast<double>(st->gathered.size()));
    // S-1 evenly spaced splitters; identical at every sorter.
    for (std::uint32_t j = 1; j < sorters_; ++j) {
      st->splitters.push_back(
          st->gathered[j * st->gathered.size() / sorters_]);
    }
    // Bucket exchange: key -> first bucket whose splitter exceeds it.
    std::uint64_t counter = 0;
    for (const engine::Word key : st->keys) {
      const auto bucket = static_cast<engine::ProcId>(
          std::upper_bound(st->splitters.begin(), st->splitters.end(), key) -
          st->splitters.begin());
      send_staggered(ctx, bucket, key, 0, id, counter, sorters_);
    }
    return true;
  }

  if (s >= sA + 1 && s < sB && st != nullptr) {
    if (s == sA + 1) {
      for (const auto& msg : ctx.inbox()) st->bucket.push_back(msg.payload);
      std::sort(st->bucket.begin(), st->bucket.end());
      ctx.charge(static_cast<double>(st->bucket.size()) *
                 std::log2(std::max<double>(2, double(st->bucket.size()))));
      st->sizes.emplace_back(id, st->bucket.size());
    } else {
      for (const auto& msg : ctx.inbox()) {
        st->sizes.emplace_back(static_cast<std::uint32_t>(msg.tag),
                               static_cast<std::uint64_t>(msg.payload));
      }
    }
    const auto round = static_cast<std::uint32_t>(s - (sA + 1));
    const auto partner = static_cast<engine::ProcId>(id ^ (1u << round));
    std::uint64_t counter = 0;
    for (const auto& [sorter, size] : st->sizes) {
      send_staggered(ctx, partner, static_cast<engine::Word>(size), sorter, id,
                     counter, sorters_);
    }
    return true;
  }

  if (s == sB && st != nullptr) {
    for (const auto& msg : ctx.inbox()) {
      st->sizes.emplace_back(static_cast<std::uint32_t>(msg.tag),
                             static_cast<std::uint64_t>(msg.payload));
    }
    std::uint64_t offset = 0;
    for (const auto& [sorter, size] : st->sizes) {
      if (sorter < id) offset += size;
    }
    // Final placement: key with global rank r goes to proc r / chunk,
    // tagged with its rank so the receiver can slot it in place.
    std::uint64_t counter = 0;
    for (std::size_t k = 0; k < st->bucket.size(); ++k) {
      const std::uint64_t rank = offset + k;
      send_staggered(ctx, static_cast<engine::ProcId>(rank / chunk_),
                     st->bucket[k], rank, id, counter, sorters_);
    }
    return true;
  }

  if (s == sB + 1) {
    auto& out = output_[id];
    const std::uint64_t begin = static_cast<std::uint64_t>(id) * chunk_;
    const std::uint64_t end = std::min(begin + chunk_, n_);
    out.assign(end > begin ? end - begin : 0, 0);
    for (const auto& msg : ctx.inbox()) out.at(msg.tag - begin) = msg.payload;
    return false;
  }
  return true;
}

}  // namespace

AlgoResult sample_sort_bsp(const engine::CostModel& model,
                           const std::vector<engine::Word>& keys, std::uint32_t m,
                           std::uint32_t samples_per_sorter,
                           engine::MachineOptions options) {
  SampleSortProgram program(keys, model.processors(), m, samples_per_sorter);
  engine::Machine machine(model, options);
  const auto run = machine.run(program);
  return AlgoResult{run.total_time, run.supersteps, program.verify()};
}

}  // namespace pbw::algos
