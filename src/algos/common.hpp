// Shared helpers for the Section 4 algorithm programs.
#pragma once

#include <cstdint>

#include "engine/machine.hpp"
#include "engine/types.hpp"

namespace pbw::algos {

/// Uniform result for the Table 1 algorithms: model time plus a
/// correctness verdict checked against a sequential reference.
struct AlgoResult {
  engine::SimTime time = 0.0;
  std::uint64_t supersteps = 0;
  bool correct = false;
};

/// Staggered injection slot for round-robin group sending: `member`'s k-th
/// injection when `group_size` processors inject concurrently under
/// aggregate limit m.  Guarantees (a) at most m injections per slot and
/// (b) distinct slots per member across k.
[[nodiscard]] inline engine::Slot stagger_slot(std::uint32_t member,
                                               std::uint64_t k,
                                               std::uint32_t group_size,
                                               std::uint32_t m) {
  if (group_size <= m) return static_cast<engine::Slot>(k + 1);
  return static_cast<engine::Slot>(
      (k * group_size + member) / m + 1);
}

}  // namespace pbw::algos
