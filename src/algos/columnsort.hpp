// Leighton's columnsort on the message-passing models — the deterministic
// sorting engine behind the paper's Table 1 sorting row (the paper cites
// the Adler–Byers–Karp adaptation of columnsort [2]).
//
// The n keys form an r x s matrix (column j owned by sorter j), with
// r >= 2 (s-1)^2.  Eight steps sort it in column-major order:
//   1. sort columns            2. transpose   (col-major -> row-major)
//   3. sort columns            4. untranspose (row-major -> col-major)
//   5. sort columns            6. shift down by r/2 (into s+1 columns)
//   7. sort columns            8. unshift
// Every odd step is a local sort; every even step is a fixed permutation
// routed as a balanced n-relation with staggered injections (cost ~ n/m
// per permutation on the BSP(m), g * r on the BSP(g)).
#pragma once

#include "algos/common.hpp"
#include "engine/cost.hpp"

namespace pbw::algos {

/// Sorts `keys` with columnsort using `s` sorter processors (s columns).
/// Requires keys.size() divisible by s and r = n/s >= 2 (s-1)^2 and
/// s + 1 <= p (the shift step borrows one extra column owner).
/// `m` is the aggregate limit used for staggering.
[[nodiscard]] AlgoResult columnsort_bsp(const engine::CostModel& model,
                                        const std::vector<engine::Word>& keys,
                                        std::uint32_t s, std::uint32_t m,
                                        engine::MachineOptions options = {});

/// Largest valid column count for n keys on p processors:
/// the biggest s with s | adjusted n handling left to the caller;
/// returns max s such that n/s >= 2 (s-1)^2 and s + 1 <= p.
[[nodiscard]] std::uint32_t columnsort_max_columns(std::uint64_t n,
                                                   std::uint32_t p);

}  // namespace pbw::algos
