// Gossiping (all-to-all broadcast): every processor learns every other
// processor's value.  Section 3 lists gossiping among the total-exchange
// applications; on the BSP(m) the staggered total exchange costs
// max(p-1, p(p-1)/m, L) — the h = p-1 receive bound meets the aggregate
// bound n/m = p(p-1)/m, so for m >= p the per-processor term dominates
// and bandwidth is free, while for m << p the network is the bottleneck.
#pragma once

#include "algos/common.hpp"
#include "engine/cost.hpp"

namespace pbw::algos {

/// Every processor contributes values[i]; afterwards every processor
/// holds the full vector.  Staggered under limit m.  Verified.
[[nodiscard]] AlgoResult gossip_bsp(const engine::CostModel& model,
                                    const std::vector<engine::Word>& values,
                                    std::uint32_t m,
                                    engine::MachineOptions options = {});

}  // namespace pbw::algos
