// List ranking on the shared-memory models (Table 1 row 4).
//
// The paper's bound O(lg m + n/m) on the QSM(m) comes from simulating a
// work-optimal EREW algorithm on m processors.  We implement a
// work-efficient randomized splice-contraction directly:
//
//   Phase 1 (contract): every live node flips a coin; if coin(v) = H and
//   coin(next(v)) = T, v splices out u = next(v), absorbing dist(u) and
//   recording (round, target = next(u), d = dist(u)) for u.  Each round
//   removes a constant fraction of live nodes in expectation, so total
//   work is O(n) and the round count is O(lg n) w.h.p.
//
//   Phase 2 (unwind): splice records are resolved in reverse round order:
//   rank(u) = d + rank(target), where target's rank is already known
//   (it was spliced later, finished with next = nil, or is the surviving
//   head).  Within one round all targets are distinct, so every shared
//   read has contention 1.
//
// Nodes are owned by the first C processors (v mod C); all injections are
// staggered under the aggregate limit m, so a round costs
// O(max_i live_i / 1) local work and O(live/m) bandwidth — total
// O(n/m + lg n) on the QSM(m), and g times the request count on QSM(g).
#pragma once

#include <cstdint>
#include <vector>

#include "algos/common.hpp"
#include "engine/cost.hpp"

namespace pbw::algos {

/// Ranks the list given by `succ` (succ[tail] == n, the nil sentinel):
/// rank[v] = number of nodes after v.  `collectors` is the number of
/// active processors (use m for QSM(m)); staggering uses limit `m`.
/// Randomness comes from the machine's per-(proc, superstep) streams.
[[nodiscard]] AlgoResult list_rank_qsm(const engine::CostModel& model,
                                       const std::vector<std::uint32_t>& succ,
                                       std::uint32_t collectors, std::uint32_t m,
                                       engine::MachineOptions options = {});

/// Builds a uniformly random list over n nodes; returns the successor
/// array (succ[tail] = n).
[[nodiscard]] std::vector<std::uint32_t> random_list(std::uint32_t n,
                                                     std::uint64_t seed);

/// Sequential reference ranking.
[[nodiscard]] std::vector<std::uint32_t> rank_reference(
    const std::vector<std::uint32_t>& succ);

}  // namespace pbw::algos
