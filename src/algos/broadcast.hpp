// Broadcasting one value from processor 0 to all p processors
// (Table 1 row 2 and Section 4.2).
//
// Four algorithms, one per model regime:
//  - BSP(g): k-ary tree, optimal arity k = L/g, giving
//    Theta(L lg p / lg(L/g)).
//  - BSP(g) with non-receipt inference: the ternary algorithm of Section
//    4.2 achieving g ceil(log_3 p) when L <= g (processors learn the bit
//    from which region sent to them — or from silence).
//  - BSP(m): L-ary tree among the first m processors, then an m-way
//    staggered fan-out, giving O(L lg m / lg L + p/m + L).
//  - QSM(g): g-ary replication through read contention g per phase,
//    giving Theta(g lg p / lg g).
//  - QSM(m): doubling to m cells then staggered reads: Theta(lg m + p/m).
#pragma once

#include "algos/common.hpp"
#include "engine/cost.hpp"

namespace pbw::algos {

/// k-ary tree broadcast on a message-passing model.  `arity` children per
/// informed processor per superstep (use L/g for BSP(g)).
[[nodiscard]] AlgoResult broadcast_bsp_tree(const engine::CostModel& model,
                                            std::uint32_t arity,
                                            engine::Word value,
                                            engine::MachineOptions options = {});

/// The non-receipt ternary broadcast of a single bit (Section 4.2): at
/// step i, processor j <= 3^{i-1} sends to j + 3^{i-1} if b = 0 and to
/// j + 2*3^{i-1} if b = 1; the receiving region — or silence — reveals b.
[[nodiscard]] AlgoResult broadcast_ternary_bsp(const engine::CostModel& model,
                                               bool bit,
                                               engine::MachineOptions options = {});

/// BSP(m) broadcast: arity-L tree among processors 0..m-1 (at most m
/// senders per superstep keeps every slot within the aggregate limit),
/// then each of the m informed processors relays to its residue class with
/// one message per slot.
[[nodiscard]] AlgoResult broadcast_bsp_m(const engine::CostModel& model,
                                         std::uint32_t m, std::uint32_t arity,
                                         engine::Word value,
                                         engine::MachineOptions options = {});

/// QSM(g) broadcast via read contention: in each round the number of cells
/// holding the value multiplies by `fanout` (= g for the optimal
/// Theta(g lg p / lg g)).
[[nodiscard]] AlgoResult broadcast_qsm_g(const engine::CostModel& model,
                                         std::uint32_t fanout, engine::Word value,
                                         engine::MachineOptions options = {});

/// QSM(m) broadcast: doubling among m cells (contention <= 2 per round),
/// then all p processors read cell (id mod m), staggered; contention p/m.
[[nodiscard]] AlgoResult broadcast_qsm_m(const engine::CostModel& model,
                                         std::uint32_t m, engine::Word value,
                                         engine::MachineOptions options = {});

}  // namespace pbw::algos
