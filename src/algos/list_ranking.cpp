#include "algos/list_ranking.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "engine/error.hpp"
#include "engine/program.hpp"
#include "util/rng.hpp"

namespace pbw::algos {
namespace {

// Shared memory layout: seven arrays of n cells each.
//   next[v]   = 0*n + v     current successor (n = nil)
//   dist[v]   = 1*n + v     weighted distance to next (tail: 0)
//   coin[v]   = 2*n + v     this round's coin (1 = T, 0 = H)
//   sround[v] = 3*n + v     round at which v was spliced (-1 = live)
//   starg[v]  = 4*n + v     v's successor at splice time
//   sdist[v]  = 5*n + v     v's dist at splice time
//   rank[v]   = 6*n + v     output (-1 until resolved)
enum Field { kNext = 0, kDist, kCoin, kSround, kStarg, kSdist, kRank };

class ListRankProgram final : public engine::SuperstepProgram {
 public:
  ListRankProgram(const std::vector<std::uint32_t>& succ, std::uint32_t collectors,
                  std::uint32_t m)
      : succ_(succ),
        n_(static_cast<std::uint32_t>(succ.size())),
        c_(std::max(1u, std::min(collectors, n_))),
        m_(m),
        rounds_(static_cast<std::uint32_t>(
                    6.0 * std::log2(std::max<double>(n_, 2))) +
                12),
        owned_(c_),
        rank_(n_, -1) {
    for (std::uint32_t v = 0; v < n_; ++v) owned_[v % c_].push_back(v);
    state_.resize(c_);
    for (std::uint32_t j = 0; j < c_; ++j) {
      state_[j].resize(owned_[j].size());
    }
    splices_.resize(c_);
  }

  void setup(engine::Machine& machine) override {
    machine.resize_shared(7ull * n_, -1);
    for (std::uint32_t v = 0; v < n_; ++v) {
      machine.poke_shared(addr(kNext, v), succ_[v]);
      machine.poke_shared(addr(kDist, v), succ_[v] == n_ ? 0 : 1);
      machine.poke_shared(addr(kCoin, v), 1);  // T until first flip
    }
  }

  bool step(engine::ProcContext& ctx) override {
    const auto id = ctx.id();
    const auto s = ctx.superstep();
    if (id >= c_) return s < last_superstep();

    if (s == 0) return true;  // shared memory not yet initialized pre-run? (setup ran) — load:
    return dispatch(ctx, id, s);
  }

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] const std::vector<engine::Word>& ranks() const { return rank_; }

 private:
  struct NodeState {
    enum Kind : std::uint8_t { kActive, kFinished, kDead } kind = kActive;
    std::uint32_t next = 0;
    std::uint32_t dist = 0;
    std::uint8_t coin = 1;
  };
  struct SpliceRec {
    std::uint32_t node;
    std::uint32_t target;  // n == nil
    std::uint32_t dist;
  };

  [[nodiscard]] engine::Addr addr(Field f, std::uint64_t v) const {
    return static_cast<engine::Addr>(f) * n_ + v;
  }
  [[nodiscard]] std::uint64_t last_superstep() const {
    // load(2) + rounds*3 + check(1) + unwind rounds*2 + final(1)
    return 2 + 3ull * (rounds_ + 1) + 1 + 2ull * (rounds_ + 1) + 1;
  }

  bool dispatch(engine::ProcContext& ctx, engine::ProcId id, std::uint64_t s);

  void phase_coin(engine::ProcContext& ctx, engine::ProcId id, std::uint32_t round);
  void phase_read(engine::ProcContext& ctx, engine::ProcId id);
  void phase_splice(engine::ProcContext& ctx, engine::ProcId id, std::uint32_t round);

  std::vector<std::uint32_t> succ_;
  std::uint32_t n_;
  std::uint32_t c_;
  std::uint32_t m_;
  std::uint32_t rounds_;
  std::vector<std::vector<std::uint32_t>> owned_;
  std::vector<std::vector<NodeState>> state_;
  // splices_[owner][round] = records learned for owned nodes.
  std::vector<std::vector<std::vector<SpliceRec>>> splices_;
  std::vector<engine::Word> rank_;
  std::atomic<bool> failed_{false};
};

bool ListRankProgram::dispatch(engine::ProcContext& ctx, engine::ProcId id,
                               std::uint64_t s) {
  auto& nodes = owned_[id];
  auto& st = state_[id];

  if (s == 1) {  // issue loads of next[v]
    std::uint64_t k = 0;
    for (std::uint32_t v : nodes) ctx.read(addr(kNext, v), stagger_slot(id, k++, c_, m_));
    return true;
  }
  if (s == 2) {  // consume loads; finish tails
    auto reads = ctx.reads();
    std::uint64_t k = 0, w = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      st[i].next = static_cast<std::uint32_t>(reads[k++]);
      st[i].dist = st[i].next == n_ ? 0 : 1;
      if (st[i].next == n_) {
        st[i].kind = NodeState::kFinished;
        rank_[nodes[i]] = 0;
        ctx.write(addr(kRank, nodes[i]), 0, stagger_slot(id, w++, c_, m_));
      }
      ctx.charge(1.0);
    }
    splices_[id].assign(rounds_ + 2, {});
    return true;
  }

  const std::uint64_t round_base = 3;
  const std::uint64_t total_rounds = rounds_ + 1;  // last round is no-splice
  if (s < round_base + 3 * total_rounds) {
    const auto round = static_cast<std::uint32_t>((s - round_base) / 3);
    switch ((s - round_base) % 3) {
      case 0: phase_coin(ctx, id, round); break;
      case 1: phase_read(ctx, id); break;
      case 2: phase_splice(ctx, id, round); break;
    }
    return true;
  }

  const std::uint64_t check = round_base + 3 * total_rounds;
  if (s == check) {
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (st[i].kind == NodeState::kActive) failed_ = true;
    }
    return true;
  }

  // Unwind: resolve splice rounds in reverse order, two supersteps each.
  const std::uint64_t unwind_base = check + 1;
  if (s < unwind_base + 2 * total_rounds) {
    const auto step_idx = s - unwind_base;
    const auto k = static_cast<std::uint32_t>(total_rounds - 1 - step_idx / 2);
    auto& recs = splices_[id][k];
    if (step_idx % 2 == 0) {  // read rank[target] for this round's records
      std::uint64_t q = 0;
      for (const auto& rec : recs) {
        if (rec.target != n_) {
          ctx.read(addr(kRank, rec.target), stagger_slot(id, q++, c_, m_));
        }
      }
      return true;
    }
    auto reads = ctx.reads();
    std::uint64_t q = 0, w = 0;
    for (const auto& rec : recs) {
      engine::Word base = 0;
      if (rec.target != n_) base = reads[q++];
      rank_[rec.node] = base + rec.dist;
      ctx.write(addr(kRank, rec.node), rank_[rec.node], stagger_slot(id, w++, c_, m_));
      ctx.charge(1.0);
    }
    return true;
  }
  return s < last_superstep();
}

void ListRankProgram::phase_coin(engine::ProcContext& ctx, engine::ProcId id,
                                 std::uint32_t round) {
  auto& nodes = owned_[id];
  auto& st = state_[id];
  const bool no_splice_round = round == rounds_;  // forced T: learn-only
  std::uint64_t w = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (st[i].kind != NodeState::kActive) continue;
    st[i].coin = no_splice_round ? 1 : static_cast<std::uint8_t>(ctx.rng().below(2));
    ctx.write(addr(kCoin, nodes[i]), st[i].coin, stagger_slot(id, w++, c_, m_));
    ctx.charge(1.0);
  }
}

void ListRankProgram::phase_read(engine::ProcContext& ctx, engine::ProcId id) {
  auto& nodes = owned_[id];
  auto& st = state_[id];
  std::uint64_t q = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (st[i].kind != NodeState::kActive) continue;
    // Learn whether we were spliced (and by extension our record).
    ctx.read(addr(kSround, nodes[i]), stagger_slot(id, q++, c_, m_));
    ctx.read(addr(kStarg, nodes[i]), stagger_slot(id, q++, c_, m_));
    ctx.read(addr(kSdist, nodes[i]), stagger_slot(id, q++, c_, m_));
    // Inspect our successor, if any.
    if (st[i].next != n_) {
      ctx.read(addr(kCoin, st[i].next), stagger_slot(id, q++, c_, m_));
      ctx.read(addr(kNext, st[i].next), stagger_slot(id, q++, c_, m_));
      ctx.read(addr(kDist, st[i].next), stagger_slot(id, q++, c_, m_));
    }
    ctx.charge(1.0);
  }
}

void ListRankProgram::phase_splice(engine::ProcContext& ctx, engine::ProcId id,
                                   std::uint32_t round) {
  auto& nodes = owned_[id];
  auto& st = state_[id];
  auto reads = ctx.reads();
  std::uint64_t q = 0, w = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (st[i].kind != NodeState::kActive) continue;
    const engine::Word sround = reads[q++];
    const engine::Word starg = reads[q++];
    const engine::Word sdist = reads[q++];
    engine::Word ucoin = 1, unext = 0, udist = 0;
    if (st[i].next != n_) {
      ucoin = reads[q++];
      unext = reads[q++];
      udist = reads[q++];
    }
    if (sround >= 0) {
      // We were spliced in a previous round; record and go dead.
      st[i].kind = NodeState::kDead;
      splices_[id][static_cast<std::size_t>(sround)].push_back(
          SpliceRec{nodes[i], static_cast<std::uint32_t>(starg),
                    static_cast<std::uint32_t>(sdist)});
      continue;
    }
    if (st[i].next == n_) continue;  // already finished elsewhere
    if (st[i].coin == 0 && ucoin == 1) {
      // Splice out u = next: absorb its distance, record its epitaph.
      const std::uint32_t u = st[i].next;
      ctx.write(addr(kSround, u), static_cast<engine::Word>(round),
                stagger_slot(id, w++, c_, m_));
      ctx.write(addr(kStarg, u), unext, stagger_slot(id, w++, c_, m_));
      ctx.write(addr(kSdist, u), udist, stagger_slot(id, w++, c_, m_));
      st[i].next = static_cast<std::uint32_t>(unext);
      st[i].dist += static_cast<std::uint32_t>(udist);
      ctx.write(addr(kNext, nodes[i]), st[i].next, stagger_slot(id, w++, c_, m_));
      ctx.write(addr(kDist, nodes[i]), st[i].dist, stagger_slot(id, w++, c_, m_));
      if (st[i].next == n_) {
        st[i].kind = NodeState::kFinished;
        rank_[nodes[i]] = st[i].dist;
        ctx.write(addr(kRank, nodes[i]), rank_[nodes[i]],
                  stagger_slot(id, w++, c_, m_));
        ctx.write(addr(kCoin, nodes[i]), 1, stagger_slot(id, w++, c_, m_));
      }
      ctx.charge(1.0);
    }
  }
}

}  // namespace

AlgoResult list_rank_qsm(const engine::CostModel& model,
                         const std::vector<std::uint32_t>& succ,
                         std::uint32_t collectors, std::uint32_t m,
                         engine::MachineOptions options) {
  ListRankProgram program(succ, collectors, m);
  engine::Machine machine(model, options);
  const auto run = machine.run(program);
  bool correct = !program.failed();
  if (correct) {
    const auto reference = rank_reference(succ);
    for (std::uint32_t v = 0; v < succ.size(); ++v) {
      if (program.ranks()[v] != static_cast<engine::Word>(reference[v])) {
        correct = false;
        break;
      }
    }
  }
  return AlgoResult{run.total_time, run.supersteps, correct};
}

std::vector<std::uint32_t> random_list(std::uint32_t n, std::uint64_t seed) {
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  util::Xoshiro256 rng(seed);
  for (std::uint32_t i = n; i > 1; --i) {
    std::swap(order[i - 1], order[rng.below(i)]);
  }
  std::vector<std::uint32_t> succ(n, n);
  for (std::uint32_t i = 0; i + 1 < n; ++i) succ[order[i]] = order[i + 1];
  if (n > 0) succ[order[n - 1]] = n;
  return succ;
}

std::vector<std::uint32_t> rank_reference(const std::vector<std::uint32_t>& succ) {
  const auto n = static_cast<std::uint32_t>(succ.size());
  // Find the head (no predecessor), then walk.
  std::vector<bool> has_pred(n, false);
  for (std::uint32_t v = 0; v < n; ++v) {
    if (succ[v] != n) has_pred[succ[v]] = true;
  }
  std::uint32_t head = n;
  for (std::uint32_t v = 0; v < n; ++v) {
    if (!has_pred[v]) {
      head = v;
      break;
    }
  }
  std::vector<std::uint32_t> rank(n, 0);
  std::uint32_t r = n;
  for (std::uint32_t v = head; v != n; v = succ[v]) rank[v] = --r;
  return rank;
}

}  // namespace pbw::algos
