#include "algos/gossip.hpp"

#include <algorithm>

#include "engine/error.hpp"
#include "engine/program.hpp"

namespace pbw::algos {
namespace {

class GossipProgram final : public engine::SuperstepProgram {
 public:
  GossipProgram(const std::vector<engine::Word>& values, std::uint32_t m)
      : values_(values),
        p_(static_cast<std::uint32_t>(values.size())),
        m_(m),
        heard_(p_) {
    for (std::uint32_t i = 0; i < p_; ++i) {
      heard_[i].assign(p_, 0);
      heard_[i][i] = values_[i];
    }
  }

  bool step(engine::ProcContext& ctx) override {
    const auto id = ctx.id();
    if (ctx.superstep() == 0) {
      std::uint64_t k = 0;
      for (engine::ProcId dst = 0; dst < p_; ++dst) {
        if (dst == id) continue;
        ctx.send(dst, values_[id], stagger_slot(id, k++, p_, m_));
      }
      return true;
    }
    for (const auto& msg : ctx.inbox()) heard_[id][msg.src] = msg.payload;
    return false;
  }

  [[nodiscard]] bool verify() const {
    for (std::uint32_t i = 0; i < p_; ++i) {
      if (heard_[i] != values_) return false;
    }
    return true;
  }

 private:
  std::vector<engine::Word> values_;
  std::uint32_t p_;
  std::uint32_t m_;
  std::vector<std::vector<engine::Word>> heard_;
};

}  // namespace

AlgoResult gossip_bsp(const engine::CostModel& model,
                      const std::vector<engine::Word>& values, std::uint32_t m,
                      engine::MachineOptions options) {
  if (values.size() != model.processors()) {
    throw engine::SimulationError("gossip_bsp: |values| != p");
  }
  GossipProgram program(values, m);
  engine::Machine machine(model, options);
  const auto run = machine.run(program);
  return AlgoResult{run.total_time, run.supersteps, program.verify()};
}

}  // namespace pbw::algos
