#include "algos/columnsort.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "engine/error.hpp"
#include "engine/program.hpp"

namespace pbw::algos {
namespace {

constexpr engine::Word kLowPad = std::numeric_limits<engine::Word>::min();
constexpr engine::Word kHighPad = std::numeric_limits<engine::Word>::max();

/// Eight-step columnsort; see header.  Sorters 0..s-1 own the columns;
/// sorter s joins for the shifted phase.
class ColumnsortProgram final : public engine::SuperstepProgram {
 public:
  ColumnsortProgram(const std::vector<engine::Word>& keys, std::uint32_t s,
                    std::uint32_t m)
      : keys_(keys),
        n_(static_cast<std::uint64_t>(keys.size())),
        s_(s),
        r_(static_cast<std::uint32_t>(n_ / s)),
        m_(m),
        column_((std::size_t)s + 1),
        output_(s) {}

  bool step(engine::ProcContext& ctx) override {
    const auto id = ctx.id();
    const auto t = ctx.superstep();
    if (id > s_) return t < 5;  // only s+1 sorters participate
    auto& col = column_[id];

    switch (t) {
      case 0:
        if (id < s_) {
          col.assign(keys_.begin() + static_cast<std::ptrdiff_t>(id) * r_,
                     keys_.begin() + static_cast<std::ptrdiff_t>(id + 1) * r_);
          sort_column(ctx, col);
          // Step 2, transpose: column-major rank q deposits at row-major
          // rank q, i.e. global position (q mod s)*r + q/s.
          route(ctx, id, col, [&](std::uint64_t q) {
            return (q % s_) * r_ + q / s_;
          });
        }
        return true;
      case 1:
        if (id < s_) {
          gather(ctx, col, r_);
          sort_column(ctx, col);
          // Step 4, untranspose: element at (row i, col j) has row-major
          // rank i*s + j and deposits at that column-major rank.
          route(ctx, id, col, [&](std::uint64_t q) {
            return (q % r_) * s_ + q / r_;
          });
        }
        return true;
      case 2:
        if (id < s_) {
          gather(ctx, col, r_);
          sort_column(ctx, col);
          // Step 6, shift down by r/2 into s+1 columns.
          route(ctx, id, col, [&](std::uint64_t q) { return q + r_ / 2; });
        }
        return true;
      case 3: {
        // Step 7: all s+1 shifted columns sort (boundary columns padded).
        gather_shifted(ctx, col);
        sort_column(ctx, col);
        // Step 8, unshift: drop pads, move q' back to q' - r/2.
        std::uint64_t k = 0;
        for (std::uint32_t i = 0; i < col.size(); ++i) {
          if (col[i] == kLowPad || col[i] == kHighPad) continue;
          const std::uint64_t q = static_cast<std::uint64_t>(id) * r_ + i - r_ / 2;
          ctx.send(static_cast<engine::ProcId>(q / r_), col[i],
                   stagger_slot(id, k++, s_ + 1, m_), 1, q % r_);
        }
        return true;
      }
      case 4:
        if (id < s_) {
          gather(ctx, output_[id], r_);
        }
        return true;
      default:
        return false;
    }
  }

  [[nodiscard]] bool verify() const {
    std::vector<engine::Word> expected(keys_);
    std::sort(expected.begin(), expected.end());
    std::vector<engine::Word> got;
    got.reserve(n_);
    for (const auto& col : output_) got.insert(got.end(), col.begin(), col.end());
    return got == expected;
  }

 private:
  void sort_column(engine::ProcContext& ctx, std::vector<engine::Word>& col) {
    std::sort(col.begin(), col.end());
    ctx.charge(static_cast<double>(col.size()) *
               std::log2(std::max<double>(2, double(col.size()))));
  }

  /// Sends every element of `col` (column `id`, sorted) to the owner of
  /// its image under `perm` (a map on global column-major positions).
  template <typename Perm>
  void route(engine::ProcContext& ctx, engine::ProcId id,
             const std::vector<engine::Word>& col, Perm&& perm) {
    std::uint64_t k = 0;
    for (std::uint32_t i = 0; i < col.size(); ++i) {
      const std::uint64_t q = static_cast<std::uint64_t>(id) * r_ + i;
      const std::uint64_t target = perm(q);
      ctx.send(static_cast<engine::ProcId>(target / r_), col[i],
               stagger_slot(id, k++, s_, m_), 1, target % r_);
    }
  }

  /// Rebuilds a column of `size` slots from tagged inbox messages.
  void gather(engine::ProcContext& ctx, std::vector<engine::Word>& col,
              std::uint32_t size) {
    col.assign(size, 0);
    for (const auto& msg : ctx.inbox()) col.at(msg.tag) = msg.payload;
  }

  /// Shifted-phase column: column 0's top half and column s's bottom half
  /// are vacant and padded with extreme sentinels.
  void gather_shifted(engine::ProcContext& ctx, std::vector<engine::Word>& col) {
    const auto id = ctx.id();
    col.assign(r_, id == 0 ? kLowPad : kHighPad);
    if (id != 0 && id != s_) col.assign(r_, 0);
    for (const auto& msg : ctx.inbox()) col.at(msg.tag) = msg.payload;
  }

  std::vector<engine::Word> keys_;
  std::uint64_t n_;
  std::uint32_t s_;
  std::uint32_t r_;
  std::uint32_t m_;
  std::vector<std::vector<engine::Word>> column_;
  std::vector<std::vector<engine::Word>> output_;
};

}  // namespace

AlgoResult columnsort_bsp(const engine::CostModel& model,
                          const std::vector<engine::Word>& keys, std::uint32_t s,
                          std::uint32_t m, engine::MachineOptions options) {
  const std::uint64_t n = keys.size();
  if (s < 2 || n % s != 0) {
    throw engine::SimulationError("columnsort: need s >= 2 and s | n");
  }
  const std::uint64_t r = n / s;
  if (r % 2 != 0) throw engine::SimulationError("columnsort: r must be even");
  if (r < 2ull * (s - 1) * (s - 1)) {
    throw engine::SimulationError("columnsort: requires r >= 2 (s-1)^2");
  }
  if (model.processors() < s + 1) {
    throw engine::SimulationError("columnsort: needs s + 1 processors");
  }
  for (engine::Word k : keys) {
    if (k == std::numeric_limits<engine::Word>::min() ||
        k == std::numeric_limits<engine::Word>::max()) {
      throw engine::SimulationError("columnsort: key collides with pad sentinel");
    }
  }
  ColumnsortProgram program(keys, s, m);
  engine::Machine machine(model, options);
  const auto run = machine.run(program);
  return AlgoResult{run.total_time, run.supersteps, program.verify()};
}

std::uint32_t columnsort_max_columns(std::uint64_t n, std::uint32_t p) {
  std::uint32_t best = 2;
  for (std::uint32_t s = 2; s + 1 <= p; ++s) {
    if (n / s >= 2ull * (s - 1) * (s - 1)) {
      best = s;
    } else {
      break;
    }
  }
  return best;
}

}  // namespace pbw::algos
