// Second wave of AQT tests: the sliding-window restriction machinery and
// additional adversary/stability properties.
#include <gtest/gtest.h>

#include "aqt/adversary.hpp"
#include "aqt/dynamic.hpp"
#include "aqt/sliding.hpp"

namespace {

using namespace pbw;
using aqt::AqtParams;
using aqt::TimedArrival;

AqtParams params(std::uint32_t p, double alpha, double beta, std::uint32_t w) {
  AqtParams prm;
  prm.p = p;
  prm.alpha = alpha;
  prm.beta = beta;
  prm.w = w;
  return prm;
}

TEST(Sliding, SpreadsEvenlyWithinWindow) {
  std::vector<aqt::Arrival> batch(8, aqt::Arrival{0, 1});
  const auto timed = aqt::spread_batch_over_window(batch, 2, 64);
  ASSERT_EQ(timed.size(), 8u);
  for (std::size_t k = 0; k < 8; ++k) {
    EXPECT_EQ(timed[k].step, 128 + k * 8);
  }
}

TEST(Sliding, LoadComputesWindowMaxima) {
  // 3 messages at steps 0, 1, 9 with w = 4: max window load 2.
  std::vector<TimedArrival> stream{{0, 0, 1}, {1, 0, 2}, {9, 1, 0}};
  const auto load = aqt::sliding_load(stream, 4, 4);
  EXPECT_EQ(load.max_global, 2u);
  EXPECT_EQ(load.max_source, 2u);  // source 0 twice within one window
  EXPECT_EQ(load.max_dest, 1u);
}

TEST(Sliding, DetectsStraddlingViolation) {
  // Aligned intervals each hold the cap, but a window straddling the
  // boundary sees both bursts: the sliding checker must catch it.
  const auto prm = params(4, 2.0 / 8, 2.0 / 8, 8);  // caps: 2 per window
  std::vector<TimedArrival> stream{
      {6, 0, 1}, {7, 0, 1},   // end of interval 0 (2 msgs: aligned-legal)
      {8, 0, 1}, {9, 0, 1},   // start of interval 1 (2 msgs: aligned-legal)
  };
  EXPECT_FALSE(aqt::verify_sliding_restrictions(stream, prm));
}

TEST(Sliding, AcceptsEvenlySpreadStream) {
  const auto prm = params(8, 4.0, 1.0, 16);
  auto adv = aqt::make_steady(params(8, 2.0, 0.5, 16));  // half rate
  const auto stream = aqt::timed_stream(*adv, 12, 1);
  EXPECT_TRUE(aqt::verify_sliding_restrictions(stream, prm));
}

TEST(Sliding, RejectsUnsortedStream) {
  const auto prm = params(4, 1.0, 1.0, 8);
  std::vector<TimedArrival> stream{{5, 0, 1}, {3, 1, 2}};
  EXPECT_FALSE(aqt::verify_sliding_restrictions(stream, prm));
}

TEST(Sliding, RejectsOutOfRangeProcessor) {
  const auto prm = params(4, 1.0, 1.0, 8);
  std::vector<TimedArrival> stream{{0, 9, 1}};
  EXPECT_FALSE(aqt::verify_sliding_restrictions(stream, prm));
}

TEST(Sliding, EmptyStreamIsLegal) {
  const auto prm = params(4, 1.0, 1.0, 8);
  EXPECT_TRUE(aqt::verify_sliding_restrictions({}, prm));
  const auto load = aqt::sliding_load({}, 4, 8);
  EXPECT_EQ(load.max_global, 0u);
}

TEST(Sliding, WholeZooAtHalfRatePassesSlidingCheck) {
  const auto gen_params = params(16, 1.5, 0.25, 64);
  const auto check_params = params(16, 3.0, 0.5, 64);
  for (auto& adv : aqt::adversary_zoo(gen_params)) {
    const auto stream = aqt::timed_stream(*adv, 10, 7);
    EXPECT_TRUE(aqt::verify_sliding_restrictions(stream, check_params))
        << adv->name();
  }
}

// ---- additional stability properties ------------------------------------------

TEST(Dynamic, QueueSeriesLengthMatchesWindows) {
  auto adv = aqt::make_steady(params(16, 2.0, 0.5, 64));
  const auto r = aqt::run_algorithm_b(*adv, 8, 0.25, 50, 4,
                                      aqt::BatchPolicy::kUnbalancedSend);
  EXPECT_EQ(r.queue_series.size(), 50u);
  EXPECT_EQ(r.injected, 50u * 128u);
}

TEST(Dynamic, DeliveredNeverExceedsInjected) {
  for (double alpha : {1.0, 4.0, 12.0}) {
    auto adv = aqt::make_random(params(16, alpha, 0.9, 64));
    const auto r = aqt::run_algorithm_b(*adv, 8, 0.25, 60, 4,
                                        aqt::BatchPolicy::kUnbalancedSend);
    EXPECT_LE(r.delivered, r.injected) << alpha;
  }
}

TEST(Dynamic, StableSystemDeliversAlmostEverything) {
  auto adv = aqt::make_steady(params(16, 2.0, 0.5, 64));
  const auto r = aqt::run_algorithm_b(*adv, 8, 0.25, 100, 4,
                                      aqt::BatchPolicy::kUnbalancedSend);
  ASSERT_TRUE(r.stable);
  // Only the last window or two can still be in flight.
  EXPECT_GE(r.delivered + 3 * 128, r.injected);
}

TEST(Dynamic, HigherAlphaRaisesMeanService) {
  auto a1 = aqt::make_steady(params(32, 2.0, 0.5, 128));
  auto a2 = aqt::make_steady(params(32, 6.0, 0.5, 128));
  const auto r1 = aqt::run_algorithm_b(*a1, 8, 0.25, 80, 4,
                                       aqt::BatchPolicy::kUnbalancedSend);
  const auto r2 = aqt::run_algorithm_b(*a2, 8, 0.25, 80, 4,
                                       aqt::BatchPolicy::kUnbalancedSend);
  EXPECT_GT(r2.mean_service, r1.mean_service);
}

TEST(Dynamic, BspGServiceTimeMatchesProposition61) {
  // The BSP(g) router charges exactly g*max(xbar, ybar) (+L floor).
  auto adv = aqt::make_single_source(params(16, 1.0, 0.5, 64));
  const auto r = aqt::run_bsp_g_dynamic(*adv, 4, 40, 2);
  // single-source: xbar = ceil(beta w) = 32, so service = 4*32 = 128.
  EXPECT_DOUBLE_EQ(r.max_service, 128.0);
}

}  // namespace
