// Unit and property tests for the Section 6 scheduling algorithms:
// relations, workload generators, slot schedules, the Unbalanced-Send
// family, the offline optimal baseline, CountN, and the engine runner.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "engine/error.hpp"
#include "sched/count_n.hpp"
#include "sched/relation.hpp"
#include "sched/runner.hpp"
#include "sched/schedule.hpp"
#include "sched/senders.hpp"
#include "sched/workloads.hpp"

namespace {

using namespace pbw;
using core::ModelParams;
using core::Penalty;
using sched::Relation;
using sched::SlotSchedule;

ModelParams params(std::uint32_t p, double g, std::uint32_t m, double L) {
  ModelParams prm;
  prm.p = p;
  prm.g = g;
  prm.m = m;
  prm.L = L;
  return prm;
}

TEST(Relation, AccountingBasics) {
  Relation rel(4);
  rel.add(0, 1, 3);
  rel.add(0, 2, 2);
  rel.add(1, 2, 1);
  EXPECT_EQ(rel.total_flits(), 6u);
  EXPECT_EQ(rel.total_messages(), 3u);
  EXPECT_EQ(rel.max_sent(), 5u);     // proc 0 sends 5 flits
  EXPECT_EQ(rel.max_received(), 3u); // proc 2 receives 3 flits
  EXPECT_EQ(rel.sent_by(3), 0u);
  EXPECT_EQ(rel.max_length(), 3u);
  EXPECT_DOUBLE_EQ(rel.mean_length(), 2.0);
  EXPECT_EQ(rel.max_sent_below(4.0), 1u);  // only proc 1 is light
}

TEST(Workloads, BalancedHasUniformSources) {
  util::Xoshiro256 rng(1);
  const Relation rel = sched::balanced_relation(32, 10, rng);
  EXPECT_EQ(rel.total_flits(), 320u);
  for (std::uint32_t i = 0; i < 32; ++i) EXPECT_EQ(rel.sent_by(i), 10u);
}

TEST(Workloads, PointSkewConcentrates) {
  util::Xoshiro256 rng(2);
  const Relation rel = sched::point_skew_relation(32, 1000, 0.5, rng);
  EXPECT_EQ(rel.total_flits(), 1000u);
  EXPECT_GE(rel.sent_by(0), 500u);
  EXPECT_EQ(rel.max_sent(), rel.sent_by(0));
}

TEST(Workloads, TotalExchangeIsComplete) {
  const Relation rel = sched::total_exchange_relation(8, 2);
  EXPECT_EQ(rel.total_messages(), 8u * 7u);
  EXPECT_EQ(rel.total_flits(), 8u * 7u * 2u);
  EXPECT_EQ(rel.max_sent(), 14u);
  EXPECT_EQ(rel.max_received(), 14u);
}

TEST(Workloads, NoSelfMessages) {
  util::Xoshiro256 rng(3);
  for (const Relation& rel :
       {sched::balanced_relation(16, 5, rng),
        sched::zipf_relation(16, 200, 1.0, rng),
        sched::dest_skew_relation(16, 200, 1.0, rng)}) {
    for (std::uint32_t src = 0; src < rel.p(); ++src) {
      for (const auto& item : rel.items(src)) EXPECT_NE(item.dst, src);
    }
  }
}

TEST(Workloads, VariableLengthBounded) {
  util::Xoshiro256 rng(4);
  const Relation rel = sched::variable_length_relation(16, 100, 7, 0.3, rng);
  EXPECT_EQ(rel.total_messages(), 100u);
  EXPECT_LE(rel.max_length(), 7u);
  EXPECT_GE(rel.max_length(), 1u);
}

TEST(Schedule, NaiveExceedsLimitWhenBusy) {
  util::Xoshiro256 rng(5);
  const Relation rel = sched::balanced_relation(64, 4, rng);
  const SlotSchedule sched = sched::naive_schedule(rel);
  const auto cost = sched::evaluate_schedule(rel, sched, 8, Penalty::kLinear, 1);
  EXPECT_FALSE(cost.within_limit);
  EXPECT_EQ(cost.max_mt, 64u);  // all procs hit slot 1
}

TEST(Schedule, OfflineOptimalAchievesLowerBound) {
  util::Xoshiro256 rng(6);
  for (double hot : {0.0, 0.3, 0.9}) {
    const Relation rel = sched::point_skew_relation(64, 2048, hot, rng);
    const std::uint32_t m = 8;
    const SlotSchedule sched = sched::offline_optimal_schedule(rel, m);
    sched::validate_schedule(rel, sched);
    const auto cost = sched::evaluate_schedule(rel, sched, m, Penalty::kExponential, 1);
    EXPECT_TRUE(cost.within_limit) << "hot=" << hot;
    const double opt = core::bounds::routing_bsp_m_optimal(
        rel.total_flits(), rel.max_sent(), rel.max_received(), m, 1);
    // c_m == number of occupied slots <= optimal (no overload charge).
    EXPECT_LE(cost.c_m, opt + 1.0) << "hot=" << hot;
  }
}

TEST(Schedule, UnbalancedSendRespectsLimitWhp) {
  util::Xoshiro256 rng(7);
  const Relation rel = sched::point_skew_relation(256, 8192, 0.25, rng);
  const std::uint32_t m = 64;
  const double eps = 0.5;
  int ok = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const SlotSchedule sched =
        sched::unbalanced_send_schedule(rel, m, eps, rel.total_flits(), rng);
    sched::validate_schedule(rel, sched);
    const auto cost = sched::evaluate_schedule(rel, sched, m, Penalty::kExponential, 1);
    ok += cost.within_limit;
  }
  // exp(-eps^2 m / 3) = exp(-16/3) per slot; with the union bound the
  // failure probability is well under 10%.
  EXPECT_GE(ok, 18);
}

TEST(Schedule, UnbalancedSendNearOptimal) {
  util::Xoshiro256 rng(8);
  const Relation rel = sched::point_skew_relation(256, 8192, 0.25, rng);
  const std::uint32_t m = 64;
  const double eps = 0.25;
  const SlotSchedule sched =
      sched::unbalanced_send_schedule(rel, m, eps, rel.total_flits(), rng);
  const auto cost = sched::evaluate_schedule(rel, sched, m, Penalty::kExponential, 1);
  const double opt = core::bounds::routing_bsp_m_optimal(
      rel.total_flits(), rel.max_sent(), rel.max_received(), m, 1);
  EXPECT_LE(cost.total, (1 + 2 * eps) * opt);
}

TEST(Schedule, UnbalancedSendRejectsLongMessages) {
  Relation rel(4);
  rel.add(0, 1, 5);
  util::Xoshiro256 rng(9);
  EXPECT_THROW(sched::unbalanced_send_schedule(rel, 2, 0.1, 5, rng),
               engine::SimulationError);
}

TEST(Schedule, HeavyProcessorStartsAtSlotOne) {
  Relation rel(4);
  for (int k = 0; k < 100; ++k) rel.add(0, 1 + (k % 3));
  util::Xoshiro256 rng(10);
  // n=100, m=10, eps=0.1 -> window 11 << 100: proc 0 is heavy.
  const SlotSchedule sched = sched::unbalanced_send_schedule(rel, 10, 0.1, 100, rng);
  for (std::size_t k = 0; k < 100; ++k) {
    EXPECT_EQ(sched.start[0][k], k + 1);
  }
}

TEST(Schedule, ConsecutiveSendIsConsecutivePerProc) {
  util::Xoshiro256 rng(11);
  const Relation rel = sched::balanced_relation(64, 6, rng);
  const SlotSchedule sched =
      sched::consecutive_send_schedule(rel, 16, 0.5, rel.total_flits(), rng);
  sched::validate_schedule(rel, sched);
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    for (std::size_t k = 1; k < sched.start[src].size(); ++k) {
      EXPECT_EQ(sched.start[src][k], sched.start[src][k - 1] + 1);
    }
  }
}

TEST(Schedule, ConsecutiveSendWithinTheoremBound) {
  util::Xoshiro256 rng(12);
  const Relation rel = sched::point_skew_relation(256, 8192, 0.2, rng);
  const std::uint32_t m = 64;
  const double eps = 0.25;
  const std::uint64_t n = rel.total_flits();
  const SlotSchedule sched = sched::consecutive_send_schedule(rel, m, eps, n, rng);
  const auto cost = sched::evaluate_schedule(rel, sched, m, Penalty::kExponential, 1);
  const double window = std::ceil((1 + eps) * double(n) / m);
  const auto xbar_small = rel.max_sent_below(window);
  const double bound =
      std::max({window + double(xbar_small), double(rel.max_sent()),
                double(rel.max_received())});
  EXPECT_LE(cost.total, bound * 1.5);  // slack for the rare overloaded slot
}

TEST(Schedule, GranularStartsOnGranuleGrid) {
  util::Xoshiro256 rng(13);
  const Relation rel = sched::balanced_relation(64, 8, rng);  // n=512, t'=8
  const std::uint64_t n = rel.total_flits();
  const SlotSchedule sched = sched::granular_send_schedule(rel, 16, 3.0, n, rng);
  sched::validate_schedule(rel, sched);
  const std::uint64_t granule = n / 64;
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    if (sched.start[src].empty()) continue;
    EXPECT_EQ((sched.start[src][0] - 1) % granule, 0u);
  }
}

TEST(Schedule, GranularWithinConstantFactor) {
  util::Xoshiro256 rng(14);
  const Relation rel = sched::balanced_relation(256, 16, rng);
  const std::uint64_t n = rel.total_flits();
  const std::uint32_t m = 32;
  const double c = 3.0;
  const SlotSchedule sched = sched::granular_send_schedule(rel, m, c, n, rng);
  const auto cost = sched::evaluate_schedule(rel, sched, m, Penalty::kExponential, 1);
  EXPECT_LE(cost.slots_used, static_cast<std::uint64_t>(c * double(n) / m) + 1);
  EXPECT_LE(cost.total, 2.0 * c * double(n) / m);
}

TEST(Schedule, LongMessagesExtendAtMostLhat) {
  util::Xoshiro256 rng(15);
  const Relation rel = sched::variable_length_relation(128, 1024, 16, 0.0, rng);
  const std::uint64_t n = rel.total_flits();
  const std::uint32_t m = 32;
  const double eps = 0.5;
  const SlotSchedule sched = sched::long_message_schedule(rel, m, eps, n, rng);
  sched::validate_schedule(rel, sched);
  const auto cost = sched::evaluate_schedule(rel, sched, m, Penalty::kExponential, 1);
  const double window = std::ceil((1 + eps) * double(n) / m);
  EXPECT_LE(cost.slots_used, window + rel.max_length());
}

TEST(Schedule, OverheadShiftsStarts) {
  util::Xoshiro256 rng(16);
  const Relation rel = sched::variable_length_relation(64, 256, 4, 0.0, rng);
  const std::uint32_t o = 3;
  const SlotSchedule sched = sched::overhead_schedule(rel, o, 16, 0.5, rng);
  // Every start leaves room for the o-slot prefix.
  for (const auto& starts : sched.start) {
    for (auto s : starts) EXPECT_GT(s, o);
  }
  sched::validate_schedule(rel, sched);
}

TEST(Schedule, EmulationRespectsLimit) {
  util::Xoshiro256 rng(17);
  const Relation rel = sched::balanced_relation(64, 5, rng);
  const double g = 8;
  const SlotSchedule sched = sched::emulation_schedule(rel, g);
  sched::validate_schedule(rel, sched);
  const auto cost = sched::evaluate_schedule(rel, sched, 8, Penalty::kExponential, 1);
  EXPECT_TRUE(cost.within_limit);
  // The emulation takes ~ g * xbar slots: no better than BSP(g).
  EXPECT_GE(cost.slots_used, static_cast<std::uint64_t>(g * (rel.max_sent() - 1) + 1));
}

TEST(CountN, ComputesAndBroadcasts) {
  const core::BspM model(params(64, 4, 16, 4));
  std::vector<std::uint64_t> x(64);
  for (std::uint32_t i = 0; i < 64; ++i) x[i] = i;
  const auto result = sched::count_and_broadcast(model, x, 16, 4);
  EXPECT_EQ(result.n, 64u * 63u / 2);
  EXPECT_TRUE(result.all_procs_agree);
  // tau = O(p/m + L + L lg m / lg L); allow a generous constant.
  const double tau = pbw::core::bounds::count_n_time(64, 16, 4);
  EXPECT_LE(result.time, 6 * tau);
}

TEST(CountN, WorksWithOneCollector) {
  const core::BspM model(params(16, 16, 1, 2));
  std::vector<std::uint64_t> x(16, 3);
  const auto result = sched::count_and_broadcast(model, x, 1, 2);
  EXPECT_EQ(result.n, 48u);
  EXPECT_TRUE(result.all_procs_agree);
}

TEST(CountN, WorksWithSingleProcessor) {
  const core::BspM model(params(1, 1, 1, 1));
  const auto result = sched::count_and_broadcast(model, {5}, 1, 2);
  EXPECT_EQ(result.n, 5u);
  EXPECT_TRUE(result.all_procs_agree);
}

TEST(Runner, DeliversAndMatchesFastPath) {
  util::Xoshiro256 rng(18);
  const Relation rel = sched::point_skew_relation(64, 1024, 0.3, rng);
  const std::uint32_t m = 16;
  const core::BspM model(params(64, 4, m, 4), Penalty::kExponential);
  const SlotSchedule sched = sched::offline_optimal_schedule(rel, m);
  const auto run = sched::route_relation(model, rel, sched, m, 4);
  EXPECT_TRUE(run.delivered);
  EXPECT_TRUE(run.within_limit);
  const auto fast = sched::evaluate_schedule(rel, sched, m, Penalty::kExponential, 4);
  EXPECT_DOUBLE_EQ(run.send_time, fast.total);
}

TEST(Runner, CountTimeAddsTau) {
  util::Xoshiro256 rng(19);
  const Relation rel = sched::balanced_relation(64, 4, rng);
  const std::uint32_t m = 16;
  const core::BspM model(params(64, 4, m, 4), Penalty::kExponential);
  const SlotSchedule sched = sched::offline_optimal_schedule(rel, m);
  const auto with = sched::route_relation(model, rel, sched, m, 4, /*count_n=*/true);
  const auto without = sched::route_relation(model, rel, sched, m, 4, false);
  EXPECT_GT(with.count_time, 0.0);
  EXPECT_DOUBLE_EQ(with.total_time, with.send_time + with.count_time);
  EXPECT_DOUBLE_EQ(without.count_time, 0.0);
}

TEST(Runner, SelfSchedulingModelIgnoresSlots) {
  // On the self-scheduling BSP(m) the naive and optimal schedules cost the
  // same: T = max(w, h, n/m, L).
  util::Xoshiro256 rng(20);
  const Relation rel = sched::balanced_relation(64, 4, rng);
  const std::uint32_t m = 16;
  const core::SelfSchedulingBspM model(params(64, 4, m, 4));
  const auto naive =
      sched::route_relation(model, rel, sched::naive_schedule(rel), m, 4);
  const auto opt = sched::route_relation(
      model, rel, sched::offline_optimal_schedule(rel, m), m, 4);
  EXPECT_DOUBLE_EQ(naive.send_time, opt.send_time);
  const double expected = std::max(
      {double(rel.max_sent()), double(rel.max_received()),
       double(rel.total_flits()) / m, 4.0});
  EXPECT_DOUBLE_EQ(naive.send_time, expected);
}

// Property sweep: Unbalanced-Send stays within the aggregate limit and
// within (1+eps) of optimal (plus tau) across workload shapes and m.
struct SweepCase {
  std::uint32_t p;
  std::uint32_t m;
  double hot;
  double eps;
};

class UnbalancedSendSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(UnbalancedSendSweep, WithinBound) {
  const auto c = GetParam();
  util::Xoshiro256 rng(21 + c.p + c.m);
  const Relation rel = sched::point_skew_relation(c.p, 32ull * c.p, c.hot, rng);
  const std::uint64_t n = rel.total_flits();
  const SlotSchedule sched = sched::unbalanced_send_schedule(rel, c.m, c.eps, n, rng);
  sched::validate_schedule(rel, sched);
  const auto cost =
      sched::evaluate_schedule(rel, sched, c.m, Penalty::kExponential, 1);
  const double opt = core::bounds::routing_bsp_m_optimal(
      n, rel.max_sent(), rel.max_received(), c.m, 1);
  EXPECT_LE(cost.total, (1 + c.eps) * opt + 32.0)
      << "p=" << c.p << " m=" << c.m << " hot=" << c.hot;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, UnbalancedSendSweep,
    ::testing::Values(SweepCase{64, 16, 0.0, 0.5}, SweepCase{64, 16, 0.5, 0.5},
                      SweepCase{128, 32, 0.2, 0.25}, SweepCase{128, 8, 0.8, 0.5},
                      SweepCase{256, 64, 0.1, 0.25},
                      SweepCase{256, 64, 0.9, 0.5}));

}  // namespace
