// Second wave of model tests: parameterized sweeps of every charging rule
// against independently computed expectations, monotonicity and
// dominance properties the paper's comparisons rely on, and the bound
// library's structural relationships.
#include <gtest/gtest.h>

#include <cmath>

#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "core/trace_report.hpp"
#include "util/rng.hpp"

namespace {

using namespace pbw;
using core::ModelParams;
using core::Penalty;
using engine::SuperstepStats;

ModelParams params(std::uint32_t p, double g, std::uint32_t m, double L) {
  ModelParams prm;
  prm.p = p;
  prm.g = g;
  prm.m = m;
  prm.L = L;
  return prm;
}

/// Random superstep statistics for property sweeps.
SuperstepStats random_stats(util::Xoshiro256& rng, std::uint32_t slots) {
  SuperstepStats s;
  s.max_work = static_cast<double>(rng.below(100));
  s.max_sent = rng.below(50);
  s.max_received = rng.below(50);
  s.max_reads = rng.below(50);
  s.max_writes = rng.below(50);
  s.kappa = rng.below(30);
  s.slot_counts.resize(slots);
  for (auto& c : s.slot_counts) {
    c = rng.below(20);
    s.total_flits += c;
    s.total_requests += c;
  }
  return s;
}

struct GridCase {
  std::uint32_t p;
  double g;
  std::uint32_t m;
  double L;
};

class ModelGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(ModelGrid, ChargesMatchIndependentComputation) {
  const auto c = GetParam();
  const auto prm = params(c.p, c.g, c.m, c.L);
  const core::BspG bsp_g(prm);
  const core::BspM bsp_lin(prm, Penalty::kLinear);
  const core::BspM bsp_exp(prm, Penalty::kExponential);
  const core::QsmG qsm_g(prm);
  const core::QsmM qsm_lin(prm, Penalty::kLinear);
  const core::SelfSchedulingBspM self(prm);

  util::Xoshiro256 rng(c.p + c.m);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = random_stats(rng, 1 + static_cast<std::uint32_t>(rng.below(8)));

    const double h_msg = static_cast<double>(std::max(s.max_sent, s.max_received));
    const double h_mem = static_cast<double>(std::max(s.max_reads, s.max_writes));
    double cm_lin = 0, cm_exp = 0;
    for (auto mt : s.slot_counts) {
      if (mt == 0) continue;
      cm_lin += mt <= c.m ? 1.0 : double(mt) / c.m;
      cm_exp += mt <= c.m ? 1.0 : std::exp(double(mt) / c.m - 1.0);
    }

    EXPECT_DOUBLE_EQ(bsp_g.superstep_cost(s),
                     std::max({s.max_work, c.g * h_msg, c.L}));
    EXPECT_DOUBLE_EQ(bsp_lin.superstep_cost(s),
                     std::max({s.max_work, h_msg, cm_lin, c.L}));
    EXPECT_DOUBLE_EQ(bsp_exp.superstep_cost(s),
                     std::max({s.max_work, h_msg, cm_exp, c.L}));
    const double qsm_h = c.g * std::max(1.0, h_mem);
    EXPECT_DOUBLE_EQ(qsm_g.superstep_cost(s),
                     std::max({s.max_work, qsm_h, double(s.kappa)}));
    EXPECT_DOUBLE_EQ(qsm_lin.superstep_cost(s),
                     std::max({s.max_work, h_mem, double(s.kappa), cm_lin}));
    EXPECT_DOUBLE_EQ(
        self.superstep_cost(s),
        std::max({s.max_work, h_msg, double(s.total_flits) / c.m, c.L}));
  }
}

TEST_P(ModelGrid, ExponentialNeverBelowLinear) {
  const auto c = GetParam();
  const auto prm = params(c.p, c.g, c.m, c.L);
  const core::BspM lin(prm, Penalty::kLinear);
  const core::BspM exp(prm, Penalty::kExponential);
  util::Xoshiro256 rng(c.p * 3 + 1);
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = random_stats(rng, 1 + static_cast<std::uint32_t>(rng.below(8)));
    EXPECT_GE(exp.superstep_cost(s), lin.superstep_cost(s) - 1e-12);
  }
}

TEST_P(ModelGrid, GlobalChargeNeverAboveLocalAtMatchedBandwidth) {
  // For any within-limit superstep (m_t <= m everywhere), the BSP(m)
  // charge is at most the BSP(g) charge when m = p/g: c_m <= slots and a
  // slot-respecting program uses >= (flits * g / p) slots... the robust
  // comparable fact: h <= g*h and c_m (within limit) counts occupied
  // slots, which any g-model program would pay at least (1/m per flit)*g.
  const auto c = GetParam();
  const auto prm = params(c.p, c.g, c.m, c.L);
  const core::BspG local(prm);
  const core::BspM global(prm, Penalty::kExponential);
  util::Xoshiro256 rng(c.p * 7 + 5);
  for (int trial = 0; trial < 50; ++trial) {
    auto s = random_stats(rng, 4);
    // Constrain to a within-limit, emulation-shaped superstep:
    // g*h slots each carrying <= m flits.
    const std::uint64_t h = std::max<std::uint64_t>(
        1, std::max(s.max_sent, s.max_received));
    s.slot_counts.assign(static_cast<std::size_t>(c.g * double(h)), c.m);
    s.total_flits = 0;
    for (auto mt : s.slot_counts) s.total_flits += mt;
    EXPECT_LE(global.superstep_cost(s), local.superstep_cost(s) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ModelGrid,
                         ::testing::Values(GridCase{16, 2, 8, 1},
                                           GridCase{64, 4, 16, 4},
                                           GridCase{256, 16, 16, 16},
                                           GridCase{1024, 8, 128, 2},
                                           GridCase{1024, 32, 32, 64}));

// ---- bound library structure ---------------------------------------------------

TEST(Bounds2, GlobalUpperBoundsBelowLocalAtMatchedBandwidth) {
  // The Table 1 global upper bounds sit below the local bounds whenever
  // the separation columns claim > 1 (for reasonable L, g).
  for (std::uint32_t p : {1u << 10, 1u << 14, 1u << 18}) {
    for (double g : {8.0, 32.0}) {
      const auto m = static_cast<std::uint32_t>(p / g);
      const double L = 2 * g;  // L/g >= 2 keeps the tree formulas sane
      namespace b = core::bounds;
      EXPECT_LT(b::one_to_all_global(p, L, true), b::one_to_all_local(p, g, L, true));
      EXPECT_LT(b::broadcast_bsp_m(p, m, L), b::broadcast_bsp_g(p, g, L) * 2);
      EXPECT_LT(b::reduce_bsp_m(p, m, L), b::reduce_bsp_g(p, g, L) * 2);
      EXPECT_LT(b::sort_bsp_m(p, m, L), b::sort_local_lower(p, g, L, true) * 4);
    }
  }
}

TEST(Bounds2, RoutingOptimalMonotonicity) {
  namespace b = core::bounds;
  // More bandwidth never hurts; more traffic never helps.
  EXPECT_GE(b::routing_bsp_m_optimal(1000, 10, 10, 10, 1),
            b::routing_bsp_m_optimal(1000, 10, 10, 20, 1));
  EXPECT_LE(b::routing_bsp_m_optimal(1000, 10, 10, 10, 1),
            b::routing_bsp_m_optimal(2000, 10, 10, 10, 1));
  EXPECT_LE(b::routing_bsp_m_optimal(1000, 10, 10, 10, 1),
            b::routing_bsp_m_optimal(1000, 50, 10, 10, 1));
}

TEST(Bounds2, CountNTimeMonotoneInP) {
  namespace b = core::bounds;
  EXPECT_LT(b::count_n_time(256, 16, 4), b::count_n_time(4096, 16, 4));
  EXPECT_GT(b::count_n_time(4096, 16, 4), b::count_n_time(4096, 64, 4));
}

TEST(Bounds2, UnbalancedSendBoundTightensWithEps) {
  namespace b = core::bounds;
  EXPECT_LT(b::unbalanced_send_bound(10000, 10, 10, 256, 16, 4, 0.1),
            b::unbalanced_send_bound(10000, 10, 10, 256, 16, 4, 0.5));
}

TEST(Bounds2, FailureProbMonotoneInEps) {
  namespace b = core::bounds;
  EXPECT_GE(b::unbalanced_send_failure_prob(10000, 64, 0.1),
            b::unbalanced_send_failure_prob(10000, 64, 0.5));
}

// ---- trace report structure ------------------------------------------------------

TEST(TraceReport2, FractionsSumToOne) {
  const auto prm = params(32, 4, 8, 4);
  engine::RunResult run;
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 10; ++i) {
    engine::SuperstepRecord rec;
    rec.stats = random_stats(rng, 4);
    rec.cost = core::BspM(prm).superstep_cost(rec.stats);
    run.trace.push_back(rec);
    run.total_time += rec.cost;
  }
  const auto b = core::analyze_trace(run, prm, core::TraceModel::kBspM);
  const double sum = b.fraction(core::CostTerm::kWork) +
                     b.fraction(core::CostTerm::kGap) +
                     b.fraction(core::CostTerm::kAggregate) +
                     b.fraction(core::CostTerm::kContention) +
                     b.fraction(core::CostTerm::kLatency);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(b.supersteps, 10u);
}

TEST(TraceReport2, EmptyTrace) {
  const auto prm = params(8, 2, 4, 1);
  engine::RunResult run;
  const auto b = core::analyze_trace(run, prm, core::TraceModel::kQsmG);
  EXPECT_EQ(b.supersteps, 0u);
  EXPECT_DOUBLE_EQ(b.total, 0.0);
  EXPECT_DOUBLE_EQ(b.fraction(core::CostTerm::kWork), 0.0);
}

TEST(TraceReport2, TermNamesDistinct) {
  std::set<std::string> names;
  for (auto t : {core::CostTerm::kWork, core::CostTerm::kGap,
                 core::CostTerm::kAggregate, core::CostTerm::kContention,
                 core::CostTerm::kLatency}) {
    names.insert(core::cost_term_name(t));
  }
  EXPECT_EQ(names.size(), 5u);
}

}  // namespace
