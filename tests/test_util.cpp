// Unit tests for the util substrate: RNG determinism and distribution
// sanity, statistics, histograms, tables, CLI parsing, Zipf sampling.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <vector>

#include "util/cli.hpp"
#include "util/histogram.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/zipf.hpp"

namespace {

using namespace pbw::util;

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowIsInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowCoversAllValues) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= (v == 5);
    saw_hi |= (v == 8);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformMeanNearHalf) {
  Xoshiro256 rng(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, StreamsAreIndependent) {
  RngStreams streams(99);
  auto a = streams.stream(0, 0);
  auto b = streams.stream(0, 1);
  auto a2 = streams.stream(0, 0);
  EXPECT_EQ(a(), a2());
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, Mix64SensitiveToEachArgument) {
  EXPECT_NE(mix64(1, 2, 3), mix64(1, 2, 4));
  EXPECT_NE(mix64(1, 2, 3), mix64(1, 3, 3));
  EXPECT_NE(mix64(1, 2, 3), mix64(2, 2, 3));
}

TEST(Stats, SummaryBasics) {
  const std::vector<double> v{1, 2, 3, 4, 5};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, SummaryEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Stats, QuantileInterpolates) {
  const std::vector<double> v{0, 10};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 10.0);
}

TEST(Stats, SummarizeSingleElement) {
  const std::vector<double> v{42.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_DOUBLE_EQ(s.min, 42.0);
  EXPECT_DOUBLE_EQ(s.max, 42.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);  // n-1 denominator guarded at n = 1
}

TEST(Stats, QuantileEmptyAndSingleElement) {
  EXPECT_DOUBLE_EQ(quantile({}, 0.5), 0.0);
  const std::vector<double> one{7.0};
  EXPECT_DOUBLE_EQ(quantile(one, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(quantile(one, 0.5), 7.0);
  EXPECT_DOUBLE_EQ(quantile(one, 1.0), 7.0);
}

TEST(Stats, QuantileClampsOutOfRangeQ) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(quantile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.5), 3.0);
}

TEST(Stats, QuantileUnsortedInput) {
  const std::vector<double> v{9.0, 1.0, 5.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.25), 3.0);
}

TEST(Stats, AccumulatorMatchesSummary) {
  Xoshiro256 rng(17);
  std::vector<double> v;
  Accumulator acc;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform() * 10 - 5;
    v.push_back(x);
    acc.add(x);
  }
  const Summary s = summarize(v);
  EXPECT_NEAR(acc.mean(), s.mean, 1e-9);
  EXPECT_NEAR(acc.stddev(), s.stddev, 1e-9);
  EXPECT_DOUBLE_EQ(acc.min(), s.min);
  EXPECT_DOUBLE_EQ(acc.max(), s.max);
}

TEST(Stats, ChernoffDecreasesWithMu) {
  EXPECT_GT(chernoff_upper_tail(10, 0.5), chernoff_upper_tail(100, 0.5));
  EXPECT_LE(chernoff_upper_tail(100, 0.5), 1.0);
}

TEST(Stats, ExceedFraction) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(exceed_fraction(v, 2.5), 0.5);
  EXPECT_DOUBLE_EQ(exceed_fraction(v, 10), 0.0);
}

TEST(Stats, RegressionSlope) {
  const std::vector<double> x{0, 1, 2, 3};
  const std::vector<double> y{1, 3, 5, 7};
  EXPECT_NEAR(regression_slope(x, y), 2.0, 1e-12);
  const std::vector<double> flat{4, 4, 4, 4};
  EXPECT_NEAR(regression_slope(x, flat), 0.0, 1e-12);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0, 10, 5);
  h.add(0.5);
  h.add(9.5);
  h.add(-100);  // clamps into first bucket
  h.add(100);   // clamps into last bucket
  EXPECT_DOUBLE_EQ(h.count(0), 2.0);
  EXPECT_DOUBLE_EQ(h.count(4), 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
  EXPECT_FALSE(h.render().empty());
}

TEST(Table, RendersAligned) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333"});
  const std::string out = t.render();
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsTooManyCells) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Cli, ParsesFlagsAndPositional) {
  const char* argv[] = {"prog", "pos1", "--p=64", "--eps", "0.1", "--verbose"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("p", 0), 64);
  EXPECT_DOUBLE_EQ(cli.get_double("eps", 0), 0.1);
  EXPECT_TRUE(cli.get_bool("verbose"));
  EXPECT_FALSE(cli.get_bool("absent"));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos1");
  EXPECT_EQ(cli.get_int("missing", -7), -7);
}

TEST(Json, DumpPrimitives) {
  EXPECT_EQ(Json().dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi \"there\"\n").dump(), "\"hi \\\"there\\\"\\n\"");
}

TEST(Json, ObjectKeepsInsertionOrder) {
  Json obj = Json::object();
  obj["zebra"] = Json(1);
  obj["alpha"] = Json(2);
  EXPECT_EQ(obj.dump(), "{\"zebra\":1,\"alpha\":2}");
  EXPECT_EQ(obj.get("alpha")->as_int(), 2);
  EXPECT_EQ(obj.get("missing"), nullptr);
}

TEST(Json, ParseRoundTrip) {
  const std::string text =
      R"({"s":"a\tb","n":-1.5e3,"t":true,"f":false,"z":null,"arr":[1,2,3],"o":{"k":"v"}})";
  const Json j = Json::parse(text);
  EXPECT_EQ(j.get("s")->as_string(), "a\tb");
  EXPECT_DOUBLE_EQ(j.get("n")->as_double(), -1500.0);
  EXPECT_TRUE(j.get("t")->as_bool());
  EXPECT_FALSE(j.get("f")->as_bool());
  EXPECT_TRUE(j.get("z")->is_null());
  ASSERT_EQ(j.get("arr")->size(), 3u);
  EXPECT_EQ(j.get("arr")->at(1).as_int(), 2);
  EXPECT_EQ(j.get("o")->get("k")->as_string(), "v");
  // dump -> parse -> dump is a fixed point.
  EXPECT_EQ(Json::parse(j.dump()).dump(), j.dump());
}

TEST(Json, ParsePreservesDoublePrecision) {
  const double v = 8228.6835496453659;
  Json obj = Json::object();
  obj["v"] = Json(v);
  EXPECT_DOUBLE_EQ(Json::parse(obj.dump()).get("v")->as_double(), v);
}

TEST(Json, ParseUnicodeEscape) {
  EXPECT_EQ(Json::parse(R"("a\u0041")").as_string(), "aA");
}

TEST(Json, ParseErrorsThrow) {
  EXPECT_THROW(Json::parse(""), JsonError);
  EXPECT_THROW(Json::parse("{"), JsonError);
  EXPECT_THROW(Json::parse("[1,]"), JsonError);
  EXPECT_THROW(Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW(Json::parse("tru"), JsonError);
  EXPECT_THROW(Json::parse("1 2"), JsonError);
  EXPECT_THROW(Json::parse("{\"a\" 1}"), JsonError);
}

TEST(Json, TypeMismatchThrows) {
  const Json j = Json::parse("[1]");
  EXPECT_THROW(j.as_string(), JsonError);
  EXPECT_THROW(j.get("k"), JsonError);
  EXPECT_THROW(j.at(5), JsonError);
}

TEST(Json, NonFiniteNumbersDumpAsNull) {
  Json obj = Json::object();
  obj["inf"] = Json(std::numeric_limits<double>::infinity());
  EXPECT_EQ(obj.dump(), "{\"inf\":null}");
}

TEST(Cli, ModelFlagsDefaultsAndDerivedM) {
  const char* argv[] = {"prog", "--p=256", "--g=8"};
  const Cli cli(3, const_cast<char**>(argv));
  const ModelFlags f = parse_model_flags(cli, {.p = 1024, .g = 16, .L = 4});
  EXPECT_EQ(f.p, 256u);
  EXPECT_DOUBLE_EQ(f.g, 8.0);
  EXPECT_EQ(f.m, 32u);  // derived p/g
  EXPECT_DOUBLE_EQ(f.L, 4.0);
  EXPECT_EQ(f.seed, 1u);
  EXPECT_EQ(f.trials, 1);
}

TEST(Cli, ModelFlagsExplicitMWins) {
  const char* argv[] = {"prog", "--p=256", "--g=8", "--m=5", "--trials=9"};
  const Cli cli(5, const_cast<char**>(argv));
  const ModelFlags f = parse_model_flags(cli);
  EXPECT_EQ(f.m, 5u);
  EXPECT_EQ(f.trials, 9);
}

TEST(Zipf, UniformWhenThetaZero) {
  ZipfSampler z(4, 0.0);
  Xoshiro256 rng(1);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[z.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Zipf, SkewPrefersLowRanks) {
  ZipfSampler z(100, 1.2);
  Xoshiro256 rng(2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 20000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 100);
}

TEST(Zipf, RejectsEmptyUniverse) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

}  // namespace
