// Second wave of engine tests: trace contents, long-message accounting,
// shared-memory lifecycle, machine reuse, halting semantics, stress under
// host threads, and parameterized determinism sweeps.
#include <gtest/gtest.h>

#include <numeric>

#include "core/model/models.hpp"
#include "engine/error.hpp"
#include "engine/machine.hpp"
#include "engine/thread_pool.hpp"

namespace {

using namespace pbw;
using engine::Machine;
using engine::MachineOptions;
using engine::ProcContext;
using engine::SuperstepProgram;

core::ModelParams params(std::uint32_t p, double g, std::uint32_t m, double L) {
  core::ModelParams prm;
  prm.p = p;
  prm.g = g;
  prm.m = m;
  prm.L = L;
  return prm;
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  engine::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ManyConsecutiveDispatches) {
  engine::ThreadPool pool(3);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(17, [&](std::size_t i) { sum += i; });
  }
  EXPECT_EQ(sum.load(), 200ull * (16 * 17 / 2));
}

TEST(ThreadPool, SingleThreadInline) {
  engine::ThreadPool pool(1);
  int calls = 0;
  pool.parallel_for(5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 5);
}

TEST(ThreadPool, EmptyRange) {
  engine::ThreadPool pool(2);
  pool.parallel_for(0, [&](std::size_t) { FAIL(); });
}

TEST(ThreadPool, WorkerExceptionRethrownOnCaller) {
  // Regression: an exception on a worker thread used to escape the worker
  // loop and call std::terminate.  It must surface on the calling thread.
  engine::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 87) {  // lands on a worker chunk
                                     throw engine::SimulationError("boom");
                                   }
                                 }),
               engine::SimulationError);
}

TEST(ThreadPool, CallerChunkExceptionRethrownAfterBarrier) {
  engine::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 0) {  // the calling thread's chunk
                                     throw std::runtime_error("first");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, PoolUsableAfterException) {
  engine::ThreadPool pool(3);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.parallel_for(
                     60, [](std::size_t i) { if (i % 20 == 19) throw 42; }),
                 int);
    std::atomic<int> calls{0};
    pool.parallel_for(60, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls.load(), 60);
  }
}

TEST(Engine, TraceRecordsEverySuperstep) {
  class P final : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() < 3 && ctx.id() == 0) ctx.send(1, 1);
      return ctx.superstep() < 3;
    }
  } prog;
  const core::BspM model(params(4, 2, 2, 1));
  MachineOptions opts;
  opts.trace = true;
  Machine machine(model, opts);
  const auto run = machine.run(prog);
  ASSERT_EQ(run.trace.size(), run.supersteps);
  double sum = 0;
  for (const auto& rec : run.trace) sum += rec.cost;
  EXPECT_DOUBLE_EQ(sum, run.total_time);
  EXPECT_EQ(run.trace[0].stats.total_flits, 1u);
}

TEST(Engine, LongMessageHCountsFlits) {
  class P final : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() > 0) return false;
      if (ctx.id() == 0) ctx.send(1, 1, 1, /*length=*/6);
      return true;
    }
  } prog;
  const core::BspG model(params(4, 3, 2, 1));
  Machine machine(model);
  const auto run = machine.run(prog);
  // h = 6 flits sent -> g*h = 18, plus the drain superstep at L = 1.
  EXPECT_DOUBLE_EQ(run.total_time, 19.0);
}

TEST(Engine, SelfSendDelivers) {
  class P final : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() == 0) {
        ctx.send(ctx.id(), 42);
        return true;
      }
      got_ = ctx.inbox().size() == 1 && ctx.inbox()[0].payload == 42;
      return false;
    }
    bool got_ = false;
  } prog;
  const core::BspM model(params(1, 1, 1, 1));
  Machine machine(model);
  machine.run(prog);
  EXPECT_TRUE(prog.got_);
}

TEST(Engine, MachineReuseAcrossRuns) {
  class P final : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() == 0) {
        ctx.send((ctx.id() + 1) % ctx.p(), 1);
        return true;
      }
      count_ += ctx.inbox().size();
      return false;
    }
    std::atomic<int> count_{0};
  };
  const core::BspM model(params(8, 2, 4, 1));
  Machine machine(model);
  P prog1, prog2;
  const auto r1 = machine.run(prog1);
  const auto r2 = machine.run(prog2);
  EXPECT_EQ(prog1.count_.load(), 8);
  EXPECT_EQ(prog2.count_.load(), 8);  // fresh inboxes on the second run
  EXPECT_DOUBLE_EQ(r1.total_time, r2.total_time);
}

TEST(Engine, SharedMemoryPersistsAcrossSuperstepsNotRuns) {
  class Writer final : public SuperstepProgram {
   public:
    void setup(Machine& m) override { m.resize_shared(2); }
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() == 0 && ctx.id() == 0) ctx.write(0, 5);
      return ctx.superstep() == 0;
    }
  };
  const core::QsmM model(params(2, 1, 1, 1));
  Machine machine(model);
  Writer w1;
  machine.run(w1);
  EXPECT_EQ(machine.shared_at(0), 5);
  Writer w2;  // setup() re-zeroes shared memory
  machine.run(w2);
  EXPECT_EQ(machine.shared_at(0), 5);
}

TEST(Engine, HaltsOnlyWhenAllProcessorsStop) {
  class Straggler final : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.id() == 0) return ctx.superstep() < 5;
      return false;  // everyone else wants to stop immediately
    }
  } prog;
  const core::BspG model(params(4, 1, 1, 1));
  Machine machine(model);
  const auto run = machine.run(prog);
  EXPECT_EQ(run.supersteps, 6u);
}

TEST(Engine, ZeroLengthMessageRejected) {
  class P final : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      ctx.send(0, 1, 1, /*length=*/0);
      return false;
    }
  } prog;
  const core::BspG model(params(2, 1, 1, 1));
  Machine machine(model);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Engine, WildExplicitSlotRejected) {
  class P final : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      ctx.send(0, 1, /*slot=*/(1u << 25));
      return false;
    }
  } prog;
  const core::BspG model(params(2, 1, 1, 1));
  Machine machine(model);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Engine, ValidationCanBeDisabled) {
  // With validation off, a QSM read/write race is tolerated (reads see
  // the pre-superstep value).
  class P final : public SuperstepProgram {
   public:
    void setup(Machine& m) override {
      m.resize_shared(1);
      m.poke_shared(0, 3);
    }
    bool step(ProcContext& ctx) override {
      switch (ctx.superstep()) {
        case 0:
          if (ctx.id() == 0) ctx.read(0);
          if (ctx.id() == 1) ctx.write(0, 9);
          return true;
        case 1:
          if (ctx.id() == 0) seen_ = ctx.reads()[0];
          return false;
        default:
          return false;
      }
    }
    engine::Word seen_ = -1;
  } prog;
  const core::QsmM model(params(2, 1, 1, 1));
  MachineOptions opts;
  opts.validate = false;
  Machine machine(model, opts);
  machine.run(prog);
  EXPECT_EQ(prog.seen_, 3);
  EXPECT_EQ(machine.shared_at(0), 9);
}

TEST(Engine, MixedMessagesAndSharedMemoryInOneSuperstep) {
  // A program may use both primitives; the stats must account for both.
  class P final : public SuperstepProgram {
   public:
    void setup(Machine& m) override { m.resize_shared(8); }
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() > 0) return false;
      ctx.send((ctx.id() + 1) % ctx.p(), 1, 1);
      ctx.write(ctx.id(), 7, 2);
      return true;
    }
  } prog;
  const core::QsmM model(params(8, 2, 4, 1));
  MachineOptions opts;
  opts.trace = true;
  Machine machine(model, opts);
  const auto run = machine.run(prog);
  EXPECT_EQ(run.total_messages, 8u);
  EXPECT_EQ(run.total_writes, 8u);
  const auto& counts = run.trace[0].stats.slot_counts;
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 8u);  // messages at slot 1
  EXPECT_EQ(counts[1], 8u);  // writes at slot 2
}

TEST(Engine, StepExceptionPropagatesFromWorkerThreads) {
  // Regression: a SimulationError raised by program.step inside the
  // parallel phase (here: destination out of range on the last processor,
  // which a 4-thread pool steps on a worker) used to kill the process.
  class Bad final : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.id() == ctx.p() - 1) ctx.send(ctx.p(), 0);
      return false;
    }
  } prog;
  const core::BspM model(params(64, 1, 8, 1));
  MachineOptions opts;
  opts.threads = 4;
  Machine machine(model, opts);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Engine, ValidationErrorPropagatesFromWorkerThreads) {
  class Collide final : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.id() == ctx.p() - 1) {
        ctx.send(0, 1, /*slot=*/2);
        ctx.send(0, 2, /*slot=*/2);  // slot collision caught by validate
      }
      return false;
    }
  } prog;
  const core::BspM model(params(64, 1, 8, 1));
  MachineOptions opts;
  opts.threads = 4;
  Machine machine(model, opts);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Engine, MergeExceptionPropagatesFromWorkerThreads) {
  // Out-of-range shared read detected during the sharded merge phase.
  class Bad final : public SuperstepProgram {
   public:
    void setup(Machine& m) override { m.resize_shared(4); }
    bool step(ProcContext& ctx) override {
      if (ctx.id() == ctx.p() - 1) ctx.read(99);
      return false;
    }
  } prog;
  const core::QsmM model(params(64, 1, 8, 1));
  MachineOptions opts;
  opts.threads = 4;
  Machine machine(model, opts);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Engine, MachineUsableAfterStepException) {
  class Bad final : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      ctx.send(ctx.p(), 0);
      return false;
    }
  };
  class Ring final : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() == 0) {
        ctx.send((ctx.id() + 1) % ctx.p(), 1);
        return true;
      }
      count_ += ctx.inbox().size();
      return false;
    }
    std::atomic<int> count_{0};
  };
  const core::BspM model(params(16, 1, 4, 1));
  MachineOptions opts;
  opts.threads = 4;
  Machine machine(model, opts);
  Bad bad;
  EXPECT_THROW(machine.run(bad), engine::SimulationError);
  Ring ring;
  machine.run(ring);
  EXPECT_EQ(ring.count_.load(), 16);
}

// ---- zero-copy delivery / buffer reuse -------------------------------------

TEST(Engine, SteadyStateDeliveryReusesQueues) {
  // Ring traffic across 6 supersteps; a second run on the same machine must
  // perform zero queue growth — every inbox and read buffer is reused at
  // capacity (the counters expose the double-buffered delivery path).
  class Ring final : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() < 5) ctx.send((ctx.id() + 1) % ctx.p(), 1);
      return ctx.superstep() < 5;
    }
  };
  const core::BspM model(params(16, 1, 4, 1));
  Machine machine(model);
  Ring r1, r2;
  machine.run(r1);
  const auto first = machine.counters();
  EXPECT_GT(first.merge_flits, 0u);
  EXPECT_GT(first.inbox_grows, 0u);  // cold queues grow once per buffer
  machine.run(r2);
  const auto second = machine.counters();
  EXPECT_EQ(second.merge_flits, first.merge_flits);
  EXPECT_EQ(second.inbox_grows, 0u);
  EXPECT_EQ(second.read_buffer_grows, 0u);
}

TEST(Engine, InboxDoubleBuffersAlternateWithoutCopies) {
  // A message is delivered every superstep for 8 supersteps; once both
  // buffers are warm the inbox span's data pointer must alternate between
  // exactly two stable addresses (swap, not copy-and-reallocate).
  class Probe final : public SuperstepProgram {
   public:
    bool step(ProcContext& ctx) override {
      if (ctx.id() == 0) {
        ptrs_.push_back(ctx.inbox().data());
        if (ctx.superstep() < 7) ctx.send(0, 1);
      }
      return ctx.superstep() < 7;
    }
    std::vector<const engine::Message*> ptrs_;
  } prog;
  const core::BspM model(params(4, 1, 2, 1));
  Machine machine(model);
  machine.run(prog);
  ASSERT_EQ(prog.ptrs_.size(), 8u);
  // Superstep 1 delivers into buffer B, superstep 2 into buffer A; both
  // are warm from there on and simply swap.
  EXPECT_NE(prog.ptrs_[1], prog.ptrs_[2]);
  for (std::size_t s = 3; s < prog.ptrs_.size(); ++s) {
    EXPECT_EQ(prog.ptrs_[s], prog.ptrs_[s - 2]) << "superstep " << s;
  }
}

TEST(Engine, ReadResultBuffersReusedAcrossSupersteps) {
  class Reader final : public SuperstepProgram {
   public:
    void setup(Machine& m) override { m.resize_shared(8); }
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() < 5) ctx.read(ctx.id() % 8);
      return ctx.superstep() < 5;
    }
  };
  const core::QsmM model(params(8, 1, 8, 1));
  Machine machine(model);
  Reader r1, r2;
  machine.run(r1);
  machine.run(r2);
  EXPECT_EQ(machine.counters().read_buffer_grows, 0u);
}

// Determinism sweep: wall order of host threads never changes results.
struct DetCase {
  std::uint32_t p;
  std::size_t threads;
};

class DeterminismSweep : public ::testing::TestWithParam<DetCase> {};

TEST_P(DeterminismSweep, SameResultAnyThreadCount) {
  const auto c = GetParam();

  class Random final : public SuperstepProgram {
   public:
    explicit Random(std::uint32_t p) : acc_(p, 0) {}
    bool step(ProcContext& ctx) override {
      if (ctx.superstep() >= 4) return false;
      ctx.send(static_cast<engine::ProcId>(ctx.rng().below(ctx.p())),
               static_cast<engine::Word>(ctx.rng().below(997)));
      for (const auto& m : ctx.inbox()) acc_[ctx.id()] ^= m.payload + 1;
      return true;
    }
    std::vector<engine::Word> acc_;
  };

  const core::BspM model(params(c.p, 2, std::max(1u, c.p / 4), 2));
  MachineOptions ref_opts;
  ref_opts.threads = 1;
  Random ref(c.p);
  Machine ref_machine(model, ref_opts);
  const auto ref_run = ref_machine.run(ref);

  MachineOptions opts;
  opts.threads = c.threads;
  Random prog(c.p);
  Machine machine(model, opts);
  const auto run = machine.run(prog);
  EXPECT_DOUBLE_EQ(run.total_time, ref_run.total_time);
  EXPECT_EQ(prog.acc_, ref.acc_);
}

INSTANTIATE_TEST_SUITE_P(Threads, DeterminismSweep,
                         ::testing::Values(DetCase{8, 2}, DetCase{8, 4},
                                           DetCase{64, 2}, DetCase{64, 8},
                                           DetCase{256, 4}));

}  // namespace
