// pbw::simd policy shim tests: path-name round trips, the degradation
// ladder, force_path()/ScopedPath precedence and restore, and the
// environment overrides (PBW_SIMD, PBW_FORCE_SCALAR) that pin the batch
// kernel from outside the process.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/simd.hpp"

namespace {

using pbw::simd::Path;
namespace simd = pbw::simd;

constexpr Path kAllPaths[] = {Path::kScalar, Path::kSse2, Path::kAvx2,
                              Path::kAvx512, Path::kNeon};

/// Sets (or clears, for nullptr) an environment variable for the scope
/// and restores the previous value on exit.  active_path() re-reads the
/// environment on every call, so this is all a test needs.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) previous_ = old;
    if (value != nullptr) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (previous_) {
      ::setenv(name_.c_str(), previous_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::optional<std::string> previous_;
};

bool is_supported(Path path) {
  const auto paths = simd::supported_paths();
  return std::find(paths.begin(), paths.end(), path) != paths.end();
}

TEST(Simd, PathNamesRoundTrip) {
  for (const Path path : kAllPaths) {
    const auto parsed = simd::path_from_name(simd::path_name(path));
    ASSERT_TRUE(parsed.has_value()) << simd::path_name(path);
    EXPECT_EQ(*parsed, path);
  }
  EXPECT_FALSE(simd::path_from_name("mmx").has_value());
  EXPECT_FALSE(simd::path_from_name("").has_value());
  // "auto" means "no request", not a path.
  EXPECT_FALSE(simd::path_from_name("auto").has_value());
}

TEST(Simd, LadderStepsDownToScalar) {
  EXPECT_EQ(simd::step_down(Path::kScalar), Path::kScalar);
  EXPECT_EQ(simd::step_down(Path::kAvx512), Path::kAvx2);
  EXPECT_EQ(simd::step_down(Path::kAvx2), Path::kSse2);
  EXPECT_EQ(simd::step_down(Path::kSse2), Path::kScalar);
  EXPECT_EQ(simd::step_down(Path::kNeon), Path::kScalar);
  for (Path path : kAllPaths) {
    // Every chain terminates at scalar within the ladder's length.
    int steps = 0;
    while (path != Path::kScalar && steps < 8) {
      path = simd::step_down(path);
      ++steps;
    }
    EXPECT_EQ(path, Path::kScalar);
  }
}

TEST(Simd, SupportedPathsAndClampAgree) {
  const auto paths = simd::supported_paths();
  ASSERT_FALSE(paths.empty());
  EXPECT_EQ(paths.front(), Path::kScalar);  // narrowest first, always there
  for (const Path path : paths) EXPECT_TRUE(simd::cpu_supports(path));
  EXPECT_TRUE(is_supported(simd::best_supported()));
  for (const Path path : kAllPaths) {
    const Path clamped = simd::clamp_to_cpu(path);
    EXPECT_TRUE(simd::cpu_supports(clamped)) << simd::path_name(path);
    if (simd::cpu_supports(path)) EXPECT_EQ(clamped, path);
  }
}

TEST(Simd, ForcePathPinsActivePathAndRestores) {
  // Neutral environment so only the pin decides.
  const ScopedEnv no_simd("PBW_SIMD", nullptr);
  const ScopedEnv no_force("PBW_FORCE_SCALAR", nullptr);
  ASSERT_FALSE(simd::forced_path().has_value());
  for (const Path path : simd::supported_paths()) {
    const simd::ScopedPath pin(path);
    EXPECT_EQ(simd::active_path(), path) << simd::path_name(path);
    EXPECT_EQ(simd::forced_path(), path);
    {
      const simd::ScopedPath nested(Path::kScalar);
      EXPECT_EQ(simd::active_path(), Path::kScalar);
    }
    EXPECT_EQ(simd::active_path(), path);  // nested scope restored the pin
  }
  EXPECT_FALSE(simd::forced_path().has_value());
  EXPECT_EQ(simd::active_path(), simd::best_supported());
}

TEST(Simd, ForcingAnUnsupportedPathThrows) {
  for (const Path path : kAllPaths) {
    if (is_supported(path)) continue;
    EXPECT_THROW(simd::force_path(path), std::invalid_argument)
        << simd::path_name(path);
  }
  EXPECT_FALSE(simd::forced_path().has_value());
}

TEST(Simd, EnvironmentSelectsThePath) {
  const ScopedEnv no_force("PBW_FORCE_SCALAR", nullptr);
  {
    const ScopedEnv env("PBW_SIMD", "scalar");
    EXPECT_EQ(simd::active_path(), Path::kScalar);
  }
  {
    const ScopedEnv env("PBW_SIMD", "auto");
    EXPECT_EQ(simd::active_path(), simd::best_supported());
  }
  {
    // An unsupported request degrades down the ladder, never crashes.
    const ScopedEnv env("PBW_SIMD", "avx512");
    EXPECT_EQ(simd::active_path(), simd::clamp_to_cpu(Path::kAvx512));
  }
  {
    // force_path() outranks the environment.
    const ScopedEnv env("PBW_SIMD", "scalar");
    const simd::ScopedPath pin(simd::best_supported());
    EXPECT_EQ(simd::active_path(), simd::best_supported());
  }
}

TEST(Simd, ForceScalarEnvIsABluntKillSwitch) {
  const ScopedEnv no_simd("PBW_SIMD", nullptr);
  {
    const ScopedEnv force("PBW_FORCE_SCALAR", "1");
    EXPECT_EQ(simd::active_path(), Path::kScalar);
  }
  {
    const ScopedEnv force("PBW_FORCE_SCALAR", "0");  // "0" means off
    EXPECT_EQ(simd::active_path(), simd::best_supported());
  }
  {
    // PBW_SIMD is the finer-grained knob and wins over the kill switch.
    const ScopedEnv force("PBW_FORCE_SCALAR", "1");
    const ScopedEnv env("PBW_SIMD", "auto");
    EXPECT_EQ(simd::active_path(), simd::best_supported());
  }
}

}  // namespace
