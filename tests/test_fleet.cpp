// Fleet subsystem tests: wire encodings, the lease table's crash-recovery
// state machine, duplicate-result dedup through the merge recorder, and a
// coordinator-plus-two-workers in-process fleet whose merged JSONL must be
// row-set-identical to a local thread-pool run of the same spec.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/http_client.hpp"
#include "fleet/lease.hpp"
#include "fleet/wire.hpp"
#include "fleet/worker.hpp"
#include "obs/export.hpp"
#include "obs/telemetry/context.hpp"
#include "obs/telemetry/span.hpp"

namespace {

using namespace pbw;

/// Unique temp path per test; removes leftovers from a previous run.
std::string temp_out(const std::string& stem) {
  const auto path =
      (std::filesystem::temp_directory_path() / (stem + ".jsonl")).string();
  std::remove(path.c_str());
  std::remove((path + ".manifest").c_str());
  return path;
}

/// Fresh directory for a coordinator's artifacts.
std::string temp_dir(const std::string& stem) {
  const auto path = (std::filesystem::temp_directory_path() / stem).string();
  std::filesystem::remove_all(path);
  std::filesystem::create_directories(path);
  return path;
}

std::multiset<std::string> read_lines(const std::string& path) {
  std::multiset<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.insert(line);
  }
  return lines;
}

/// A small sweep over the replayable grid scenario: 12 grid points in 2
/// structural shards (g and L are cost-only for bsp-m), milliseconds to run.
const char* kGridSpec =
    "[sweep]\n"
    "scenario = grid.pattern\n"
    "pattern = ring\n"
    "p = 16\n"
    "h = 2\n"
    "rounds = 2\n"
    "model = bsp-m\n"
    "g = 2, 4, 8\n"
    "L = 4, 16\n"
    "seeds = 1, 2\n"
    "trials = 2\n";

std::vector<campaign::Job> grid_jobs() {
  return campaign::expand_all(campaign::parse_spec(kGridSpec),
                              campaign::Registry::instance());
}

// ---- wire encodings --------------------------------------------------------

TEST(FleetWire, DoubleBitsRoundTripIsExact) {
  for (const double v : {0.0, -0.0, 1.0, -1.5, 1e-308, 1e308,
                         0.1 + 0.2,  // not representable exactly
                         std::numeric_limits<double>::infinity(),
                         -std::numeric_limits<double>::infinity()}) {
    const std::string hex = fleet::double_to_bits(v);
    EXPECT_EQ(hex.size(), 18u);
    const double back = fleet::double_from_bits(hex);
    EXPECT_EQ(std::memcmp(&v, &back, sizeof v), 0) << hex;
  }
  // NaN survives by bit pattern even though NaN != NaN.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double back = fleet::double_from_bits(fleet::double_to_bits(nan));
  EXPECT_TRUE(std::isnan(back));
  // -0.0 and 0.0 are distinct on the wire (the replay gate compares bits).
  EXPECT_NE(fleet::double_to_bits(0.0), fleet::double_to_bits(-0.0));

  EXPECT_THROW((void)fleet::double_from_bits("42"), std::invalid_argument);
  EXPECT_THROW((void)fleet::double_from_bits("0x123"), std::invalid_argument);
  EXPECT_THROW((void)fleet::double_from_bits("0x123456789abcdefg"),
               std::invalid_argument);
}

TEST(FleetWire, JobRoundTripPreservesKeys) {
  const auto jobs = grid_jobs();
  ASSERT_FALSE(jobs.empty());
  for (const campaign::Job& job : jobs) {
    const util::Json encoded = fleet::job_to_json(job);
    const campaign::Job back =
        fleet::job_from_json(encoded, campaign::Registry::instance());
    EXPECT_EQ(back.base_key(), job.base_key());
    EXPECT_EQ(back.structural_key(), job.structural_key());
    EXPECT_EQ(back.seed, job.seed);
    EXPECT_EQ(back.trials, job.trials);
    EXPECT_EQ(back.scenario, job.scenario);  // same registry entry
  }
}

TEST(FleetWire, JobFromJsonRejectsVersionSkew) {
  auto jobs = grid_jobs();
  util::Json encoded = fleet::job_to_json(jobs[0]);
  encoded["scenario"] = "no.such.scenario";
  EXPECT_THROW(
      fleet::job_from_json(encoded, campaign::Registry::instance()),
      std::invalid_argument);
}

TEST(FleetWire, RowsRoundTripBitExact) {
  std::vector<campaign::MetricRow> trials = {
      {{"time", 1.25}, {"zero", -0.0}},
      {{"time", 0.1 + 0.2}, {"zero", 0.0}},
  };
  const auto back = fleet::rows_from_json(fleet::rows_to_json(trials));
  ASSERT_EQ(back.size(), trials.size());
  for (std::size_t t = 0; t < trials.size(); ++t) {
    ASSERT_EQ(back[t].size(), trials[t].size());
    for (std::size_t i = 0; i < trials[t].size(); ++i) {
      EXPECT_EQ(back[t][i].first, trials[t][i].first);
      EXPECT_EQ(std::memcmp(&back[t][i].second, &trials[t][i].second,
                            sizeof(double)),
                0);
    }
  }
}

TEST(FleetWire, ParseEndpoint) {
  const fleet::Endpoint full = fleet::parse_endpoint("10.0.0.5:8080");
  EXPECT_EQ(full.host, "10.0.0.5");
  EXPECT_EQ(full.port, 8080);
  const fleet::Endpoint local = fleet::parse_endpoint(":9000");
  EXPECT_EQ(local.host, "127.0.0.1");
  EXPECT_EQ(local.port, 9000);
  EXPECT_THROW(fleet::parse_endpoint("nohost"), std::invalid_argument);
  EXPECT_THROW(fleet::parse_endpoint("host:0"), std::invalid_argument);
  EXPECT_THROW(fleet::parse_endpoint("host:99999"), std::invalid_argument);
}

TEST(FleetWire, SpanEventsRoundTripExactU64) {
  obs::SpanEvent big;
  big.name = "huge";
  big.start_ns = 0xFFFFFFFFFFFFFFFFull;  // > 2^53: a JSON double would mangle
  big.dur_ns = (1ull << 62) + 12345;
  big.tid = 7;
  big.depth = 3;
  big.parent_span = 0xDEADBEEFCAFEF00Dull;
  std::vector<obs::SpanEvent> spans = {big, {"tiny", 1, 2, 0, 0}};

  const auto back = fleet::span_events_from_json(fleet::span_events_to_json(spans));
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].name, "huge");
  EXPECT_EQ(back[0].start_ns, big.start_ns);
  EXPECT_EQ(back[0].dur_ns, big.dur_ns);
  EXPECT_EQ(back[0].tid, big.tid);
  EXPECT_EQ(back[0].depth, big.depth);
  EXPECT_EQ(back[0].parent_span, big.parent_span);
  EXPECT_EQ(back[1].name, "tiny");
  EXPECT_EQ(back[1].start_ns, 1u);
  // Trace ids are not on the wire: the coordinator stamps the campaign's.
  EXPECT_EQ(back[0].trace_hi, 0u);
  EXPECT_EQ(back[0].trace_lo, 0u);

  EXPECT_THROW(fleet::span_events_from_json(util::Json::parse("[[\"x\", 1]]")),
               std::invalid_argument);
  EXPECT_THROW(fleet::span_events_from_json(util::Json::parse(
                   "[[\"x\", \"nan\", \"2\", 0, 0, \"00\"]]")),
               std::invalid_argument);
}

// ---- lease table -----------------------------------------------------------

TEST(LeaseTable, GrantExpiryReassignment) {
  fleet::LeaseTable table(2, /*lease_seconds=*/10.0);
  EXPECT_EQ(table.pending(), 2u);

  const auto a = table.grant("wA", /*now=*/0.0);
  ASSERT_TRUE(a.granted);
  EXPECT_EQ(a.shard, 0u);
  const auto b = table.grant("wB", 0.0);
  ASSERT_TRUE(b.granted);
  EXPECT_EQ(b.shard, 1u);
  EXPECT_FALSE(table.grant("wC", 0.0).granted);  // everything leased

  // wB heartbeats at t=9 (deadline moves to 19); wA never does.
  EXPECT_EQ(table.expire(/*now=*/5.0), 0u);  // nothing due yet
  EXPECT_TRUE(table.renew(1, b.token, /*now=*/9.0));
  EXPECT_FALSE(table.renew(1, a.token, 9.0));  // wrong token

  // wA dies: only its lease expires, and wC inherits shard 0 with a
  // fresh token.
  EXPECT_EQ(table.expire(/*now=*/10.5), 1u);
  EXPECT_EQ(table.expired_total(), 1u);
  const auto c = table.grant("wC", 11.0);
  ASSERT_TRUE(c.granted);
  EXPECT_EQ(c.shard, 0u);
  EXPECT_NE(c.token, a.token);

  // The zombie's completion is stale; the inheritor's is accepted.
  EXPECT_EQ(table.complete(0, a.token), fleet::LeaseTable::Ack::kStale);
  EXPECT_EQ(table.complete(0, c.token), fleet::LeaseTable::Ack::kOk);
  // Duplicate delivery after completion.
  EXPECT_EQ(table.complete(0, c.token), fleet::LeaseTable::Ack::kDone);

  // The renewed lease is still live at t=12.
  EXPECT_EQ(table.expire(/*now=*/12.0), 0u);
  EXPECT_EQ(table.complete(1, b.token), fleet::LeaseTable::Ack::kOk);
  EXPECT_TRUE(table.all_done());
}

TEST(LeaseTable, ExpiredWorkerFinishingFirstStillCounts) {
  fleet::LeaseTable table(1, 10.0);
  const auto a = table.grant("wA", 0.0);
  table.expire(20.0);  // lease lost, shard back to pending
  // wA finishes before anyone re-leases: the token is the shard's latest,
  // so the completion is accepted rather than redone.
  EXPECT_EQ(table.complete(0, a.token), fleet::LeaseTable::Ack::kOk);
  EXPECT_TRUE(table.all_done());
  EXPECT_FALSE(table.grant("wB", 21.0).granted);
}

TEST(LeaseTable, FailRetriesUntilTerminal) {
  fleet::LeaseTable table(1, 10.0);
  const std::size_t max_attempts = 3;
  std::uint64_t token = 0;
  for (std::size_t attempt = 1; attempt < max_attempts; ++attempt) {
    const auto g = table.grant("w", 0.0);
    ASSERT_TRUE(g.granted);
    EXPECT_TRUE(table.fail(g.shard, g.token, max_attempts));  // retried
    token = g.token;
  }
  const auto last = table.grant("w", 0.0);
  ASSERT_TRUE(last.granted);
  EXPECT_NE(last.token, token);
  EXPECT_FALSE(table.fail(last.shard, last.token, max_attempts));  // terminal
  EXPECT_EQ(table.failed(), 1u);
  EXPECT_TRUE(table.all_done());
  EXPECT_FALSE(table.grant("w", 0.0).granted);
}

// ---- recorder merge (duplicate-result dedup) -------------------------------

TEST(RecorderMerge, DuplicateDeliveryRecordsOnce) {
  const std::string out = temp_out("pbw_fleet_merge");
  const auto jobs = grid_jobs();
  const std::vector<campaign::MetricRow> trials = {{{"metric", 1.0}},
                                                   {{"metric", 2.0}}};
  {
    campaign::Recorder recorder(out, "vtest");
    EXPECT_TRUE(recorder.merge(jobs[0], trials));
    EXPECT_FALSE(recorder.merge(jobs[0], trials));  // same job, second worker
    EXPECT_TRUE(recorder.merge(jobs[1], trials));
    EXPECT_EQ(recorder.recorded_count(), 2u);
  }
  EXPECT_EQ(read_lines(out).size(), 2u);

  // A reopened recorder (coordinator restart) still dedups via the
  // on-disk manifest.
  campaign::Recorder reopened(out, "vtest");
  EXPECT_FALSE(reopened.merge(jobs[0], trials));
  EXPECT_TRUE(reopened.merge(jobs[2], trials));
}

TEST(RecorderMerge, TruncatedManifestLineIsDropped) {
  const std::string out = temp_out("pbw_fleet_torn");
  const auto jobs = grid_jobs();
  const std::vector<campaign::MetricRow> trials = {{{"metric", 1.0}}};
  {
    campaign::Recorder recorder(out, "vtest");
    recorder.merge(jobs[0], trials);
    recorder.merge(jobs[1], trials);
  }
  // Tear the final manifest line mid-key, as a crash mid-append would.
  std::string manifest;
  {
    std::ifstream in(out + ".manifest");
    std::getline(in, manifest);  // first full line
  }
  {
    std::ofstream rewrite(out + ".manifest", std::ios::trunc);
    rewrite << manifest << "\n" << "torn-key-without-newline";
  }
  campaign::Recorder reopened(out, "vtest");
  EXPECT_EQ(reopened.recorded_count(), 1u);
  EXPECT_FALSE(reopened.merge(jobs[0], trials));  // survived
  EXPECT_TRUE(reopened.merge(jobs[1], trials));   // torn entry dropped
}

// ---- coordinator over HTTP -------------------------------------------------

TEST(Coordinator, SubmitLeaseResultsRoundTrip) {
  fleet::Coordinator::Options options;
  options.out_dir = temp_dir("pbw_fleet_rt");
  options.lease_seconds = 30.0;
  fleet::Coordinator coordinator(std::move(options));
  coordinator.start();
  const std::uint16_t port = coordinator.port();

  // Submit twice: the id is stable and the second submit joins the first.
  const auto submitted =
      fleet::http_post("127.0.0.1", port, "/submit", kGridSpec);
  ASSERT_TRUE(submitted.ok);
  ASSERT_EQ(submitted.status, 200) << submitted.body;
  const util::Json reply = util::Json::parse(submitted.body);
  const std::string id = reply.get("job")->as_string();
  EXPECT_EQ(reply.get("jobs")->as_int(), 12);
  EXPECT_EQ(reply.get("shards")->as_int(), 2);
  const auto again = fleet::http_post("127.0.0.1", port, "/submit", kGridSpec);
  EXPECT_EQ(util::Json::parse(again.body).get("job")->as_string(), id);

  // Bad specs and bad bodies are 400s, unknown jobs 404s.
  EXPECT_EQ(fleet::http_post("127.0.0.1", port, "/submit", "scenario = nope\n")
                .status,
            400);
  EXPECT_EQ(fleet::http_post("127.0.0.1", port, "/renew", "{}").status, 400);
  EXPECT_EQ(fleet::http_get("127.0.0.1", port, "/jobs/jdeadbeef").status, 404);
  // Known path, unregistered method.
  EXPECT_EQ(fleet::http_get("127.0.0.1", port, "/submit").status, 405);

  // Lease a shard and return its rows by hand.
  const auto leased = fleet::http_post("127.0.0.1", port, "/lease",
                                       "{\"worker\": \"manual\"}");
  ASSERT_EQ(leased.status, 200);
  const util::Json grant = util::Json::parse(leased.body);
  ASSERT_EQ(grant.get("idle"), nullptr) << leased.body;
  EXPECT_EQ(grant.get("job")->as_string(), id);
  const util::Json* jobs_json = grant.get("jobs");
  ASSERT_NE(jobs_json, nullptr);

  util::Json report = util::Json::object();
  report["worker"] = "manual";
  report["shard"] = grant.get("shard")->as_int();
  report["lease"] = grant.get("lease")->as_int();
  util::Json rows = util::Json::array();
  const std::vector<campaign::MetricRow> trials = {{{"metric", 0.5}},
                                                   {{"metric", -0.0}}};
  for (std::size_t i = 0; i < jobs_json->size(); ++i) {
    util::Json entry = util::Json::object();
    entry["job"] = jobs_json->at(i);
    entry["recosted"] = false;
    entry["trials"] = fleet::rows_to_json(trials);
    rows.push_back(std::move(entry));
  }
  report["rows"] = std::move(rows);
  const auto acked =
      fleet::http_post("127.0.0.1", port, "/results/" + id, report.dump());
  ASSERT_EQ(acked.status, 200) << acked.body;
  const util::Json ack = util::Json::parse(acked.body);
  EXPECT_EQ(ack.get("ack")->as_string(), "ok");
  EXPECT_EQ(ack.get("merged")->as_int(),
            static_cast<std::int64_t>(jobs_json->size()));

  // The same delivery again: every row is a duplicate, the ack is "done".
  const auto redelivered =
      fleet::http_post("127.0.0.1", port, "/results/" + id, report.dump());
  const util::Json re_ack = util::Json::parse(redelivered.body);
  EXPECT_EQ(re_ack.get("ack")->as_string(), "done");
  EXPECT_EQ(re_ack.get("merged")->as_int(), 0);
  EXPECT_EQ(re_ack.get("duplicates")->as_int(),
            static_cast<std::int64_t>(jobs_json->size()));

  // /jobs/<id> reflects one shard done, /status aggregates it.
  const util::Json job_doc = coordinator.job_status(id);
  EXPECT_EQ(job_doc.get("state")->as_string(), "running");
  EXPECT_EQ(job_doc.get("shards")->get("done")->as_int(), 1);
  const util::Json status = coordinator.status();
  EXPECT_EQ(status.get("rows_recorded")->as_int(),
            static_cast<std::int64_t>(jobs_json->size()));
  ASSERT_GE(status.get("workers")->size(), 1u);

  // /metrics exports the fleet series as Prometheus text.
  const auto metrics = fleet::http_get("127.0.0.1", port, "/metrics");
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("fleet_rows_merged"), std::string::npos);
  EXPECT_NE(metrics.body.find("fleet_shards_done"), std::string::npos);
  coordinator.stop();
}

TEST(Coordinator, LeaseExpiryReassignsOverHttp) {
  fleet::Coordinator::Options options;
  options.out_dir = temp_dir("pbw_fleet_expiry");
  options.lease_seconds = 0.2;  // expire fast
  fleet::Coordinator coordinator(std::move(options));
  coordinator.start();
  const std::uint16_t port = coordinator.port();

  ASSERT_EQ(fleet::http_post("127.0.0.1", port, "/submit", kGridSpec).status,
            200);
  const auto first = fleet::http_post("127.0.0.1", port, "/lease",
                                      "{\"worker\": \"doomed\"}");
  const util::Json g1 = util::Json::parse(first.body);
  ASSERT_EQ(g1.get("idle"), nullptr);

  // The doomed worker never renews; after the deadline the same shard goes
  // to the survivor with a new token.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  std::set<std::int64_t> shards;
  std::int64_t reassigned_token = 0;
  for (int i = 0; i < 2; ++i) {
    const auto res = fleet::http_post("127.0.0.1", port, "/lease",
                                      "{\"worker\": \"survivor\"}");
    const util::Json g = util::Json::parse(res.body);
    ASSERT_EQ(g.get("idle"), nullptr);
    shards.insert(g.get("shard")->as_int());
    if (g.get("shard")->as_int() == g1.get("shard")->as_int()) {
      reassigned_token = g.get("lease")->as_int();
    }
  }
  EXPECT_EQ(shards.size(), 2u);  // both shards leased, incl. the expired one
  EXPECT_NE(reassigned_token, g1.get("lease")->as_int());
  coordinator.stop();
}

// ---- the acceptance test: in-process fleet vs local run --------------------

std::multiset<std::string> run_local_baseline(const std::string& out) {
  const auto jobs = grid_jobs();
  campaign::Recorder recorder(out);
  campaign::ExecutorOptions options;
  options.threads = 2;
  const auto stats = campaign::run_campaign(jobs, recorder, options);
  EXPECT_EQ(stats.executed, jobs.size());
  return read_lines(out);
}

TEST(Fleet, TwoWorkerRunMatchesLocalBitExact) {
  const std::multiset<std::string> local =
      run_local_baseline(temp_out("pbw_fleet_local_baseline"));

  fleet::Coordinator::Options options;
  options.out_dir = temp_dir("pbw_fleet_e2e");
  options.lease_seconds = 10.0;
  fleet::Coordinator coordinator(std::move(options));
  coordinator.start();

  const std::string id = coordinator.submit(kGridSpec);
  auto worker_options = [&](const char* name) {
    fleet::Worker::Options w;
    w.port = coordinator.port();
    w.id = name;
    w.poll_seconds = 0.05;
    return w;
  };
  fleet::Worker wa(worker_options("wA"));
  fleet::Worker wb(worker_options("wB"));
  fleet::Worker::Stats sa;
  fleet::Worker::Stats sb;
  std::thread ta([&] { sa = wa.run(); });
  std::thread tb([&] { sb = wb.run(); });
  ta.join();
  tb.join();

  EXPECT_TRUE(coordinator.finished(id));
  EXPECT_EQ(sa.errors + sb.errors, 0u);
  const util::Json doc = coordinator.job_status(id);
  EXPECT_EQ(doc.get("state")->as_string(), "done");
  EXPECT_EQ(doc.get("duplicates")->as_int(), 0);

  // The merged artifact is row-set-identical to the local run — same
  // records, byte for byte, independent of which worker ran what.
  const std::multiset<std::string> fleet_rows =
      read_lines(coordinator.results_path(id));
  EXPECT_EQ(fleet_rows, local);
  coordinator.stop();
}

TEST(Fleet, WorkerCrashMidRunLosesNothing) {
  const std::multiset<std::string> local =
      run_local_baseline(temp_out("pbw_fleet_crash_baseline"));

  fleet::Coordinator::Options options;
  options.out_dir = temp_dir("pbw_fleet_crash");
  options.lease_seconds = 0.3;  // crashed worker's lease expires quickly
  fleet::Coordinator coordinator(std::move(options));
  coordinator.start();
  const std::uint16_t port = coordinator.port();
  const std::string id = coordinator.submit(kGridSpec);

  // A "worker" leases a shard and dies without delivering: hold the lease
  // by hand and never report.
  const auto doomed = fleet::http_post("127.0.0.1", port, "/lease",
                                       "{\"worker\": \"doomed\"}");
  ASSERT_EQ(util::Json::parse(doomed.body).get("idle"), nullptr);

  // Real workers drain the rest — and, after the expiry, the lost shard.
  fleet::Worker::Options w;
  w.port = port;
  w.id = "survivor";
  w.poll_seconds = 0.05;
  fleet::Worker worker(w);
  const fleet::Worker::Stats stats = worker.run();
  EXPECT_EQ(stats.errors, 0u);

  EXPECT_TRUE(coordinator.finished(id));
  const util::Json doc = coordinator.job_status(id);
  EXPECT_EQ(doc.get("state")->as_string(), "done");
  EXPECT_GE(doc.get("shards")->get("expired_total")->as_int(), 1);
  EXPECT_EQ(read_lines(coordinator.results_path(id)), local);
  coordinator.stop();
}

TEST(Fleet, CoordinatorRestartResumesFromManifest) {
  const std::string out_dir = temp_dir("pbw_fleet_resume");
  std::string id;
  {
    fleet::Coordinator::Options options;
    options.out_dir = out_dir;
    fleet::Coordinator coordinator(std::move(options));
    coordinator.start();
    id = coordinator.submit(kGridSpec);
    fleet::Worker::Options w;
    w.port = coordinator.port();
    w.poll_seconds = 0.05;
    fleet::Worker worker(w);
    worker.run();
    ASSERT_TRUE(coordinator.finished(id));
    coordinator.stop();
  }
  // A fresh coordinator over the same out_dir re-submits the same spec:
  // every shard is already recorded, so the campaign is born finished and
  // a worker has nothing to do.
  fleet::Coordinator::Options options;
  options.out_dir = out_dir;
  fleet::Coordinator coordinator(std::move(options));
  coordinator.start();
  const std::string resumed_id = coordinator.submit(kGridSpec);
  EXPECT_EQ(resumed_id, id);
  EXPECT_TRUE(coordinator.finished(id));
  const util::Json doc = coordinator.job_status(id);
  EXPECT_EQ(doc.get("resumed")->as_int(), 12);
  EXPECT_EQ(doc.get("state")->as_string(), "done");

  fleet::Worker::Options w;
  w.port = coordinator.port();
  w.poll_seconds = 0.05;
  fleet::Worker worker(w);
  const fleet::Worker::Stats stats = worker.run();
  EXPECT_EQ(stats.shards, 0u);  // drained immediately
  coordinator.stop();
}

// ---- distributed tracing: one merged flamegraph per campaign ---------------

TEST(Fleet, MergedTraceSpansCoordinatorAndBothWorkers) {
  fleet::Coordinator::Options options;
  options.out_dir = temp_dir("pbw_fleet_trace");
  options.lease_seconds = 10.0;
  fleet::Coordinator coordinator(std::move(options));
  coordinator.start();
  const std::uint16_t port = coordinator.port();
  const std::string id = coordinator.submit(kGridSpec);

  // A hand-rolled worker takes the first shard and ships a span sidecar,
  // so the merged trace deterministically carries two worker lanes.
  const auto leased = fleet::http_post("127.0.0.1", port, "/lease",
                                       "{\"worker\": \"manual\"}");
  ASSERT_EQ(leased.status, 200);
  const util::Json grant = util::Json::parse(leased.body);
  ASSERT_EQ(grant.get("idle"), nullptr) << leased.body;

  // The grant carries the campaign trace and the coordinator's clock.
  ASSERT_NE(grant.get("trace"), nullptr);
  const obs::TraceContext trace =
      obs::TraceContext::parse(grant.get("trace")->as_string());
  ASSERT_TRUE(trace.valid()) << grant.get("trace")->as_string();
  ASSERT_NE(grant.get("coord_ns"), nullptr);

  util::Json report = util::Json::object();
  report["worker"] = "manual";
  report["shard"] = grant.get("shard")->as_int();
  report["lease"] = grant.get("lease")->as_int();
  const util::Json* jobs_json = grant.get("jobs");
  ASSERT_NE(jobs_json, nullptr);
  util::Json rows = util::Json::array();
  const std::vector<campaign::MetricRow> trials = {{{"metric", 0.5}}};
  for (std::size_t i = 0; i < jobs_json->size(); ++i) {
    util::Json entry = util::Json::object();
    entry["job"] = jobs_json->at(i);
    entry["recosted"] = false;
    entry["trials"] = fleet::rows_to_json(trials);
    rows.push_back(std::move(entry));
  }
  report["rows"] = std::move(rows);
  std::vector<obs::SpanEvent> shipped = {{"fleet.shard", 1000, 900, 0, 0},
                                         {"manual.phase", 1100, 200, 0, 1}};
  report["spans"] = fleet::span_events_to_json(shipped);
  report["clock_offset_ns"] = "0";
  ASSERT_EQ(
      fleet::http_post("127.0.0.1", port, "/results/" + id, report.dump())
          .status,
      200);

  // A real worker drains the rest, shipping its own spans and offset.
  fleet::Worker::Options w;
  w.port = port;
  w.id = "real";
  w.poll_seconds = 0.05;
  fleet::Worker worker(w);
  EXPECT_EQ(worker.run().errors, 0u);
  ASSERT_TRUE(coordinator.finished(id));

  // /trace/<id> answers one structurally valid Chrome trace document.
  const auto traced = fleet::http_get("127.0.0.1", port, "/trace/" + id);
  ASSERT_EQ(traced.status, 200);
  std::istringstream in(traced.body);
  const obs::ChromeTraceValidation v = obs::validate_chrome_trace(in);
  ASSERT_TRUE(v.ok) << v.error;
  // At minimum: submit/lease/merge coordinator spans + 3 shipped ones.
  EXPECT_GE(v.slices, 6u);
  EXPECT_GE(v.metas, 3u);  // process name + >= 2 worker lane names

  const util::Json doc = util::Json::parse(traced.body);
  EXPECT_EQ(doc.get("trace_id")->as_string(), trace.trace_id_hex());
  EXPECT_EQ(doc.get("worker_batches")->as_int(), 2);

  // Every lane is named: coordinator thread(s) plus one per worker.
  bool saw_coordinator = false;
  bool saw_manual = false;
  bool saw_real = false;
  const util::Json* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  for (std::size_t i = 0; i < events->size(); ++i) {
    const util::Json& event = events->at(i);
    if (event.get("ph")->as_string() != "M") continue;
    if (event.get("name")->as_string() != "thread_name") continue;
    const std::string lane = event.get("args")->get("name")->as_string();
    if (lane.rfind("coordinator/", 0) == 0) saw_coordinator = true;
    if (lane == "worker manual") saw_manual = true;
    if (lane == "worker real") saw_real = true;
  }
  EXPECT_TRUE(saw_coordinator);
  EXPECT_TRUE(saw_manual);
  EXPECT_TRUE(saw_real);

  // /jobs/<id> names the campaign's trace id; unknown traces are 404s.
  EXPECT_EQ(coordinator.job_status(id).get("trace")->as_string(),
            trace.trace_id_hex());
  EXPECT_EQ(fleet::http_get("127.0.0.1", port, "/trace/jnope").status, 404);

  // The worker board reports seconds since each worker's last renewal.
  const util::Json status = coordinator.status();
  const util::Json* workers = status.get("workers");
  ASSERT_NE(workers, nullptr);
  std::size_t with_heartbeat = 0;
  for (std::size_t i = 0; i < workers->size(); ++i) {
    const util::Json* age = workers->at(i).get("heartbeat_age_seconds");
    ASSERT_NE(age, nullptr);
    if (age->is_number()) {
      EXPECT_GE(age->as_double(), 0.0);
      ++with_heartbeat;
    }
  }
  EXPECT_GE(with_heartbeat, 2u);
  ASSERT_NE(status.get("span_events_dropped"), nullptr);
  coordinator.stop();
}

}  // namespace
