// Second wave of PRAM tests: machine edge cases, h-relation property
// sweeps, leader-recognition parameter sweeps, and CR-simulation scaling.
#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/model/models.hpp"
#include "pram/cr_sim.hpp"
#include "pram/h_relation.hpp"
#include "pram/leader.hpp"
#include "pram/pram.hpp"
#include "sched/workloads.hpp"

namespace {

using namespace pbw;
using pram::Mode;
using pram::PramContext;
using pram::PramMachine;
using pram::PramProgram;

TEST(Pram, StepLimitEnforced) {
  class Forever final : public PramProgram {
   public:
    bool step(PramContext&) override { return true; }
  } prog;
  PramMachine machine(2, 1, {}, Mode::kCRCW, 1, /*max_steps=*/16);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Pram, OutOfRangeAccessThrows) {
  class Bad final : public PramProgram {
   public:
    bool step(PramContext& ctx) override {
      (void)ctx.read(10);
      return false;
    }
  } prog;
  PramMachine machine(1, 2, {}, Mode::kCRCW);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Pram, RomOutOfRangeThrows) {
  class Bad final : public PramProgram {
   public:
    bool step(PramContext& ctx) override {
      (void)ctx.rom(5);
      return false;
    }
  } prog;
  PramMachine machine(1, 1, {1, 2}, Mode::kCRCW);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Pram, ErewAllowsDisjointAccess) {
  class Disjoint final : public PramProgram {
   public:
    bool step(PramContext& ctx) override {
      if (ctx.step() > 0) return false;
      ctx.write(ctx.id(), ctx.id());
      return true;
    }
  } prog;
  PramMachine machine(8, 8, {}, Mode::kEREW);
  EXPECT_NO_THROW(machine.run(prog));
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(machine.cell(i), static_cast<engine::Word>(i));
  }
}

TEST(Pram, ErewWriteConflictThrows) {
  class Clash final : public PramProgram {
   public:
    bool step(PramContext& ctx) override {
      if (ctx.step() > 0) return false;
      ctx.write(0, ctx.id());
      return true;
    }
  } prog;
  PramMachine machine(2, 1, {}, Mode::kEREW);
  EXPECT_THROW(machine.run(prog), engine::SimulationError);
}

TEST(Pram, QrqwTimeAccumulatesPerStepContention) {
  class TwoPhases final : public PramProgram {
   public:
    bool step(PramContext& ctx) override {
      if (ctx.step() == 0) {
        (void)ctx.read(0);  // contention p = 4
        return true;
      }
      if (ctx.step() == 1) {
        (void)ctx.read(ctx.id());  // contention 1
        return true;
      }
      return false;
    }
  } prog;
  PramMachine machine(4, 4, {}, Mode::kQRQW);
  const auto run = machine.run(prog);
  EXPECT_DOUBLE_EQ(run.time, 4.0 + 1.0 + 1.0);
}

TEST(Pram, DeterministicRngStreams) {
  class Roll final : public PramProgram {
   public:
    bool step(PramContext& ctx) override {
      if (ctx.step() > 0) return false;
      value_ ^= static_cast<engine::Word>(ctx.rng().below(1 << 30)) + ctx.id();
      return true;
    }
    engine::Word value_ = 0;
  };
  Roll a, b;
  PramMachine m1(16, 1, {}, Mode::kCRCW, 99), m2(16, 1, {}, Mode::kCRCW, 99);
  m1.run(a);
  m2.run(b);
  EXPECT_EQ(a.value_, b.value_);
}

// ---- h-relation sweep ---------------------------------------------------------

struct HRelCase {
  std::uint32_t p;
  std::uint64_t n;
  double hot;
};

class HRelationSweep : public ::testing::TestWithParam<HRelCase> {};

TEST_P(HRelationSweep, DeliversWithinRoundBound) {
  const auto c = GetParam();
  util::Xoshiro256 rng(31 + c.p);
  const auto rel = sched::point_skew_relation(c.p, c.n, c.hot, rng);
  const auto result = pram::realize_h_relation_crcw(rel);
  EXPECT_TRUE(result.delivered);
  EXPECT_LE(result.rounds, std::max<std::uint64_t>(rel.max_received(), 1) + 1);
}

INSTANTIATE_TEST_SUITE_P(Shapes, HRelationSweep,
                         ::testing::Values(HRelCase{8, 32, 0.0},
                                           HRelCase{16, 128, 0.5},
                                           HRelCase{32, 512, 0.9},
                                           HRelCase{64, 256, 0.2},
                                           HRelCase{64, 1024, 1.0}));

// ---- leader sweep --------------------------------------------------------------

struct LeaderCase {
  std::uint32_t p;
  std::uint32_t m;
};

class LeaderSweep : public ::testing::TestWithParam<LeaderCase> {};

TEST_P(LeaderSweep, BothModesCorrectAndOrdered) {
  const auto c = GetParam();
  util::Xoshiro256 rng(c.p + c.m);
  const auto leader = static_cast<std::uint32_t>(rng.below(c.p));
  const auto cr = pram::leader_concurrent_read(c.p, c.m, leader);
  const auto er = pram::leader_exclusive_read(c.p, c.m, leader);
  EXPECT_TRUE(cr.correct);
  EXPECT_TRUE(er.correct);
  EXPECT_LE(cr.steps, 3u);
  EXPECT_GE(er.steps, cr.steps);
  // ER pays at least the drain: p/m steps (with m rounded to a power of 2).
  EXPECT_GE(er.steps, c.p / (2 * c.m));
}

INSTANTIATE_TEST_SUITE_P(Grid, LeaderSweep,
                         ::testing::Values(LeaderCase{64, 1}, LeaderCase{64, 8},
                                           LeaderCase{256, 16},
                                           LeaderCase{1024, 4},
                                           LeaderCase{1024, 64},
                                           LeaderCase{4096, 32}));

// ---- CR simulation scaling ------------------------------------------------------

TEST(CrSim, RatioFlatAcrossP) {
  // O(p/m): the measured/(p/m) ratio must not grow with p.
  double prev_ratio = 0.0;
  for (std::uint32_t p : {256u, 1024u, 4096u}) {
    const auto m = static_cast<std::uint32_t>(std::sqrt(p) / 2);
    core::ModelParams prm;
    prm.p = p;
    prm.g = double(p) / m;
    prm.m = m;
    prm.L = 1;
    const core::QsmM model(prm);
    util::Xoshiro256 rng(p);
    std::vector<std::uint32_t> addr(p);
    for (auto& a : addr) a = static_cast<std::uint32_t>(rng.below(m));
    std::vector<engine::Word> memory(m);
    for (std::uint32_t a = 0; a < m; ++a) memory[a] = a;
    const auto r = pram::simulate_cr_step(model, memory, addr, m);
    ASSERT_TRUE(r.correct);
    const double ratio = r.time / (double(p) / m);
    if (prev_ratio > 0) {
      EXPECT_LE(ratio, prev_ratio * 1.25);
    }
    prev_ratio = ratio;
  }
}

// ---- array-based h-relation (the paper's first Section 4.1 algorithm) -------

TEST(HRelationArray, DeliversBalanced) {
  util::Xoshiro256 rng(41);
  const auto rel = sched::balanced_relation(16, 4, rng);
  const auto result = pram::realize_h_relation_array(rel);
  EXPECT_TRUE(result.delivered);
}

TEST(HRelationArray, StepsLinearInH) {
  util::Xoshiro256 rng(42);
  for (double hot : {0.0, 0.5, 1.0}) {
    const auto rel = sched::point_skew_relation(16, 96, hot, rng);
    const auto result = pram::realize_h_relation_array(rel);
    EXPECT_TRUE(result.delivered) << "hot=" << hot;
    EXPECT_LE(result.steps, rel.max_received() + 6) << "hot=" << hot;
  }
}

TEST(HRelationArray, AgreesWithConcurrentWriteVariant) {
  util::Xoshiro256 rng(43);
  const auto rel = sched::zipf_relation(16, 128, 1.0, rng);
  const auto a = pram::realize_h_relation_array(rel);
  const auto b = pram::realize_h_relation_crcw(rel);
  EXPECT_TRUE(a.delivered);
  EXPECT_TRUE(b.delivered);
  // Both are O(h); same order of rounds.
  EXPECT_LE(a.rounds, 2 * b.rounds + 6);
}

TEST(HRelationArray, EmptyRelation) {
  sched::Relation rel(4);
  const auto result = pram::realize_h_relation_array(rel);
  EXPECT_TRUE(result.delivered);
  EXPECT_LE(result.steps, 6u);
}

TEST(HRelationArray, RejectsLongMessages) {
  sched::Relation rel(4);
  rel.add(0, 1, 2);
  EXPECT_THROW((void)pram::realize_h_relation_array(rel), engine::SimulationError);
}

TEST(CrSimDoubling, CorrectAcrossPatterns) {
  const std::uint32_t p = 512, m = 16;
  core::ModelParams prm;
  prm.p = p;
  prm.g = double(p) / m;
  prm.m = m;
  prm.L = 1;
  const core::QsmM model(prm);
  std::vector<engine::Word> memory(m);
  for (std::uint32_t a = 0; a < m; ++a) memory[a] = 100 + a;
  util::Xoshiro256 rng(13);
  for (int pattern = 0; pattern < 3; ++pattern) {
    std::vector<std::uint32_t> addr(p);
    for (std::uint32_t i = 0; i < p; ++i) {
      addr[i] = pattern == 0 ? 0
                : pattern == 1 ? i % m
                               : static_cast<std::uint32_t>(rng.below(m));
    }
    const auto r = pram::simulate_cr_step(
        model, memory, addr, m, pram::CrDistribution::kStandardDoubling);
    EXPECT_TRUE(r.correct) << "pattern " << pattern;
  }
}

TEST(CrSimDoubling, SlowerThanCentralReadsByLgFactor) {
  // The proof's point: the standard EREW simulation pays ~lg p over the
  // central-read method on the all-same pattern (one giant run).
  const std::uint32_t p = 2048, m = 16;
  core::ModelParams prm;
  prm.p = p;
  prm.g = double(p) / m;
  prm.m = m;
  prm.L = 1;
  const core::QsmM model(prm);
  std::vector<engine::Word> memory(m, 7);
  const std::vector<std::uint32_t> addr(p, 3);
  const auto central = pram::simulate_cr_step(
      model, memory, addr, m, pram::CrDistribution::kCentralReads);
  const auto doubling = pram::simulate_cr_step(
      model, memory, addr, m, pram::CrDistribution::kStandardDoubling);
  ASSERT_TRUE(central.correct && doubling.correct);
  EXPECT_GT(doubling.time, 1.5 * central.time);
}

TEST(CrSim, SmallestInstance) {
  core::ModelParams prm;
  prm.p = 4;
  prm.g = 2;
  prm.m = 2;
  prm.L = 1;
  const core::QsmM model(prm);
  const auto r = pram::simulate_cr_step(model, {10, 20},
                                        {0, 1, 0, 1}, 2);
  EXPECT_TRUE(r.correct);
}

}  // namespace
