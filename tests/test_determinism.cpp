// Determinism harness for the parallel superstep engine: the merge phase
// shards routing and accounting across host threads, and its contract is
// that RunResult — total_time, every counter, the full per-superstep trace
// and the shared-memory image — is bit-identical for every --threads value.
// Exercised over randomized message traffic (long messages, work charges),
// a shared-memory contention mix, and the Table 1 algorithm scenarios.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algos/broadcast.hpp"
#include "algos/list_ranking.hpp"
#include "algos/one_to_all.hpp"
#include "algos/reduce.hpp"
#include "algos/sorting.hpp"
#include "core/model/models.hpp"
#include "engine/machine.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"

namespace {

using namespace pbw;
using engine::Machine;
using engine::MachineOptions;
using engine::ProcContext;
using engine::RunResult;
using engine::SuperstepProgram;

core::ModelParams params(std::uint32_t p, double g, std::uint32_t m, double L) {
  core::ModelParams prm;
  prm.p = p;
  prm.g = g;
  prm.m = m;
  prm.L = L;
  return prm;
}

/// Thread counts under test: serial, even and odd shardings, hardware.
std::vector<std::size_t> thread_counts() {
  std::vector<std::size_t> counts{1, 2, 3, 8};
  const auto hw = std::max<std::size_t>(std::thread::hardware_concurrency(), 1);
  bool seen = false;
  for (auto c : counts) seen = seen || c == hw;
  if (!seen) counts.push_back(hw);
  return counts;
}

void expect_stats_identical(const engine::SuperstepStats& a,
                            const engine::SuperstepStats& b) {
  EXPECT_EQ(a.max_work, b.max_work);  // exact double equality: bit-identical
  EXPECT_EQ(a.max_sent, b.max_sent);
  EXPECT_EQ(a.max_received, b.max_received);
  EXPECT_EQ(a.total_flits, b.total_flits);
  EXPECT_EQ(a.max_reads, b.max_reads);
  EXPECT_EQ(a.max_writes, b.max_writes);
  EXPECT_EQ(a.kappa, b.kappa);
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.slot_counts, b.slot_counts);
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.total_time, b.total_time);  // exact double equality
  EXPECT_EQ(a.supersteps, b.supersteps);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_EQ(a.total_flits, b.total_flits);
  EXPECT_EQ(a.total_reads, b.total_reads);
  EXPECT_EQ(a.total_writes, b.total_writes);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t s = 0; s < a.trace.size(); ++s) {
    EXPECT_EQ(a.trace[s].cost, b.trace[s].cost);
    expect_stats_identical(a.trace[s].stats, b.trace[s].stats);
  }
}

/// Randomized message traffic: variable-length messages, work charges, and
/// inbox-dependent state so any ordering or routing slip shows up.
class TrafficProgram final : public SuperstepProgram {
 public:
  explicit TrafficProgram(std::uint32_t p) : acc_(p, 0) {}
  bool step(ProcContext& ctx) override {
    if (ctx.superstep() >= 6) return false;
    ctx.charge(static_cast<double>(ctx.rng().below(50)) / 8.0);
    const int sends = 1 + static_cast<int>(ctx.rng().below(3));
    for (int k = 0; k < sends; ++k) {
      const auto dst = static_cast<engine::ProcId>(ctx.rng().below(ctx.p()));
      const auto len = 1 + static_cast<std::uint32_t>(ctx.rng().below(3));
      ctx.send(dst, static_cast<engine::Word>(ctx.rng().below(1u << 20)), 0, len);
    }
    for (const auto& m : ctx.inbox()) {
      acc_[ctx.id()] = acc_[ctx.id()] * 31 + m.payload + m.src + m.slot;
    }
    return true;
  }
  std::vector<engine::Word> acc_;
};

TEST(Determinism, MessageTrafficBitIdenticalAcrossThreads) {
  const core::BspM model(params(96, 2, 12, 2));
  MachineOptions ref_opts;
  ref_opts.threads = 1;
  ref_opts.trace = true;
  TrafficProgram ref(96);
  Machine ref_machine(model, ref_opts);
  const auto ref_run = ref_machine.run(ref);

  for (const auto threads : thread_counts()) {
    MachineOptions opts;
    opts.threads = threads;
    opts.trace = true;
    TrafficProgram prog(96);
    Machine machine(model, opts);
    const auto run = machine.run(prog);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(ref_run, run);
    EXPECT_EQ(ref.acc_, prog.acc_);
  }
}

/// Shared-memory mix: even supersteps write a random cell of the write
/// region, odd supersteps read random cells (contended), so kappa, the
/// Arbitrary write rule, and read delivery are all exercised.
class SharedMixProgram final : public SuperstepProgram {
 public:
  explicit SharedMixProgram(std::uint32_t p) : sum_(p, 0) {}
  void setup(Machine& m) override { m.resize_shared(192); }
  bool step(ProcContext& ctx) override {
    if (ctx.superstep() >= 6) return false;
    if (ctx.superstep() % 2 == 0) {
      ctx.write(ctx.rng().below(192),
                static_cast<engine::Word>(ctx.id() * 1000 + ctx.superstep()));
    } else {
      ctx.read(ctx.rng().below(192));
      ctx.read(ctx.rng().below(192));
    }
    for (const auto v : ctx.reads()) sum_[ctx.id()] = sum_[ctx.id()] * 17 + v;
    return true;
  }
  std::vector<engine::Word> sum_;
};

TEST(Determinism, SharedMemoryBitIdenticalAcrossThreads) {
  const core::QsmM model(params(64, 2, 8, 1));
  MachineOptions ref_opts;
  ref_opts.threads = 1;
  ref_opts.trace = true;
  SharedMixProgram ref(64);
  Machine ref_machine(model, ref_opts);
  const auto ref_run = ref_machine.run(ref);
  std::vector<engine::Word> ref_cells;
  for (std::size_t a = 0; a < ref_machine.shared_size(); ++a) {
    ref_cells.push_back(ref_machine.shared_at(a));
  }

  for (const auto threads : thread_counts()) {
    MachineOptions opts;
    opts.threads = threads;
    opts.trace = true;
    SharedMixProgram prog(64);
    Machine machine(model, opts);
    const auto run = machine.run(prog);
    SCOPED_TRACE("threads=" + std::to_string(threads));
    expect_identical(ref_run, run);
    EXPECT_EQ(ref.sum_, prog.sum_);
    ASSERT_EQ(machine.shared_size(), ref_cells.size());
    for (std::size_t a = 0; a < ref_cells.size(); ++a) {
      EXPECT_EQ(machine.shared_at(a), ref_cells[a]) << "cell " << a;
    }
  }
}

/// The exported cost-attribution trace inherits the engine's determinism
/// contract: the JSONL bytes (which include every cost component and the
/// dominant-term verdict of every superstep) must be identical for every
/// host thread count.
TEST(Determinism, TraceExportByteIdenticalAcrossThreads) {
  const core::BspM model(params(96, 2, 12, 2));
  auto trace_bytes = [&](std::size_t threads) {
    obs::RecordingSink sink;
    MachineOptions opts;
    opts.threads = threads;
    opts.trace_sink = &sink;
    TrafficProgram prog(96);
    Machine machine(model, opts);
    (void)machine.run(prog);
    std::ostringstream out;
    obs::write_jsonl(sink.runs(), out);
    return out.str();
  };

  const std::string reference = trace_bytes(1);
  EXPECT_FALSE(reference.empty());
  for (const auto threads : {std::size_t{2}, std::size_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_EQ(trace_bytes(threads), reference);
  }
}

/// The Table 1 scenarios: every algorithm of the campaign's table1 registry
/// must report identical model time / supersteps / correctness at any host
/// thread count.
TEST(Determinism, Table1ScenariosIdenticalAcrossThreads) {
  const std::uint32_t p = 256;
  const double g = 8;
  const std::uint32_t m = 32;
  const auto prm = params(p, g, m, 4);
  const core::BspG bsp_g(prm);
  const core::BspM bsp_m(prm);
  const core::QsmG qsm_g(prm);
  const core::QsmM qsm_m(prm);

  util::Xoshiro256 rng(7);
  std::vector<engine::Word> inputs(p);
  for (auto& x : inputs) x = static_cast<engine::Word>(rng.below(1 << 20));
  const auto succ = algos::random_list(p, 11);

  struct Baseline {
    const char* name;
    algos::AlgoResult result;
  };
  auto run_all = [&](MachineOptions opts) {
    return std::vector<Baseline>{
        {"one_to_all.bsp_g", algos::one_to_all_bsp(bsp_g, opts)},
        {"one_to_all.bsp_m", algos::one_to_all_bsp(bsp_m, opts)},
        {"one_to_all.qsm_m", algos::one_to_all_qsm(qsm_m, m, opts)},
        {"broadcast.bsp_m", algos::broadcast_bsp_m(bsp_m, m, 4, 7, opts)},
        {"broadcast.qsm_g", algos::broadcast_qsm_g(qsm_g, 8, 7, opts)},
        {"summation.bsp_m",
         algos::reduce_bsp(bsp_m, inputs, m, 4, algos::ReduceOp::kSum, opts)},
        {"parity.qsm_m",
         algos::reduce_qsm(qsm_m, inputs, m, 2, m, algos::ReduceOp::kXor, opts)},
        {"list_ranking.qsm_m", algos::list_rank_qsm(qsm_m, succ, m, m, opts)},
        {"sorting.bsp_m", algos::sample_sort_bsp(bsp_m, inputs, m, 4, opts)},
    };
  };

  MachineOptions ref_opts;
  ref_opts.threads = 1;
  const auto reference = run_all(ref_opts);
  for (const auto& base : reference) {
    EXPECT_TRUE(base.result.correct) << base.name;
  }

  for (const auto threads : thread_counts()) {
    if (threads == 1) continue;
    MachineOptions opts;
    opts.threads = threads;
    const auto runs = run_all(opts);
    ASSERT_EQ(runs.size(), reference.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
      SCOPED_TRACE(std::string(reference[i].name) +
                   " threads=" + std::to_string(threads));
      EXPECT_EQ(runs[i].result.time, reference[i].result.time);
      EXPECT_EQ(runs[i].result.supersteps, reference[i].result.supersteps);
      EXPECT_EQ(runs[i].result.correct, reference[i].result.correct);
    }
  }
}

}  // namespace
