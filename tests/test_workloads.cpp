// Workload-generator invariants: exact totals, skew shapes, cap
// compliance, determinism, and Relation accounting under every generator.
#include <gtest/gtest.h>

#include <set>

#include "sched/relation.hpp"
#include "core/bounds.hpp"
#include "sched/workloads.hpp"
#include "util/rng.hpp"

namespace {

using namespace pbw;
using sched::Relation;

struct GenCase {
  const char* name;
  std::uint32_t p;
  std::uint64_t n;
};

class GeneratorSweep : public ::testing::TestWithParam<GenCase> {};

Relation make(const GenCase& c, util::Xoshiro256& rng) {
  const std::string name = c.name;
  if (name == "balanced") {
    return sched::balanced_relation(c.p, static_cast<std::uint32_t>(c.n / c.p), rng);
  }
  if (name == "point") return sched::point_skew_relation(c.p, c.n, 0.4, rng);
  if (name == "zipf") return sched::zipf_relation(c.p, c.n, 1.0, rng);
  if (name == "dest") return sched::dest_skew_relation(c.p, c.n, 1.0, rng);
  if (name == "nearly") return sched::nearly_local_relation(c.p, c.n, 0.25, rng);
  return sched::variable_length_relation(c.p, c.n / 4, 4, 0.2, rng);
}

TEST_P(GeneratorSweep, InvariantsHold) {
  const auto c = GetParam();
  util::Xoshiro256 rng(c.p ^ c.n);
  const Relation rel = make(c, rng);
  // (1) destinations valid and never self
  for (std::uint32_t src = 0; src < rel.p(); ++src) {
    for (const auto& item : rel.items(src)) {
      EXPECT_LT(item.dst, rel.p());
      EXPECT_NE(item.dst, src);
      EXPECT_GE(item.length, 1u);
    }
  }
  // (2) accounting identities
  std::uint64_t flits = 0;
  for (std::uint32_t src = 0; src < rel.p(); ++src) flits += rel.sent_by(src);
  EXPECT_EQ(flits, rel.total_flits());
  EXPECT_GE(rel.max_sent() * rel.p(), rel.total_flits());  // max >= mean
  EXPECT_GE(rel.max_received() * rel.p(), rel.total_flits());
  // (3) determinism: same seed, same relation
  util::Xoshiro256 rng2(c.p ^ c.n);
  const Relation again = make(c, rng2);
  EXPECT_EQ(again.total_flits(), rel.total_flits());
  EXPECT_EQ(again.max_sent(), rel.max_sent());
  EXPECT_EQ(again.max_received(), rel.max_received());
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, GeneratorSweep,
    ::testing::Values(GenCase{"balanced", 16, 256}, GenCase{"balanced", 64, 4096},
                      GenCase{"point", 16, 512}, GenCase{"point", 128, 8192},
                      GenCase{"zipf", 32, 1024}, GenCase{"zipf", 128, 8192},
                      GenCase{"dest", 32, 1024}, GenCase{"dest", 64, 4096},
                      GenCase{"nearly", 32, 1024}, GenCase{"varlen", 64, 2048}),
    [](const ::testing::TestParamInfo<GenCase>& info) {
      return std::string(info.param.name) + "_p" +
             std::to_string(info.param.p) + "_n" + std::to_string(info.param.n);
    });

TEST(Workloads2, PointSkewExactHotCount) {
  util::Xoshiro256 rng(1);
  const auto rel = sched::point_skew_relation(32, 1000, 0.25, rng);
  // hot = 250, plus the round-robin remainder: ceil(750/32) = 24.
  EXPECT_EQ(rel.sent_by(0), 274u);
}

TEST(Workloads2, ZipfThetaControlsSkew) {
  util::Xoshiro256 rng(2);
  const auto mild = sched::zipf_relation(64, 8192, 0.3, rng);
  const auto sharp = sched::zipf_relation(64, 8192, 1.5, rng);
  EXPECT_GT(sharp.max_sent(), 2 * mild.max_sent());
}

TEST(Workloads2, NearlyLocalTotalMatchesFraction) {
  util::Xoshiro256 rng(3);
  const auto rel = sched::nearly_local_relation(64, 4000, 0.1, rng);
  EXPECT_EQ(rel.total_flits(), 400u);
}

TEST(Workloads2, TotalExchangeDegenerate) {
  const auto rel1 = sched::total_exchange_relation(1);
  EXPECT_EQ(rel1.total_messages(), 0u);
  const auto rel2 = sched::total_exchange_relation(2, 5);
  EXPECT_EQ(rel2.total_flits(), 10u);
}

TEST(Workloads2, VariableLengthHotFraction) {
  util::Xoshiro256 rng(4);
  const auto rel = sched::variable_length_relation(32, 1000, 6, 0.5, rng);
  // The hot processor sources at least half the messages.
  EXPECT_GE(rel.items(0).size(), 500u);
}

TEST(Workloads2, DifferentSeedsDiffer) {
  util::Xoshiro256 a(5), b(6);
  const auto r1 = sched::zipf_relation(32, 1024, 1.0, a);
  const auto r2 = sched::zipf_relation(32, 1024, 1.0, b);
  // Totals equal by construction; the shape should differ.
  EXPECT_EQ(r1.total_flits(), r2.total_flits());
  bool any_diff = false;
  for (std::uint32_t i = 0; i < 32; ++i) {
    any_diff |= r1.sent_by(i) != r2.sent_by(i);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Workloads2, BalancedEdgeSinglePair) {
  util::Xoshiro256 rng(7);
  const auto rel = sched::balanced_relation(2, 3, rng);
  EXPECT_EQ(rel.sent_by(0), 3u);
  EXPECT_EQ(rel.sent_by(1), 3u);
  for (const auto& item : rel.items(0)) EXPECT_EQ(item.dst, 1u);
}

TEST(Workloads2, PermutationHasUnitH) {
  util::Xoshiro256 rng(8);
  for (std::uint32_t p : {2u, 8u, 64u, 255u}) {
    const auto rel = sched::permutation_relation(p, rng);
    EXPECT_LE(rel.max_sent(), 1u) << "p=" << p;
    EXPECT_LE(rel.max_received(), 1u) << "p=" << p;
    EXPECT_GE(rel.total_messages(), static_cast<std::uint64_t>(p) - 1);
    for (std::uint32_t src = 0; src < p; ++src) {
      for (const auto& item : rel.items(src)) EXPECT_NE(item.dst, src);
    }
  }
}

TEST(Workloads2, PermutationIsBoundaryCaseForModels) {
  // h = 1: g*h = g equals max(n/m, h) = max(g, 1) = g at matched
  // bandwidth — the one regime where global limits buy nothing.
  util::Xoshiro256 rng(9);
  const std::uint32_t p = 128, m = 16;
  const double g = double(p) / m;
  const auto rel = sched::permutation_relation(p, rng);
  const double local = pbw::core::bounds::routing_bsp_g(
      rel.max_sent(), rel.max_received(), g, 1);
  const double global = pbw::core::bounds::routing_bsp_m_optimal(
      rel.total_flits(), rel.max_sent(), rel.max_received(), m, 1);
  EXPECT_NEAR(local, global, global * 0.05);
}

TEST(Workloads2, MaxSentBelowThreshold) {
  Relation rel(4);
  rel.add(0, 1);            // x_0 = 1
  for (int i = 0; i < 5; ++i) rel.add(1, 2);  // x_1 = 5
  for (int i = 0; i < 9; ++i) rel.add(2, 3);  // x_2 = 9
  EXPECT_EQ(rel.max_sent_below(0.5), 0u);
  EXPECT_EQ(rel.max_sent_below(1.0), 1u);
  EXPECT_EQ(rel.max_sent_below(6.0), 5u);
  EXPECT_EQ(rel.max_sent_below(100.0), 9u);
}

}  // namespace
